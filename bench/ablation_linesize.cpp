// Ablation: cache line size vs the prefetching benefit of clustering.
//
// The paper notes (Section 2) that the cross-processor prefetching effect
// "is dependent on cache line size and application data layout", and that
// its 64-byte lines already capture much of the spatial sharing. This bench
// sweeps 16/32/64/128-byte lines for Ocean (spatial near-neighbour sharing)
// and Radix (scattered permutation writes / false sharing) with infinite
// caches.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Ablation: line size vs clustering benefit (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());

  for (const std::string app : {"ocean", "radix"}) {
    TextTable t(
        {app + " (inf cache)", "1ppc", "2ppc", "4ppc", "8ppc", "8p misses"});
    for (unsigned line : {16u, 32u, 64u, 128u}) {
      std::vector<std::string> cells = {std::to_string(line) + "B"};
      double base = 0;
      std::uint64_t misses8 = 0;
      for (unsigned ppc : bench::cluster_sizes()) {
        auto a = make_app(app, opt.scale);
        MachineSpec cfg = paper_machine(ppc, 0);
        cfg.cache.line_bytes = line;
        const SimResult r = simulate(*a, cfg);
        const double total = static_cast<double>(r.aggregate().total());
        if (ppc == 1) base = total;
        if (ppc == 8) misses8 = r.totals.read_misses;
        cells.push_back(fmt_pct(total / base) + "%");
      }
      cells.push_back(std::to_string(misses8));
      t.add_row(cells);
    }
    std::cout << t.str() << '\n';
  }
  return 0;
}
