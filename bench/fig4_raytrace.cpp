// Figure 4: finite-capacity effects for Raytrace.
//
// 4/16/32 KB per processor (fully associative) and infinite, clusters of
// 1/2/4/8. Raytrace has the largest working set of the unstructured
// applications, so working-set overlap keeps paying even at 32 KB: the
// clustered bars should drop well below the infinite-cache bars' gains.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Figure 4: Raytrace, finite capacity (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());
  bench::run_capacity_figure("raytrace", opt.scale,
                             "Fig 4 - raytrace (4k/16k/32k/inf per proc)");
  return 0;
}
