// Shared helpers for the experiment benches (one binary per paper figure /
// table). Every bench accepts:
//   --paper   run the paper's Table 2 problem sizes (slower)
//   --test    run tiny problem sizes (CI smoke)
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/atomic_file.hpp"
#include "src/report/experiment.hpp"
#include "src/report/figures.hpp"
#include "src/report/table.hpp"

namespace csim::bench {

/// One row of the end-to-end throughput report (perf_micro --json). The
/// headline metric is simulated references per wall-clock second: how fast
/// the simulator retires application loads+stores, the number the perf
/// baseline tracks across commits (docs/PERFORMANCE.md).
struct PerfRecord {
  std::string name;              ///< e.g. "end_to_end/shared_cache/ppc8"
  std::uint64_t simulated_refs = 0;
  double wall_seconds = 0;
  double sim_refs_per_sec = 0;
};

/// Writes BENCH_perf.json: a flat, diff-friendly report consumed by CI (the
/// Release perf-smoke step uploads it) and by humans comparing two commits.
inline void write_perf_json(const std::string& path,
                            const std::string& description,
                            const std::vector<PerfRecord>& rows) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"benchmark\": \"" << description << "\",\n";
  out << "  \"metric\": \"sim_refs_per_sec\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PerfRecord& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"simulated_refs\": %llu, "
                  "\"wall_seconds\": %.6f, \"sim_refs_per_sec\": %.0f}%s\n",
                  r.name.c_str(),
                  static_cast<unsigned long long>(r.simulated_refs),
                  r.wall_seconds, r.sim_refs_per_sec,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  atomic_write_file(path, out.str());
}

inline std::vector<unsigned> cluster_sizes() { return {1, 2, 4, 8}; }

/// Runs one app over the cluster sweep at one cache size and prints the
/// paper-style stacked bars. Returns the sweep for further use.
inline std::vector<SimResult> run_and_render(const std::string& app,
                                             ProblemScale scale,
                                             std::size_t cache_bytes,
                                             const std::string& title) {
  auto sweep = sweep_clusters([&] { return make_app(app, scale); },
                              cache_bytes);
  std::cout << render_figure(title, bars_from_sweep(sweep)) << '\n';
  return sweep;
}

/// Finite-capacity figure (Figures 4-8): groups of bars for 4 KB, 16 KB,
/// 32 KB per processor and infinite, each normalized to its own 1p bar.
inline void run_capacity_figure(const std::string& app, ProblemScale scale,
                                const std::string& title) {
  std::vector<FigureBar> bars;
  const std::vector<std::pair<std::string, std::size_t>> caches = {
      {"4k", 4 * 1024},
      {"16k", 16 * 1024},
      {"32k", 32 * 1024},
      {"inf", 0},
  };
  for (const auto& [label, bytes] : caches) {
    auto sweep =
        sweep_clusters([&] { return make_app(app, scale); }, bytes);
    bool first = true;
    for (const SimResult& r : sweep) {
      bars.push_back(FigureBar{
          label + "/" + std::to_string(r.config.procs_per_cluster) + "p",
          r.aggregate(), first});
      first = false;
    }
  }
  std::cout << render_figure(title, bars) << '\n';
}

}  // namespace csim::bench
