// Table 7: relative execution time of clustering with infinite caches, with
// shared-cache costs included.
//
// With no working-set advantage available, the shared-cache hit-time costs
// must dominate: LU gets worse with clustering, and even Ocean — the only
// application with a real communication reduction — at best breaks even
// beyond small cluster sizes. This is the paper's core negative result.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "src/analysis/shared_cache_cost.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf(
      "Table 7: relative execution time of clustering, infinite caches,\n"
      "shared-cache hit-time and bank-conflict costs included (%s sizes)\n\n",
      std::string(to_string(opt.scale)).c_str());

  const std::map<std::string, std::array<double, 4>> paper = {
      {"ocean", {1.0, 0.99, 1.04, 0.99}},
      {"lu", {1.0, 1.03, 1.06, 1.05}},
  };

  SharedCacheCostModel model;
  TextTable t({"app", "1-way", "2-way", "4-way", "8-way", "paper 8-way"});
  for (const std::string app : {"ocean", "lu"}) {
    auto sweep = sweep_clusters([&] { return make_app(app, opt.scale); }, 0);
    const ClusterCostRow row = make_cost_row(sweep, model);
    t.add_row({app, fmt(row.relative_time[0], 2), fmt(row.relative_time[1], 2),
               fmt(row.relative_time[2], 2), fmt(row.relative_time[3], 2),
               fmt(paper.at(app)[3], 2)});
  }
  std::cout << t.str();
  return 0;
}
