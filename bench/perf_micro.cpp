// Micro-benchmarks of the simulator core (google-benchmark): protocol
// operations, cache storage, event queue, and end-to-end simulation
// throughput in simulated references per second.
//
// `perf_micro --json [path]` skips google-benchmark and runs only the
// end-to-end configurations, writing a machine-readable report (default
// BENCH_perf.json) for the CI perf gate (tools/perf_check) — see
// docs/PERFORMANCE.md. `--repeat N` (default 3) measures each configuration
// N times and reports the median pass, damping scheduler and frequency
// noise on shared CI runners. `--trace-out` / `--metrics-interval` attach
// the src/obs observability layer to one end-to-end run (useful for
// profiling the baseline workload itself).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string_view>

#include "bench/bench_util.hpp"
#include "src/apps/app.hpp"
#include "src/core/error.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/coherence.hpp"
#include "src/obs/run_observer.hpp"
#include "src/report/cli_args.hpp"

namespace csim {
namespace {

/// One end-to-end run: `app_name` at test scale on 64 processors with 16 KB
/// caches — the tracked perf-baseline configuration. Returns retired
/// references.
std::uint64_t end_to_end_once(ClusterStyle style, unsigned ppc,
                              ContentionSpec contention = {},
                              Observer* obs = nullptr,
                              const char* app_name = "fft") {
  auto app = make_app(app_name, ProblemScale::Test);
  const MachineSpec cfg = MachineSpecBuilder{}
                              .procs(64)
                              .procs_per_cluster(ppc)
                              .style(style)
                              .cache_kb(16)
                              .contention(contention)
                              .build();
  const SimResult r = simulate(*app, cfg, obs);
  return r.totals.reads + r.totals.writes;
}

void BM_CacheInsertLookup(benchmark::State& state) {
  const std::size_t lines = static_cast<std::size_t>(state.range(0));
  CacheStorage cache(lines, 0, 64);
  Addr a = 0;
  for (auto _ : state) {
    cache.insert(a, LineState::Shared);
    benchmark::DoNotOptimize(cache.lookup(a));
    a += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup)->Arg(64)->Arg(1024);

void BM_EventQueue(benchmark::State& state) {
  EventQueue q;
  Cycles t = 0;
  int sink = 0;
  for (auto _ : state) {
    q.schedule(t + 5, [&sink] { ++sink; });
    q.schedule(t + 3, [&sink] { ++sink; });
    q.run_one();
    q.run_one();
    t += 10;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueue);

void BM_CoherenceReadHit(benchmark::State& state) {
  MachineSpec cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = 4;
  cfg.cache.per_proc_bytes = 0;
  AddressSpace as;
  const Addr base = as.alloc(1 << 20, "bench");
  CoherenceController coh(cfg, as);
  (void)coh.read(0, base, 0);  // warm the line
  Cycles now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coh.read(0, base, now++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherenceReadHit);

void BM_CoherenceCommunicationMiss(benchmark::State& state) {
  MachineSpec cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = 1;
  cfg.cache.per_proc_bytes = 0;
  AddressSpace as;
  const Addr base = as.alloc(1 << 20, "bench");
  CoherenceController coh(cfg, as);
  Cycles now = 0;
  for (auto _ : state) {
    // Write from cluster 0 invalidates, read from cluster 1 misses.
    benchmark::DoNotOptimize(coh.write(0, base, now));
    benchmark::DoNotOptimize(coh.read(1, base, now + 200));
    now += 400;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CoherenceCommunicationMiss);

void BM_EndToEndSim(benchmark::State& state) {
  const unsigned ppc = static_cast<unsigned>(state.range(0));
  const auto style = static_cast<ClusterStyle>(state.range(1));
  std::uint64_t refs = 0;
  for (auto _ : state) {
    refs += end_to_end_once(style, ppc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(refs));
  state.SetLabel("simulated refs/s");
}
BENCHMARK(BM_EndToEndSim)
    ->ArgNames({"ppc", "org"})
    ->Args({1, static_cast<int>(ClusterStyle::SharedCache)})
    ->Args({8, static_cast<int>(ClusterStyle::SharedCache)})
    ->Args({1, static_cast<int>(ClusterStyle::SharedMemory)})
    ->Args({8, static_cast<int>(ClusterStyle::SharedMemory)})
    ->Unit(benchmark::kMillisecond);

/// --json mode: measure each end-to-end configuration `repeat` times for at
/// least `min_seconds` of wall time each, and report the median pass (by
/// throughput). Besides the four fft baseline rows, two `/contention` rows
/// track the queued contention model's overhead, and per-organization radix
/// and barnes rows cover a scatter-heavy and a pointer-chasing workload.
/// The `_paper` rows run fmm and ocean at the paper's Table 2 problem sizes
/// in full detail, each paired with a `/sampled` row that replays the same
/// run from a warm-state checkpoint with one detailed tail interval — the
/// tracked speedup of interval sampling (docs/PERFORMANCE.md). The `/parN`
/// rows and the `par_scaling` pair track the cluster-parallel engine
/// (single-worker overhead and multi-core speedup), and `/par4/sampled`
/// tracks the sampling x parallel composition.
int json_main(const std::string& path, unsigned repeat) {
  using clock = std::chrono::steady_clock;
  constexpr double min_seconds = 1.0;
  std::vector<bench::PerfRecord> rows;
  // Warm-up once (page cache, allocator, checkpoint writes), then `repeat`
  // timed passes of >= min_seconds each; record the median pass.
  auto measure = [&](const char* name, auto&& once) {
    once();
    std::vector<bench::PerfRecord> passes;
    for (unsigned rep = 0; rep < repeat; ++rep) {
      std::uint64_t refs = 0;
      const auto start = clock::now();
      double elapsed = 0;
      do {
        refs += once();
        elapsed = std::chrono::duration<double>(clock::now() - start).count();
      } while (elapsed < min_seconds);
      bench::PerfRecord r;
      r.name = name;
      r.simulated_refs = refs;
      r.wall_seconds = elapsed;
      r.sim_refs_per_sec = static_cast<double>(refs) / elapsed;
      passes.push_back(std::move(r));
    }
    std::nth_element(passes.begin(), passes.begin() + passes.size() / 2,
                     passes.end(),
                     [](const bench::PerfRecord& a, const bench::PerfRecord& b) {
                       return a.sim_refs_per_sec < b.sim_refs_per_sec;
                     });
    bench::PerfRecord median = passes[passes.size() / 2];
    std::printf("%-46s %12.0f sim refs/s  (median of %u; %llu refs in %.2fs)\n",
                median.name.c_str(), median.sim_refs_per_sec, repeat,
                static_cast<unsigned long long>(median.simulated_refs),
                median.wall_seconds);
    rows.push_back(std::move(median));
  };
  struct EndToEnd {
    ClusterStyle style;
    unsigned ppc;
    bool contention;
    const char* app;
    const char* name;
  };
  const EndToEnd configs[] = {
      {ClusterStyle::SharedCache, 1, false, "fft",
       "end_to_end/shared_cache/ppc1"},
      {ClusterStyle::SharedCache, 8, false, "fft",
       "end_to_end/shared_cache/ppc8"},
      {ClusterStyle::SharedMemory, 1, false, "fft",
       "end_to_end/shared_memory/ppc1"},
      {ClusterStyle::SharedMemory, 8, false, "fft",
       "end_to_end/shared_memory/ppc8"},
      {ClusterStyle::SharedCache, 8, true, "fft",
       "end_to_end/shared_cache/ppc8/contention"},
      {ClusterStyle::SharedMemory, 8, true, "fft",
       "end_to_end/shared_memory/ppc8/contention"},
      {ClusterStyle::SharedCache, 8, false, "radix",
       "end_to_end/shared_cache/ppc8/radix"},
      {ClusterStyle::SharedMemory, 8, false, "radix",
       "end_to_end/shared_memory/ppc8/radix"},
      {ClusterStyle::SharedCache, 8, false, "barnes",
       "end_to_end/shared_cache/ppc8/barnes"},
      {ClusterStyle::SharedMemory, 8, false, "barnes",
       "end_to_end/shared_memory/ppc8/barnes"},
  };
  for (const EndToEnd& c : configs) {
    ContentionSpec spec;
    spec.enabled = c.contention;
    measure(c.name, [&] {
      return end_to_end_once(c.style, c.ppc, spec, nullptr, c.app);
    });
  }

  // Paper-scale pairs: full detail vs checkpointed interval sampling on the
  // same configuration. The sampled row warms to all-but-1/64 of the run,
  // simulates one 16K-reference detailed tail, and uses a 256K-cycle warming
  // quantum; its warm-up pass writes the warm-state checkpoint, so every
  // timed pass fast-forwards from it — the steady-state workflow of a
  // checkpointed parameter sweep. fmm and ocean are the pinned apps because
  // their miss-rate taxonomy stays within tolerance at this configuration
  // (mp3d's write-sharing ping-pong does not survive coarse warming;
  // docs/PERFORMANCE.md "Sampling accuracy").
  struct SampledPair {
    ClusterStyle style;
    const char* app;
    const char* name;
    const char* sampled_name;
  };
  const SampledPair paper_configs[] = {
      {ClusterStyle::SharedCache, "fmm",
       "end_to_end/shared_cache/ppc8/fmm_paper",
       "end_to_end/shared_cache/ppc8/fmm_paper/sampled"},
      {ClusterStyle::SharedMemory, "fmm",
       "end_to_end/shared_memory/ppc8/fmm_paper",
       "end_to_end/shared_memory/ppc8/fmm_paper/sampled"},
      {ClusterStyle::SharedCache, "ocean",
       "end_to_end/shared_cache/ppc8/ocean_paper",
       "end_to_end/shared_cache/ppc8/ocean_paper/sampled"},
  };
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path ckpt_dir = fs::temp_directory_path() / "csim_perf_ckpt";
  fs::remove_all(ckpt_dir, ec);  // never fast-forward from a stale build
  fs::create_directories(ckpt_dir, ec);
  for (const SampledPair& c : paper_configs) {
    const MachineSpec full = MachineSpecBuilder{}
                                 .procs(64)
                                 .procs_per_cluster(8)
                                 .style(c.style)
                                 .cache_kb(16)
                                 .build();
    std::uint64_t total = 0;
    measure(c.name, [&] {
      auto app = make_app(c.app, ProblemScale::Paper);
      const SimResult r = simulate(*app, full);
      total = r.totals.reads + r.totals.writes;
      return total;
    });
    const MachineSpec sampled = MachineSpecBuilder{full}
                                    .sample(total - total / 128, 16384, 0)
                                    .warm_quantum(Cycles{1} << 18)
                                    .checkpoint_dir(ckpt_dir.string())
                                    .build();
    measure(c.sampled_name, [&] {
      auto app = make_app(c.app, ProblemScale::Paper);
      const SimResult r = simulate(*app, sampled);
      return r.totals.reads + r.totals.writes;
    });
  }
  // Cluster-parallel engine rows: the tracked ocean paper-scale ppc8
  // configuration under the conservative window scheduler at 1 and 4
  // workers (docs/PERFORMANCE.md "Cluster-parallel execution"). The
  // worker-count axis only pays off on multi-core hosts — run_parallel
  // clamps workers to hardware_concurrency, so the par4 row degrades to
  // the par1 row on a single-core runner instead of spin-thrashing it.
  std::uint64_t par_total = 0;
  for (const unsigned workers : {1u, 4u}) {
    const MachineSpec par_cfg = MachineSpecBuilder{}
                                    .procs(64)
                                    .procs_per_cluster(8)
                                    .style(ClusterStyle::SharedCache)
                                    .cache_kb(16)
                                    .parallel_workers(workers)
                                    .build();
    const std::string name =
        "end_to_end/shared_cache/ppc8/ocean_paper/par" + std::to_string(workers);
    measure(name.c_str(), [&] {
      auto app = make_app("ocean", ProblemScale::Paper);
      const SimResult r = simulate(*app, par_cfg);
      par_total = r.totals.reads + r.totals.writes;
      return par_total;
    });
  }

  // Sampling x parallel: the composed row — sharded functional warming with
  // a warm-state checkpoint (the warm digest is keyed separately from the
  // sequential rows' checkpoints), one detailed tail interval, 4 workers.
  {
    const MachineSpec par_sampled =
        MachineSpecBuilder{}
            .procs(64)
            .procs_per_cluster(8)
            .style(ClusterStyle::SharedCache)
            .cache_kb(16)
            .parallel_workers(4)
            .sample(par_total - par_total / 128, 16384, 0)
            .warm_quantum(Cycles{1} << 18)
            .checkpoint_dir(ckpt_dir.string())
            .build();
    measure("end_to_end/shared_cache/ppc8/ocean_paper/par4/sampled", [&] {
      auto app = make_app("ocean", ProblemScale::Paper);
      const SimResult r = simulate(*app, par_sampled);
      return r.totals.reads + r.totals.writes;
    });
  }
  fs::remove_all(ckpt_dir, ec);

  // par_scaling pair: the multi-core speedup tracker. ppc 4 gives the
  // window scheduler 16 clusters to spread over 4 workers (the ppc8 rows
  // above leave only 8); tests/obs/par_scaling_test.cpp asserts the live
  // ratio on capable hosts, this pair records it in the baseline.
  for (const unsigned workers : {1u, 4u}) {
    const MachineSpec scal_cfg = MachineSpecBuilder{}
                                     .procs(64)
                                     .procs_per_cluster(4)
                                     .style(ClusterStyle::SharedCache)
                                     .cache_kb(16)
                                     .parallel_workers(workers)
                                     .build();
    const std::string name = "par_scaling/par" + std::to_string(workers);
    measure(name.c_str(), [&] {
      auto app = make_app("ocean", ProblemScale::Paper);
      const SimResult r = simulate(*app, scal_cfg);
      return r.totals.reads + r.totals.writes;
    });
  }
  bench::write_perf_json(
      path, "end-to-end simulation throughput (64 procs, 16 KB caches; "
            "test scale, plus paper-scale full/sampled pairs)", rows);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

/// --trace-out / --metrics-interval / crash-safety-flag mode: one observed
/// end-to-end run (shared-cache, ppc 8) through run_sweep, so the journal,
/// deadline, retry, and fault-plan flags behave exactly as in csim_cli.
int observed_main(const cli::ObsArgs& args) {
  SweepRequest req;
  req.make_app = [] { return make_app("fft", ProblemScale::Test); };
  req.configs.push_back(MachineSpecBuilder{}
                            .procs(64)
                            .procs_per_cluster(8)
                            .style(ClusterStyle::SharedCache)
                            .cache_kb(16)
                            .contention(args.contention)
                            .build());
  req.make_observer = args.observer_factory(req.configs.size());
  args.apply(req);
  const bool policy_active = !req.policy.journal_dir.empty() ||
                             req.policy.faults != nullptr ||
                             req.policy.row_deadline_seconds > 0 ||
                             req.policy.max_retries > 0;

  const SweepResult sweep = run_sweep(req);
  const std::size_t failures = write_failures(std::cerr, sweep.rows);
  if (policy_active) write_outcomes(std::cerr, sweep);
  if (failures != 0 || sweep.rows.empty()) return 1;

  const SimResult& r = sweep.rows.front();
  const std::uint64_t refs = r.totals.reads + r.totals.writes;
  std::printf("observed end_to_end/shared_cache/ppc8%s: %llu refs\n",
              args.contention.enabled ? "/contention" : "",
              static_cast<unsigned long long>(refs));
  if (!args.trace_out.empty()) std::printf("wrote %s\n", args.trace_out.c_str());
  if (args.metrics_interval != 0) {
    std::printf("wrote %s.csv and %s.json\n", args.metrics_out.c_str(),
                args.metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace csim

int main(int argc, char** argv) {
  csim::cli::ObsArgs obs_args;  // same flag spellings as csim_cli
  // --repeat applies to --json mode and may appear on either side of it.
  unsigned repeat = 3;
  std::string json_path;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--repeat") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--repeat: missing count\n");
        return 2;
      }
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1 || v > 1000) {
        std::fprintf(stderr, "--repeat: bad count '%s' (want 1..1000)\n",
                     argv[i]);
        return 2;
      }
      repeat = static_cast<unsigned>(v);
      continue;
    }
    if (a == "--json") {
      // The path operand is optional; a following flag is not a path.
      json_mode = true;
      const bool has_path =
          i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--";
      json_path = has_path ? argv[++i] : "BENCH_perf.json";
      continue;
    }
    try {
      obs_args.consume(argc, argv, i);
    } catch (const csim::ConfigError& e) {
      std::fprintf(stderr, "%s\n%s", e.what(), csim::cli::ObsArgs::usage());
      return 2;
    }
  }
  if (obs_args.shard_set) {
    // The observed run is one fixed row — there is nothing to partition.
    std::fprintf(stderr, "--shard is not supported by perf_micro\n");
    return 2;
  }
  if (json_mode) return csim::json_main(json_path, repeat);
  const bool policy_flags = !obs_args.policy.journal_dir.empty() ||
                            obs_args.fault_plan != nullptr ||
                            obs_args.policy.row_deadline_seconds > 0 ||
                            obs_args.policy.max_retries > 0;
  if (obs_args.trace_out.empty() && obs_args.metrics_interval == 0 &&
      !obs_args.contention.enabled && !policy_flags) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return csim::observed_main(obs_args);
}
