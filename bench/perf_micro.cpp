// Micro-benchmarks of the simulator core (google-benchmark): protocol
// operations, cache storage, event queue, and end-to-end simulation
// throughput in simulated references per second.
//
// `perf_micro --json [path]` skips google-benchmark and runs only the
// end-to-end configurations, writing a machine-readable report (default
// BENCH_perf.json) for the CI perf-smoke step — see docs/PERFORMANCE.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string_view>

#include "bench/bench_util.hpp"
#include "src/apps/app.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/coherence.hpp"

namespace csim {
namespace {

/// One end-to-end run: fft at test scale on 64 processors with 16 KB caches
/// — the tracked perf-baseline configuration. Returns retired references.
std::uint64_t end_to_end_once(ClusterStyle style, unsigned ppc) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineConfig cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = ppc;
  cfg.cluster_style = style;
  cfg.cache.per_proc_bytes = 16 * 1024;
  const SimResult r = simulate(*app, cfg);
  return r.totals.reads + r.totals.writes;
}

void BM_CacheInsertLookup(benchmark::State& state) {
  const std::size_t lines = static_cast<std::size_t>(state.range(0));
  CacheStorage cache(lines, 0, 64);
  Addr a = 0;
  for (auto _ : state) {
    cache.insert(a, LineState::Shared);
    benchmark::DoNotOptimize(cache.lookup(a));
    a += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup)->Arg(64)->Arg(1024);

void BM_EventQueue(benchmark::State& state) {
  EventQueue q;
  Cycles t = 0;
  int sink = 0;
  for (auto _ : state) {
    q.schedule(t + 5, [&sink] { ++sink; });
    q.schedule(t + 3, [&sink] { ++sink; });
    q.run_one();
    q.run_one();
    t += 10;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueue);

void BM_CoherenceReadHit(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = 4;
  cfg.cache.per_proc_bytes = 0;
  AddressSpace as;
  const Addr base = as.alloc(1 << 20, "bench");
  CoherenceController coh(cfg, as);
  (void)coh.read(0, base, 0);  // warm the line
  Cycles now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coh.read(0, base, now++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherenceReadHit);

void BM_CoherenceCommunicationMiss(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = 1;
  cfg.cache.per_proc_bytes = 0;
  AddressSpace as;
  const Addr base = as.alloc(1 << 20, "bench");
  CoherenceController coh(cfg, as);
  Cycles now = 0;
  for (auto _ : state) {
    // Write from cluster 0 invalidates, read from cluster 1 misses.
    benchmark::DoNotOptimize(coh.write(0, base, now));
    benchmark::DoNotOptimize(coh.read(1, base, now + 200));
    now += 400;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CoherenceCommunicationMiss);

void BM_EndToEndSim(benchmark::State& state) {
  const unsigned ppc = static_cast<unsigned>(state.range(0));
  const auto style = static_cast<ClusterStyle>(state.range(1));
  std::uint64_t refs = 0;
  for (auto _ : state) {
    refs += end_to_end_once(style, ppc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(refs));
  state.SetLabel("simulated refs/s");
}
BENCHMARK(BM_EndToEndSim)
    ->ArgNames({"ppc", "org"})
    ->Args({1, static_cast<int>(ClusterStyle::SharedCache)})
    ->Args({8, static_cast<int>(ClusterStyle::SharedCache)})
    ->Args({1, static_cast<int>(ClusterStyle::SharedMemory)})
    ->Args({8, static_cast<int>(ClusterStyle::SharedMemory)})
    ->Unit(benchmark::kMillisecond);

/// --json mode: measure each end-to-end configuration for at least
/// `min_seconds` of wall time and write the report.
int json_main(const std::string& path) {
  using clock = std::chrono::steady_clock;
  constexpr double min_seconds = 1.0;
  std::vector<bench::PerfRecord> rows;
  const std::pair<ClusterStyle, const char*> orgs[] = {
      {ClusterStyle::SharedCache, "shared_cache"},
      {ClusterStyle::SharedMemory, "shared_memory"},
  };
  for (const auto& [style, org] : orgs) {
    for (unsigned ppc : {1u, 8u}) {
      end_to_end_once(style, ppc);  // warm-up (page cache, allocator)
      std::uint64_t refs = 0;
      const auto start = clock::now();
      double elapsed = 0;
      do {
        refs += end_to_end_once(style, ppc);
        elapsed = std::chrono::duration<double>(clock::now() - start).count();
      } while (elapsed < min_seconds);
      bench::PerfRecord r;
      r.name = std::string("end_to_end/") + org + "/ppc" + std::to_string(ppc);
      r.simulated_refs = refs;
      r.wall_seconds = elapsed;
      r.sim_refs_per_sec = static_cast<double>(refs) / elapsed;
      std::printf("%-34s %12.0f sim refs/s  (%llu refs in %.2fs)\n",
                  r.name.c_str(), r.sim_refs_per_sec,
                  static_cast<unsigned long long>(r.simulated_refs),
                  r.wall_seconds);
      rows.push_back(std::move(r));
    }
  }
  bench::write_perf_json(
      path, "end-to-end simulation throughput (fft, test scale, 64 procs, "
            "16 KB caches)", rows);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace csim

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_perf.json";
      return csim::json_main(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
