// Micro-benchmarks of the simulator core (google-benchmark): protocol
// operations, cache storage, event queue, and end-to-end simulation
// throughput in simulated references per second.
#include <benchmark/benchmark.h>

#include "src/apps/app.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/coherence.hpp"

namespace csim {
namespace {

void BM_CacheInsertLookup(benchmark::State& state) {
  const std::size_t lines = static_cast<std::size_t>(state.range(0));
  CacheStorage cache(lines, 0, 64);
  Addr a = 0;
  for (auto _ : state) {
    cache.insert(a, LineState::Shared);
    benchmark::DoNotOptimize(cache.lookup(a));
    a += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup)->Arg(64)->Arg(1024);

void BM_EventQueue(benchmark::State& state) {
  EventQueue q;
  Cycles t = 0;
  int sink = 0;
  for (auto _ : state) {
    q.schedule(t + 5, [&sink] { ++sink; });
    q.schedule(t + 3, [&sink] { ++sink; });
    q.run_one();
    q.run_one();
    t += 10;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueue);

void BM_CoherenceReadHit(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = 4;
  cfg.cache.per_proc_bytes = 0;
  AddressSpace as;
  const Addr base = as.alloc(1 << 20, "bench");
  CoherenceController coh(cfg, as);
  (void)coh.read(0, base, 0);  // warm the line
  Cycles now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coh.read(0, base, now++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherenceReadHit);

void BM_CoherenceCommunicationMiss(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = 1;
  cfg.cache.per_proc_bytes = 0;
  AddressSpace as;
  const Addr base = as.alloc(1 << 20, "bench");
  CoherenceController coh(cfg, as);
  Cycles now = 0;
  for (auto _ : state) {
    // Write from cluster 0 invalidates, read from cluster 1 misses.
    benchmark::DoNotOptimize(coh.write(0, base, now));
    benchmark::DoNotOptimize(coh.read(1, base, now + 200));
    now += 400;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CoherenceCommunicationMiss);

void BM_EndToEndSim(benchmark::State& state) {
  const unsigned ppc = static_cast<unsigned>(state.range(0));
  std::uint64_t refs = 0;
  for (auto _ : state) {
    auto app = make_app("fft", ProblemScale::Test);
    MachineConfig cfg;
    cfg.num_procs = 64;
    cfg.procs_per_cluster = ppc;
    cfg.cache.per_proc_bytes = 16 * 1024;
    const SimResult r = simulate(*app, cfg);
    refs += r.totals.reads + r.totals.writes;
    benchmark::DoNotOptimize(r.wall_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(refs));
  state.SetLabel("simulated refs/s");
}
BENCHMARK(BM_EndToEndSim)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace csim

BENCHMARK_MAIN();
