// Table 4: probabilities of bank conflict at the shared first-level cache.
//
// Analytic: C = 1 - ((m-1)/m)^(n-1) with m = 4 banks per processor.
// This is exact, so the values must match the paper to the printed digits:
// 0.0, 0.125, 0.176, 0.199.
#include <cstdio>
#include <iostream>

#include "src/analysis/bank_conflict.hpp"
#include "src/mem/latency.hpp"
#include "src/report/table.hpp"

int main() {
  using namespace csim;
  std::printf("Table 4: probabilities of bank conflict (4 banks/processor)\n\n");

  const double paper[] = {0.0, 0.125, 0.176, 0.199};
  TextTable t({"procs/cache", "banks", "P(collision)", "paper"});
  std::size_t i = 0;
  for (const auto& row : bank_conflict_table()) {
    t.add_row({std::to_string(row.procs_per_cache), std::to_string(row.banks),
               fmt(row.collision_probability, 3), fmt(paper[i++], 3)});
  }
  std::cout << t.str() << '\n';

  // Context: the Table 1 latency model these conflicts compose with.
  LatencyModel lm;
  std::printf("Table 1 miss latencies (cycles): local %llu, "
              "local-dirty-remote %llu, remote %llu, 3-hop %llu\n",
              static_cast<unsigned long long>(lm.local_clean),
              static_cast<unsigned long long>(lm.local_dirty_remote),
              static_cast<unsigned long long>(lm.remote_clean),
              static_cast<unsigned long long>(lm.remote_dirty_third));
  return 0;
}
