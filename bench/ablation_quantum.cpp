// Ablation: run-ahead quantum — simulation fidelity vs speed.
//
// Processors may execute purely local operations up to `runahead_quantum`
// cycles past their event-queue slot before yielding. quantum = 1 is strict
// global ordering; larger quanta trade bounded timing skew for fewer
// scheduler round-trips. This bench quantifies both sides: simulated time
// drift relative to quantum = 1, and host simulation speed.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Ablation: run-ahead quantum (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());

  for (const std::string app : {"ocean", "mp3d"}) {
    TextTable t({app, "wall (cycles)", "drift vs q=1", "host ms", "speedup"});
    double strict_wall = 0, strict_ms = 0;
    for (unsigned q : {1u, 8u, 32u, 128u}) {
      auto a = make_app(app, opt.scale);
      MachineSpec cfg = paper_machine(4, 16 * 1024);
      cfg.runahead_quantum = q;
      const auto t0 = std::chrono::steady_clock::now();
      const SimResult r = simulate(*a, cfg);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (q == 1) {
        strict_wall = static_cast<double>(r.wall_time);
        strict_ms = ms;
      }
      t.add_row({"q=" + std::to_string(q), std::to_string(r.wall_time),
                 fmt_pct(static_cast<double>(r.wall_time) / strict_wall - 1.0,
                         2) +
                     "%",
                 fmt(ms, 1), fmt(strict_ms / ms, 2) + "x"});
    }
    std::cout << t.str() << '\n';
  }
  return 0;
}
