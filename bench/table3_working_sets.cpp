// Table 3: working-set sizes — and the overlap that makes clustering pay.
//
// The paper's Table 3 lists per-application working-set sizes (LU ~2 KB,
// FFT/FMM ~4 KB, Barnes ~12 KB, Volrend quite small, Raytrace/MP3D/Ocean
// large). We measure them with an LRU stack-distance profiler: the
// per-processor working set is the smallest fully associative cache covering
// 90% / 98% of re-references. Profiling at cluster granularity measures the
// *overlapped* working set; the overlap factor (sum of member working sets /
// cluster working set) is what Figures 4-8 monetize.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "src/analysis/working_set.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Table 3 (working-set columns): LRU stack-distance profile "
              "(%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());

  TextTable t({"app", "WS90/proc", "WS98/proc", "WS98 4p-cluster",
               "overlap x", "paper Table 3"});
  const std::map<std::string, std::string> paper = {
      {"barnes", "~12KB, overlaps"}, {"fmm", "small (4KB)"},
      {"fft", "small (4KB)"},        {"lu", "small (2KB)"},
      {"mp3d", "large O(n/p)"},      {"ocean", "partition O(n/p)"},
      {"radix", "small + large"},    {"raytrace", "large"},
      {"volrend", "quite small"},
  };

  for (const auto& f : app_registry()) {
    auto app1 = f.make(opt.scale);
    const auto per_proc = profile_working_sets(*app1, paper_machine(1, 0));
    auto app4 = f.make(opt.scale);
    const auto per_cluster = profile_working_sets(*app4, paper_machine(4, 0));

    const double ws90 = per_proc->mean_working_set_bytes(0.90);
    const double ws98 = per_proc->mean_working_set_bytes(0.98);
    const double cws98 = per_cluster->mean_working_set_bytes(0.98);
    const double overlap = cws98 > 0 ? 4.0 * ws98 / cws98 : 0.0;
    t.add_row({f.name, fmt(ws90 / 1024, 1) + "KB", fmt(ws98 / 1024, 1) + "KB",
               fmt(cws98 / 1024, 1) + "KB", fmt(overlap, 2),
               paper.at(f.name)});
  }
  std::cout << t.str();
  std::printf(
      "\noverlap x = (4 x per-processor WS) / cluster WS; 4.0 means the four\n"
      "working sets are identical (total overlap), 1.0 means disjoint.\n"
      "The paper's clustering argument: apps with overlap >> 1 benefit from\n"
      "sharing a cache smaller than the sum of private ones.\n");
  return 0;
}
