// Figure 8: finite-capacity effects for Volrend.
//
// Volrend's working set is near 16 KB (compact volume region per tile plus
// the shared octree); expect clear clustering gains at 4-16 KB from
// overlapped read-only data, converging towards the modest infinite-cache
// gains at 32 KB.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Figure 8: Volrend, finite capacity (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());
  bench::run_capacity_figure("volrend", opt.scale,
                             "Fig 8 - volrend (4k/16k/32k/inf per proc)");
  return 0;
}
