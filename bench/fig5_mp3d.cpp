// Figure 5: finite-capacity effects for MP3D.
//
// MP3D has large working sets (O(n/p) particles plus the shared space-cell
// array) and high unstructured read-write communication; clustering helps
// through both working-set overlap at small caches and communication
// reduction.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Figure 5: MP3D, finite capacity (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());
  bench::run_capacity_figure("mp3d", opt.scale,
                             "Fig 5 - mp3d (4k/16k/32k/inf per proc)");
  return 0;
}
