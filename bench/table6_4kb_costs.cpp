// Table 6: relative execution time of clustering with 4 KB caches, with the
// costs of sharing the first-level cache included.
//
// The 4 KB cache sits below the single-processor working sets of barnes,
// volrend and mp3d, so working-set overlap should outweigh the shared-cache
// hit-time costs (relative time < 1); radix has no working-set advantage and
// should hover around 1. Paper values are printed alongside.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "src/analysis/shared_cache_cost.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf(
      "Table 6: relative execution time of clustering, 4 KB caches/proc,\n"
      "shared-cache hit-time and bank-conflict costs included (%s sizes)\n\n",
      std::string(to_string(opt.scale)).c_str());

  const std::map<std::string, std::array<double, 4>> paper = {
      {"barnes", {1.0, 0.99, 0.95, 0.88}},
      {"radix", {1.0, 1.01, 1.02, 0.96}},
      {"volrend", {1.0, 0.93, 0.86, 0.79}},
      {"mp3d", {1.0, 0.96, 0.93, 0.86}},
  };

  SharedCacheCostModel model;
  TextTable t({"app", "1-way", "2-way", "4-way", "8-way", "paper 8-way"});
  for (const std::string app : {"barnes", "radix", "volrend", "mp3d"}) {
    auto sweep = sweep_clusters([&] { return make_app(app, opt.scale); },
                                4 * 1024);
    const ClusterCostRow row = make_cost_row(sweep, model);
    t.add_row({app, fmt(row.relative_time[0], 2), fmt(row.relative_time[1], 2),
               fmt(row.relative_time[2], 2), fmt(row.relative_time[3], 2),
               fmt(paper.at(app)[3], 2)});
  }
  std::cout << t.str();
  std::printf(
      "\n(sim-only ratios exclude hit-time costs; the multiplier adds the\n"
      " Table 1 hit latencies weighted by Table 4 conflict probabilities\n"
      " through the Table 5 expansion factors)\n");
  return 0;
}
