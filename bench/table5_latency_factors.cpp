// Table 5: load-latency execution-time expansion factors.
//
// The paper measured these with Pixie on MIPS binaries. Our substitute is an
// analytic pipeline model driven by (a) the paper's own rows, reproduced
// verbatim and fitted, and (b) the load density measured by our simulator.
// The bench prints all three so the substitution error is visible.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/analysis/latency_expansion.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Table 5: load-latency execution-time factors (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());

  std::printf("(a) Paper values (Pixie) and analytic fit to them:\n");
  TextTable tp({"app", "2cy", "3cy", "4cy", "fit 2cy", "fit 3cy", "fit 4cy"});
  for (const auto& row : paper_table5()) {
    const LatencyExpansionModel fit = fit_model_to(row);
    tp.add_row({std::string(row.app), fmt(row.f2, 3), fmt(row.f3, 3),
                fmt(row.f4, 3), fmt(fit.factor(2), 3), fmt(fit.factor(3), 3),
                fmt(fit.factor(4), 3)});
  }
  std::cout << tp.str() << '\n';

  std::printf(
      "(b) Model driven by the load density measured in our simulations\n"
      "    (1 processor/cluster, infinite caches). Our workloads batch\n"
      "    arithmetic into compute() cycles, so measured densities are lower\n"
      "    than a real instruction stream's ~0.2-0.3 loads/cycle; both are\n"
      "    shown.\n");
  TextTable tm({"app", "loads/cycle", "2cy", "3cy", "4cy"});
  for (const auto& f : app_registry()) {
    auto app = f.make(opt.scale);
    const SimResult r = simulate(*app, paper_machine(1, 0));
    LatencyExpansionModel m;
    m.loads_per_cycle = r.loads_per_cpu_cycle();
    tm.add_row({f.name, fmt(m.loads_per_cycle, 3), fmt(m.factor(2), 3),
                fmt(m.factor(3), 3), fmt(m.factor(4), 3)});
  }
  std::cout << tm.str();
  return 0;
}
