// Figure 6: finite-capacity effects for Barnes.
//
// Barnes' per-processor working set (the upper octree + nearby cells) is
// around 12 KB and overlaps heavily across spatially adjacent processors:
// at 4 KB/processor the overlapped working set suddenly fits as the cluster
// grows, producing the steep drops the paper highlights; at 32 KB the bars
// approach the (nearly flat) infinite-cache behaviour.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Figure 6: Barnes, finite capacity (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());
  bench::run_capacity_figure("barnes", opt.scale,
                             "Fig 6 - barnes (4k/16k/32k/inf per proc)");
  return 0;
}
