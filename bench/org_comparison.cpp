// Organization comparison: shared-CACHE clusters vs shared-MAIN-MEMORY
// clusters (the two abstract organizations of the paper's Section 2),
// at the same per-processor cache budget.
//
// Section 2's qualitative claims, made quantitative here:
//  - shared cache: one copy of read-shared data (working sets overlap),
//    prefetching into the L1, but destructive interference and (analytic,
//    Section 6) higher hit time;
//  - shared memory: caches are separate (no interference), working sets are
//    duplicated, but replaced data is re-fetched cache-to-cache within the
//    cluster instead of remotely.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf(
      "Cluster organization comparison (4-way clusters, %s sizes)\n"
      "values: percent of the *unclustered* (1ppc) run of the same cache\n\n",
      std::string(to_string(opt.scale)).c_str());

  for (std::size_t kb : {4ul, 16ul, 0ul}) {
    TextTable t({kb ? std::to_string(kb) + "KB/proc" : "inf cache",
                 "shared-cache", "shared-memory", "snoop/1Kref",
                 "clmem/1Kref"});
    for (const auto& f : app_registry()) {
      // Baseline: unclustered machine.
      auto base_app = f.make(opt.scale);
      const SimResult base = simulate(*base_app, paper_machine(1, kb * 1024));
      const double bt = static_cast<double>(base.aggregate().total());

      auto sc_app = f.make(opt.scale);
      const SimResult sc = simulate(*sc_app, paper_machine(4, kb * 1024));

      auto sm_app = f.make(opt.scale);
      MachineSpec smc = paper_machine(4, kb * 1024);
      smc.cluster_style = ClusterStyle::SharedMemory;
      const SimResult sm = simulate(*sm_app, smc);

      const double krefs =
          static_cast<double>(sm.totals.reads + sm.totals.writes) / 1000.0;
      t.add_row({f.name,
                 fmt_pct(static_cast<double>(sc.aggregate().total()) / bt) + "%",
                 fmt_pct(static_cast<double>(sm.aggregate().total()) / bt) + "%",
                 fmt(static_cast<double>(sm.totals.snoop_transfers) / krefs, 1),
                 fmt(static_cast<double>(sm.totals.cluster_memory_hits) / krefs,
                     1)});
    }
    std::cout << t.str() << '\n';
  }
  std::printf(
      "(snoop/clmem columns: cache-to-cache transfers and attraction-memory\n"
      " fetches per thousand references in the shared-memory organization —\n"
      " traffic that would have been remote without clustering)\n");
  return 0;
}
