// Ablation: destructive interference under limited associativity.
//
// The paper simulates fully associative caches ("we do not want to include
// the effect of conflict misses") and defers limited associativity to future
// work. This bench runs that future work: Barnes and Ocean at 16 KB per
// processor with 1/2/4/8-way set-associative vs fully associative cluster
// caches. Expect direct-mapped clustered caches to lose part of the
// clustering benefit to inter-processor conflict misses.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Ablation: associativity of the clustered cache (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());

  for (const std::string app : {"barnes", "ocean"}) {
    TextTable t({app + " 16KB/proc", "1ppc", "2ppc", "4ppc", "8ppc"});
    for (unsigned assoc : {1u, 2u, 4u, 8u, 0u}) {
      std::vector<std::string> cells = {
          assoc == 0 ? "full" : std::to_string(assoc) + "-way"};
      double base = 0;
      for (unsigned ppc : bench::cluster_sizes()) {
        auto a = make_app(app, opt.scale);
        MachineSpec cfg = paper_machine(ppc, 16 * 1024);
        cfg.cache.associativity = assoc;
        const SimResult r = simulate(*a, cfg);
        const double total = static_cast<double>(r.aggregate().total());
        if (ppc == 1) base = total;
        cells.push_back(fmt_pct(total / base) + "%");
      }
      t.add_row(cells);
    }
    std::cout << t.str() << '\n';
  }
  std::printf("(each row normalized to its own 1ppc run; rows differ in\n"
              " associativity, so differences down a column are conflict\n"
              " misses from interfering reference streams)\n");
  return 0;
}
