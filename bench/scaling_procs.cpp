// Processor-count scaling: "clustering may push out the number of
// processors that can be used effectively on a fixed problem size"
// (the paper's Section 4 conclusion for near-neighbour codes).
//
// Fixed Ocean problem, growing machine: speedup over the 16-processor
// unclustered run, with and without 8-way clustering. The unclustered curve
// flattens sooner (communication and imbalance grow with P); clustering
// moves the knee outward.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/apps/ocean.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Scaling: fixed Ocean problem vs processor count "
              "(%s sizes, infinite caches)\n\n",
              std::string(to_string(opt.scale)).c_str());

  OceanConfig ocfg = OceanConfig::preset(opt.scale);
  auto run = [&](unsigned procs, unsigned ppc) {
    OceanApp app(ocfg);
    MachineSpec cfg;
    cfg.num_procs = procs;
    cfg.procs_per_cluster = ppc;
    cfg.cache.per_proc_bytes = 0;
    return simulate(app, cfg);
  };

  const SimResult base = run(16, 1);
  TextTable t({"procs", "speedup 1ppc", "speedup 8ppc", "clustering gain"});
  for (unsigned procs : {16u, 32u, 64u}) {
    const SimResult un = run(procs, 1);
    const SimResult cl = run(procs, 8);
    const double s1 = static_cast<double>(base.wall_time) / un.wall_time * 16.0;
    const double s8 = static_cast<double>(base.wall_time) / cl.wall_time * 16.0;
    t.add_row({std::to_string(procs), fmt(s1, 1) + "x", fmt(s8, 1) + "x",
               fmt_pct(s8 / s1 - 1.0, 0) + "%"});
  }
  std::cout << t.str();
  std::printf("\n(speedup normalized so 16 unclustered processors = 16x; the\n"
              " clustering gain column growing with P is the \"pushes out\"\n"
              " effect: communication grows with the partition perimeter as\n"
              " the fixed problem is cut finer)\n");
  return 0;
}
