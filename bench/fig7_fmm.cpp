// Figure 7: finite-capacity effects for FMM.
//
// FMM's working set (~4 KB: interaction-list multipole records) is the
// smallest of the unstructured applications, so the working-set advantage
// appears already at the 4 KB cache and largely disappears by 16 KB.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Figure 7: FMM, finite capacity (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());
  bench::run_capacity_figure("fmm", opt.scale,
                             "Fig 7 - fmm (4k/16k/32k/inf per proc)");
  return 0;
}
