// Validation: the paper's analytic Section 6 estimation vs direct
// simulation of shared-cache hit costs.
//
// The paper ran its event simulator with 1-cycle hits and multiplied by an
// analytic factor (Table 5 expansion x Table 4 conflicts) to account for the
// shared cache's 2-3 cycle hit time. This bench *simulates* those costs
// instead (every access charged the Table 1 shared hit latency, plus one
// cycle on a pseudo-random Table 4 bank conflict) and compares both methods.
//
// Expected systematic gap: the analytic route assumes the processor stalls
// only when a load's value is consumed (Pixie's delay-slot accounting),
// while the direct simulation charges every access its full latency — so
// the simulated costs form an upper bound on the analytic ones.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/analysis/shared_cache_cost.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Validation: analytic (Section 6) vs simulated shared-cache "
              "hit costs (%s sizes, 4 KB caches)\n\n",
              std::string(to_string(opt.scale)).c_str());

  SharedCacheCostModel model;
  TextTable t({"app", "ppc", "sim-only", "analytic", "simulated", "ratio"});
  for (const std::string app : {"barnes", "volrend", "radix"}) {
    auto sweep = sweep_clusters([&] { return make_app(app, opt.scale); },
                                4 * 1024);
    const ClusterCostRow analytic = make_cost_row(sweep, model);

    // Direct simulation with modelled hit costs; normalize by a 1ppc run
    // that also models costs (1-cycle hits there, so it equals the plain
    // run, but keep the path identical).
    double base = 0;
    for (std::size_t i = 0; i < analytic.cluster_sizes.size(); ++i) {
      const unsigned ppc = analytic.cluster_sizes[i];
      auto a = make_app(app, opt.scale);
      MachineSpec cfg = paper_machine(ppc, 4 * 1024);
      cfg.model_shared_hit_costs = true;
      const SimResult r = simulate(*a, cfg);
      const double tot = static_cast<double>(r.aggregate().total());
      if (ppc == 1) base = tot;
      const double simulated = tot / base;
      t.add_row({app, std::to_string(ppc), fmt(analytic.sim_ratio[i], 3),
                 fmt(analytic.relative_time[i], 3), fmt(simulated, 3),
                 fmt(simulated / analytic.relative_time[i], 2)});
    }
  }
  std::cout << t.str();
  std::printf(
      "\nratio = simulated / analytic; access-dense apps (radix) land above 1\n"
      "(full-latency hits vs delay-slot accounting), compute-dominated ones\n"
      "slightly below. Agreement in *ordering* across cluster sizes is what\n"
      "validates the paper's estimation procedure.\n");
  return 0;
}
