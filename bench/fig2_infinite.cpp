// Figure 2: the benefits of clustering with infinite caches.
//
// All nine applications, 64 processors, clusters of 1/2/4/8 sharing an
// infinite fully associative cache. Isolates inherent communication and
// cold misses: the only benefit clustering can show here is prefetching and
// obviated invalidations.
//
// Expected shape (paper): LU/FFT/Barnes/FMM essentially flat (>= ~95% at
// 8p), with FFT/LU converting load stall into merge stall; Ocean the clear
// winner (near-neighbour traffic captured, load stall roughly halves per
// doubling of cluster size); Raytrace/Volrend modest; MP3D ~ -10..15% at 8p
// because its communication rate is high.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  std::printf("Figure 2: infinite cluster caches, 64 processors (%s sizes)\n\n",
              std::string(to_string(opt.scale)).c_str());
  for (const auto& f : app_registry()) {
    bench::run_and_render(f.name, opt.scale, 0,
                          "Fig 2 - " + f.name + " (infinite caches)");
  }
  return 0;
}
