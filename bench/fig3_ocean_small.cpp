// Figure 3: Ocean with a small 66x66 grid, infinite caches.
//
// Smaller problems have higher communication-to-computation ratios, so the
// performance impact of clustering is greater than in Figure 2 — but load
// imbalance / synchronization also grows. (The paper's conclusion:
// clustering "pushes out" the number of processors usable on a fixed
// problem size.)
#include "bench/bench_util.hpp"

#include "src/apps/ocean.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const auto opt = BenchOptions::parse(argc, argv);
  (void)opt;
  std::printf("Figure 3: Ocean, small 66x66 problem, infinite caches\n\n");

  auto sweep = sweep_clusters(
      [] { return std::make_unique<OceanApp>(OceanConfig::small_problem()); },
      0);
  std::cout << render_figure("Fig 3 - ocean 66x66 (infinite caches)",
                             bars_from_sweep(sweep))
            << '\n';

  // Side-by-side with the normal 130x130 problem for the comparison the
  // paper draws (greater clustering impact, more synchronization).
  auto big = sweep_clusters(
      [] { return make_app("ocean", ProblemScale::Default); }, 0);
  std::cout << render_figure("reference: ocean 130x130 (infinite caches)",
                             bars_from_sweep(big));
  return 0;
}
