#!/usr/bin/env python3
"""Minimal csim_serve client (docs/SERVICE.md) — Python 3 stdlib only.

Sends one newline-framed JSON request to a csim_serve AF_UNIX socket, prints
every response line as it arrives, and exits when the terminal line (`done`,
`error`, `pong`, or `bye`) lands. Exit status: 0 on success, 1 if the server
answered with an error line or the sweep had failed rows, 2 on usage or
connection problems.

    serve_client.py /tmp/csim.sock '{"app": "fft", "scale": "test"}'
    serve_client.py --wait 10 /tmp/csim.sock '{"type": "ping"}'
    echo '{"type": "shutdown"}' | serve_client.py /tmp/csim.sock
"""

import argparse
import json
import socket
import sys
import time

TERMINAL_TYPES = {"done", "error", "pong", "bye"}


def connect(path: str, wait_seconds: float) -> socket.socket:
    """Connects to the socket, optionally polling until the daemon is up."""
    deadline = time.monotonic() + wait_seconds
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as err:
            sock.close()
            if time.monotonic() >= deadline:
                raise SystemExit(f"serve_client: connect {path}: {err}")
            time.sleep(0.05)


def main() -> int:
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("--wait", type=float, default=0.0, metavar="SECONDS",
                        help="poll the socket up to SECONDS for the daemon")
    parser.add_argument("socket", help="csim_serve AF_UNIX socket path")
    parser.add_argument("request", nargs="?",
                        help="request JSON (default: first line of stdin)")
    args = parser.parse_args()

    request = args.request if args.request is not None else sys.stdin.readline()
    request = request.strip()
    if not request:
        print("serve_client: empty request", file=sys.stderr)
        return 2

    sock = connect(args.socket, args.wait)
    sock.sendall(request.encode() + b"\n")

    status = 0
    buf = b""
    done = False
    while not done:
        chunk = sock.recv(65536)
        if not chunk:
            if not buf:
                break
            print("serve_client: connection closed mid-line", file=sys.stderr)
            return 2
        buf += chunk
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            text = line.decode()
            print(text, flush=True)
            try:
                msg = json.loads(text)
            except json.JSONDecodeError:
                print("serve_client: unparseable response line",
                      file=sys.stderr)
                return 2
            if msg.get("type") == "error":
                status = 1
            if msg.get("type") == "done" and msg.get("failures", 0) > 0:
                status = 1
            if msg.get("type") in TERMINAL_TYPES:
                done = True
                break
    sock.close()
    return status


if __name__ == "__main__":
    sys.exit(main())
