// perf_check: the CI perf regression gate.
//
//   perf_check <baseline.json> <current.json> [--max-regression FRAC]
//
// Both files are perf_micro --json reports (BENCH_perf.json format). Prints
// a delta table of every baseline benchmark and exits nonzero when any
// benchmark's throughput fell below (1 - FRAC) of its baseline (default
// FRAC 0.25) or a baseline benchmark is missing from the current report.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>

#include "src/obs/perf_baseline.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> "
               "[--max-regression FRAC]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double max_regression = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const char* val = argv[++i];
      errno = 0;
      char* end = nullptr;
      max_regression = std::strtod(val, &end);
      if (end == val || *end != '\0' || errno == ERANGE ||
          max_regression < 0.0 || max_regression >= 1.0) {
        std::fprintf(stderr, "--max-regression: bad value '%s' (want [0,1))\n",
                     val);
        return 2;
      }
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    return usage(argv[0]);
  }

  try {
    const csim::obs::PerfReport baseline =
        csim::obs::load_perf_report_file(baseline_path);
    const csim::obs::PerfReport current =
        csim::obs::load_perf_report_file(current_path);
    const csim::obs::GateResult gate =
        csim::obs::check_perf(baseline, current, max_regression);
    csim::obs::write_delta_table(std::cout, gate, max_regression);
    return gate.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_check: %s\n", e.what());
    return 2;
  }
}
