// csim_serve: the sweep-service daemon (docs/SERVICE.md). Accepts newline-
// framed JSON sweep requests over a local AF_UNIX socket, schedules rows on
// the shared worker pool via run_sweep — which also owns the host thread
// budget: rows running the cluster-parallel engine bring their own worker
// threads, and the row pool is narrowed until pool x per-row threads fits
// the host (sweep_pool_width) — streams `row` response lines as rows
// complete, and memoizes results in a two-tier digest-keyed cache (memory in
// front of the write-ahead journal directory) so a repeated request is served
// without simulating.
//
//   csim_serve --socket /tmp/csim.sock --journal-dir jdir &
//   tools/serve_client.py /tmp/csim.sock '{"app":"fft","scale":"test"}'
//
// All protocol logic lives in src/report/service.{hpp,cpp}; this file is only
// the socket plumbing: bind/listen/accept, line framing, and signal-driven
// cleanup. No third-party dependencies.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/core/error.hpp"
#include "src/report/cli_args.hpp"
#include "src/report/service.hpp"

namespace {

using namespace csim;

// One request line may carry a full sweep spec but never megabytes; a client
// that streams garbage without a newline is cut off at this cap.
constexpr std::size_t kMaxLineBytes = 1u << 20;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: csim_serve --socket PATH [options]\n"
      "  --socket PATH       AF_UNIX socket path to listen on (required;\n"
      "                      a stale socket file at PATH is replaced)\n"
      "  --journal-dir DIR   back the result cache with the write-ahead\n"
      "                      journal in DIR (rows persist across restarts)\n"
      "  --shard k/N         serve only the rows whose config digest maps\n"
      "                      to shard k of N (multi-host deployments)\n"
      "  --cache-max N       keep at most N results in the in-memory cache\n"
      "                      (LRU eviction; 0 = unbounded, the default —\n"
      "                      with --journal-dir evicted rows still cost\n"
      "                      only one file probe)\n"
      "  --once              exit after the first connection closes\n");
}

/// Writes the whole buffer, retrying on short writes and EINTR. Returns
/// false on a dead peer (EPIPE with SIGPIPE ignored) or other write error.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Serves one connection: reads newline-framed requests, hands each to the
/// session, writes the emitted response lines back. Returns true if the
/// session asked the daemon to shut down.
bool serve_connection(int fd, serve::ServiceSession& session) {
  std::string buf;
  bool peer_dead = false;
  bool shutdown = false;
  const serve::ServiceSession::Emit emit = [&](const std::string& line) {
    if (peer_dead) return;  // keep simulating; just stop writing
    std::string framed = line;
    framed.push_back('\n');
    if (!write_all(fd, framed.data(), framed.size())) {
      peer_dead = true;
      std::fprintf(stderr, "csim_serve: client went away mid-response\n");
    }
  };
  char chunk[4096];
  while (!g_stop && !shutdown) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "csim_serve: read: %s\n", std::strerror(errno));
      break;
    }
    if (n == 0) break;  // client closed its end
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      const std::string_view line(buf.data() + start, nl - start);
      if (session.handle_line(line, emit) ==
          serve::LineAction::Shutdown) {
        shutdown = true;
        break;
      }
      start = nl + 1;
    }
    buf.erase(0, start);
    if (buf.size() > kMaxLineBytes) {
      emit("{\"type\": \"error\", \"error\": \"request line exceeds 1 MiB\"}");
      break;
    }
  }
  return shutdown;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string journal_dir;
  serve::ShardSpec shard;
  std::size_t cache_max = 0;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (a == "--socket") {
        socket_path = next();
      } else if (a == "--journal-dir") {
        journal_dir = next();
      } else if (a == "--shard") {
        shard = serve::parse_shard(next());
      } else if (a == "--cache-max") {
        cache_max = cli::parse_u64(a, next());
      } else if (a == "--once") {
        once = true;
      } else {
        usage();
        return a == "--help" || a == "-h" ? 0 : 2;
      }
    } catch (const ConfigError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    usage();
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "--socket: path too long (max %zu bytes)\n",
                 sizeof addr.sun_path - 1);
    return 2;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // A dead peer must surface as a write error, not kill the daemon; SIGINT /
  // SIGTERM stop the accept loop so the socket file is cleaned up.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "csim_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(socket_path.c_str());  // replace a stale socket from a past run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 8) < 0) {
    std::fprintf(stderr, "csim_serve: bind/listen %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }

  serve::ServiceConfig cfg;
  cfg.journal_dir = journal_dir;
  cfg.shard = shard;
  cfg.cache_max = cache_max;
  serve::ServiceSession session(cfg);
  std::fprintf(stderr, "csim_serve: listening on %s (journal: %s, shard %s)\n",
               socket_path.c_str(),
               journal_dir.empty() ? "<memory only>" : journal_dir.c_str(),
               shard.label().c_str());

  int exit_code = 0;
  while (!g_stop) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;  // a signal; the loop condition decides
      std::fprintf(stderr, "csim_serve: accept: %s\n", std::strerror(errno));
      exit_code = 1;
      break;
    }
    const bool shutdown = serve_connection(conn, session);
    ::close(conn);
    if (shutdown || once) break;
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  std::fprintf(stderr, "csim_serve: exiting\n");
  return exit_code;
}
