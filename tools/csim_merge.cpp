// csim_merge: recombine per-shard sweep artifacts into the CSV an unsharded
// run would have produced, bit for bit (docs/SERVICE.md).
//
//   csim_cli --app fft --shard 0/3 --shard-out s0 --csv > /dev/null
//   csim_cli --app fft --shard 1/3 --shard-out s1 --csv > /dev/null
//   csim_cli --app fft --shard 2/3 --shard-out s2 --csv > /dev/null
//   csim_merge --out merged.csv s0.json s1.json s2.json
//
// Each SHARD.json ("csim.shard/1") names its CSV artifact (resolved relative
// to the JSON file) and maps every row back to its global sweep index and
// config digest. The merge refuses to produce output unless the shards are
// mutually disjoint, collectively complete, agree on their schema, and every
// digest sits in the shard the partition function assigns it to.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/atomic_file.hpp"
#include "src/core/error.hpp"
#include "src/report/service.hpp"

namespace {

using namespace csim;

void usage() {
  std::fprintf(stderr,
               "usage: csim_merge --out FILE SHARD.json [SHARD.json...]\n"
               "  --out FILE   where to write the merged CSV (required)\n");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("csim_merge: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> manifest_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out requires a value\n");
        usage();
        return 2;
      }
      out_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a.size() >= 2 && a.substr(0, 2) == "--") {
      usage();
      return 2;
    } else {
      manifest_paths.push_back(a);
    }
  }
  if (out_path.empty() || manifest_paths.empty()) {
    usage();
    return 2;
  }

  try {
    std::vector<serve::ShardManifest> shards;
    std::vector<std::string> csvs;
    for (const std::string& path : manifest_paths) {
      serve::ShardManifest m = serve::parse_shard_manifest(read_file(path),
                                                           path);
      // The CSV artifact travels next to its manifest; an absolute csv_path
      // (unusual, but valid) is used as-is.
      const std::filesystem::path csv =
          std::filesystem::path(path).parent_path() / m.csv_path;
      csvs.push_back(read_file(csv.string()));
      shards.push_back(std::move(m));
    }
    const std::string merged = serve::merge_shard_csvs(shards, csvs);
    atomic_write_file(out_path, merged);
    std::size_t rows = 0;
    for (const serve::ShardManifest& m : shards) {
      for (const serve::ShardRowRef& r : m.rows) rows += r.csv_line >= 0;
    }
    std::printf("csim_merge: %zu shards, %zu rows -> %s\n", shards.size(),
                rows, out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "csim_merge: %s\n", e.what());
    return 1;
  }
  return 0;
}
