file(REMOVE_RECURSE
  "libclustersim.a"
)
