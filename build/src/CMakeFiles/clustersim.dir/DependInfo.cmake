
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bank_conflict.cpp" "src/CMakeFiles/clustersim.dir/analysis/bank_conflict.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/analysis/bank_conflict.cpp.o.d"
  "/root/repo/src/analysis/latency_expansion.cpp" "src/CMakeFiles/clustersim.dir/analysis/latency_expansion.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/analysis/latency_expansion.cpp.o.d"
  "/root/repo/src/analysis/shared_cache_cost.cpp" "src/CMakeFiles/clustersim.dir/analysis/shared_cache_cost.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/analysis/shared_cache_cost.cpp.o.d"
  "/root/repo/src/analysis/working_set.cpp" "src/CMakeFiles/clustersim.dir/analysis/working_set.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/analysis/working_set.cpp.o.d"
  "/root/repo/src/apps/app.cpp" "src/CMakeFiles/clustersim.dir/apps/app.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/app.cpp.o.d"
  "/root/repo/src/apps/barnes.cpp" "src/CMakeFiles/clustersim.dir/apps/barnes.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/barnes.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/CMakeFiles/clustersim.dir/apps/fft.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/fft.cpp.o.d"
  "/root/repo/src/apps/fmm.cpp" "src/CMakeFiles/clustersim.dir/apps/fmm.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/fmm.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/CMakeFiles/clustersim.dir/apps/lu.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/lu.cpp.o.d"
  "/root/repo/src/apps/mp3d.cpp" "src/CMakeFiles/clustersim.dir/apps/mp3d.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/mp3d.cpp.o.d"
  "/root/repo/src/apps/ocean.cpp" "src/CMakeFiles/clustersim.dir/apps/ocean.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/ocean.cpp.o.d"
  "/root/repo/src/apps/octree.cpp" "src/CMakeFiles/clustersim.dir/apps/octree.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/octree.cpp.o.d"
  "/root/repo/src/apps/partition.cpp" "src/CMakeFiles/clustersim.dir/apps/partition.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/partition.cpp.o.d"
  "/root/repo/src/apps/prng.cpp" "src/CMakeFiles/clustersim.dir/apps/prng.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/prng.cpp.o.d"
  "/root/repo/src/apps/radix.cpp" "src/CMakeFiles/clustersim.dir/apps/radix.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/radix.cpp.o.d"
  "/root/repo/src/apps/raytrace.cpp" "src/CMakeFiles/clustersim.dir/apps/raytrace.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/raytrace.cpp.o.d"
  "/root/repo/src/apps/volrend.cpp" "src/CMakeFiles/clustersim.dir/apps/volrend.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/apps/volrend.cpp.o.d"
  "/root/repo/src/core/event_queue.cpp" "src/CMakeFiles/clustersim.dir/core/event_queue.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/core/event_queue.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/CMakeFiles/clustersim.dir/core/machine.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/core/machine.cpp.o.d"
  "/root/repo/src/core/processor.cpp" "src/CMakeFiles/clustersim.dir/core/processor.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/core/processor.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/clustersim.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/core/simulator.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/clustersim.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/core/stats.cpp.o.d"
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/clustersim.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/clustersim.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/clustered_memory.cpp" "src/CMakeFiles/clustersim.dir/mem/clustered_memory.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/clustered_memory.cpp.o.d"
  "/root/repo/src/mem/coherence.cpp" "src/CMakeFiles/clustersim.dir/mem/coherence.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/coherence.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/CMakeFiles/clustersim.dir/mem/directory.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/directory.cpp.o.d"
  "/root/repo/src/mem/latency.cpp" "src/CMakeFiles/clustersim.dir/mem/latency.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/latency.cpp.o.d"
  "/root/repo/src/mem/mshr.cpp" "src/CMakeFiles/clustersim.dir/mem/mshr.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/mem/mshr.cpp.o.d"
  "/root/repo/src/report/experiment.cpp" "src/CMakeFiles/clustersim.dir/report/experiment.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/report/experiment.cpp.o.d"
  "/root/repo/src/report/figures.cpp" "src/CMakeFiles/clustersim.dir/report/figures.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/report/figures.cpp.o.d"
  "/root/repo/src/report/gnuplot.cpp" "src/CMakeFiles/clustersim.dir/report/gnuplot.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/report/gnuplot.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/clustersim.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/report/table.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/clustersim.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/clustersim.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
