# Empty compiler generated dependencies file for clustersim.
# This may be replaced when dependencies are built.
