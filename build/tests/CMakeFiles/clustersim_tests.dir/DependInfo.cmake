
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/analysis_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/analysis/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/analysis/analysis_test.cpp.o.d"
  "/root/repo/tests/analysis/working_set_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/analysis/working_set_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/analysis/working_set_test.cpp.o.d"
  "/root/repo/tests/apps/app_behavior_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/apps/app_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/apps/app_behavior_test.cpp.o.d"
  "/root/repo/tests/apps/app_correctness_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/apps/app_correctness_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/apps/app_correctness_test.cpp.o.d"
  "/root/repo/tests/apps/apps_smoke_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/apps/apps_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/apps/apps_smoke_test.cpp.o.d"
  "/root/repo/tests/core/event_queue_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/core/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/core/event_queue_test.cpp.o.d"
  "/root/repo/tests/core/hit_cost_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/core/hit_cost_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/core/hit_cost_test.cpp.o.d"
  "/root/repo/tests/core/machine_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/core/machine_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/core/machine_test.cpp.o.d"
  "/root/repo/tests/core/processor_sync_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/core/processor_sync_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/core/processor_sync_test.cpp.o.d"
  "/root/repo/tests/core/sim_task_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/core/sim_task_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/core/sim_task_test.cpp.o.d"
  "/root/repo/tests/integration/clustering_properties_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/integration/clustering_properties_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/integration/clustering_properties_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/org_properties_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/integration/org_properties_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/integration/org_properties_test.cpp.o.d"
  "/root/repo/tests/integration/paper_scale_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/integration/paper_scale_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/integration/paper_scale_test.cpp.o.d"
  "/root/repo/tests/mem/address_space_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/mem/address_space_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/mem/address_space_test.cpp.o.d"
  "/root/repo/tests/mem/cache_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/mem/cache_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/mem/cache_test.cpp.o.d"
  "/root/repo/tests/mem/clustered_memory_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/mem/clustered_memory_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/mem/clustered_memory_test.cpp.o.d"
  "/root/repo/tests/mem/coherence_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/mem/coherence_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/mem/coherence_test.cpp.o.d"
  "/root/repo/tests/mem/directory_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/mem/directory_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/mem/directory_test.cpp.o.d"
  "/root/repo/tests/report/gnuplot_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/report/gnuplot_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/report/gnuplot_test.cpp.o.d"
  "/root/repo/tests/report/parallel_sweep_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/report/parallel_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/report/parallel_sweep_test.cpp.o.d"
  "/root/repo/tests/report/report_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/report/report_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/report/report_test.cpp.o.d"
  "/root/repo/tests/trace/trace_test.cpp" "tests/CMakeFiles/clustersim_tests.dir/trace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/clustersim_tests.dir/trace/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clustersim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
