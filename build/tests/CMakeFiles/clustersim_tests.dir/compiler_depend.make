# Empty compiler generated dependencies file for clustersim_tests.
# This may be replaced when dependencies are built.
