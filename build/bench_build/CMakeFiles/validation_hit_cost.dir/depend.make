# Empty dependencies file for validation_hit_cost.
# This may be replaced when dependencies are built.
