file(REMOVE_RECURSE
  "../bench/validation_hit_cost"
  "../bench/validation_hit_cost.pdb"
  "CMakeFiles/validation_hit_cost.dir/validation_hit_cost.cpp.o"
  "CMakeFiles/validation_hit_cost.dir/validation_hit_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_hit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
