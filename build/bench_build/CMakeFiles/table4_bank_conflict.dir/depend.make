# Empty dependencies file for table4_bank_conflict.
# This may be replaced when dependencies are built.
