file(REMOVE_RECURSE
  "../bench/table4_bank_conflict"
  "../bench/table4_bank_conflict.pdb"
  "CMakeFiles/table4_bank_conflict.dir/table4_bank_conflict.cpp.o"
  "CMakeFiles/table4_bank_conflict.dir/table4_bank_conflict.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bank_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
