# Empty dependencies file for fig2_infinite.
# This may be replaced when dependencies are built.
