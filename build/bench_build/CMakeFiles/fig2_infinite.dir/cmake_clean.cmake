file(REMOVE_RECURSE
  "../bench/fig2_infinite"
  "../bench/fig2_infinite.pdb"
  "CMakeFiles/fig2_infinite.dir/fig2_infinite.cpp.o"
  "CMakeFiles/fig2_infinite.dir/fig2_infinite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
