file(REMOVE_RECURSE
  "../bench/scaling_procs"
  "../bench/scaling_procs.pdb"
  "CMakeFiles/scaling_procs.dir/scaling_procs.cpp.o"
  "CMakeFiles/scaling_procs.dir/scaling_procs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
