# Empty dependencies file for scaling_procs.
# This may be replaced when dependencies are built.
