# Empty compiler generated dependencies file for fig6_barnes.
# This may be replaced when dependencies are built.
