file(REMOVE_RECURSE
  "../bench/fig6_barnes"
  "../bench/fig6_barnes.pdb"
  "CMakeFiles/fig6_barnes.dir/fig6_barnes.cpp.o"
  "CMakeFiles/fig6_barnes.dir/fig6_barnes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_barnes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
