file(REMOVE_RECURSE
  "../bench/fig3_ocean_small"
  "../bench/fig3_ocean_small.pdb"
  "CMakeFiles/fig3_ocean_small.dir/fig3_ocean_small.cpp.o"
  "CMakeFiles/fig3_ocean_small.dir/fig3_ocean_small.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ocean_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
