# Empty dependencies file for fig3_ocean_small.
# This may be replaced when dependencies are built.
