file(REMOVE_RECURSE
  "../bench/fig4_raytrace"
  "../bench/fig4_raytrace.pdb"
  "CMakeFiles/fig4_raytrace.dir/fig4_raytrace.cpp.o"
  "CMakeFiles/fig4_raytrace.dir/fig4_raytrace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_raytrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
