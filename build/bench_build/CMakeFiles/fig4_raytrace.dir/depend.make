# Empty dependencies file for fig4_raytrace.
# This may be replaced when dependencies are built.
