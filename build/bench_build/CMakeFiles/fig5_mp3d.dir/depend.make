# Empty dependencies file for fig5_mp3d.
# This may be replaced when dependencies are built.
