file(REMOVE_RECURSE
  "../bench/fig5_mp3d"
  "../bench/fig5_mp3d.pdb"
  "CMakeFiles/fig5_mp3d.dir/fig5_mp3d.cpp.o"
  "CMakeFiles/fig5_mp3d.dir/fig5_mp3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mp3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
