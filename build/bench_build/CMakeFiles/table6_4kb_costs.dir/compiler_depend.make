# Empty compiler generated dependencies file for table6_4kb_costs.
# This may be replaced when dependencies are built.
