file(REMOVE_RECURSE
  "../bench/table6_4kb_costs"
  "../bench/table6_4kb_costs.pdb"
  "CMakeFiles/table6_4kb_costs.dir/table6_4kb_costs.cpp.o"
  "CMakeFiles/table6_4kb_costs.dir/table6_4kb_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_4kb_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
