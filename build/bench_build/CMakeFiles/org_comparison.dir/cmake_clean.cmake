file(REMOVE_RECURSE
  "../bench/org_comparison"
  "../bench/org_comparison.pdb"
  "CMakeFiles/org_comparison.dir/org_comparison.cpp.o"
  "CMakeFiles/org_comparison.dir/org_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/org_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
