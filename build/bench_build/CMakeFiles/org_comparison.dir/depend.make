# Empty dependencies file for org_comparison.
# This may be replaced when dependencies are built.
