file(REMOVE_RECURSE
  "../bench/ablation_linesize"
  "../bench/ablation_linesize.pdb"
  "CMakeFiles/ablation_linesize.dir/ablation_linesize.cpp.o"
  "CMakeFiles/ablation_linesize.dir/ablation_linesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
