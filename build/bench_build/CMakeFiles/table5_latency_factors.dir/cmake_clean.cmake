file(REMOVE_RECURSE
  "../bench/table5_latency_factors"
  "../bench/table5_latency_factors.pdb"
  "CMakeFiles/table5_latency_factors.dir/table5_latency_factors.cpp.o"
  "CMakeFiles/table5_latency_factors.dir/table5_latency_factors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_latency_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
