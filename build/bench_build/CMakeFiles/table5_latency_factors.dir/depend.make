# Empty dependencies file for table5_latency_factors.
# This may be replaced when dependencies are built.
