# Empty dependencies file for table7_inf_costs.
# This may be replaced when dependencies are built.
