file(REMOVE_RECURSE
  "../bench/table7_inf_costs"
  "../bench/table7_inf_costs.pdb"
  "CMakeFiles/table7_inf_costs.dir/table7_inf_costs.cpp.o"
  "CMakeFiles/table7_inf_costs.dir/table7_inf_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_inf_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
