file(REMOVE_RECURSE
  "../bench/ablation_associativity"
  "../bench/ablation_associativity.pdb"
  "CMakeFiles/ablation_associativity.dir/ablation_associativity.cpp.o"
  "CMakeFiles/ablation_associativity.dir/ablation_associativity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
