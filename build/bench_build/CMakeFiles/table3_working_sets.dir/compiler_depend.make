# Empty compiler generated dependencies file for table3_working_sets.
# This may be replaced when dependencies are built.
