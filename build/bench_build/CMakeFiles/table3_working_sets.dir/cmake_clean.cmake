file(REMOVE_RECURSE
  "../bench/table3_working_sets"
  "../bench/table3_working_sets.pdb"
  "CMakeFiles/table3_working_sets.dir/table3_working_sets.cpp.o"
  "CMakeFiles/table3_working_sets.dir/table3_working_sets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_working_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
