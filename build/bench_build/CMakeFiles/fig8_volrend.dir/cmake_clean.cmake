file(REMOVE_RECURSE
  "../bench/fig8_volrend"
  "../bench/fig8_volrend.pdb"
  "CMakeFiles/fig8_volrend.dir/fig8_volrend.cpp.o"
  "CMakeFiles/fig8_volrend.dir/fig8_volrend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_volrend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
