# Empty dependencies file for fig8_volrend.
# This may be replaced when dependencies are built.
