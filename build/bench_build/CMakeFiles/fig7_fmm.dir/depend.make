# Empty dependencies file for fig7_fmm.
# This may be replaced when dependencies are built.
