file(REMOVE_RECURSE
  "../bench/fig7_fmm"
  "../bench/fig7_fmm.pdb"
  "CMakeFiles/fig7_fmm.dir/fig7_fmm.cpp.o"
  "CMakeFiles/fig7_fmm.dir/fig7_fmm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
