# Empty compiler generated dependencies file for ocean_scaling.
# This may be replaced when dependencies are built.
