file(REMOVE_RECURSE
  "CMakeFiles/ocean_scaling.dir/ocean_scaling.cpp.o"
  "CMakeFiles/ocean_scaling.dir/ocean_scaling.cpp.o.d"
  "ocean_scaling"
  "ocean_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
