file(REMOVE_RECURSE
  "CMakeFiles/csim_cli.dir/csim_cli.cpp.o"
  "CMakeFiles/csim_cli.dir/csim_cli.cpp.o.d"
  "csim_cli"
  "csim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
