# Empty compiler generated dependencies file for csim_cli.
# This may be replaced when dependencies are built.
