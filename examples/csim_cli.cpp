// csim_cli: run any workload on any machine configuration from the command
// line, with figure or CSV output — the "driver" a downstream user scripts
// experiments with.
//
//   csim_cli --app ocean --ppc 1,2,4,8 --cache 16 --csv
//   csim_cli --app barnes --scale paper --style memory --quantum 1
//   csim_cli --list
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "src/analysis/contention_check.hpp"
#include "src/apps/app.hpp"
#include "src/core/atomic_file.hpp"
#include "src/core/error.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/cli_args.hpp"
#include "src/report/experiment.hpp"
#include "src/report/figures.hpp"
#include "src/report/gnuplot.hpp"
#include "src/report/service.hpp"

namespace {

using namespace csim;

std::vector<unsigned> parse_list(const std::string& s) {
  std::vector<unsigned> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  return out;
}

void usage() {
  std::printf(
      "usage: csim_cli [options]\n"
      "  --app NAME        workload (see --list); default: ocean\n"
      "  --list            list workloads and exit\n"
      "  --scale S         test | default | paper (default: default)\n"
      "  --procs N         processors (default 64)\n"
      "  --ppc A,B,...     cluster sizes to sweep (default 1,2,4,8)\n"
      "  --cache KB        per-processor cache in KB; 0 = infinite (default 0)\n"
      "  --assoc N         set associativity; 0 = fully associative\n"
      "  --line B          cache line bytes (default 64)\n"
      "  --style S         cache | memory (cluster organization)\n"
      "  --quantum N       run-ahead quantum in cycles (default 32)\n"
      "  --hit-costs       model shared-cache hit costs in-simulation\n"
      "  --csv             emit CSV instead of the stacked-bar figure\n"
      "  --gnuplot BASE    also write BASE.dat/BASE.gp for gnuplot\n"
      "%s",
      cli::ObsArgs::usage());
}

}  // namespace

int main(int argc, char** argv) {
  // All row-building flags land in the shared RunSpec (src/report/run_spec
  // .hpp) — the same struct the service protocol parses its requests into.
  RunSpec spec;
  bool csv = false;
  std::string gnuplot_base;
  cli::ObsArgs obs_args;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (a == "--app") {
        spec.app = next();
      } else if (a == "--list") {
        for (const auto& f : app_registry()) {
          std::printf("%-10s %s\n", f.name.c_str(), f.description.c_str());
        }
        return 0;
      } else if (a == "--scale") {
        const std::string s = next();
        spec.scale = s == "paper" ? ProblemScale::Paper
                     : s == "test" ? ProblemScale::Test
                                   : ProblemScale::Default;
      } else if (a == "--procs") {
        spec.procs = static_cast<unsigned>(std::stoul(next()));
      } else if (a == "--ppc") {
        spec.ppcs = parse_list(next());
      } else if (a == "--cache") {
        spec.cache_kb = std::stoul(next());
      } else if (a == "--assoc") {
        spec.assoc = static_cast<unsigned>(std::stoul(next()));
      } else if (a == "--line") {
        spec.line_bytes = static_cast<unsigned>(std::stoul(next()));
      } else if (a == "--style") {
        spec.style = next() == "memory" ? ClusterStyle::SharedMemory
                                        : ClusterStyle::SharedCache;
      } else if (a == "--quantum") {
        spec.quantum = std::stoul(next());
      } else if (a == "--hit-costs") {
        spec.hit_costs = true;
      } else if (a == "--csv") {
        csv = true;
      } else if (a == "--gnuplot") {
        gnuplot_base = next();
      } else if (obs_args.consume(argc, argv, i)) {
        // shared observability / contention flags (src/report/cli_args.hpp)
      } else {
        usage();
        return a == "--help" || a == "-h" ? 0 : 2;
      }
    } catch (const ConfigError& e) {  // checked shared-flag parsing
      std::fprintf(stderr, "%s\n", e.what());
      usage();
      return 2;
    } catch (const std::exception&) {  // e.g. std::stoul on a non-number
      std::fprintf(stderr, "%s: invalid value\n", a.c_str());
      usage();
      return 2;
    }
  }

  try {
    // One builder path for every row: RunSpec::configs() is the same
    // assembly the service protocol uses, so a CLI invocation and a service
    // request with the same fields produce identical MachineSpec rows.
    spec.contention = obs_args.contention;
    SweepRequest req;
    req.make_app = [&] { return make_app(spec.app, spec.scale); };
    req.configs = spec.configs();
    // Crash-safety policy (journal / resume / deadline / retries / faults).
    // Applied before shard selection: --sample rewrites the row specs, and
    // the shard partition must key on the digests run_sweep will journal.
    obs_args.apply(req);
    // Shard selection (--shard k/N): keep only the rows whose config digest
    // maps to this shard; every host given the same sweep agrees on the
    // split without coordination (docs/SERVICE.md).
    serve::ShardSelection sel;
    if (obs_args.shard_set) {
      const std::unique_ptr<Program> probe = make_app(spec.app, spec.scale);
      sel = serve::select_shard(req.configs, probe->name(), probe->scale(),
                                obs_args.shard);
      std::vector<MachineSpec> kept;
      kept.reserve(sel.indices.size());
      for (std::size_t i : sel.indices) kept.push_back(req.configs[i]);
      req.configs = std::move(kept);
    }
    // Observability (src/obs): one RunObserver per sweep row, each writing
    // its artifacts (trace JSON / metrics CSV+JSON) when its row completes.
    req.make_observer = obs_args.observer_factory(req.configs.size());
    const bool policy_active = !req.policy.journal_dir.empty() ||
                               req.policy.faults != nullptr ||
                               req.policy.row_deadline_seconds > 0 ||
                               req.policy.max_retries > 0;

    // run_sweep degrades gracefully: a failing configuration becomes an
    // ok == false row (rendered below) instead of aborting the sweep.
    const SweepResult sweep = run_sweep(req);
    if (!obs_args.manifest_out.empty()) {
      // Manifests include failed rows (error kind instead of statistics).
      // A sharded run writes the /5 schema (shard spec + cache hits); with
      // a crash-safety policy engaged, the /4 schema adds per-row
      // outcomes; otherwise the /3 document is byte-identical to before.
      if (obs_args.shard_set) {
        obs::SweepProvenance prov;
        prov.shard_index = obs_args.shard.index;
        prov.shard_count = obs_args.shard.count;
        prov.rows_total = sel.rows_total;
        for (const RowOutcome& o : sweep.outcomes) {
          if (o.from_journal) ++prov.cache_hits;
        }
        obs::write_run_manifest_file(obs_args.manifest_out, "csim_cli", sweep,
                                     prov);
      } else if (policy_active) {
        obs::write_run_manifest_file(obs_args.manifest_out, "csim_cli", sweep);
      } else {
        obs::write_run_manifest_file(obs_args.manifest_out, "csim_cli",
                                     sweep.rows);
      }
      std::printf("wrote manifest %s (sweep digest %s)\n",
                  obs_args.manifest_out.c_str(),
                  obs::digest_hex(obs::sweep_digest(sweep.rows)).c_str());
    }
    const std::size_t failures = write_failures(std::cerr, sweep.rows);
    if (policy_active) write_outcomes(std::cerr, sweep);
    if (!obs_args.shard_out.empty()) {
      // Shard-merge artifacts: BASE.csv holds this shard's rows in the plain
      // row schema (failures skipped, like write_csv everywhere), BASE.json
      // maps them back to their global sweep indices so csim_merge can
      // reassemble the unsharded CSV bit-exactly.
      const std::string csv_path = obs_args.shard_out + ".csv";
      atomic_write_file(csv_path, [&](std::ostream& os) {
        write_csv(os, sweep.rows);
      });
      serve::ShardManifest m;
      m.shard = obs_args.shard;
      m.rows_total = sel.rows_total;
      m.csv_path = std::filesystem::path(csv_path).filename().string();
      long csv_line = 0;
      for (std::size_t j = 0; j < sweep.rows.size(); ++j) {
        serve::ShardRowRef ref;
        ref.index = sel.indices[j];
        ref.digest = sel.digests[j];
        ref.csv_line = sweep.rows[j].ok ? csv_line++ : -1;
        m.rows.push_back(ref);
      }
      atomic_write_file(obs_args.shard_out + ".json",
                        serve::write_shard_manifest(m));
      std::printf("wrote shard %s artifacts %s.csv and %s.json\n",
                  obs_args.shard.label().c_str(), obs_args.shard_out.c_str(),
                  obs_args.shard_out.c_str());
    }
    std::vector<SimResult> results = sweep.rows;
    std::erase_if(results, [](const SimResult& r) { return !r.ok; });
    if (results.empty()) {
      // An empty shard of a sharded sweep is a success (its artifacts above
      // are required for the merge); an all-failed sweep is not.
      return obs_args.shard_set && sweep.rows.empty() ? 0 : 1;
    }
    if (!gnuplot_base.empty()) {
      write_gnuplot_figure(gnuplot_base, spec.app, bars_from_sweep(results));
      std::printf("wrote %s.dat and %s.gp\n", gnuplot_base.c_str(),
                  gnuplot_base.c_str());
    }
    if (csv) {
      if (policy_active) {
        write_csv(std::cout, sweep);  // adds status,attempts columns
      } else {
        write_csv(std::cout, results);
      }
    } else {
      std::cout << render_figure(
          spec.app + " (" + std::string(to_string(spec.scale)) + ", " +
              (spec.cache_kb ? std::to_string(spec.cache_kb) + "KB" : "inf") +
              ", " +
              (spec.style == ClusterStyle::SharedMemory ? "shared-memory"
                                                   : "shared-cache") +
              ")",
          bars_from_sweep(results));
    }
    if (obs_args.contention.enabled && !csv) {
      // Section 6 sanity table: simulated bank-conflict rate vs the paper's
      // closed form for every shared-cache row of the sweep.
      const auto check = contention_check(results);
      if (!check.empty()) write_contention_check(std::cout, check);
    }
    if (failures != 0) return 1;  // partial results were still emitted
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
