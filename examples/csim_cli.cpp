// csim_cli: run any workload on any machine configuration from the command
// line, with figure or CSV output — the "driver" a downstream user scripts
// experiments with.
//
//   csim_cli --app ocean --ppc 1,2,4,8 --cache 16 --csv
//   csim_cli --app barnes --scale paper --style memory --quantum 1
//   csim_cli --list
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/run_observer.hpp"
#include "src/report/experiment.hpp"
#include "src/report/figures.hpp"
#include "src/report/gnuplot.hpp"

namespace {

using namespace csim;

std::vector<unsigned> parse_list(const std::string& s) {
  std::vector<unsigned> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(static_cast<unsigned>(std::stoul(item)));
  }
  return out;
}

void usage() {
  std::printf(
      "usage: csim_cli [options]\n"
      "  --app NAME        workload (see --list); default: ocean\n"
      "  --list            list workloads and exit\n"
      "  --scale S         test | default | paper (default: default)\n"
      "  --procs N         processors (default 64)\n"
      "  --ppc A,B,...     cluster sizes to sweep (default 1,2,4,8)\n"
      "  --cache KB        per-processor cache in KB; 0 = infinite (default 0)\n"
      "  --assoc N         set associativity; 0 = fully associative\n"
      "  --line B          cache line bytes (default 64)\n"
      "  --style S         cache | memory (cluster organization)\n"
      "  --quantum N       run-ahead quantum in cycles (default 32)\n"
      "  --hit-costs       model shared-cache hit costs in-simulation\n"
      "  --csv             emit CSV instead of the stacked-bar figure\n"
      "  --gnuplot BASE    also write BASE.dat/BASE.gp for gnuplot\n"
      "  --trace-out FILE      write a Chrome trace-event timeline per row\n"
      "                        (multi-row sweeps write FILE_ppcN variants)\n"
      "  --metrics-interval N  sample interval metrics every N cycles\n"
      "  --metrics-out BASE    interval metrics path base (default: metrics;\n"
      "                        writes BASE[.ppcN].csv and .json)\n"
      "  --manifest FILE       write a run manifest (config, git, digests)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string app = "ocean";
  ProblemScale scale = ProblemScale::Default;
  unsigned procs = 64;
  std::vector<unsigned> ppcs = {1, 2, 4, 8};
  std::size_t cache_kb = 0;
  unsigned assoc = 0;
  unsigned line = 64;
  ClusterStyle style = ClusterStyle::SharedCache;
  Cycles quantum = 32;
  bool hit_costs = false;
  bool csv = false;
  std::string gnuplot_base;
  std::string trace_out;
  Cycles metrics_interval = 0;
  std::string metrics_out = "metrics";
  std::string manifest_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (a == "--app") {
        app = next();
      } else if (a == "--list") {
        for (const auto& f : app_registry()) {
          std::printf("%-10s %s\n", f.name.c_str(), f.description.c_str());
        }
        return 0;
      } else if (a == "--scale") {
        const std::string s = next();
        scale = s == "paper" ? ProblemScale::Paper
                : s == "test" ? ProblemScale::Test
                              : ProblemScale::Default;
      } else if (a == "--procs") {
        procs = static_cast<unsigned>(std::stoul(next()));
      } else if (a == "--ppc") {
        ppcs = parse_list(next());
      } else if (a == "--cache") {
        cache_kb = std::stoul(next());
      } else if (a == "--assoc") {
        assoc = static_cast<unsigned>(std::stoul(next()));
      } else if (a == "--line") {
        line = static_cast<unsigned>(std::stoul(next()));
      } else if (a == "--style") {
        style = next() == "memory" ? ClusterStyle::SharedMemory
                                   : ClusterStyle::SharedCache;
      } else if (a == "--quantum") {
        quantum = std::stoul(next());
      } else if (a == "--hit-costs") {
        hit_costs = true;
      } else if (a == "--csv") {
        csv = true;
      } else if (a == "--gnuplot") {
        gnuplot_base = next();
      } else if (a == "--trace-out") {
        trace_out = next();
      } else if (a == "--metrics-interval") {
        metrics_interval = std::stoul(next());
        if (metrics_interval == 0) {
          std::fprintf(stderr, "--metrics-interval must be > 0\n");
          return 2;
        }
      } else if (a == "--metrics-out") {
        metrics_out = next();
      } else if (a == "--manifest") {
        manifest_out = next();
      } else {
        usage();
        return a == "--help" || a == "-h" ? 0 : 2;
      }
    } catch (const std::exception&) {  // e.g. std::stoul on a non-number
      std::fprintf(stderr, "%s: invalid value\n", a.c_str());
      usage();
      return 2;
    }
  }

  try {
    std::vector<MachineConfig> configs;
    for (unsigned ppc : ppcs) {
      MachineConfig cfg;
      cfg.num_procs = procs;
      cfg.procs_per_cluster = ppc;
      cfg.cache.per_proc_bytes = cache_kb * 1024;
      cfg.cache.associativity = assoc;
      cfg.cache.line_bytes = line;
      cfg.cluster_style = style;
      cfg.runahead_quantum = quantum;
      cfg.model_shared_hit_costs = hit_costs;
      configs.push_back(cfg);
    }
    // Observability (src/obs): one RunObserver per sweep row, each writing
    // its artifacts (trace JSON / metrics CSV+JSON) when its row completes.
    ObserverFactory make_observer;
    if (!trace_out.empty() || metrics_interval != 0) {
      const std::size_t rows = configs.size();
      make_observer = [&, rows](const MachineConfig& cfg, std::size_t)
          -> std::unique_ptr<Observer> {
        auto ro = std::make_unique<obs::RunObserver>();
        if (!trace_out.empty()) {
          ro->enable_trace(
              obs::row_path(trace_out, cfg.procs_per_cluster, rows));
        }
        if (metrics_interval != 0) {
          const std::string base =
              obs::row_path(metrics_out, cfg.procs_per_cluster, rows);
          ro->enable_metrics(metrics_interval, base + ".csv", base + ".json");
        }
        return ro;
      };
    }

    // run_configs degrades gracefully: a failing configuration becomes an
    // ok == false row (rendered below) instead of aborting the sweep.
    std::vector<SimResult> results =
        run_configs([&] { return make_app(app, scale); }, configs,
                    make_observer);
    if (!manifest_out.empty()) {
      // Manifests include failed rows (error kind instead of statistics).
      obs::write_run_manifest_file(manifest_out, "csim_cli", results);
      std::printf("wrote manifest %s (sweep digest %s)\n",
                  manifest_out.c_str(),
                  obs::digest_hex(obs::sweep_digest(results)).c_str());
    }
    const std::size_t failures = write_failures(std::cerr, results);
    std::erase_if(results, [](const SimResult& r) { return !r.ok; });
    if (results.empty()) return 1;
    if (!gnuplot_base.empty()) {
      write_gnuplot_figure(gnuplot_base, app, bars_from_sweep(results));
      std::printf("wrote %s.dat and %s.gp\n", gnuplot_base.c_str(),
                  gnuplot_base.c_str());
    }
    if (csv) {
      write_csv(std::cout, results);
    } else {
      std::cout << render_figure(
          app + " (" + std::string(to_string(scale)) + ", " +
              (cache_kb ? std::to_string(cache_kb) + "KB" : "inf") + ", " +
              (style == ClusterStyle::SharedMemory ? "shared-memory"
                                                   : "shared-cache") +
              ")",
          bars_from_sweep(results));
    }
    if (failures != 0) return 1;  // partial results were still emitted
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
