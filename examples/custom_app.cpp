// Writing your own workload against the public API.
//
// A Program is a set of per-processor C++20 coroutines issuing reads,
// writes, compute and synchronization. This example implements a software
// pipeline (stage i reads stage i-1's buffer) — a communication topology the
// paper's suite does not contain — and measures how clustering captures the
// producer->consumer traffic when neighbouring stages share a cache.
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/core/simulator.hpp"
#include "src/core/sync.hpp"
#include "src/report/figures.hpp"
#include "src/report/experiment.hpp"

namespace {

using namespace csim;

/// P pipeline stages; each iteration, stage p reads stage p-1's output
/// buffer, computes, and writes its own. Traffic is strictly
/// nearest-neighbour in processor id — the ideal case for clustering.
class PipelineApp final : public Program {
 public:
  explicit PipelineApp(std::size_t buf_bytes, unsigned rounds)
      : buf_bytes_(buf_bytes), rounds_(rounds) {}

  [[nodiscard]] std::string name() const override { return "pipeline"; }

  void setup(AddressSpace& as, const MachineSpec& cfg) override {
    nprocs_ = cfg.num_procs;
    bufs_.clear();
    for (ProcId p = 0; p < nprocs_; ++p) {
      bufs_.push_back(as.alloc(buf_bytes_, "stage-buffer"));
      as.place(bufs_.back(), buf_bytes_, p);  // each buffer lives at its stage
    }
    bar_ = std::make_unique<Barrier>(nprocs_);
  }

  SimTask body(Proc& p) override {
    const unsigned line = p.config().cache.line_bytes;
    for (unsigned r = 0; r < rounds_; ++r) {
      // Consume the upstream buffer (stage 0 consumes its own).
      const Addr src = bufs_[p.id() == 0 ? 0 : p.id() - 1];
      for (Addr a = src; a < src + buf_bytes_; a += line) {
        co_await p.read(a);
        co_await p.compute(8);
      }
      // Produce into my buffer.
      const Addr dst = bufs_[p.id()];
      for (Addr a = dst; a < dst + buf_bytes_; a += line) {
        co_await p.write(a);
      }
      // Stages are decoupled by double buffering: no per-round barrier, so
      // the measured time is steady-state pipeline throughput.
    }
    co_await p.barrier(*bar_);
    ++done_;
  }

  void verify() const override {
    if (done_ != nprocs_) throw std::runtime_error("pipeline: missing stages");
  }

 private:
  std::size_t buf_bytes_;
  unsigned rounds_;
  unsigned nprocs_ = 0;
  unsigned done_ = 0;
  std::vector<Addr> bufs_;
  std::unique_ptr<Barrier> bar_;
};

}  // namespace

int main() {
  using namespace csim;
  std::printf("Custom workload: %u-stage software pipeline\n\n", 64u);

  std::vector<SimResult> sweep;
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    PipelineApp app(/*buf_bytes=*/8 * 1024, /*rounds=*/16);
    sweep.push_back(simulate(app, paper_machine(ppc, 0)));
  }
  std::cout << render_figure("pipeline (infinite caches)",
                             bars_from_sweep(sweep));
  std::printf(
      "\nA C-way cluster keeps (C-1)/C of the stage-to-stage transfers\n"
      "inside the cluster — the strongest clustering response any topology\n"
      "can show (compare with Figure 2's all-to-all FFT, which shows almost\n"
      "none).\n");
  return 0;
}
