// Problem-size scaling study for Ocean (the paper's Section 4 argument).
//
// Near-neighbour communication scales with the partition perimeter while
// computation scales with its area, so the communication-to-computation
// ratio — and with it the benefit of clustering — falls as the grid grows.
// The paper's claim: "clustering may push out the number of processors that
// can be used effectively on a fixed problem size."
#include <cstdio>
#include <iostream>

#include "src/apps/ocean.hpp"
#include "src/report/experiment.hpp"
#include "src/report/table.hpp"

int main() {
  using namespace csim;
  std::printf("Ocean scaling: clustering benefit vs problem size "
              "(infinite caches, 64 procs)\n\n");

  TextTable t({"grid", "1p load%", "8p/1p time", "8p load%", "sync% @8p"});
  for (unsigned n : {34u, 66u, 130u}) {
    OceanConfig cfg;
    cfg.n = n;
    cfg.iters = 3;
    std::vector<SimResult> sweep;
    for (unsigned ppc : {1u, 8u}) {
      OceanApp app(cfg);
      sweep.push_back(simulate(app, paper_machine(ppc, 0)));
    }
    const TimeBuckets a = sweep[0].aggregate();
    const TimeBuckets b = sweep[1].aggregate();
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               fmt_pct(static_cast<double>(a.load) / a.total()),
               fmt(static_cast<double>(b.total()) / a.total(), 3),
               fmt_pct(static_cast<double>(b.load) / b.total()),
               fmt_pct(static_cast<double>(b.sync) / b.total())});
  }
  std::cout << t.str();
  std::printf(
      "\nSmaller grids communicate more (perimeter/area), so clustering\n"
      "helps more — but synchronization from load imbalance grows too,\n"
      "exactly the trade-off Figure 3 of the paper shows.\n");
  return 0;
}
