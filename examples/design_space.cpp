// Design-space explorer: "given a fixed number of processors with a fixed
// total amount of cache, should I cluster — and at which cluster size?"
//
// This is the machine-organization question from the paper's introduction.
// For a chosen workload it sweeps cluster size x per-processor cache size,
// applies the Section 6 shared-cache cost model, and prints the best
// organization per cache budget.
//
//   $ ./design_space [app]      (default: barnes)
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/analysis/shared_cache_cost.hpp"
#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const std::string app_name = argc > 1 ? argv[1] : "barnes";
  const SharedCacheCostModel cost;

  std::printf("Design space for '%s': 64 processors, shared-cache costs "
              "included\n\n",
              app_name.c_str());

  TextTable t({"cache/proc", "1-way", "2-way", "4-way", "8-way", "best"});
  for (std::size_t kb : {4ul, 16ul, 32ul, 0ul}) {
    auto sweep = sweep_clusters(
        [&] { return make_app(app_name, ProblemScale::Default); }, kb * 1024);
    const ClusterCostRow row = make_cost_row(sweep, cost);
    unsigned best = 1;
    double best_t = 1e30;
    std::vector<std::string> cells = {kb ? std::to_string(kb) + "KB" : "inf"};
    for (std::size_t i = 0; i < row.cluster_sizes.size(); ++i) {
      cells.push_back(fmt(row.relative_time[i], 3));
      if (row.relative_time[i] < best_t) {
        best_t = row.relative_time[i];
        best = row.cluster_sizes[i];
      }
    }
    cells.push_back(best == 1 ? "don't cluster"
                              : std::to_string(best) + "-way");
    t.add_row(cells);
  }
  std::cout << t.str();
  std::printf(
      "\nReading: values are execution time relative to the unclustered\n"
      "machine with the same per-processor cache, including the longer hit\n"
      "time and bank conflicts of a shared cache. The paper's conclusion:\n"
      "clustering pays off when per-processor caches are smaller than the\n"
      "working set (overlap), and rarely otherwise.\n");
  return 0;
}
