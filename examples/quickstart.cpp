// Quickstart: simulate one application on a clustered machine and read the
// paper-style results.
//
//   $ ./quickstart [app]        (default: ocean)
//
// Shows the minimal public API: make_app() -> MachineSpec -> simulate()
// -> SimResult, plus the figure renderer.
#include <cstdio>
#include <iostream>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"
#include "src/report/figures.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const std::string app_name = argc > 1 ? argv[1] : "ocean";

  // 1. A machine: 64 processors in clusters of 4, each cluster sharing a
  //    fully associative 4 x 16 KB cache, DASH-style directory coherence.
  MachineSpec cfg = paper_machine(/*procs_per_cluster=*/4,
                                    /*cache_bytes_per_proc=*/16 * 1024);

  // 2. A workload: one of the paper's nine applications. The program runs
  //    its real algorithm; the simulator observes every memory reference.
  auto app = make_app(app_name, ProblemScale::Default);

  // 3. Simulate. The result carries wall time, the four execution-time
  //    components per processor, and the full miss taxonomy.
  const SimResult r = simulate(*app, cfg);

  const TimeBuckets t = r.aggregate();
  std::printf("%s on %s: %llu cycles\n", app_name.c_str(),
              cfg.label().c_str(),
              static_cast<unsigned long long>(r.wall_time));
  std::printf("  cpu %5.1f%%  load %5.1f%%  merge %5.1f%%  sync %5.1f%%\n",
              100.0 * t.cpu / t.total(), 100.0 * t.load / t.total(),
              100.0 * t.merge / t.total(), 100.0 * t.sync / t.total());
  std::printf("  reads %llu (miss rate %.2f%%), writes %llu, upgrades %llu, "
              "merges %llu\n",
              static_cast<unsigned long long>(r.totals.reads),
              100.0 * r.totals.read_miss_rate(),
              static_cast<unsigned long long>(r.totals.writes),
              static_cast<unsigned long long>(r.totals.upgrade_misses),
              static_cast<unsigned long long>(r.totals.merges));

  // 4. Sweep cluster sizes and render the paper's stacked bars.
  auto sweep = sweep_clusters(
      [&] { return make_app(app_name, ProblemScale::Default); },
      16 * 1024);
  std::cout << '\n'
            << render_figure(app_name + ", 16KB/processor", bars_from_sweep(sweep));
  return 0;
}
