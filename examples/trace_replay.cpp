// Trace-driven vs execution-driven methodology comparison.
//
// Records a reference trace of one execution-driven run (the paper's
// Tango-lite methodology), then replays the fixed interleaving under every
// cluster size — the classic trace-driven shortcut — and compares against
// proper execution-driven runs. The divergence (especially in merge
// behaviour) is the reason the paper simulates execution-driven.
#include <cstdio>
#include <iostream>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"
#include "src/report/table.hpp"
#include "src/trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace csim;
  const std::string app_name = argc > 1 ? argv[1] : "ocean";

  std::printf("Recording a reference trace of '%s' (execution-driven, "
              "unclustered)...\n",
              app_name.c_str());
  auto rec_app = make_app(app_name, ProblemScale::Default);
  const MachineSpec base = paper_machine(1, 0);
  const Trace trace = record_trace(*rec_app, base);
  std::printf("  %zu references captured\n\n", trace.size());

  TextTable t({"clusters", "replay misses", "exec misses", "replay merges",
               "exec merges"});
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    MachineSpec cfg = paper_machine(ppc, 0);
    const ReplayResult rep = replay_trace(trace, cfg);
    auto app = make_app(app_name, ProblemScale::Default);
    const SimResult ex = simulate(*app, cfg);
    t.add_row({std::to_string(ppc) + "ppc",
               std::to_string(rep.totals.total_misses()),
               std::to_string(ex.totals.total_misses()),
               std::to_string(rep.totals.merges),
               std::to_string(ex.totals.merges)});
  }
  std::cout << t.str();
  std::printf(
      "\nThe replay keeps the 1ppc interleaving, so it misestimates the\n"
      "merge behaviour that appears when clustered processors fetch the\n"
      "same lines at the same (simulated) time — one reason the paper\n"
      "chose execution-driven simulation.\n");
  return 0;
}
