// Bank-conflict probability model for the shared multi-banked first-level
// cache (paper Section 6, Table 4).
//
// The shared cache has `banks_per_proc` banks per clustered processor
// (4 in the paper). Each processor emits a reference to a random bank every
// cycle; a reference conflicts if any of the other n-1 processors picked the
// same bank:  C = 1 - ((m-1)/m)^(n-1).
#pragma once

#include <vector>

namespace csim {

/// Probability that a reference conflicts with at least one of the other
/// n-1 processors' references across m banks. n == 1 or m == 0 gives 0.
double bank_conflict_probability(unsigned banks, unsigned procs) noexcept;

struct BankConflictRow {
  unsigned procs_per_cache;
  unsigned banks;
  double collision_probability;
};

/// The paper's Table 4: n in {1,2,4,8}, m = 4n (m = 1 for the trivial
/// single-processor cache).
std::vector<BankConflictRow> bank_conflict_table(unsigned banks_per_proc = 4);

}  // namespace csim
