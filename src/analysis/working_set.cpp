#include "src/analysis/working_set.hpp"

#include <algorithm>

#include "src/core/simulator.hpp"

namespace csim {

std::size_t StackDistance::touch(Addr line) {
  ++refs_;
  auto it = pos_.find(line);
  if (it == pos_.end()) {
    ++cold_;
    stack_.push_front(line);
    pos_[line] = stack_.begin();
    return SIZE_MAX;
  }
  // Distance = number of distinct lines referenced since this one.
  std::size_t d = 0;
  for (auto walk = stack_.begin(); walk != it->second; ++walk) ++d;
  stack_.splice(stack_.begin(), stack_, it->second);
  it->second = stack_.begin();
  if (hist_.size() <= d) hist_.resize(d + 1, 0);
  ++hist_[d];
  return d;
}

double StackDistance::miss_ratio(std::size_t lines) const {
  if (refs_ == 0) return 0.0;
  std::uint64_t hits = 0;
  const std::size_t upto = std::min(lines, hist_.size());
  for (std::size_t d = 0; d < upto; ++d) hits += hist_[d];
  return 1.0 - static_cast<double>(hits) / static_cast<double>(refs_);
}

double StackDistance::rereference_miss_ratio(std::size_t lines) const {
  const std::uint64_t reref = refs_ - cold_;
  if (reref == 0) return 0.0;
  std::uint64_t hits = 0;
  const std::size_t upto = std::min(lines, hist_.size());
  for (std::size_t d = 0; d < upto; ++d) hits += hist_[d];
  return 1.0 - static_cast<double>(hits) / static_cast<double>(reref);
}

std::size_t StackDistance::working_set_lines(double coverage) const {
  const std::uint64_t reref = refs_ - cold_;
  if (reref == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      coverage * static_cast<double>(reref));
  std::uint64_t acc = 0;
  for (std::size_t d = 0; d < hist_.size(); ++d) {
    acc += hist_[d];
    if (acc >= target) return d + 1;
  }
  return distinct_lines();
}

AccessResult WorkingSetProfiler::read(ProcId p, Addr a, Cycles /*now*/) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = a & ~Addr{cfg_.cache.line_bytes - 1};
  ++counters_[c].reads;
  if (units_[c].touch(line) == SIZE_MAX) ++counters_[c].cold_misses;
  return AccessResult{AccessResult::Kind::Hit};
}

AccessResult WorkingSetProfiler::write(ProcId p, Addr a, Cycles /*now*/) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = a & ~Addr{cfg_.cache.line_bytes - 1};
  ++counters_[c].writes;
  ++counters_[c].write_hits;
  if (units_[c].touch(line) == SIZE_MAX) ++counters_[c].cold_misses;
  return AccessResult{AccessResult::Kind::Hit};
}

MissCounters WorkingSetProfiler::totals() const {
  MissCounters t{};
  for (const auto& c : counters_) t += c;
  return t;
}

double WorkingSetProfiler::mean_working_set_bytes(double coverage) const {
  double sum = 0;
  unsigned n = 0;
  for (const auto& u : units_) {
    if (u.references() == 0) continue;
    sum += static_cast<double>(u.working_set_lines(coverage)) *
           cfg_.cache.line_bytes;
    ++n;
  }
  return n ? sum / n : 0.0;
}

std::unique_ptr<WorkingSetProfiler> profile_working_sets(
    Program& prog, const MachineSpec& cfg) {
  // One shared immutable spec for the whole run: the profiler and the
  // simulator see the same object.
  Simulator sim(cfg);
  auto profiler = std::make_unique<WorkingSetProfiler>(sim.spec());
  (void)sim.run(prog, profiler.get());
  return profiler;
}

}  // namespace csim
