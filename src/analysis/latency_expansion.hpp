// Load-latency execution-time expansion factors (paper Section 6, Table 5).
//
// The paper derived these with Pixie basic-block profiling on MIPS binaries:
// the relative increase in execution time when the primary-cache load
// latency grows from 1 to k cycles, assuming the processor stalls only when
// the load's destination register is used.
//
// Substitution (no MIPS binaries or Pixie here): an analytic pipeline model
//   factor(k) = 1 + rho * (k-1) * u(k),  u(k) = u0 + u_slope * (k-2)
// where rho is the application's load density (loads per busy cycle) and
// u(k) the probability that a load's value is needed before the extra
// latency is hidden (growing with k because the compiler can fill one delay
// slot more easily than three). The paper's measured Table 5 is embedded as
// reference data; bench/table5_latency_factors prints both side by side.
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace csim {

struct LatencyExpansionModel {
  double loads_per_cycle = 0.25;  ///< rho: architectural load density
  double use_prob = 0.30;         ///< u0: P(value used in the next cycle)
  double use_prob_slope = 0.045;  ///< growth of u with latency

  /// Execution-time multiplier for a flat load latency of `latency` cycles,
  /// relative to 1-cycle loads.
  [[nodiscard]] double factor(unsigned latency) const noexcept {
    if (latency <= 1) return 1.0;
    const double k = static_cast<double>(latency);
    const double u = use_prob + use_prob_slope * (k - 2.0);
    return 1.0 + loads_per_cycle * (k - 1.0) * u;
  }
};

/// One row of the paper's Table 5 (measured with Pixie).
struct PaperExpansionRow {
  std::string_view app;
  double f2, f3, f4;  ///< factors at 2, 3, 4-cycle load latency
  [[nodiscard]] double factor(unsigned latency) const noexcept {
    switch (latency) {
      case 2: return f2;
      case 3: return f3;
      case 4: return f4;
      default: return 1.0;
    }
  }
};

/// The paper's Table 5 contents.
std::span<const PaperExpansionRow> paper_table5() noexcept;

/// Paper row for `app`, if the paper measured it.
std::optional<PaperExpansionRow> paper_expansion(std::string_view app) noexcept;

/// Fits the model's effective rho*u0 to a paper row (least squares over the
/// three latencies), returning a model with use_prob folded in. Used to show
/// how closely the analytic form tracks the Pixie data.
LatencyExpansionModel fit_model_to(const PaperExpansionRow& row) noexcept;

}  // namespace csim
