// Cross-check of the event-driven contention model against the paper's
// Section 6 closed-form bank-conflict probability (Table 4).
//
// The analytic model: each of the n clustered processors references a random
// one of the m = 4n banks, so a reference collides with probability
// C = 1 - ((m-1)/m)^(n-1). The simulated counterpart is the fraction of
// accesses that found their address-interleaved bank busy
// (MissCounters::bank_conflicts over all issued references). The closed form
// charges every participant in a collision, while the event queue serializes
// same-cycle arrivals and stalls only the losers, so under a uniform-random
// access pattern the simulated rate sits between the losers-only expectation
// and C (for n = 2: exactly between C/2 and C). Drifting outside that
// bracket flags a bug in either the queued-resource model or the closed
// form's transcription (tests/integration/contention_test.cpp).
#pragma once

#include <iosfwd>
#include <vector>

#include "src/core/stats.hpp"

namespace csim {

struct ContentionCheckRow {
  unsigned procs_per_cluster = 0;
  unsigned banks = 0;            ///< banks per cluster (m = 4n in the paper)
  double analytic_rate = 0;      ///< Table 4 closed form C
  double simulated_rate = 0;     ///< bank_conflicts / (reads + writes)
  double abs_error = 0;          ///< |simulated - analytic|
};

/// Builds the cross-check row for one contention-enabled result. The config
/// names n and m; the counters give the simulated conflict rate.
ContentionCheckRow contention_check_row(const SimResult& r);

/// Cross-check table for a sweep, skipping failed rows and rows simulated
/// without the contention model.
std::vector<ContentionCheckRow> contention_check(
    const std::vector<SimResult>& results);

/// Renders the table: ppc, banks, analytic, simulated, |error| per row.
void write_contention_check(std::ostream& os,
                            const std::vector<ContentionCheckRow>& rows);

}  // namespace csim
