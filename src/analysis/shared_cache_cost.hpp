// Shared first-level cache cost estimator (paper Section 6, Tables 6 & 7).
//
// The event simulator always charges 1-cycle hits. The costs of *sharing*
// the first-level cache — the longer hit time of a multi-ported multi-banked
// cache (Table 1: 2 cycles for 2-way clusters, 3 cycles for 4/8-way) and
// bank conflicts (Table 4) — are applied analytically afterwards:
//
//   multiplier(ppc) = [(1-C) * F(L) + C * F(L+1)] / F(1)
//
// where L is the shared-cache hit latency for the cluster size, C the bank
// conflict probability, and F the load-latency expansion factor (Table 5
// substitute, or the paper's own Pixie-measured factors when available).
//
// relative_time(ppc) = sim_time(ppc) / sim_time(1) * multiplier(ppc),
// which regenerates the rows of Tables 6 and 7.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/bank_conflict.hpp"
#include "src/analysis/latency_expansion.hpp"
#include "src/core/stats.hpp"

namespace csim {

struct SharedCacheCostModel {
  unsigned banks_per_proc = 4;
  /// If true and the paper measured the app in Table 5, use its factors;
  /// otherwise the analytic model with the simulation's measured load
  /// density.
  bool prefer_paper_factors = true;

  /// Shared-cache hit latency in cycles for a cluster of `ppc` processors
  /// (Table 1: 1, 2, 3, 3).
  static unsigned shared_hit_latency(unsigned ppc) noexcept {
    if (ppc <= 1) return 1;
    if (ppc == 2) return 2;
    return 3;
  }

  /// Execution-time multiplier capturing the shared-cache hit-time costs for
  /// app `name` with measured load density `rho` at cluster size `ppc`.
  [[nodiscard]] double multiplier(std::string_view name, double rho,
                                  unsigned ppc) const;
};

/// A row of Table 6 / Table 7: relative execution times of clustering with
/// shared-cache costs included, normalized to the 1-way cluster.
struct ClusterCostRow {
  std::string app;
  std::vector<unsigned> cluster_sizes;
  std::vector<double> sim_ratio;      ///< simulated time ratio (no hit cost)
  std::vector<double> relative_time;  ///< with shared-cache costs applied
};

/// Combines a sweep of simulation results (one per cluster size, same app
/// and cache size) into a cost-adjusted row.
ClusterCostRow make_cost_row(const std::vector<SimResult>& sweep,
                             const SharedCacheCostModel& model);

}  // namespace csim
