#include "src/analysis/contention_check.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/analysis/bank_conflict.hpp"

namespace csim {

ContentionCheckRow contention_check_row(const SimResult& r) {
  ContentionCheckRow row;
  row.procs_per_cluster = r.config.procs_per_cluster;
  row.banks = r.config.cluster_banks();
  row.analytic_rate =
      bank_conflict_probability(row.banks, row.procs_per_cluster);
  const std::uint64_t refs = r.totals.reads + r.totals.writes;
  row.simulated_rate =
      refs ? static_cast<double>(r.totals.bank_conflicts) /
                 static_cast<double>(refs)
           : 0.0;
  row.abs_error = std::fabs(row.simulated_rate - row.analytic_rate);
  return row;
}

std::vector<ContentionCheckRow> contention_check(
    const std::vector<SimResult>& results) {
  std::vector<ContentionCheckRow> rows;
  rows.reserve(results.size());
  for (const SimResult& r : results) {
    if (!r.ok || !r.config.contention.enabled) continue;
    rows.push_back(contention_check_row(r));
  }
  return rows;
}

void write_contention_check(std::ostream& os,
                            const std::vector<ContentionCheckRow>& rows) {
  os << "ppc,banks,analytic_conflict_rate,simulated_conflict_rate,abs_error\n";
  char buf[96];
  for (const ContentionCheckRow& r : rows) {
    std::snprintf(buf, sizeof buf, "%u,%u,%.6f,%.6f,%.6f\n",
                  r.procs_per_cluster, r.banks, r.analytic_rate,
                  r.simulated_rate, r.abs_error);
    os << buf;
  }
}

}  // namespace csim
