// Working-set profiler: LRU stack-distance analysis (Mattson et al.), used
// to regenerate the working-set-size column of the paper's Table 3 and the
// overlap factors that drive Figures 4-8.
//
// Plugged in as a MemorySystem, it never stalls the processors (every access
// is a 1-cycle hit), but records, per profiling unit (processor or cluster),
// the LRU stack distance of every reference. One simulation then yields the
// miss ratio of *every* fully associative LRU cache size at once, from which
// working-set sizes (smallest cache covering a target fraction of re-
// references) and cluster overlap factors are derived.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/machine.hpp"
#include "src/mem/memory_system.hpp"

namespace csim {

/// Stack-distance histogram for one profiling unit.
class StackDistance {
 public:
  /// Records a reference to `line`; returns its LRU stack distance
  /// (SIZE_MAX for a first touch).
  std::size_t touch(Addr line);

  [[nodiscard]] std::uint64_t references() const noexcept { return refs_; }
  [[nodiscard]] std::uint64_t cold() const noexcept { return cold_; }
  [[nodiscard]] std::size_t distinct_lines() const noexcept {
    return pos_.size();
  }

  /// Miss ratio of a fully associative LRU cache with `lines` lines
  /// (cold misses included).
  [[nodiscard]] double miss_ratio(std::size_t lines) const;

  /// Miss ratio excluding cold misses (re-reference misses only).
  [[nodiscard]] double rereference_miss_ratio(std::size_t lines) const;

  /// Smallest cache size (in lines) whose re-reference hit coverage reaches
  /// `coverage` (e.g. 0.95). Returns distinct_lines() if never reached.
  [[nodiscard]] std::size_t working_set_lines(double coverage) const;

 private:
  std::list<Addr> stack_;  // MRU at front
  std::unordered_map<Addr, std::list<Addr>::iterator> pos_;
  std::vector<std::uint64_t> hist_;  // hist_[d]: refs at stack distance d
  std::uint64_t refs_ = 0;
  std::uint64_t cold_ = 0;
};

/// MemorySystem that profiles instead of simulating coherence. Profiling
/// granularity follows the machine's clustering: with procs_per_cluster = 1
/// it measures per-processor working sets; with C > 1 it measures the
/// cluster-level (overlapped) working sets.
class WorkingSetProfiler final : public MemorySystem {
 public:
  /// Primary constructor: shares the run's immutable spec (the same object
  /// the Simulator and memory systems see).
  explicit WorkingSetProfiler(std::shared_ptr<const MachineSpec> spec)
      : spec_(std::move(spec)),
        cfg_(*spec_),
        units_(cfg_.num_clusters()),
        counters_(cfg_.num_clusters()) {}

  /// Legacy convenience: wraps `cfg` in a fresh shared spec (still safe
  /// against temporary config expressions).
  explicit WorkingSetProfiler(const MachineSpec& cfg)
      : WorkingSetProfiler(std::make_shared<const MachineSpec>(cfg)) {}

  AccessResult read(ProcId p, Addr a, Cycles now) override;
  AccessResult write(ProcId p, Addr a, Cycles now) override;

  [[nodiscard]] const MissCounters& cluster_counters(
      ClusterId c) const override {
    return counters_[c];
  }
  [[nodiscard]] MissCounters totals() const override;

  [[nodiscard]] const StackDistance& unit(ClusterId c) const {
    return units_[c];
  }
  [[nodiscard]] unsigned num_units() const noexcept {
    return cfg_.num_clusters();
  }

  /// Mean over units of working_set_lines(coverage), in bytes.
  [[nodiscard]] double mean_working_set_bytes(double coverage) const;

 private:
  std::shared_ptr<const MachineSpec> spec_;  // the run's shared immutable spec
  const MachineSpec& cfg_;                   // = *spec_
  std::vector<StackDistance> units_;
  std::vector<MissCounters> counters_;
};

/// Convenience: profile an application and return the profiler.
class Program;  // from core/simulator.hpp
std::unique_ptr<WorkingSetProfiler> profile_working_sets(
    Program& prog, const MachineSpec& cfg);

}  // namespace csim
