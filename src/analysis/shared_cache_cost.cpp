#include "src/analysis/shared_cache_cost.hpp"

#include <stdexcept>

namespace csim {

double SharedCacheCostModel::multiplier(std::string_view name, double rho,
                                        unsigned ppc) const {
  const unsigned L = shared_hit_latency(ppc);
  const double C = bank_conflict_probability(
      ppc == 1 ? 1 : banks_per_proc * ppc, ppc);

  auto factor = [&](unsigned lat) {
    if (prefer_paper_factors) {
      if (auto row = paper_expansion(name)) return row->factor(lat);
    }
    LatencyExpansionModel m;
    m.loads_per_cycle = rho;
    return m.factor(lat);
  };

  const double f = (1.0 - C) * factor(L) + C * factor(L + 1);
  return f / factor(1);  // factor(1) == 1, kept for clarity
}

ClusterCostRow make_cost_row(const std::vector<SimResult>& sweep,
                             const SharedCacheCostModel& model) {
  if (sweep.empty()) throw std::invalid_argument("empty sweep");
  ClusterCostRow row;
  row.app = sweep.front().app_name;
  const double base = static_cast<double>(sweep.front().aggregate().total());
  for (const SimResult& r : sweep) {
    if (r.app_name != row.app) {
      throw std::invalid_argument("cost row mixes applications");
    }
    const unsigned ppc = r.config.procs_per_cluster;
    const double ratio = static_cast<double>(r.aggregate().total()) / base;
    row.cluster_sizes.push_back(ppc);
    row.sim_ratio.push_back(ratio);
    row.relative_time.push_back(
        ratio * model.multiplier(row.app, r.loads_per_cpu_cycle(), ppc));
  }
  return row;
}

}  // namespace csim
