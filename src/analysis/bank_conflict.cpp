#include "src/analysis/bank_conflict.hpp"

#include <cmath>

namespace csim {

double bank_conflict_probability(unsigned banks, unsigned procs) noexcept {
  if (procs <= 1 || banks == 0) return 0.0;
  const double miss_me = static_cast<double>(banks - 1) / banks;
  return 1.0 - std::pow(miss_me, static_cast<double>(procs - 1));
}

std::vector<BankConflictRow> bank_conflict_table(unsigned banks_per_proc) {
  std::vector<BankConflictRow> out;
  for (unsigned n : {1u, 2u, 4u, 8u}) {
    const unsigned m = n == 1 ? 1 : banks_per_proc * n;
    out.push_back(BankConflictRow{n, m, bank_conflict_probability(m, n)});
  }
  return out;
}

}  // namespace csim
