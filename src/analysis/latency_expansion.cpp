#include "src/analysis/latency_expansion.hpp"

#include <array>

namespace csim {

namespace {
// Table 5 of the paper: load-latency execution-time factors from Pixie.
constexpr std::array<PaperExpansionRow, 6> kTable5 = {{
    {"barnes", 1.036, 1.078, 1.123},
    {"lu", 1.055, 1.114, 1.173},
    {"ocean", 1.061, 1.144, 1.243},
    {"radix", 1.051, 1.102, 1.162},
    {"volrend", 1.051, 1.106, 1.167},
    {"mp3d", 1.08, 1.14, 1.243},
}};
}  // namespace

std::span<const PaperExpansionRow> paper_table5() noexcept { return kTable5; }

std::optional<PaperExpansionRow> paper_expansion(std::string_view app) noexcept {
  for (const auto& r : kTable5) {
    if (r.app == app) return r;
  }
  return std::nullopt;
}

LatencyExpansionModel fit_model_to(const PaperExpansionRow& row) noexcept {
  // factor(k) - 1 = rho*u0*(k-1) + rho*u_slope*(k-1)(k-2); least-squares fit
  // of the two products over k = 2,3,4.
  const double y2 = row.f2 - 1.0, y3 = row.f3 - 1.0, y4 = row.f4 - 1.0;
  // Basis: a*(k-1) + b*(k-1)(k-2) with samples (1,0), (2,2), (3,6).
  // Normal equations for [[1+4+9, 0+4+18],[0+4+18, 0+4+36]] [a b] = ...
  const double s11 = 1 + 4 + 9, s12 = 0 + 4 + 18, s22 = 0 + 4 + 36;
  const double t1 = y2 * 1 + y3 * 2 + y4 * 3;
  const double t2 = y2 * 0 + y3 * 2 + y4 * 6;
  const double det = s11 * s22 - s12 * s12;
  const double a = (t1 * s22 - t2 * s12) / det;
  const double b = (t2 * s11 - t1 * s12) / det;
  LatencyExpansionModel m;
  // Fold rho into the probabilities (rho := 1).
  m.loads_per_cycle = 1.0;
  m.use_prob = a;
  m.use_prob_slope = b;
  return m;
}

}  // namespace csim
