#include "src/report/figures.hpp"

#include <algorithm>
#include <sstream>

#include "src/report/table.hpp"

namespace csim {

std::string render_figure(const std::string& title,
                          const std::vector<FigureBar>& bars) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  os << "  (percent of the 1-processor-per-cluster execution time of the "
        "same group)\n";
  TextTable t({"bar", "total", "cpu", "load", "merge", "sync", "cont", "", ""});

  double base = 1.0;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    const FigureBar& b = bars[i];
    if (i == 0 || b.new_group) {
      base = std::max<double>(1.0, static_cast<double>(b.buckets.total()));
    }
    const double cpu = 100.0 * static_cast<double>(b.buckets.cpu) / base;
    const double load = 100.0 * static_cast<double>(b.buckets.load) / base;
    const double merge = 100.0 * static_cast<double>(b.buckets.merge) / base;
    const double sync = 100.0 * static_cast<double>(b.buckets.sync) / base;
    const double cont =
        100.0 * static_cast<double>(b.buckets.contention) / base;
    const double total = cpu + load + merge + sync + cont;

    // 50-character bar: '#' cpu, 'o' load, '~' merge, '=' sync, '%' cont.
    std::string bar;
    auto extend = [&](double pct, char ch) {
      const auto want = static_cast<std::size_t>(pct * 0.5 + 0.5);
      bar.append(want, ch);
    };
    extend(cpu, '#');
    extend(load, 'o');
    extend(merge, '~');
    extend(sync, '=');
    extend(cont, '%');

    t.add_row({b.label, fmt(total, 1), fmt(cpu, 1), fmt(load, 1),
               fmt(merge, 1), fmt(sync, 1), fmt(cont, 1), "|", bar});
  }
  os << t.str();
  os << "  legend: '#' cpu busy, 'o' load stall, '~' merge stall, '=' sync, "
        "'%' contention\n";
  return os.str();
}

std::vector<FigureBar> bars_from_sweep(const std::vector<SimResult>& sweep) {
  std::vector<FigureBar> bars;
  for (const SimResult& r : sweep) {
    bars.push_back(FigureBar{
        std::to_string(r.config.procs_per_cluster) + "p", r.aggregate(),
        false});
  }
  return bars;
}

}  // namespace csim
