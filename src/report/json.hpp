// Minimal JSON support for the sweep service (src/report/service.hpp): a
// recursive-descent parser producing an immutable value tree, plus the
// string escaper the JSON writers share. Deliberately small — the service
// protocol and shard manifests are flat documents of strings, numbers, and
// short arrays — and dependency-free (no external JSON library in the
// toolchain image).
//
// Parsing limits (all produce a ConfigError, never UB): nesting depth 64,
// numbers must fit a double, \uXXXX escapes cover the BMP only (surrogate
// pairs are rejected — the protocol is ASCII in practice).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace csim::json {

class Value;

/// Object members in document order (small documents: linear find beats a
/// map and keeps round-trips order-stable).
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  explicit Value(std::nullptr_t) : v_(nullptr) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(Array a) : v_(std::move(a)) {}
  explicit Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(v_);
  }

  // Typed accessors; precondition: the matching is_*() holds.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }

  /// Member lookup on an object value; null when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses one complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Throws ConfigError with a position-
/// annotated message on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// JSON string escaping (quotes, backslash, control characters) — the body
/// of a string literal, without the surrounding quotes.
[[nodiscard]] std::string escape(std::string_view s);

/// Convenience: `"key":` with the key escaped.
[[nodiscard]] std::string quoted(std::string_view s);

}  // namespace csim::json
