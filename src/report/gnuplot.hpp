// Gnuplot export: writes a .dat + .gp pair that renders a paper-style
// stacked-bar figure (cpu / load / merge / sync) graphically.
#pragma once

#include <string>
#include <vector>

#include "src/report/figures.hpp"

namespace csim {

/// Writes `<basename>.dat` and `<basename>.gp`. Running
/// `gnuplot <basename>.gp` produces `<basename>.png`. Bars are normalized
/// exactly as in render_figure (first bar of each group = 100).
void write_gnuplot_figure(const std::string& basename,
                          const std::string& title,
                          const std::vector<FigureBar>& bars);

}  // namespace csim
