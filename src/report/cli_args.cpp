#include "src/report/cli_args.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/core/error.hpp"
#include "src/obs/run_observer.hpp"

namespace csim::cli {

std::uint64_t parse_u64(const std::string& flag, const std::string& val) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(val.c_str(), &end, 10);
  if (end == val.c_str() || *end != '\0' || errno == ERANGE) {
    throw ConfigError(flag + ": not a number: '" + val + "'");
  }
  return n;
}

double parse_f64(const std::string& flag, const std::string& val) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (end == val.c_str() || *end != '\0' || errno == ERANGE) {
    throw ConfigError(flag + ": not a number: '" + val + "'");
  }
  return v;
}

const char* ObsArgs::usage() {
  return "  --trace-out FILE      write a Chrome trace-event timeline per row\n"
         "                        (multi-row sweeps write FILE_ppcN variants)\n"
         "  --metrics-interval N  sample interval metrics every N cycles\n"
         "  --metrics-out BASE    interval metrics path base (default: metrics;\n"
         "                        writes BASE[.ppcN].csv and .json)\n"
         "  --manifest FILE       write a run manifest (config, git, digests)\n"
         "  --contention          enable the queued contention model (banks,\n"
         "                        directory occupancy, NIC serialization)\n"
         "  --contention-busy B,D,N  bank/directory/NIC busy cycles\n"
         "                        (implies --contention; defaults 1,4,6)\n"
         "  --journal-dir DIR     journal completed rows to DIR (crash-safe\n"
         "                        sweeps; one digest-keyed record per row)\n"
         "  --resume              with --journal-dir: verify and reuse\n"
         "                        journaled rows instead of re-simulating\n"
         "  --row-deadline S      per-row host wall-clock budget in seconds\n"
         "                        (rows over budget fail as 'timeout')\n"
         "  --retries N           retry rows failing with a retryable error\n"
         "                        (timeout, transient) up to N extra times\n"
         "  --fault-plan FILE     inject deterministic row faults from FILE\n"
         "                        (testing; see src/report/fault_injection.hpp)\n"
         "  --sample W,D,P        interval sampling: functionally warm W refs,\n"
         "                        then measure D refs every P refs (P 0 = one\n"
         "                        interval; miss counters stay exact)\n"
         "  --ckpt-dir DIR        reuse warm-state checkpoints in DIR across\n"
         "                        rows/runs sharing a warm digest (requires\n"
         "                        --sample)\n"
         "  --warm-quantum N      runahead quantum during functional warming\n"
         "                        (default 4096; larger is faster but\n"
         "                        coarsens warm state, and re-keys\n"
         "                        checkpoints; requires --sample)\n"
         "  --shard k/N           run only the rows whose config digest maps\n"
         "                        to shard k of N (multi-host splits; merge\n"
         "                        the artifacts with csim_merge)\n"
         "  --shard-out BASE      write BASE.csv and BASE.json shard-merge\n"
         "                        artifacts (requires --shard)\n"
         "  --par N               run each row under the conservative\n"
         "                        cluster-parallel engine with N worker\n"
         "                        threads; results are bit-identical at\n"
         "                        every N; composes with --sample\n"
         "                        (incompatible with --contention and\n"
         "                        observability flags)\n"
         "  --par-horizon W       override the parallel synchronization\n"
         "                        window width in cycles (default: the\n"
         "                        minimum inter-cluster latency; changes\n"
         "                        results and re-keys digests)\n";
}

bool ObsArgs::consume(int argc, char** argv, int& i) {
  const std::string a = argv[i];
  const auto next = [&]() -> std::string {
    if (i + 1 >= argc) throw ConfigError(a + " requires a value");
    return argv[++i];
  };
  if (a == "--trace-out") {
    trace_out = next();
  } else if (a == "--metrics-interval") {
    metrics_interval = parse_u64(a, next());
    if (metrics_interval == 0) {
      throw ConfigError("--metrics-interval must be > 0");
    }
  } else if (a == "--metrics-out") {
    metrics_out = next();
  } else if (a == "--manifest") {
    manifest_out = next();
  } else if (a == "--contention") {
    contention.enabled = true;
  } else if (a == "--contention-busy") {
    const std::string val = next();
    std::stringstream ss(val);
    std::string item;
    Cycles* fields[] = {&contention.bank_busy, &contention.directory_busy,
                        &contention.nic_busy};
    unsigned n = 0;
    while (std::getline(ss, item, ',')) {
      if (n >= 3) throw ConfigError("--contention-busy: expected B,D,N");
      *fields[n++] = parse_u64(a, item);
    }
    if (n != 3) throw ConfigError("--contention-busy: expected B,D,N");
    contention.enabled = true;
  } else if (a == "--journal-dir") {
    policy.journal_dir = next();
    if (policy.journal_dir.empty()) {
      throw ConfigError("--journal-dir requires a non-empty directory");
    }
  } else if (a == "--resume") {
    policy.resume = true;
  } else if (a == "--row-deadline") {
    policy.row_deadline_seconds = parse_f64(a, next());
    if (policy.row_deadline_seconds <= 0) {
      throw ConfigError("--row-deadline must be > 0");
    }
  } else if (a == "--retries") {
    policy.max_retries = static_cast<unsigned>(parse_u64(a, next()));
  } else if (a == "--fault-plan") {
    fault_plan = std::make_shared<const FaultPlan>(
        FaultPlan::parse_file(next()));
  } else if (a == "--sample") {
    const std::string val = next();
    std::stringstream ss(val);
    std::string item;
    std::uint64_t* fields[] = {&sampling.warmup_refs, &sampling.detail_refs,
                               &sampling.period_refs};
    unsigned n = 0;
    while (std::getline(ss, item, ',')) {
      if (n >= 3) throw ConfigError("--sample: expected WARMUP,DETAIL,PERIOD");
      *fields[n++] = parse_u64(a, item);
    }
    if (n != 3) throw ConfigError("--sample: expected WARMUP,DETAIL,PERIOD");
    sampling.enabled = true;
  } else if (a == "--ckpt-dir") {
    policy.checkpoint_dir = next();
    if (policy.checkpoint_dir.empty()) {
      throw ConfigError("--ckpt-dir requires a non-empty directory");
    }
  } else if (a == "--warm-quantum") {
    sampling.warm_quantum = parse_u64(a, next());
    if (sampling.warm_quantum == 0) {
      throw ConfigError("--warm-quantum must be > 0");
    }
    warm_quantum_set = true;
  } else if (a == "--shard") {
    shard = serve::parse_shard(next());
    shard_set = true;
  } else if (a == "--shard-out") {
    shard_out = next();
    if (shard_out.empty()) {
      throw ConfigError("--shard-out requires a non-empty path base");
    }
  } else if (a == "--par") {
    par.workers = static_cast<unsigned>(parse_u64(a, next()));
    if (par.workers == 0) {
      throw ConfigError("--par must be > 0 (omit the flag for the "
                        "sequential engine)");
    }
  } else if (a == "--par-horizon") {
    par.horizon_override = parse_u64(a, next());
    if (par.horizon_override == 0) {
      throw ConfigError("--par-horizon must be > 0");
    }
  } else {
    return false;
  }
  return true;
}

void ObsArgs::apply(SweepRequest& req) const {
  if (policy.resume && policy.journal_dir.empty()) {
    throw ConfigError("--resume requires --journal-dir");
  }
  if (!shard_out.empty() && !shard_set) {
    throw ConfigError("--shard-out requires --shard");
  }
  if (!policy.checkpoint_dir.empty() && !sampling.enabled) {
    throw ConfigError("--ckpt-dir requires --sample");
  }
  if (warm_quantum_set && !sampling.enabled) {
    throw ConfigError("--warm-quantum requires --sample");
  }
  if (par.horizon_override != 0 && !par.enabled()) {
    throw ConfigError("--par-horizon requires --par");
  }
  if (par.enabled()) {
    // MachineSpec::validate would reject these per-row; failing here names
    // the flags instead of the spec fields.
    if (contention.enabled) {
      throw ConfigError("--par is incompatible with --contention");
    }
    if (!trace_out.empty() || metrics_interval != 0) {
      throw ConfigError(
          "--par is incompatible with --trace-out / --metrics-interval "
          "(observers assume a single global event order)");
    }
  }
  req.policy = policy;
  req.policy.faults = fault_plan ? fault_plan.get() : nullptr;
  if (sampling.enabled) {
    for (MachineSpec& cfg : req.configs) cfg.sampling = sampling;
  }
  if (par.enabled()) {
    for (MachineSpec& cfg : req.configs) cfg.parallel = par;
  }
}

ObserverFactory ObsArgs::observer_factory(std::size_t rows) const {
  if (trace_out.empty() && metrics_interval == 0) return {};
  // Copy the fields: the factory outlives the ObsArgs in some drivers, and
  // rows run concurrently — each gets its own RunObserver.
  const std::string trace = trace_out;
  const Cycles interval = metrics_interval;
  const std::string metrics = metrics_out;
  return [trace, interval, metrics, rows](const MachineSpec& cfg, std::size_t)
             -> std::unique_ptr<Observer> {
    auto ro = std::make_unique<obs::RunObserver>();
    if (!trace.empty()) {
      ro->enable_trace(obs::row_path(trace, cfg.procs_per_cluster, rows));
    }
    if (interval != 0) {
      const std::string base =
          obs::row_path(metrics, cfg.procs_per_cluster, rows);
      ro->enable_metrics(interval, base + ".csv", base + ".json");
    }
    return ro;
  };
}

}  // namespace csim::cli
