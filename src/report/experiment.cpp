#include "src/report/experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <future>
#include <ostream>

namespace csim {

MachineConfig paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc) {
  MachineConfig cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = procs_per_cluster;
  cfg.cache.per_proc_bytes = cache_bytes_per_proc;
  cfg.cache.line_bytes = 64;
  cfg.cache.associativity = 0;  // fully associative (paper)
  return cfg;
}

std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineConfig>& configs) {
  std::vector<std::future<SimResult>> futures;
  futures.reserve(configs.size());
  for (const MachineConfig& cfg : configs) {
    futures.push_back(std::async(std::launch::async, [&make_app, cfg] {
      auto app = make_app();
      return simulate(*app, cfg);
    }));
  }
  std::vector<SimResult> out;
  out.reserve(configs.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes) {
  std::vector<MachineConfig> configs;
  configs.reserve(cluster_sizes.size());
  for (unsigned ppc : cluster_sizes) {
    configs.push_back(paper_machine(ppc, cache_bytes_per_proc));
  }
  return run_configs(make_app, configs);
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      o.scale = ProblemScale::Paper;
    } else if (std::strcmp(argv[i], "--test") == 0) {
      o.scale = ProblemScale::Test;
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      o.num_procs = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }
  return o;
}

void write_csv(std::ostream& os, const std::vector<SimResult>& results) {
  os << "app,scale,procs,ppc,cache_kb,wall,cpu,load,merge,sync,reads,writes,"
        "read_misses,write_misses,upgrades,merges,cold,invalidations\n";
  for (const SimResult& r : results) {
    const TimeBuckets a = r.aggregate();
    os << r.app_name << ",default," << r.config.num_procs << ','
       << r.config.procs_per_cluster << ','
       << r.config.cache.per_proc_bytes / 1024 << ',' << r.wall_time << ','
       << a.cpu << ',' << a.load << ',' << a.merge << ',' << a.sync << ','
       << r.totals.reads << ',' << r.totals.writes << ','
       << r.totals.read_misses << ',' << r.totals.write_misses << ','
       << r.totals.upgrade_misses << ',' << r.totals.merges << ','
       << r.totals.cold_misses << ',' << r.totals.invalidations << '\n';
  }
}

}  // namespace csim
