#include "src/report/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <thread>

#include "src/core/error.hpp"
#include "src/obs/observer.hpp"

namespace csim {

MachineSpec paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc) {
  MachineSpec cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = procs_per_cluster;
  cfg.cache.per_proc_bytes = cache_bytes_per_proc;
  cfg.cache.line_bytes = 64;
  cfg.cache.associativity = 0;  // fully associative (paper)
  return cfg;
}

std::size_t SweepResult::failures() const noexcept {
  std::size_t n = 0;
  for (const SimResult& r : rows) {
    if (!r.ok) ++n;
  }
  return n;
}

SweepResult run_sweep(const SweepRequest& req) {
  const auto& make_app = req.make_app;
  const auto& make_observer = req.make_observer;
  const auto& configs = req.configs;
  if (!make_app) throw ConfigError("run_sweep: SweepRequest::make_app not set");
  // Runs one simulation per configuration. Failures become ok == false rows
  // carrying the SimError diagnostics (graceful degradation: one broken
  // configuration must not abort the whole sweep; write_failures renders
  // them). Results come back in input order.
  const auto run_one = [&make_app, &make_observer](const MachineSpec& cfg,
                                                   std::size_t index)
      -> SimResult {
    std::unique_ptr<Program> app;
    try {
      app = make_app();
      std::unique_ptr<Observer> obs;
      if (make_observer) obs = make_observer(cfg, index);
      return simulate(*app, cfg, obs.get());
    } catch (const std::exception& e) {
      SimResult r;
      r.config = cfg;
      if (app) {
        r.app_name = app->name();
        r.scale = app->scale();
      }
      r.ok = false;
      const auto* se = dynamic_cast<const SimError*>(&e);
      r.error_kind = se ? std::string(to_string(se->kind())) : "exception";
      r.error = e.what();
      return r;
    } catch (...) {
      SimResult r;
      r.config = cfg;
      r.ok = false;
      r.error_kind = "exception";
      r.error = "unknown exception";
      return r;
    }
  };

  SweepResult res;
  std::vector<SimResult>& out = res.rows;
  out.resize(configs.size());
  if (configs.empty()) return res;

  // Bounded worker pool: large sweeps (org_comparison runs 9 apps x 4
  // cluster sizes x 2 organizations) previously spawned one thread per
  // configuration. Workers claim the next unstarted configuration from a
  // shared counter, so at most hardware_concurrency() simulations (each
  // single-threaded and deterministic) run at once and a long run steals no
  // capacity from the short ones queued behind it.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(hw, configs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      out[i] = run_one(configs[i], i);
    }
    return res;
  }
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) return;
      out[i] = run_one(configs[i], i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& t : pool) t.join();
  return res;
}

std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineSpec>& configs) {
  return run_sweep(SweepRequest{make_app, configs}).rows;
}

std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineSpec>& configs,
    const ObserverFactory& make_observer) {
  return run_sweep(SweepRequest{make_app, configs, make_observer}).rows;
}

std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes) {
  SweepRequest req;
  req.make_app = make_app;
  req.configs.reserve(cluster_sizes.size());
  for (unsigned ppc : cluster_sizes) {
    req.configs.push_back(paper_machine(ppc, cache_bytes_per_proc));
  }
  return run_sweep(req).rows;
}

BenchOptions BenchOptions::parse_checked(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--paper") == 0) {
      o.scale = ProblemScale::Paper;
    } else if (std::strcmp(arg, "--test") == 0) {
      o.scale = ProblemScale::Test;
    } else if (std::strcmp(arg, "--procs") == 0) {
      if (i + 1 >= argc) throw ConfigError("--procs requires a value");
      const char* val = argv[++i];
      errno = 0;
      char* end = nullptr;
      const unsigned long n = std::strtoul(val, &end, 10);
      if (end == val || *end != '\0' || errno == ERANGE) {
        throw ConfigError(std::string("--procs: not a number: '") + val + "'");
      }
      if (n == 0 || n > 4096) {
        throw ConfigError(std::string("--procs: out of range (1..4096): '") +
                          val + "'");
      }
      o.num_procs = static_cast<unsigned>(n);
    } else {
      throw ConfigError(std::string("unknown flag: '") + arg +
                        "' (expected --paper, --test, or --procs N)");
    }
  }
  return o;
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  try {
    return parse_checked(argc, argv);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\nusage: %s [--paper | --test] [--procs N]\n",
                 e.what(), argc > 0 ? argv[0] : "bench");
    std::exit(2);
  }
}

void write_csv(std::ostream& os, const std::vector<SimResult>& results) {
  os << "app,scale,procs,ppc,cache_kb,wall,cpu,load,merge,sync,contention,"
        "reads,writes,read_misses,write_misses,upgrades,merges,cold,"
        "invalidations,bank_conflicts,bank_wait,dir_wait,nic_wait\n";
  for (const SimResult& r : results) {
    if (!r.ok) continue;  // failures go to write_failures
    const TimeBuckets a = r.aggregate();
    os << r.app_name << ',' << to_string(r.scale) << ','
       << r.config.num_procs << ',' << r.config.procs_per_cluster << ','
       << r.config.cache.per_proc_bytes / 1024 << ',' << r.wall_time << ','
       << a.cpu << ',' << a.load << ',' << a.merge << ',' << a.sync << ','
       << a.contention << ',' << r.totals.reads << ',' << r.totals.writes
       << ',' << r.totals.read_misses << ',' << r.totals.write_misses << ','
       << r.totals.upgrade_misses << ',' << r.totals.merges << ','
       << r.totals.cold_misses << ',' << r.totals.invalidations << ','
       << r.totals.bank_conflicts << ',' << r.totals.bank_wait_cycles << ','
       << r.totals.dir_wait_cycles << ',' << r.totals.nic_wait_cycles << '\n';
  }
}

std::size_t write_failures(std::ostream& os,
                           const std::vector<SimResult>& results) {
  std::size_t n = 0;
  for (const SimResult& r : results) {
    if (r.ok) continue;
    if (n == 0) os << "=== failed configurations ===\n";
    ++n;
    os << (r.app_name.empty() ? std::string("?") : r.app_name) << " ["
       << r.config.label() << "] " << r.error_kind << " error:\n";
    // Indent the (possibly multi-line) diagnostic under its header.
    std::size_t start = 0;
    while (start < r.error.size()) {
      std::size_t end = r.error.find('\n', start);
      if (end == std::string::npos) end = r.error.size();
      os << "    " << r.error.substr(start, end - start) << '\n';
      start = end + 1;
    }
  }
  return n;
}

}  // namespace csim
