#include "src/report/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/core/error.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/observer.hpp"
#include "src/report/fault_injection.hpp"
#include "src/report/journal.hpp"

namespace csim {

MachineSpec paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc) {
  MachineSpec cfg;
  cfg.num_procs = 64;
  cfg.procs_per_cluster = procs_per_cluster;
  cfg.cache.per_proc_bytes = cache_bytes_per_proc;
  cfg.cache.line_bytes = 64;
  cfg.cache.associativity = 0;  // fully associative (paper)
  return cfg;
}

std::size_t SweepResult::failures() const noexcept {
  std::size_t n = 0;
  for (const SimResult& r : rows) {
    if (!r.ok) ++n;
  }
  return n;
}

std::string_view to_string(RowOutcome::Status s) noexcept {
  switch (s) {
    case RowOutcome::Status::Ok: return "ok";
    case RowOutcome::Status::Failed: return "failed";
    case RowOutcome::Status::TimedOut: return "timed_out";
  }
  return "unknown";
}

unsigned sweep_pool_width(std::size_t rows, unsigned row_threads,
                          unsigned host_cores) noexcept {
  const unsigned cores = std::max(1u, host_cores);
  const unsigned per_row = std::max(1u, row_threads);
  const unsigned cap = std::max(1u, cores / per_row);
  if (rows == 0) return 1;
  return static_cast<unsigned>(
      std::min<std::size_t>(cap, rows));
}

SweepResult run_sweep(const SweepRequest& req) {
  const auto& make_app = req.make_app;
  const auto& make_observer = req.make_observer;
  const auto& configs = req.configs;
  const SweepPolicy& pol = req.policy;
  if (!make_app) throw ConfigError("run_sweep: SweepRequest::make_app not set");

  SweepResult res;
  res.rows.resize(configs.size());
  res.outcomes.resize(configs.size());
  if (configs.empty()) return res;

  // The journal, the fault plan, and synthesized timeout rows all need the
  // app's identity (name + scale) before any row runs, so probe the factory
  // once. A throwing factory falls back to the pre-policy behaviour — every
  // row fails individually with the factory's diagnostic, nothing crashes.
  // With the default policy the probe is skipped entirely (zero overhead).
  // Checkpoint grouping needs the identity too (warm_config_digest hashes
  // the app name and scale), whether the directory comes from the policy or
  // from the row specs themselves.
  const bool rows_checkpoint = std::any_of(
      configs.begin(), configs.end(), [](const MachineSpec& c) {
        return c.sampling.enabled && !c.sampling.checkpoint_dir.empty();
      });
  const bool policy_active = !pol.journal_dir.empty() ||
                             pol.faults != nullptr ||
                             pol.row_deadline_seconds > 0 ||
                             !pol.checkpoint_dir.empty() || rows_checkpoint;
  std::string app_name;
  ProblemScale app_scale = ProblemScale::Default;
  bool have_identity = false;
  if (policy_active) {
    try {
      const std::unique_ptr<Program> probe = make_app();
      app_name = probe->name();
      app_scale = probe->scale();
      have_identity = true;
    } catch (...) {
      res.journal_warnings.push_back(
          "sweep: app factory threw during the identity probe; journaling "
          "and fault injection are disabled for this sweep");
    }
  }
  std::vector<std::uint64_t> digests(configs.size(), 0);
  if (have_identity) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      digests[i] = obs::config_digest(configs[i], app_name, app_scale);
    }
  }

  // Resume: satisfy rows from the journal before anything simulates. A
  // record only counts if its stored result digest matches the digest
  // recomputed from the reconstituted row — a corrupt or stale record can
  // cost a re-simulation, never a wrong answer.
  std::vector<char> done(configs.size(), 0);
  if (have_identity && pol.resume && !pol.journal_dir.empty()) {
    JournalLoad load = load_journal(pol.journal_dir);
    for (std::string& w : load.warnings) {
      res.journal_warnings.push_back(std::move(w));
    }
    std::unordered_map<std::uint64_t, const JournalRecord*> by_digest;
    for (const JournalRecord& rec : load.records) {
      by_digest.emplace(rec.config_digest, &rec);
    }
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto it = by_digest.find(digests[i]);
      if (it == by_digest.end()) continue;
      const JournalRecord& rec = *it->second;
      if (rec.app_name != app_name || rec.scale != app_scale) {
        res.journal_warnings.push_back(
            "journal: record " + obs::digest_hex(digests[i]) +
            " names a different app/scale; re-simulating");
        continue;
      }
      SimResult r = journal_record_to_result(rec, configs[i]);
      if (obs::result_digest(r) != rec.result_digest) {
        res.journal_warnings.push_back(
            "journal: record " + obs::digest_hex(digests[i]) +
            " fails result-digest verification; re-simulating");
        continue;
      }
      res.rows[i] = std::move(r);
      res.outcomes[i] = RowOutcome{RowOutcome::Status::Ok, rec.attempts,
                                   /*from_journal=*/true, digests[i]};
      done[i] = 1;
    }
  }

  std::mutex warn_mutex;
  const auto warn = [&](std::string w) {
    const std::lock_guard<std::mutex> lock(warn_mutex);
    res.journal_warnings.push_back(std::move(w));
  };

  // Row streaming (SweepRequest::on_row): serialized so the callback can
  // write to a socket or mutate caller state without its own locking, and
  // fenced so a throwing callback degrades to a warning, not a crash that
  // takes the worker pool down.
  std::mutex row_cb_mutex;
  const auto notify_row = [&](std::size_t index) {
    if (!req.on_row) return;
    try {
      const std::lock_guard<std::mutex> lock(row_cb_mutex);
      req.on_row(index, res.rows[index], res.outcomes[index]);
    } catch (const std::exception& e) {
      warn(std::string("sweep: on_row callback threw: ") + e.what());
    } catch (...) {
      warn("sweep: on_row callback threw an unknown exception");
    }
  };
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (done[i]) notify_row(i);  // journal hits stream before the pool runs
  }

  // Runs one row: attempt loop with deadline budgeting, bounded retry for
  // retryable SimError kinds, fault injection, and the write-ahead journal
  // append. Failures become ok == false rows carrying the SimError
  // diagnostics (graceful degradation: one broken configuration must not
  // abort the whole sweep; write_failures renders them).
  const auto run_one = [&](std::size_t index) {
    const MachineSpec& cfg = configs[index];
    const std::uint64_t digest = digests[index];
    RowOutcome& oc = res.outcomes[index];
    oc.config_digest = digest;
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed_seconds = [&start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };
    SimResult r;
    std::optional<FaultSpec> fault;
    const unsigned max_attempts = 1 + pol.max_retries;
    unsigned attempt = 0;
    while (true) {
      ++attempt;
      fault = (pol.faults != nullptr && have_identity)
                  ? pol.faults->lookup(digest, attempt)
                  : std::nullopt;
      if (fault && fault->action == FaultSpec::Action::Stall &&
          fault->stall_seconds > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault->stall_seconds));
      }
      MachineSpec row_cfg = cfg;
      if (row_cfg.sampling.enabled && row_cfg.sampling.checkpoint_dir.empty()) {
        row_cfg.sampling.checkpoint_dir = pol.checkpoint_dir;
      }
      if (pol.row_deadline_seconds > 0) {
        const double remaining = pol.row_deadline_seconds - elapsed_seconds();
        if (remaining <= 0) {
          // The row's budget is gone (earlier attempts or a stall consumed
          // it): synthesize the timeout row without starting a simulation.
          r = SimResult{};
          r.config = cfg;
          r.app_name = app_name;
          r.scale = app_scale;
          r.ok = false;
          r.error_kind = std::string(to_string(SimErrorKind::Timeout));
          char msg[96];
          std::snprintf(msg, sizeof msg,
                        "row deadline of %.3f s exhausted before attempt %u",
                        pol.row_deadline_seconds, attempt);
          r.error = msg;
          r.host_seconds = elapsed_seconds();
          break;
        }
        // The in-run watchdog enforces what is left of the row's budget
        // (tightening, never loosening, any deadline the spec already had).
        row_cfg.max_host_seconds = cfg.max_host_seconds > 0
                                       ? std::min(cfg.max_host_seconds,
                                                  remaining)
                                       : remaining;
      }
      std::unique_ptr<Program> app;
      try {
        if (fault && fault->action == FaultSpec::Action::Throw) {
          char msg[96];
          std::snprintf(msg, sizeof msg,
                        "fault injection: forced %.24s failure (attempt %u)",
                        std::string(to_string(fault->error)).c_str(), attempt);
          throw_sim_error(fault->error, msg);
        }
        app = make_app();
        std::unique_ptr<Observer> obs;
        if (make_observer) obs = make_observer(row_cfg, index);
        r = simulate(*app, row_cfg, obs.get());
        r.config = cfg;  // report the requested spec, not the deadline copy
        break;
      } catch (const std::exception& e) {
        r = SimResult{};
        r.config = cfg;
        if (app) {
          r.app_name = app->name();
          r.scale = app->scale();
        } else if (have_identity) {
          r.app_name = app_name;
          r.scale = app_scale;
        }
        r.ok = false;
        const auto* se = dynamic_cast<const SimError*>(&e);
        r.error_kind = se ? std::string(to_string(se->kind())) : "exception";
        r.error = e.what();
        r.host_seconds = elapsed_seconds();
        if (se != nullptr && is_retryable(se->kind()) &&
            attempt < max_attempts) {
          if (pol.backoff_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::uint64_t>(pol.backoff_ms)
                << (attempt - 1)));
          }
          continue;
        }
        break;
      } catch (...) {
        r = SimResult{};
        r.config = cfg;
        r.ok = false;
        r.error_kind = "exception";
        r.error = "unknown exception";
        break;
      }
    }
    oc.attempts = attempt;
    oc.from_journal = false;
    oc.status = r.ok ? RowOutcome::Status::Ok
                : r.error_kind == to_string(SimErrorKind::Timeout)
                    ? RowOutcome::Status::TimedOut
                    : RowOutcome::Status::Failed;

    // Write-ahead append: the row is durable before the sweep moves on. A
    // torn-write fault persists a prefix of the real record bytes at the
    // final path — exactly the damage a kill mid-append could leave if the
    // writes were not atomic (the loader must shrug it off).
    if (r.ok && have_identity && !pol.journal_dir.empty()) {
      try {
        const JournalRecord rec = journal_record_from_result(r, attempt);
        if (fault && fault->action == FaultSpec::Action::TornWrite) {
          const std::string bytes = encode_journal_record(rec);
          const auto keep = static_cast<std::size_t>(
              static_cast<double>(bytes.size()) * fault->keep_fraction);
          std::filesystem::create_directories(pol.journal_dir);
          const std::string path =
              (std::filesystem::path(pol.journal_dir) /
               (obs::digest_hex(digest) + ".csj"))
                  .string();
          std::ofstream os(path, std::ios::binary | std::ios::trunc);
          os.write(bytes.data(), static_cast<std::streamsize>(keep));
          warn("fault injection: torn journal write for config " +
               obs::digest_hex(digest) + " (kept " + std::to_string(keep) +
               " of " + std::to_string(bytes.size()) + " bytes)");
        } else {
          append_journal_record(pol.journal_dir, rec);
        }
      } catch (const std::exception& e) {
        warn("journal: append failed for config " + obs::digest_hex(digest) +
             ": " + e.what());
      }
    }
    res.rows[index] = std::move(r);
    notify_row(index);
  };

  std::vector<std::size_t> pending;
  pending.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!done[i]) pending.push_back(i);
  }
  if (pending.empty()) return res;

  // Warm-state checkpoint grouping: rows sharing a warm_config_digest share
  // one warmup. The first row of each digest group (the leader) runs in the
  // first wave, warming in-process and writing the checkpoint; the remaining
  // rows run in the second wave and fast-forward from it. Without
  // checkpointing every row is a wave-1 "leader" and the schedule is exactly
  // the old single-wave sweep.
  std::vector<std::size_t> wave1;
  std::vector<std::size_t> wave2;
  wave1.reserve(pending.size());
  if (have_identity) {
    std::unordered_set<std::uint64_t> group_leaders;
    for (std::size_t i : pending) {
      const MachineSpec& cfg = configs[i];
      const bool ckpt = cfg.sampling.enabled &&
                        (!cfg.sampling.checkpoint_dir.empty() ||
                         !pol.checkpoint_dir.empty());
      if (!ckpt) {
        wave1.push_back(i);
        continue;
      }
      const std::uint64_t wd =
          obs::warm_config_digest(cfg, app_name, app_scale);
      (group_leaders.insert(wd).second ? wave1 : wave2).push_back(i);
    }
  } else {
    wave1 = pending;
  }

  // Bounded worker pool: large sweeps (org_comparison runs 9 apps x 4
  // cluster sizes x 2 organizations) previously spawned one thread per
  // configuration. Workers claim the next unstarted configuration from a
  // shared counter, so a long run steals no capacity from the short ones
  // queued behind it. Rows running under the cluster-parallel engine bring
  // their own threads, so the pool width is divided down until the
  // pool x per-row product fits the host (sweep_pool_width) — results are
  // unaffected, the engine is deterministic at every thread count.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto run_wave = [&](const std::vector<std::size_t>& wave) {
    if (wave.empty()) return;
    unsigned row_threads = 1;
    for (std::size_t i : wave) {
      const MachineSpec& cfg = configs[i];
      if (!cfg.parallel.enabled()) continue;
      const unsigned w = std::max(
          1u, std::min(cfg.parallel.workers, cfg.num_clusters()));
      row_threads = std::max(row_threads, w);
    }
    const unsigned workers =
        sweep_pool_width(wave.size(), row_threads, hw);
    if (workers <= 1) {
      for (std::size_t i : wave) run_one(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      while (true) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= wave.size()) return;
        run_one(wave[k]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
    worker();  // the calling thread participates
    for (auto& t : pool) t.join();
  };
  run_wave(wave1);
  run_wave(wave2);
  return res;
}

std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes) {
  SweepRequest req;
  req.make_app = make_app;
  req.configs.reserve(cluster_sizes.size());
  for (unsigned ppc : cluster_sizes) {
    req.configs.push_back(paper_machine(ppc, cache_bytes_per_proc));
  }
  return run_sweep(req).rows;
}

BenchOptions BenchOptions::parse_checked(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--paper") == 0) {
      o.scale = ProblemScale::Paper;
    } else if (std::strcmp(arg, "--test") == 0) {
      o.scale = ProblemScale::Test;
    } else if (std::strcmp(arg, "--procs") == 0) {
      if (i + 1 >= argc) throw ConfigError("--procs requires a value");
      const char* val = argv[++i];
      errno = 0;
      char* end = nullptr;
      const unsigned long n = std::strtoul(val, &end, 10);
      if (end == val || *end != '\0' || errno == ERANGE) {
        throw ConfigError(std::string("--procs: not a number: '") + val + "'");
      }
      if (n == 0 || n > 4096) {
        throw ConfigError(std::string("--procs: out of range (1..4096): '") +
                          val + "'");
      }
      o.num_procs = static_cast<unsigned>(n);
    } else {
      throw ConfigError(std::string("unknown flag: '") + arg +
                        "' (expected --paper, --test, or --procs N)");
    }
  }
  return o;
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  try {
    return parse_checked(argc, argv);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "%s\nusage: %s [--paper | --test] [--procs N]\n",
                 e.what(), argc > 0 ? argv[0] : "bench");
    std::exit(2);
  }
}

namespace {

constexpr const char* kCsvColumns =
    "app,scale,procs,ppc,cache_kb,wall,cpu,load,merge,sync,contention,"
    "reads,writes,read_misses,write_misses,upgrades,merges,cold,"
    "invalidations,bank_conflicts,bank_wait,dir_wait,nic_wait,"
    "sampled,coverage,wall_seconds,sim_refs_per_sec";

/// Simulated references per host second (reads + writes over wall seconds);
/// 0 when no host time was recorded (e.g. synthetic test rows).
double refs_per_sec(const SimResult& r) {
  if (r.host_seconds <= 0) return 0;
  return static_cast<double>(r.totals.reads + r.totals.writes) /
         r.host_seconds;
}

/// The shared row body of both write_csv overloads (no trailing newline).
void write_csv_row(std::ostream& os, const SimResult& r) {
  const TimeBuckets a = r.aggregate();
  os << r.app_name << ',' << to_string(r.scale) << ','
     << r.config.num_procs << ',' << r.config.procs_per_cluster << ','
     << r.config.cache.per_proc_bytes / 1024 << ',' << r.wall_time << ','
     << a.cpu << ',' << a.load << ',' << a.merge << ',' << a.sync << ','
     << a.contention << ',' << r.totals.reads << ',' << r.totals.writes
     << ',' << r.totals.read_misses << ',' << r.totals.write_misses << ','
     << r.totals.upgrade_misses << ',' << r.totals.merges << ','
     << r.totals.cold_misses << ',' << r.totals.invalidations << ','
     << r.totals.bank_conflicts << ',' << r.totals.bank_wait_cycles << ','
     << r.totals.dir_wait_cycles << ',' << r.totals.nic_wait_cycles;
  // Sampling provenance + per-row throughput. host_seconds round-trips
  // through the journal bit-exactly (bit_cast), so a resumed sweep's CSV
  // stays byte-identical to an uninterrupted run's.
  char buf[64];
  std::snprintf(buf, sizeof buf, ",%d,%.6f,%.6f,%.1f", r.sampled ? 1 : 0,
                r.coverage, r.host_seconds, refs_per_sec(r));
  os << buf;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<SimResult>& results) {
  os << kCsvColumns << '\n';
  for (const SimResult& r : results) {
    if (!r.ok) continue;  // failures go to write_failures
    write_csv_row(os, r);
    os << '\n';
  }
}

void write_csv(std::ostream& os, const SweepResult& sweep) {
  os << kCsvColumns << ",status,attempts\n";
  for (std::size_t i = 0; i < sweep.rows.size(); ++i) {
    const SimResult& r = sweep.rows[i];
    if (!r.ok) continue;  // failures go to write_failures
    write_csv_row(os, r);
    // from_journal is deliberately not a column: a resumed sweep's CSV must
    // be byte-identical to an uninterrupted run's.
    const RowOutcome* o =
        i < sweep.outcomes.size() ? &sweep.outcomes[i] : nullptr;
    os << ',' << (o ? to_string(o->status) : "ok") << ','
       << (o ? o->attempts : 1u) << '\n';
  }
}

std::size_t write_outcomes(std::ostream& os, const SweepResult& sweep) {
  std::size_t not_ok = 0;
  os << "=== sweep outcomes ===\n";
  for (std::size_t i = 0; i < sweep.rows.size(); ++i) {
    const SimResult& r = sweep.rows[i];
    const RowOutcome o =
        i < sweep.outcomes.size() ? sweep.outcomes[i] : RowOutcome{};
    if (o.status != RowOutcome::Status::Ok) ++not_ok;
    os << obs::digest_hex(o.config_digest) << ' '
       << (r.app_name.empty() ? std::string("?") : r.app_name) << " ["
       << r.config.label() << "] " << to_string(o.status)
       << " attempts=" << o.attempts << (o.from_journal ? " (journal)" : "");
    char buf[80];
    std::snprintf(buf, sizeof buf, " wall=%.3fs refs/s=%.0f", r.host_seconds,
                  refs_per_sec(r));
    os << buf;
    if (r.sampled) {
      std::snprintf(buf, sizeof buf, " sampled coverage=%.3f", r.coverage);
      os << buf;
    }
    os << '\n';
  }
  for (const std::string& w : sweep.journal_warnings) {
    os << "warning: " << w << '\n';
  }
  return not_ok;
}

std::size_t write_failures(std::ostream& os,
                           const std::vector<SimResult>& results) {
  std::size_t n = 0;
  for (const SimResult& r : results) {
    if (r.ok) continue;
    if (n == 0) os << "=== failed configurations ===\n";
    ++n;
    os << (r.app_name.empty() ? std::string("?") : r.app_name) << " ["
       << r.config.label() << "] " << r.error_kind << " error:\n";
    // Indent the (possibly multi-line) diagnostic under its header.
    std::size_t start = 0;
    while (start < r.error.size()) {
      std::size_t end = r.error.find('\n', start);
      if (end == std::string::npos) end = r.error.size();
      os << "    " << r.error.substr(start, end - start) << '\n';
      start = end + 1;
    }
  }
  return n;
}

}  // namespace csim
