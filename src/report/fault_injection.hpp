// Deterministic fault injection for sweep rows (docs/ROBUSTNESS.md §6).
//
// A FaultPlan maps config digests (src/obs/manifest.hpp) — or the wildcard
// `*` — to faults that run_sweep applies to the matching rows: throw a given
// SimError before the row simulates, stall the row past its deadline, or
// tear the journal write after the row completes (a crash emulated at the
// exact point a real kill would corrupt the record). Probabilistic faults
// draw from a seeded counter-based generator keyed by (seed, digest,
// attempt), so a plan replays identically across runs, worker counts, and
// schedules — faults are addressed by row identity, never by timing.
//
// Text format accepted by --fault-plan (one directive per line, `#` starts
// a comment):
//
//   seed <N>                                   # optional, default 0
//   <digest-hex|*> throw <kind> [attempts] [probability]
//   <digest-hex|*> stall <seconds>
//   <digest-hex|*> torn-write [keep-fraction]
//
// `kind` is a SimErrorKind name (timeout, transient, deadlock, ...);
// `attempts` bounds the fault to the first N attempts of the row (0 = every
// attempt), which is how a retry eventually succeeds in tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/error.hpp"

namespace csim {

/// One injected fault.
struct FaultSpec {
  enum class Action : std::uint8_t {
    Throw,      ///< throw `error` instead of simulating the row
    Stall,      ///< burn `stall_seconds` of host time before simulating
    TornWrite,  ///< row succeeds, but its journal record is written torn
  };
  Action action = Action::Throw;
  SimErrorKind error = SimErrorKind::Transient;  ///< Throw only
  /// Fault only the first N attempts of the row; 0 = every attempt.
  unsigned fail_attempts = 0;
  double stall_seconds = 0;    ///< Stall only
  double keep_fraction = 0.5;  ///< TornWrite only: prefix of the record kept
  double probability = 1.0;    ///< chance the fault fires for an attempt
};

/// Deterministic, digest-addressed fault plan for run_sweep.
class FaultPlan {
 public:
  FaultPlan() = default;

  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Registers a fault for the row with this config digest.
  void add(std::uint64_t config_digest, const FaultSpec& spec);
  /// Registers a fault for every row (digest-specific faults win).
  void add_wildcard(const FaultSpec& spec);

  [[nodiscard]] bool empty() const noexcept {
    return by_digest_.empty() && wildcard_.empty();
  }

  /// The fault to apply to this row attempt (1-based), if any. Applies the
  /// fail_attempts bound and the seeded probability coin; deterministic in
  /// (seed, digest, attempt).
  [[nodiscard]] std::optional<FaultSpec> lookup(std::uint64_t config_digest,
                                                unsigned attempt) const;

  /// Parses the text format above. Throws ConfigError on malformed input;
  /// `origin` names the source in diagnostics.
  static FaultPlan parse(std::string_view text, const std::string& origin);
  /// Parses `path`. Throws ConfigError if unreadable or malformed.
  static FaultPlan parse_file(const std::string& path);

 private:
  std::uint64_t seed_ = 0;
  std::map<std::uint64_t, std::vector<FaultSpec>> by_digest_;
  std::vector<FaultSpec> wildcard_;
};

}  // namespace csim
