#include "src/report/gnuplot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/core/atomic_file.hpp"

namespace csim {

void write_gnuplot_figure(const std::string& basename,
                          const std::string& title,
                          const std::vector<FigureBar>& bars) {
  std::ostringstream dat;
  dat << "# label cpu load merge sync\n";
  double base = 1.0;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    const FigureBar& b = bars[i];
    if (i == 0 || b.new_group) {
      base = std::max<double>(1.0, static_cast<double>(b.buckets.total()));
    }
    dat << '"' << b.label << "\" " << 100.0 * b.buckets.cpu / base << ' '
        << 100.0 * b.buckets.load / base << ' '
        << 100.0 * b.buckets.merge / base << ' '
        << 100.0 * b.buckets.sync / base << '\n';
  }
  atomic_write_file(basename + ".dat", dat.str());

  std::ostringstream gp;
  gp << "set terminal pngcairo size 900,520\n"
     << "set output '" << basename << ".png'\n"
     << "set title '" << title << "'\n"
     << "set style data histograms\n"
     << "set style histogram rowstacked\n"
     << "set style fill solid 0.9 border -1\n"
     << "set boxwidth 0.7\n"
     << "set ylabel 'normalized execution time (%)'\n"
     << "set yrange [0:*]\n"
     << "set key outside right\n"
     << "set xtics rotate by -40\n"
     << "plot '" << basename << ".dat' using 2:xtic(1) title 'cpu', \\\n"
     << "     '' using 3 title 'load', \\\n"
     << "     '' using 4 title 'merge', \\\n"
     << "     '' using 5 title 'sync'\n";
  atomic_write_file(basename + ".gp", gp.str());
}

}  // namespace csim
