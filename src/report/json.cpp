#include "src/report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/core/error.hpp"

namespace csim::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError("json: " + what + " at offset " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  /// Appends `cp` (BMP code point) to `out` as UTF-8.
  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          if (cp >= 0xd800 && cp <= 0xdfff) {
            fail("surrogate \\u escapes are not supported");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string tok(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || tok.empty() || !std::isfinite(v)) {
      pos = start;
      fail("bad number '" + tok + "'");
    }
    return v;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Object obj;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return Value(std::move(obj));
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return Value(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos;
      Array arr;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return Value(std::move(arr));
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return Value(std::move(arr));
      }
    }
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value(nullptr);
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return Value(parse_number());
    }
    fail("unexpected character");
  }
};

}  // namespace

Value parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing content after document");
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(std::string_view s) { return '"' + escape(s) + '"'; }

}  // namespace csim::json
