// RunSpec: the one description of "which machine rows a sweep runs".
//
// Every driver used to assemble its MachineSpec rows by hand — csim_cli's
// builder loop, the service protocol's configs_from_request — and each grew
// its own copy of the defaults. RunSpec unifies them: the CLI parses flags
// into a RunSpec, the service parses its newline-framed JSON request into
// the same RunSpec (ServiceRequest derives from it), and configs() is the
// single builder path both feed to run_sweep. to_json()/from_json() round-
// trip the service-visible fields, so a request can be captured, replayed,
// and diffed as text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/machine.hpp"

namespace csim::json {
class Value;
}

namespace csim {

/// Checked JSON field accessors shared by the request parsers (RunSpec,
/// service envelope). All throw ConfigError("request: ...") on a type or
/// range violation, so a malformed request names the offending field.
namespace jsonreq {
[[noreturn]] void fail(const std::string& what);
std::string get_string(const json::Value& v, const char* key,
                       std::string fallback);
std::uint64_t as_integer(const json::Value& f, const char* key,
                         std::uint64_t min, std::uint64_t max);
std::uint64_t get_integer(const json::Value& v, const char* key,
                          std::uint64_t fallback, std::uint64_t min,
                          std::uint64_t max);
bool get_bool(const json::Value& v, const char* key, bool fallback);
}  // namespace jsonreq

struct RunSpec {
  std::string app = "ocean";
  ProblemScale scale = ProblemScale::Default;
  unsigned procs = 64;
  std::vector<unsigned> ppcs = {1, 2, 4, 8};
  std::size_t cache_kb = 0;  ///< per-processor KB; 0 = infinite
  unsigned assoc = 0;        ///< 0 = fully associative
  unsigned line_bytes = 64;
  ClusterStyle style = ClusterStyle::SharedCache;
  Cycles quantum = 32;
  bool hit_costs = false;
  /// Conservative cluster-parallel execution (--par / "parallel"). The
  /// worker count never changes results; the horizon does (and re-keys
  /// config digests).
  ParallelSpec parallel{};
  /// Queued-resource contention model (--contention; CLI-only — not part of
  /// the JSON schema, so to_json()/from_json() leave it at its default).
  ContentionSpec contention{};

  bool operator==(const RunSpec&) const = default;

  /// The MachineSpec rows of this spec, one per ppc, in request order.
  /// Unvalidated (build_unchecked): a bad row — e.g. ppc 3 with 64
  /// processors — must degrade inside run_sweep into a failed-row result,
  /// not abort the sweep before it starts.
  [[nodiscard]] std::vector<MachineSpec> configs() const;

  /// Canonical JSON object of the service-visible fields (always every
  /// field, sorted as declared; "parallel"/"par_horizon" only when set).
  [[nodiscard]] std::string to_json() const;

  /// Reads the service-visible fields out of a JSON object, applying this
  /// struct's defaults for absent ones. Ignores unknown fields (the service
  /// envelope adds its own); throws ConfigError on a bad value (unknown
  /// app, bad scale/style, out-of-range or wrongly-typed number).
  [[nodiscard]] static RunSpec from_json(const json::Value& v);

  /// The JSON field names from_json consumes (for enclosing protocols'
  /// unknown-field validation).
  [[nodiscard]] static const std::vector<std::string>& json_fields();
};

}  // namespace csim
