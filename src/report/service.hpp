// Sweep service core (docs/SERVICE.md): everything tools/csim_serve and
// tools/csim_merge do, factored into a socket-free library so the protocol,
// the cache, and the shard/merge algebra are unit-testable in-process.
//
// Three layers:
//
//  * Sharding — a sweep row belongs to shard `config_digest % N`. The
//    partition is a pure function of the row's identity digest
//    (src/obs/manifest.hpp), so N hosts given the same request agree on the
//    split without coordination, and tools/csim_merge can verify that the
//    per-shard artifacts it recombines are disjoint and complete.
//
//  * ResultCache — the two-tier digest-keyed result store: an in-memory map
//    in front of the PR 6 write-ahead journal directory
//    (src/report/journal.hpp). A warm repeat is served at memory speed; a
//    cold one costs a single O(1) file probe (`<dir>/<digest>.csj`). Every
//    hit is verified by recomputing the stored result digest before it is
//    served — the cache can cost a re-simulation, never a wrong answer.
//
//  * ServiceSession — the newline-framed JSON request/response protocol:
//    one request per line in, a stream of `row` lines out as rows complete
//    (cached rows first, then simulated rows via SweepRequest::on_row),
//    terminated by one `done` (or `error`) line. Malformed input becomes a
//    structured `error` response; the session — and the daemon above it —
//    stays up.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/report/experiment.hpp"
#include "src/report/journal.hpp"
#include "src/report/run_spec.hpp"

namespace csim::json {
class Value;
}

namespace csim::serve {

// ---------------------------------------------------------------- sharding

/// A `k/N` shard spec: this host owns the rows whose config digest maps to
/// shard `index` of `count`. The default (`count == 1`) is the unsharded
/// sweep — every row is ours.
struct ShardSpec {
  unsigned index = 0;
  unsigned count = 1;

  [[nodiscard]] bool active() const noexcept { return count > 1; }
  [[nodiscard]] std::string label() const;  ///< "k/N"
};

/// Parses "k/N" (0 <= k < N, N >= 1). Throws ConfigError otherwise.
[[nodiscard]] ShardSpec parse_shard(const std::string& spec);

/// The shard owning `config_digest` under an N-way split. Pure and stable:
/// the same digest and N always map to the same shard, every digest lands in
/// exactly one shard, and FNV-1a digests spread uniformly over small N.
[[nodiscard]] unsigned shard_of(std::uint64_t config_digest,
                                unsigned count) noexcept;

/// The rows of a config list owned by `shard`, in request order.
struct ShardSelection {
  std::vector<std::size_t> indices;    ///< global row indices kept
  std::vector<std::uint64_t> digests;  ///< parallel to indices
  std::size_t rows_total = 0;          ///< full sweep size before selection
};

[[nodiscard]] ShardSelection select_shard(
    const std::vector<MachineSpec>& configs, std::string_view app,
    ProblemScale scale, const ShardSpec& shard);

// ------------------------------------------------- shard merge artifacts

/// One row of a shard manifest: where a global sweep row landed in this
/// shard's CSV artifact.
struct ShardRowRef {
  std::size_t index = 0;       ///< global row index in the full sweep
  std::uint64_t digest = 0;    ///< config digest (the partition key)
  long csv_line = -1;          ///< 0-based data line in the shard CSV;
                               ///< -1 = failed row (not in the CSV)
};

/// The JSON sidecar `csim_cli --shard k/N --shard-out BASE` writes next to
/// its BASE.csv: enough provenance for csim_merge to reassemble the
/// unsharded CSV bit-exactly and to prove no row was dropped, duplicated,
/// or smuggled between shards.
struct ShardManifest {
  ShardSpec shard;
  std::size_t rows_total = 0;
  std::string csv_path;  ///< as written; resolved relative to the JSON file
  std::vector<ShardRowRef> rows;
};

/// Serializes the "csim.shard/1" JSON document.
[[nodiscard]] std::string write_shard_manifest(const ShardManifest& m);

/// Parses a "csim.shard/1" document; `origin` names the source in errors.
/// Throws ConfigError on anything malformed.
[[nodiscard]] ShardManifest parse_shard_manifest(std::string_view text,
                                                 const std::string& origin);

/// Recombines per-shard CSV artifacts into the byte stream an unsharded run
/// would have produced. `csv_contents` is parallel to `shards`. Validates,
/// throwing ConfigError on the first violation:
///   - every shard 0..N-1 present exactly once, all agreeing on N and on
///     the full sweep's row count;
///   - identical (byte-for-byte) CSV header lines;
///   - digest disjointness: each digest in exactly one shard, and in the
///     shard the partition function assigns it to;
///   - completeness: the global indices cover 0..rows_total-1 exactly once,
///     and every CSV data line is referenced exactly once.
[[nodiscard]] std::string merge_shard_csvs(
    const std::vector<ShardManifest>& shards,
    const std::vector<std::string>& csv_contents);

// ----------------------------------------------------------- result cache

/// Two-tier digest-keyed result cache: an in-memory map in front of the
/// write-ahead journal directory. Lookups verify the stored result digest
/// before serving (same rule as run_sweep's --resume); corrupt or stale
/// entries degrade to warnings and a re-simulation. Not thread-safe — the
/// service handles requests sequentially (rows parallelize inside
/// run_sweep, which appends to the journal itself).
class ResultCache {
 public:
  enum class Tier : std::uint8_t { Memory, Journal };

  struct Hit {
    SimResult result;
    std::uint32_t attempts = 1;
    Tier tier = Tier::Memory;
  };

  /// `journal_dir` is the disk tier; empty = memory-only cache.
  /// `max_entries` bounds the memory tier (LRU eviction); 0 = unbounded.
  explicit ResultCache(std::string journal_dir, std::size_t max_entries = 0);

  /// Looks up `digest` (memory first, then the journal file named by the
  /// digest). A journal hit is promoted into the memory tier. Appends any
  /// diagnostics (corrupt file, digest mismatch) to `warnings`.
  [[nodiscard]] std::optional<Hit> lookup(std::uint64_t digest,
                                          const MachineSpec& cfg,
                                          std::string_view app,
                                          ProblemScale scale,
                                          std::vector<std::string>* warnings);

  /// Inserts a completed row into the memory tier (run_sweep's write-ahead
  /// append is the journal tier's insert). Failed rows are never cached.
  void insert(const SimResult& r, std::uint32_t attempts);

  [[nodiscard]] std::size_t memory_entries() const noexcept {
    return memory_.size();
  }
  [[nodiscard]] std::size_t max_entries() const noexcept { return max_; }
  [[nodiscard]] const std::string& journal_dir() const noexcept {
    return dir_;
  }

 private:
  struct Entry {
    JournalRecord record;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_
  };
  /// Stores `rec` in the memory tier, touching its recency and evicting the
  /// least-recently-used entry when the bound is exceeded.
  void remember(std::uint64_t digest, JournalRecord rec);
  void touch(Entry& e);

  std::string dir_;
  std::size_t max_;
  std::unordered_map<std::uint64_t, Entry> memory_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
};

// -------------------------------------------------------- service session

/// One parsed sweep request: the shared RunSpec row description (same
/// builder path and defaults as csim_cli) plus the service envelope.
struct ServiceRequest : RunSpec {
  std::string id;       ///< echoed on every response line
  std::string csv_out;  ///< optional: write the sweep CSV artifact here
};

/// Parses a request object (already JSON-decoded). Throws ConfigError on an
/// unknown app, a non-positive or out-of-range number ("negative scale"),
/// a bad scale/style string, or a wrongly-typed field.
[[nodiscard]] ServiceRequest parse_service_request(const json::Value& v);

/// Builds the MachineSpec rows of a request (request order, unvalidated —
/// a bad row degrades inside run_sweep, exactly like csim_cli). Thin alias
/// for RunSpec::configs(), kept for call-site readability.
[[nodiscard]] std::vector<MachineSpec> configs_from_request(
    const ServiceRequest& req);

struct ServiceConfig {
  std::string journal_dir;  ///< two-tier cache backing; empty = memory only
  ShardSpec shard{};        ///< rows outside this shard are not simulated
  /// Upper bound on in-memory cache entries (--cache-max); 0 = unbounded.
  /// Eviction is least-recently-used: a journal directory keeps evicted
  /// rows served at one file probe, a memory-only daemon re-simulates.
  std::size_t cache_max = 0;
};

/// What handle_line tells the caller to do next (the daemon's accept loop).
enum class LineAction : std::uint8_t {
  Continue,  ///< keep reading lines
  Shutdown,  ///< a shutdown request was acknowledged; stop the daemon
};

/// The request/response state machine behind tools/csim_serve. One instance
/// lives as long as the daemon; its ResultCache carries results across
/// connections. Protocol errors never throw out of handle_line — they
/// become `error` response lines so one bad client line cannot take the
/// daemon down.
class ServiceSession {
 public:
  using Emit = std::function<void(const std::string& line)>;

  explicit ServiceSession(ServiceConfig cfg);

  /// Processes one newline-framed request. Emits zero or more `row` /
  /// `warning` lines followed by exactly one `done`, `error`, `pong`, or
  /// `bye` line (blank input emits nothing).
  LineAction handle_line(std::string_view line, const Emit& emit);

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  void run_request(const ServiceRequest& req, const Emit& emit);

  ServiceConfig cfg_;
  ResultCache cache_;
};

}  // namespace csim::serve
