#include "src/report/fault_injection.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace csim {

namespace {

/// splitmix64: a tiny, well-mixed stateless generator. Counter-based use
/// (hash of seed/digest/attempt) keeps fault decisions independent of
/// scheduling — the property the whole harness rests on.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic coin in [0, 1) for (seed, digest, attempt).
double coin(std::uint64_t seed, std::uint64_t digest,
            unsigned attempt) noexcept {
  std::uint64_t h = splitmix64(seed ^ splitmix64(digest));
  h = splitmix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool applies(const FaultSpec& f, unsigned attempt) noexcept {
  return f.fail_attempts == 0 || attempt <= f.fail_attempts;
}

[[noreturn]] void bad(const std::string& origin, std::size_t line,
                      const std::string& what) {
  throw ConfigError("fault plan " + origin + ":" + std::to_string(line) +
                    ": " + what);
}

double parse_double(const std::string& tok, const std::string& origin,
                    std::size_t line, const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    bad(origin, line, std::string(what) + ": not a number: '" + tok + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& tok, const std::string& origin,
                        std::size_t line, const char* what, int base) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, base);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    bad(origin, line, std::string(what) + ": not a number: '" + tok + "'");
  }
  return v;
}

}  // namespace

void FaultPlan::add(std::uint64_t config_digest, const FaultSpec& spec) {
  by_digest_[config_digest].push_back(spec);
}

void FaultPlan::add_wildcard(const FaultSpec& spec) {
  wildcard_.push_back(spec);
}

std::optional<FaultSpec> FaultPlan::lookup(std::uint64_t config_digest,
                                           unsigned attempt) const {
  const auto pick = [&](const std::vector<FaultSpec>& specs)
      -> std::optional<FaultSpec> {
    for (const FaultSpec& f : specs) {
      if (!applies(f, attempt)) continue;
      if (f.probability < 1.0 &&
          coin(seed_, config_digest, attempt) >= f.probability) {
        continue;
      }
      return f;
    }
    return std::nullopt;
  };
  if (auto it = by_digest_.find(config_digest); it != by_digest_.end()) {
    if (auto f = pick(it->second)) return f;
  }
  return pick(wildcard_);
}

FaultPlan FaultPlan::parse(std::string_view text, const std::string& origin) {
  FaultPlan plan;
  std::istringstream is{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::vector<std::string> tok;
    for (std::string t; tokens >> t;) tok.push_back(t);
    if (tok.empty()) continue;

    if (tok[0] == "seed") {
      if (tok.size() != 2) bad(origin, lineno, "seed takes one value");
      plan.set_seed(parse_u64(tok[1], origin, lineno, "seed", 10));
      continue;
    }
    if (tok.size() < 2) {
      bad(origin, lineno, "expected '<digest|*> <action> ...'");
    }
    const bool wildcard = tok[0] == "*";
    const std::uint64_t digest =
        wildcard ? 0 : parse_u64(tok[0], origin, lineno, "config digest", 16);

    FaultSpec f;
    const std::string& action = tok[1];
    if (action == "throw") {
      if (tok.size() < 3 || tok.size() > 5) {
        bad(origin, lineno, "throw takes: <kind> [attempts] [probability]");
      }
      f.action = FaultSpec::Action::Throw;
      try {
        f.error = sim_error_kind_from_string(tok[2]);
      } catch (const std::invalid_argument& e) {
        bad(origin, lineno, e.what());
      }
      if (tok.size() >= 4) {
        f.fail_attempts = static_cast<unsigned>(
            parse_u64(tok[3], origin, lineno, "attempts", 10));
      }
      if (tok.size() == 5) {
        f.probability = parse_double(tok[4], origin, lineno, "probability");
      }
    } else if (action == "stall") {
      if (tok.size() != 3) bad(origin, lineno, "stall takes: <seconds>");
      f.action = FaultSpec::Action::Stall;
      f.stall_seconds = parse_double(tok[2], origin, lineno, "seconds");
      if (f.stall_seconds < 0) bad(origin, lineno, "seconds must be >= 0");
    } else if (action == "torn-write") {
      if (tok.size() > 3) bad(origin, lineno, "torn-write takes: [keep]");
      f.action = FaultSpec::Action::TornWrite;
      if (tok.size() == 3) {
        f.keep_fraction = parse_double(tok[2], origin, lineno, "keep");
        if (f.keep_fraction < 0 || f.keep_fraction > 1) {
          bad(origin, lineno, "keep must be in [0, 1]");
        }
      }
    } else {
      bad(origin, lineno, "unknown action '" + action +
                              "' (expected throw, stall, or torn-write)");
    }
    if (f.probability < 0 || f.probability > 1) {
      bad(origin, lineno, "probability must be in [0, 1]");
    }
    if (wildcard) {
      plan.add_wildcard(f);
    } else {
      plan.add(digest, f);
    }
  }
  return plan;
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ConfigError("fault plan: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), path);
}

}  // namespace csim
