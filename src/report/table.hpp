// Minimal ASCII table renderer for bench/experiment output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csim {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with column auto-sizing; first column left-aligned, the rest
  /// right-aligned (numeric convention).
  [[nodiscard]] std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("3.142").
std::string fmt(double v, int precision = 3);

/// Percent formatting ("97.7").
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace csim
