// Text rendering of the paper's stacked-bar execution-time figures.
//
// Every figure in the paper's evaluation (Figures 2-8) is a set of bars,
// one per (cache size, cluster size) point, normalized to the 1-processor
// cluster of the same cache size, split into cpu / load / merge / sync.
#pragma once

#include <string>
#include <vector>

#include "src/core/stats.hpp"

namespace csim {

struct FigureBar {
  std::string label;     ///< e.g. "2p" or "16k/4p"
  TimeBuckets buckets;   ///< aggregated over processors
  bool new_group = false;  ///< start of a new normalization group (cache size)
};

/// Renders bars as the paper's stacked percentages plus an ASCII bar.
/// Bars are normalized to the first bar of their group (==100).
std::string render_figure(const std::string& title,
                          const std::vector<FigureBar>& bars);

/// Builds bars from a sweep of results over cluster sizes (single group).
std::vector<FigureBar> bars_from_sweep(const std::vector<SimResult>& sweep);

}  // namespace csim
