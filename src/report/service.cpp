#include "src/report/service.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/apps/app.hpp"
#include "src/core/atomic_file.hpp"
#include "src/core/error.hpp"
#include "src/obs/manifest.hpp"
#include "src/report/json.hpp"

namespace csim::serve {

namespace {

/// Strict unsigned parse for shard specs ("03" is fine, "3x" is not).
unsigned long parse_unsigned(const std::string& what, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    throw ConfigError(what + ": not a number: '" + s + "'");
  }
  return n;
}

}  // namespace

// ---------------------------------------------------------------- sharding

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardSpec parse_shard(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    throw ConfigError("--shard: expected k/N, got '" + spec + "'");
  }
  ShardSpec s;
  const unsigned long k = parse_unsigned("--shard", spec.substr(0, slash));
  const unsigned long n = parse_unsigned("--shard", spec.substr(slash + 1));
  if (n == 0 || n > 4096) {
    throw ConfigError("--shard: count out of range (1..4096): '" + spec +
                      "'");
  }
  if (k >= n) {
    throw ConfigError("--shard: index must satisfy 0 <= k < N: '" + spec +
                      "'");
  }
  s.index = static_cast<unsigned>(k);
  s.count = static_cast<unsigned>(n);
  return s;
}

unsigned shard_of(std::uint64_t config_digest, unsigned count) noexcept {
  if (count <= 1) return 0;
  // FNV-1a output is well mixed, so a plain modulus spreads uniformly.
  return static_cast<unsigned>(config_digest % count);
}

ShardSelection select_shard(const std::vector<MachineSpec>& configs,
                            std::string_view app, ProblemScale scale,
                            const ShardSpec& shard) {
  ShardSelection sel;
  sel.rows_total = configs.size();
  sel.indices.reserve(configs.size());
  sel.digests.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::uint64_t d = obs::config_digest(configs[i], app, scale);
    if (shard_of(d, shard.count) != shard.index) continue;
    sel.indices.push_back(i);
    sel.digests.push_back(d);
  }
  return sel;
}

// ------------------------------------------------- shard merge artifacts

std::string write_shard_manifest(const ShardManifest& m) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"csim.shard/1\",\n";
  os << "  \"shard\": {\"index\": " << m.shard.index
     << ", \"count\": " << m.shard.count << "},\n";
  os << "  \"rows_total\": " << m.rows_total << ",\n";
  os << "  \"csv\": " << json::quoted(m.csv_path) << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < m.rows.size(); ++i) {
    const ShardRowRef& r = m.rows[i];
    os << "    {\"index\": " << r.index << ", \"digest\": \""
       << obs::digest_hex(r.digest) << "\", \"csv_line\": " << r.csv_line
       << "}" << (i + 1 < m.rows.size() ? "," : "") << '\n';
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

namespace {

/// Field accessors over a parsed shard manifest; every failure names the
/// originating file and field.
[[noreturn]] void manifest_fail(const std::string& origin,
                                const std::string& what) {
  throw ConfigError("shard manifest " + origin + ": " + what);
}

double require_number(const json::Value& v, const std::string& key,
                      const std::string& origin) {
  const json::Value* f = v.find(key);
  if (f == nullptr || !f->is_number()) {
    manifest_fail(origin, "missing or non-numeric field '" + key + "'");
  }
  const double d = f->as_number();
  if (d != std::floor(d)) {
    manifest_fail(origin, "field '" + key + "' is not an integer");
  }
  return d;
}

std::uint64_t parse_digest_hex(const std::string& hex,
                               const std::string& origin) {
  if (hex.size() != 16 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    manifest_fail(origin, "bad digest '" + hex + "'");
  }
  return std::strtoull(hex.c_str(), nullptr, 16);
}

}  // namespace

ShardManifest parse_shard_manifest(std::string_view text,
                                   const std::string& origin) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const ConfigError& e) {
    manifest_fail(origin, e.what());
  }
  if (!doc.is_object()) manifest_fail(origin, "document is not an object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "csim.shard/1") {
    manifest_fail(origin, "schema is not csim.shard/1");
  }
  ShardManifest m;
  const json::Value* shard = doc.find("shard");
  if (shard == nullptr || !shard->is_object()) {
    manifest_fail(origin, "missing 'shard' object");
  }
  const double idx = require_number(*shard, "index", origin);
  const double cnt = require_number(*shard, "count", origin);
  if (cnt < 1 || cnt > 4096 || idx < 0 || idx >= cnt) {
    manifest_fail(origin, "shard index/count out of range");
  }
  m.shard.index = static_cast<unsigned>(idx);
  m.shard.count = static_cast<unsigned>(cnt);
  const double total = require_number(doc, "rows_total", origin);
  if (total < 0) manifest_fail(origin, "rows_total is negative");
  m.rows_total = static_cast<std::size_t>(total);
  const json::Value* csv = doc.find("csv");
  if (csv == nullptr || !csv->is_string() || csv->as_string().empty()) {
    manifest_fail(origin, "missing 'csv' path");
  }
  m.csv_path = csv->as_string();
  const json::Value* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    manifest_fail(origin, "missing 'rows' array");
  }
  for (const json::Value& rv : rows->as_array()) {
    if (!rv.is_object()) manifest_fail(origin, "row entry is not an object");
    ShardRowRef ref;
    const double index = require_number(rv, "index", origin);
    if (index < 0) manifest_fail(origin, "row index is negative");
    ref.index = static_cast<std::size_t>(index);
    const json::Value* dig = rv.find("digest");
    if (dig == nullptr || !dig->is_string()) {
      manifest_fail(origin, "row missing 'digest'");
    }
    ref.digest = parse_digest_hex(dig->as_string(), origin);
    const double line = require_number(rv, "csv_line", origin);
    if (line < -1) manifest_fail(origin, "row csv_line below -1");
    ref.csv_line = static_cast<long>(line);
    m.rows.push_back(ref);
  }
  return m;
}

namespace {

/// Lines of a CSV blob, without their newlines; a trailing newline does not
/// produce a final empty line.
std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string merge_shard_csvs(const std::vector<ShardManifest>& shards,
                             const std::vector<std::string>& csv_contents) {
  if (shards.empty()) throw ConfigError("merge: no shard manifests given");
  if (csv_contents.size() != shards.size()) {
    throw ConfigError("merge: shard/CSV count mismatch");
  }
  const unsigned count = shards[0].shard.count;
  const std::size_t rows_total = shards[0].rows_total;
  if (shards.size() != count) {
    throw ConfigError("merge: have " + std::to_string(shards.size()) +
                      " shards but the spec says " + std::to_string(count));
  }
  std::vector<char> shard_seen(count, 0);
  std::vector<std::vector<std::string_view>> lines(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardManifest& m = shards[s];
    if (m.shard.count != count) {
      throw ConfigError("merge: shard " + m.shard.label() +
                        " disagrees on the shard count");
    }
    if (m.rows_total != rows_total) {
      throw ConfigError("merge: shard " + m.shard.label() +
                        " disagrees on the full sweep's row count");
    }
    if (shard_seen[m.shard.index] != 0) {
      throw ConfigError("merge: shard " + m.shard.label() + " given twice");
    }
    shard_seen[m.shard.index] = 1;
    lines[s] = split_lines(csv_contents[s]);
    if (lines[s].empty()) {
      throw ConfigError("merge: shard " + m.shard.label() +
                        " CSV has no header line");
    }
    if (lines[s][0] != lines[0][0]) {
      throw ConfigError("merge: shard " + m.shard.label() +
                        " CSV header differs from shard " +
                        shards[0].shard.label() + "'s (schema drift)");
    }
  }

  std::unordered_map<std::uint64_t, unsigned> digest_owner;
  std::vector<const std::string_view*> out_rows(rows_total, nullptr);
  std::vector<char> covered(rows_total, 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardManifest& m = shards[s];
    const std::size_t data_lines = lines[s].size() - 1;
    std::vector<char> used(data_lines, 0);
    for (const ShardRowRef& ref : m.rows) {
      if (shard_of(ref.digest, count) != m.shard.index) {
        throw ConfigError("merge: digest " + obs::digest_hex(ref.digest) +
                          " does not belong to shard " + m.shard.label());
      }
      if (!digest_owner.emplace(ref.digest, m.shard.index).second) {
        throw ConfigError("merge: digest " + obs::digest_hex(ref.digest) +
                          " appears in more than one shard");
      }
      if (ref.index >= rows_total) {
        throw ConfigError("merge: row index " + std::to_string(ref.index) +
                          " exceeds rows_total");
      }
      if (covered[ref.index] != 0) {
        throw ConfigError("merge: row index " + std::to_string(ref.index) +
                          " claimed by two shards");
      }
      covered[ref.index] = 1;
      if (ref.csv_line < 0) continue;  // failed row: not in any CSV
      const auto line = static_cast<std::size_t>(ref.csv_line);
      if (line >= data_lines) {
        throw ConfigError("merge: shard " + m.shard.label() +
                          " references CSV line " + std::to_string(line) +
                          " beyond its " + std::to_string(data_lines) +
                          " data lines");
      }
      if (used[line] != 0) {
        throw ConfigError("merge: shard " + m.shard.label() + " CSV line " +
                          std::to_string(line) + " referenced twice");
      }
      used[line] = 1;
      out_rows[ref.index] = &lines[s][1 + line];
    }
    for (std::size_t l = 0; l < data_lines; ++l) {
      if (used[l] == 0) {
        throw ConfigError("merge: shard " + m.shard.label() + " CSV line " +
                          std::to_string(l) +
                          " is not referenced by its manifest");
      }
    }
  }
  for (std::size_t i = 0; i < rows_total; ++i) {
    if (covered[i] == 0) {
      throw ConfigError("merge: row index " + std::to_string(i) +
                        " is missing from every shard");
    }
  }

  std::string out;
  out.reserve(csv_contents[0].size() * shards.size());
  out.append(lines[0][0]);
  out.push_back('\n');
  for (std::size_t i = 0; i < rows_total; ++i) {
    if (out_rows[i] == nullptr) continue;  // failed row, skipped like write_csv
    out.append(*out_rows[i]);
    out.push_back('\n');
  }
  return out;
}

// ----------------------------------------------------------- result cache

ResultCache::ResultCache(std::string journal_dir, std::size_t max_entries)
    : dir_(std::move(journal_dir)), max_(max_entries) {}

void ResultCache::touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru);  // iterators stay valid
}

void ResultCache::remember(std::uint64_t digest, JournalRecord rec) {
  const auto it = memory_.find(digest);
  if (it != memory_.end()) {
    it->second.record = std::move(rec);
    touch(it->second);
    return;
  }
  lru_.push_front(digest);
  memory_.emplace(digest, Entry{std::move(rec), lru_.begin()});
  if (max_ != 0 && memory_.size() > max_) {
    memory_.erase(lru_.back());
    lru_.pop_back();
  }
}

std::optional<ResultCache::Hit> ResultCache::lookup(
    std::uint64_t digest, const MachineSpec& cfg, std::string_view app,
    ProblemScale scale, std::vector<std::string>* warnings) {
  const auto warn = [&](const std::string& w) {
    if (warnings != nullptr) warnings->push_back(w);
  };
  const auto hit_from = [&](const JournalRecord& rec,
                            Tier tier) -> std::optional<Hit> {
    if (rec.app_name != app || rec.scale != scale) {
      warn("cache: record " + obs::digest_hex(digest) +
           " names a different app/scale; re-simulating");
      return std::nullopt;
    }
    SimResult r = journal_record_to_result(rec, cfg);
    if (obs::result_digest(r) != rec.result_digest) {
      warn("cache: record " + obs::digest_hex(digest) +
           " fails result-digest verification; re-simulating");
      return std::nullopt;
    }
    return Hit{std::move(r), rec.attempts, tier};
  };

  const auto mem = memory_.find(digest);
  if (mem != memory_.end()) {
    touch(mem->second);
    return hit_from(mem->second.record, Tier::Memory);
  }
  if (dir_.empty()) return std::nullopt;

  // The journal names record files by digest, so the disk tier is one file
  // probe — no directory scan however large the cache grows.
  const std::string path =
      (std::filesystem::path(dir_) / (obs::digest_hex(digest) + ".csj"))
          .string();
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;  // cold: never simulated here before
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  if (bytes.empty()) {
    warn("cache: " + path +
         ": empty record file (crash between create and first write?); "
         "re-simulating");
    return std::nullopt;
  }
  JournalLoad load = decode_journal_records(bytes, path);
  for (std::string& w : load.warnings) warn(std::move(w));
  for (JournalRecord& rec : load.records) {
    if (rec.config_digest != digest) {
      warn("cache: " + path + ": record digest " +
           obs::digest_hex(rec.config_digest) +
           " does not match its file name; skipped");
      continue;
    }
    std::optional<Hit> hit = hit_from(rec, Tier::Journal);
    if (hit) {
      remember(digest, std::move(rec));  // promote to the memory tier
      return hit;
    }
    return std::nullopt;  // verified false — a fresh run will overwrite it
  }
  return std::nullopt;
}

void ResultCache::insert(const SimResult& r, std::uint32_t attempts) {
  if (!r.ok) return;
  JournalRecord rec = journal_record_from_result(r, attempts);
  const std::uint64_t digest = rec.config_digest;
  remember(digest, std::move(rec));
}

// -------------------------------------------------------- service session

namespace {

/// Fields of the service envelope, on top of RunSpec::json_fields().
constexpr const char* kEnvelopeFields[] = {"type", "id", "csv_out"};

}  // namespace

ServiceRequest parse_service_request(const json::Value& v) {
  if (!v.is_object()) jsonreq::fail("document is not an object");
  const std::vector<std::string>& spec_fields = RunSpec::json_fields();
  for (const auto& [key, value] : v.as_object()) {
    const bool known =
        std::find(spec_fields.begin(), spec_fields.end(), key) !=
            spec_fields.end() ||
        std::any_of(std::begin(kEnvelopeFields), std::end(kEnvelopeFields),
                    [&k = key](const char* f) { return k == f; });
    if (!known) jsonreq::fail("unknown field '" + key + "'");
  }
  ServiceRequest req;
  static_cast<RunSpec&>(req) = RunSpec::from_json(v);
  req.id = jsonreq::get_string(v, "id", "");
  req.csv_out = jsonreq::get_string(v, "csv_out", "");
  return req;
}

std::vector<MachineSpec> configs_from_request(const ServiceRequest& req) {
  return req.configs();
}

namespace {

std::string error_line(const std::string& id, const std::string& what) {
  return "{\"type\":\"error\",\"id\":" + json::quoted(id) +
         ",\"error\":" + json::quoted(what) + "}";
}

std::string warning_line(const std::string& id, const std::string& what) {
  return "{\"type\":\"warning\",\"id\":" + json::quoted(id) +
         ",\"message\":" + json::quoted(what) + "}";
}

std::string row_line(const std::string& id, std::size_t global_index,
                     std::uint64_t digest, const SimResult& r,
                     const RowOutcome& oc, bool from_cache,
                     const char* tier) {
  std::ostringstream os;
  os << "{\"type\":\"row\",\"id\":" << json::quoted(id)
     << ",\"index\":" << global_index << ",\"digest\":\""
     << obs::digest_hex(digest) << "\",\"app\":" << json::quoted(r.app_name)
     << ",\"scale\":\"" << to_string(r.scale) << "\",\"procs\":"
     << r.config.num_procs << ",\"ppc\":" << r.config.procs_per_cluster
     << ",\"status\":\"" << to_string(oc.status) << "\",\"attempts\":"
     << oc.attempts << ",\"from_cache\":" << (from_cache ? "true" : "false");
  if (tier != nullptr) os << ",\"tier\":\"" << tier << "\"";
  if (r.ok) {
    const TimeBuckets a = r.aggregate();
    os << ",\"wall_time\":" << r.wall_time << ",\"events\":" << r.events
       << ",\"cpu\":" << a.cpu << ",\"load\":" << a.load
       << ",\"merge\":" << a.merge << ",\"sync\":" << a.sync
       << ",\"contention\":" << a.contention
       << ",\"reads\":" << r.totals.reads << ",\"writes\":" << r.totals.writes
       << ",\"read_misses\":" << r.totals.read_misses
       << ",\"write_misses\":" << r.totals.write_misses;
    char host[40];
    std::snprintf(host, sizeof host, ",\"host_seconds\":%.6f",
                  r.host_seconds);
    os << host << ",\"result_digest\":\""
       << obs::digest_hex(obs::result_digest(r)) << "\"";
  } else {
    os << ",\"error_kind\":" << json::quoted(r.error_kind)
       << ",\"error\":" << json::quoted(r.error);
  }
  os << "}";
  return os.str();
}

}  // namespace

ServiceSession::ServiceSession(ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.journal_dir, cfg_.cache_max) {}

LineAction ServiceSession::handle_line(std::string_view line,
                                       const Emit& emit) {
  // Blank frames (keep-alives, trailing newlines) are ignored, not errors.
  if (line.find_first_not_of(" \t\r\n") == std::string_view::npos) {
    return LineAction::Continue;
  }
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const std::exception& e) {
    emit(error_line("", std::string("malformed frame: ") + e.what()));
    return LineAction::Continue;
  }
  // Best-effort id for error responses even when validation fails later.
  std::string id;
  if (const json::Value* f = doc.find("id"); f != nullptr && f->is_string()) {
    id = f->as_string();
  }
  const json::Value* type = doc.find("type");
  const std::string kind =
      type != nullptr && type->is_string() ? type->as_string() : "sweep";
  if (kind == "ping") {
    emit("{\"type\":\"pong\",\"id\":" + json::quoted(id) + "}");
    return LineAction::Continue;
  }
  if (kind == "shutdown") {
    emit("{\"type\":\"bye\",\"id\":" + json::quoted(id) + "}");
    return LineAction::Shutdown;
  }
  if (kind != "sweep") {
    emit(error_line(id, "unknown request type '" + kind + "'"));
    return LineAction::Continue;
  }
  try {
    const ServiceRequest req = parse_service_request(doc);
    run_request(req, emit);
  } catch (const std::exception& e) {
    emit(error_line(id, e.what()));
  }
  return LineAction::Continue;
}

void ServiceSession::run_request(const ServiceRequest& sreq,
                                 const Emit& emit) {
  // The app's canonical identity keys every digest; the registry name was
  // validated at parse time, so this cannot throw for an unknown app.
  std::string app_name;
  ProblemScale scale = sreq.scale;
  {
    const std::unique_ptr<Program> probe = make_app(sreq.app, sreq.scale);
    app_name = probe->name();
    scale = probe->scale();
  }
  const std::vector<MachineSpec> configs = configs_from_request(sreq);
  const ShardSelection sel =
      select_shard(configs, app_name, scale, cfg_.shard);

  struct Slot {
    std::size_t global = 0;
    std::uint64_t digest = 0;
    SimResult result;
    RowOutcome outcome;
  };
  std::vector<Slot> slots(sel.indices.size());
  std::vector<std::size_t> misses;  // slot indices that must simulate
  std::size_t memory_hits = 0;
  std::size_t journal_hits = 0;
  std::vector<std::string> warnings;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    Slot& s = slots[i];
    s.global = sel.indices[i];
    s.digest = sel.digests[i];
    std::optional<ResultCache::Hit> hit =
        cache_.lookup(s.digest, configs[s.global], app_name, scale, &warnings);
    if (!hit) {
      misses.push_back(i);
      continue;
    }
    const bool journal_tier = hit->tier == ResultCache::Tier::Journal;
    (journal_tier ? journal_hits : memory_hits) += 1;
    s.result = std::move(hit->result);
    s.outcome = RowOutcome{RowOutcome::Status::Ok, hit->attempts,
                           /*from_journal=*/journal_tier, s.digest};
    emit(row_line(sreq.id, s.global, s.digest, s.result, s.outcome,
                  /*from_cache=*/true, journal_tier ? "journal" : "memory"));
  }
  for (const std::string& w : warnings) emit(warning_line(sreq.id, w));

  if (!misses.empty()) {
    SweepRequest req;
    req.make_app = [app = sreq.app, req_scale = sreq.scale] {
      return make_app(app, req_scale);
    };
    req.configs.reserve(misses.size());
    for (std::size_t i : misses) req.configs.push_back(configs[slots[i].global]);
    // Write-ahead journal: rows are durable (and future cache hits) the
    // moment they complete, so a kill -9 mid-sweep loses at most in-flight
    // rows — the CI service-smoke job proves this end to end.
    req.policy.journal_dir = cfg_.journal_dir;
    req.on_row = [&](std::size_t k, const SimResult& r,
                     const RowOutcome& oc) {
      Slot& s = slots[misses[k]];
      s.result = r;
      s.outcome = oc;
      cache_.insert(r, oc.attempts);
      emit(row_line(sreq.id, s.global, s.digest, s.result, s.outcome,
                    /*from_cache=*/false, nullptr));
    };
    const SweepResult out = run_sweep(req);
    for (const std::string& w : out.journal_warnings) {
      emit(warning_line(sreq.id, w));
    }
  }

  std::vector<SimResult> ordered;
  ordered.reserve(slots.size());
  std::size_t failures = 0;
  for (Slot& s : slots) {
    if (!s.result.ok) ++failures;
    ordered.push_back(std::move(s.result));
  }
  if (!sreq.csv_out.empty()) {
    atomic_write_file(sreq.csv_out,
                      [&](std::ostream& os) { write_csv(os, ordered); });
  }

  std::ostringstream done;
  done << "{\"type\":\"done\",\"id\":" << json::quoted(sreq.id)
       << ",\"app\":" << json::quoted(app_name) << ",\"rows_total\":"
       << sel.rows_total << ",\"rows_in_shard\":" << slots.size()
       << ",\"cache_hits\":" << memory_hits + journal_hits
       << ",\"memory_hits\":" << memory_hits
       << ",\"journal_hits\":" << journal_hits << ",\"failures\":" << failures
       << ",\"shard\":\"" << cfg_.shard.label() << "\",\"sweep_digest\":\""
       << obs::digest_hex(obs::sweep_digest(ordered)) << "\"";
  if (!sreq.csv_out.empty()) {
    done << ",\"csv\":" << json::quoted(sreq.csv_out);
  }
  done << "}";
  emit(done.str());
}

}  // namespace csim::serve
