#include "src/report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace csim {

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      if (c == 0) {
        os << v << std::string(width[c] - v.size(), ' ');
      } else {
        os << "  " << std::string(width[c] - v.size(), ' ') << v;
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision);
}

}  // namespace csim
