#include "src/report/run_spec.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/apps/app.hpp"
#include "src/core/error.hpp"
#include "src/report/json.hpp"

namespace csim {

namespace jsonreq {

void fail(const std::string& what) { throw ConfigError("request: " + what); }

std::string get_string(const json::Value& v, const char* key,
                       std::string fallback) {
  const json::Value* f = v.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_string()) {
    fail(std::string("field '") + key + "' must be a string");
  }
  return f->as_string();
}

std::uint64_t as_integer(const json::Value& f, const char* key,
                         std::uint64_t min, std::uint64_t max) {
  if (!f.is_number()) {
    fail(std::string("field '") + key + "' must be a number");
  }
  const double d = f.as_number();
  if (d != std::floor(d) || d < 0) {
    fail(std::string("field '") + key + "' must be a non-negative integer");
  }
  const auto n = static_cast<std::uint64_t>(d);
  if (n < min || n > max) {
    fail(std::string("field '") + key + "' out of range (" +
         std::to_string(min) + ".." + std::to_string(max) + ")");
  }
  return n;
}

std::uint64_t get_integer(const json::Value& v, const char* key,
                          std::uint64_t fallback, std::uint64_t min,
                          std::uint64_t max) {
  const json::Value* f = v.find(key);
  if (f == nullptr) return fallback;
  return as_integer(*f, key, min, max);
}

bool get_bool(const json::Value& v, const char* key, bool fallback) {
  const json::Value* f = v.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_bool()) {
    fail(std::string("field '") + key + "' must be a boolean");
  }
  return f->as_bool();
}

}  // namespace jsonreq

std::vector<MachineSpec> RunSpec::configs() const {
  std::vector<MachineSpec> out;
  out.reserve(ppcs.size());
  for (unsigned ppc : ppcs) {
    out.push_back(MachineSpecBuilder{}
                      .procs(procs)
                      .procs_per_cluster(ppc)
                      .cache_kb(cache_kb)
                      .associativity(assoc)
                      .line_bytes(line_bytes)
                      .style(style)
                      .runahead_quantum(quantum)
                      .model_shared_hit_costs(hit_costs)
                      .parallel(parallel)
                      .contention(contention)
                      .build_unchecked());
  }
  return out;
}

std::string RunSpec::to_json() const {
  std::ostringstream os;
  os << "{\"app\":" << json::quoted(app) << ",\"scale\":\"" << to_string(scale)
     << "\",\"procs\":" << procs << ",\"ppc\":[";
  for (std::size_t i = 0; i < ppcs.size(); ++i) {
    if (i != 0) os << ',';
    os << ppcs[i];
  }
  os << "],\"cache_kb\":" << cache_kb << ",\"assoc\":" << assoc
     << ",\"line_bytes\":" << line_bytes << ",\"style\":\""
     << (style == ClusterStyle::SharedMemory ? "memory" : "cache")
     << "\",\"quantum\":" << quantum << ",\"hit_costs\":"
     << (hit_costs ? "true" : "false");
  if (parallel.enabled()) {
    os << ",\"parallel\":" << parallel.workers;
    if (parallel.horizon_override != 0) {
      os << ",\"par_horizon\":" << parallel.horizon_override;
    }
  }
  os << '}';
  return os.str();
}

RunSpec RunSpec::from_json(const json::Value& v) {
  if (!v.is_object()) jsonreq::fail("document is not an object");
  RunSpec spec;
  spec.app = jsonreq::get_string(v, "app", spec.app);
  const std::vector<std::string> names = app_names();
  if (std::find(names.begin(), names.end(), spec.app) == names.end()) {
    jsonreq::fail("unknown app '" + spec.app + "'");
  }
  const std::string scale = jsonreq::get_string(v, "scale", "default");
  if (scale == "test") {
    spec.scale = ProblemScale::Test;
  } else if (scale == "default") {
    spec.scale = ProblemScale::Default;
  } else if (scale == "paper") {
    spec.scale = ProblemScale::Paper;
  } else {
    jsonreq::fail("field 'scale' must be test, default, or paper");
  }
  spec.procs =
      static_cast<unsigned>(jsonreq::get_integer(v, "procs", 64, 1, 4096));
  if (const json::Value* ppc = v.find("ppc"); ppc != nullptr) {
    if (!ppc->is_array() || ppc->as_array().empty()) {
      jsonreq::fail("field 'ppc' must be a non-empty array");
    }
    spec.ppcs.clear();
    for (const json::Value& e : ppc->as_array()) {
      spec.ppcs.push_back(
          static_cast<unsigned>(jsonreq::as_integer(e, "ppc", 1, 4096)));
    }
  }
  spec.cache_kb = jsonreq::get_integer(v, "cache_kb", 0, 0, 1u << 20);
  spec.assoc =
      static_cast<unsigned>(jsonreq::get_integer(v, "assoc", 0, 0, 4096));
  spec.line_bytes =
      static_cast<unsigned>(jsonreq::get_integer(v, "line_bytes", 64, 1, 4096));
  const std::string style = jsonreq::get_string(v, "style", "cache");
  if (style == "cache") {
    spec.style = ClusterStyle::SharedCache;
  } else if (style == "memory") {
    spec.style = ClusterStyle::SharedMemory;
  } else {
    jsonreq::fail("field 'style' must be cache or memory");
  }
  spec.quantum = jsonreq::get_integer(v, "quantum", 32, 1, 1u << 30);
  spec.hit_costs = jsonreq::get_bool(v, "hit_costs", false);
  spec.parallel.workers =
      static_cast<unsigned>(jsonreq::get_integer(v, "parallel", 0, 0, 4096));
  spec.parallel.horizon_override =
      jsonreq::get_integer(v, "par_horizon", 0, 0, 1u << 30);
  if (spec.parallel.horizon_override != 0 && !spec.parallel.enabled()) {
    jsonreq::fail("field 'par_horizon' requires field 'parallel'");
  }
  return spec;
}

const std::vector<std::string>& RunSpec::json_fields() {
  static const std::vector<std::string> fields = {
      "app",        "scale", "procs",   "ppc",       "cache_kb", "assoc",
      "line_bytes", "style", "quantum", "hit_costs", "parallel", "par_horizon"};
  return fields;
}

}  // namespace csim
