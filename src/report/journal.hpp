// Crash-safe sweep journal: a write-ahead store of completed sweep rows,
// keyed by config digest (src/obs/manifest.hpp), that lets a killed sweep
// resume without re-simulating finished work (docs/ROBUSTNESS.md §6).
//
// Layout: one record file per row, `<journal_dir>/<16-hex-digest>.csj`,
// written atomically (temp + fsync + rename), so a crash mid-append leaves
// either the previous record or none — never a half-written file at the
// final name. Each record is self-delimiting:
//
//   magic "CSJL" (4) | version u8 | payload_len u64 LE | payload_fnv u64 LE
//   | payload bytes
//
// The loader treats every *.csj file as a (possibly concatenated) record
// sequence and survives anything a crash or fault injector can produce:
// truncated frames, checksum mismatches, garbage magic, duplicate digests.
// Bad records are skipped with a warning and the sweep simply re-simulates
// those rows — the journal is a cache, never a source of wrong answers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/stats.hpp"

namespace csim {

/// One journaled row: the deterministic payload of an ok SimResult plus the
/// identity digests that key and verify it and the attempt count that
/// produced it (replayed into the resumed sweep's CSV for bit-exactness).
struct JournalRecord {
  std::uint64_t config_digest = 0;  ///< obs::config_digest(cfg, app, scale)
  std::uint64_t result_digest = 0;  ///< obs::result_digest of the stored row
  std::string app_name;
  ProblemScale scale = ProblemScale::Default;
  Cycles wall_time = 0;
  std::uint64_t events = 0;
  double host_seconds = 0;
  std::uint32_t attempts = 1;
  /// Interval-sampling provenance (version 2): whether the row's timing was
  /// extrapolated, from what fraction of references, over how many detailed
  /// references. All zero for unsampled rows.
  bool sampled = false;
  double coverage = 0;
  std::uint64_t detailed_refs = 0;
  MissCounters totals{};
  std::vector<TimeBuckets> per_proc;
  std::vector<MissCounters> per_cluster;
};

/// Outcome of decoding a journal: the surviving records (first valid record
/// wins per config digest) and one warning per skipped/rejected record.
struct JournalLoad {
  std::vector<JournalRecord> records;
  std::vector<std::string> warnings;
};

/// Serializes `rec` into its on-disk frame (header + checksummed payload).
/// Exposed so the fault injector can emulate torn writes by persisting a
/// prefix of the real bytes.
[[nodiscard]] std::string encode_journal_record(const JournalRecord& rec);

/// Decodes a byte buffer holding zero or more concatenated record frames.
/// `origin` names the source (file path) in warnings. Never throws on bad
/// data — corruption becomes warnings, not errors.
[[nodiscard]] JournalLoad decode_journal_records(std::string_view bytes,
                                                 const std::string& origin);

/// Atomically writes `rec` to `<dir>/<digest_hex>.csj`, creating `dir` if
/// needed. Throws std::runtime_error on I/O failure.
void append_journal_record(const std::string& dir, const JournalRecord& rec);

/// Loads every `*.csj` record under `dir` (duplicates deduplicated across
/// files, first valid wins). A missing directory is an empty journal, not an
/// error — resuming into a fresh directory must work.
[[nodiscard]] JournalLoad load_journal(const std::string& dir);

/// Builds the journal record for a completed row. Precondition: r.ok.
[[nodiscard]] JournalRecord journal_record_from_result(const SimResult& r,
                                                       std::uint32_t attempts);

/// Reconstitutes the SimResult for `cfg` from a journal record. The machine
/// spec comes from the live request (the journal stores only its digest);
/// callers verify identity by recomputing the result digest afterwards.
[[nodiscard]] SimResult journal_record_to_result(const JournalRecord& rec,
                                                 const MachineSpec& cfg);

}  // namespace csim
