// Experiment matrix runner: sweeps machine configurations over applications
// and collects SimResults for the figure/table generators.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

// CSIM_DEPRECATED: [[deprecated]] only when the build opts in
// (-DCSIM_WARN_DEPRECATED=ON). Downstream code migrates on its own schedule;
// CI's deprecation job (warnings-as-errors) keeps the tree itself clean.
#if defined(CSIM_WARN_DEPRECATED)
#define CSIM_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define CSIM_DEPRECATED(msg)
#endif

namespace csim {

class Observer;

/// The paper's fixed experimental frame: 64 processors, 64-byte lines,
/// fully associative LRU cluster caches, Table 1 latencies.
MachineSpec paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc);

/// Builds one Observer per sweep row (src/obs/observer.hpp); may return null
/// to leave that row unobserved. Called with the row's configuration and its
/// index in the sweep. Each row gets its own instance because rows run
/// concurrently; the runner keeps it alive for the row's whole simulation.
using ObserverFactory = std::function<std::unique_ptr<Observer>(
    const MachineSpec& cfg, std::size_t index)>;

/// Declarative description of one sweep: a fresh app per row (programs are
/// stateful), the machine spec of every row, and optional per-row
/// observability. The single entry point every driver builds — replaces the
/// old run_configs overload set.
struct SweepRequest {
  std::function<std::unique_ptr<Program>()> make_app;
  std::vector<MachineSpec> configs;
  ObserverFactory make_observer{};  ///< optional; null = unobserved rows
};

/// Outcome of run_sweep: one SimResult per requested config, request order.
struct SweepResult {
  std::vector<SimResult> rows;

  [[nodiscard]] std::size_t failures() const noexcept;
  [[nodiscard]] bool all_ok() const noexcept { return failures() == 0; }

  // The row collection is the payload; iterate it directly.
  [[nodiscard]] auto begin() const noexcept { return rows.begin(); }
  [[nodiscard]] auto end() const noexcept { return rows.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows.size(); }
};

/// Parallel map over the request's configurations: simulates a fresh app per
/// configuration concurrently on a worker pool bounded at
/// hardware_concurrency() threads, preserving input order. Each simulation
/// is single-threaded and deterministic, so results are identical to a
/// serial sweep.
///
/// Degrades gracefully: a configuration whose run throws (bad config,
/// deadlock, livelock, protocol violation, app bug) does not abort the
/// sweep — its slot comes back with ok == false and the SimError
/// diagnostics in error_kind / error, while every other configuration's
/// results are returned normally. Render failures with write_failures().
SweepResult run_sweep(const SweepRequest& req);

/// Runs `make_app()` fresh for every cluster size on the given per-processor
/// cache size (0 = infinite) under the paper frame. Returns results in
/// cluster-size order (a thin wrapper over run_sweep).
std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes = {1, 2, 4, 8});

/// Deprecated shim over run_sweep(); see SweepRequest.
CSIM_DEPRECATED("build a SweepRequest and call run_sweep()")
std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineSpec>& configs);

/// Deprecated shim over run_sweep(); see SweepRequest.
CSIM_DEPRECATED("build a SweepRequest and call run_sweep()")
std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineSpec>& configs,
    const ObserverFactory& make_observer);

/// Standard bench command line: `--paper`/`--test` switch problem sizes,
/// `--procs N` overrides the processor count.
struct BenchOptions {
  ProblemScale scale = ProblemScale::Default;
  unsigned num_procs = 64;

  /// Parses, printing a usage message and exiting with status 2 on bad
  /// input (unknown flags, non-numeric/zero/out-of-range --procs).
  static BenchOptions parse(int argc, char** argv);

  /// Like parse() but throws ConfigError instead of exiting (testable core).
  static BenchOptions parse_checked(int argc, char** argv);
};

/// One CSV line per successful result: app,scale,procs,ppc,cacheKB,wall,cpu,
/// load,merge,sync,reads,writes,read_misses,write_misses,upgrades,merges,
/// cold,inv. Failed results are skipped (see write_failures).
void write_csv(std::ostream& os, const std::vector<SimResult>& results);

/// Renders the failure table for every ok == false result (app, config
/// label, error kind, full diagnostic). Returns the number of failures, 0
/// when the sweep was clean (then nothing is written).
std::size_t write_failures(std::ostream& os,
                           const std::vector<SimResult>& results);

}  // namespace csim
