// Experiment matrix runner: sweeps machine configurations over applications
// and collects SimResults for the figure/table generators.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {

/// The paper's fixed experimental frame: 64 processors, 64-byte lines,
/// fully associative LRU cluster caches, Table 1 latencies.
MachineConfig paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc);

/// Runs `make_app()` fresh for every cluster size (programs are stateful) on
/// the given per-processor cache size (0 = infinite). Returns results in
/// cluster-size order. Runs are independent simulations and execute on a
/// thread per configuration (each simulation itself is single-threaded and
/// deterministic, so results are identical to a serial sweep).
std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes = {1, 2, 4, 8});

/// Generic parallel map over machine configurations: simulates a fresh app
/// per configuration concurrently, preserving input order.
std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineConfig>& configs);

/// Standard bench command line: `--paper` switches problem sizes to the
/// paper's Table 2 inputs, `--procs N` overrides the processor count.
struct BenchOptions {
  ProblemScale scale = ProblemScale::Default;
  unsigned num_procs = 64;

  static BenchOptions parse(int argc, char** argv);
};

/// One CSV line per result: app,scale,procs,ppc,cacheKB,wall,cpu,load,merge,
/// sync,reads,writes,read_misses,write_misses,upgrades,merges,cold,inv.
void write_csv(std::ostream& os, const std::vector<SimResult>& results);

}  // namespace csim
