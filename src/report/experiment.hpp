// Experiment matrix runner: sweeps machine configurations over applications
// and collects SimResults for the figure/table generators.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {

class Observer;
class FaultPlan;

/// The paper's fixed experimental frame: 64 processors, 64-byte lines,
/// fully associative LRU cluster caches, Table 1 latencies.
MachineSpec paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc);

/// Builds one Observer per sweep row (src/obs/observer.hpp); may return null
/// to leave that row unobserved. Called with the row's configuration and its
/// index in the sweep. Each row gets its own instance because rows run
/// concurrently; the runner keeps it alive for the row's whole simulation.
using ObserverFactory = std::function<std::unique_ptr<Observer>(
    const MachineSpec& cfg, std::size_t index)>;

/// Crash-safety and isolation policy for run_sweep (docs/ROBUSTNESS.md §6).
/// The default-constructed policy is a no-op: no journal, no deadlines, no
/// retries, no faults — run_sweep behaves exactly as before (pinned by the
/// golden digest suite).
struct SweepPolicy {
  /// Directory of the write-ahead result journal. Every completed row is
  /// appended as a digest-keyed record (src/report/journal.hpp) before the
  /// sweep moves on, so a killed sweep loses at most the rows in flight.
  /// Empty = journaling disabled (zero overhead).
  std::string journal_dir;
  /// With a journal_dir: load existing records first, verify their digests,
  /// and skip re-simulating any row whose record checks out.
  bool resume = false;
  /// Per-row host wall-clock budget in seconds; rows that exceed it come
  /// back as error_kind == "timeout" rows. 0 = unlimited. Host time cannot
  /// perturb simulation results — only whether a row finishes.
  double row_deadline_seconds = 0;
  /// Extra attempts granted to rows that fail with a *retryable* SimError
  /// kind (is_retryable: Timeout, Transient). Deterministic failures —
  /// deadlock, protocol, config, app — are never retried.
  unsigned max_retries = 0;
  /// Base of the exponential backoff between retry attempts, milliseconds
  /// (attempt n sleeps backoff_ms << (n - 1)).
  unsigned backoff_ms = 10;
  /// Deterministic fault injection (tests and the --fault-plan flag); the
  /// plan must outlive the sweep. Null = no faults.
  const FaultPlan* faults = nullptr;
  /// Warm-state checkpoint directory for interval-sampled rows
  /// (src/mem/warm_state.hpp). When set, every sampled row whose spec has no
  /// checkpoint_dir of its own gets this one, and the sweep schedules rows in
  /// two waves grouped by warm_config_digest: the first row of each group
  /// warms in-process and writes the checkpoint, the rest fast-forward from
  /// it. Empty = no checkpointing (rows still sample if their specs say so).
  std::string checkpoint_dir;
};

struct RowOutcome;

/// Streaming hook: called exactly once per sweep row the moment that row's
/// result is final (journal-resume hits fire before the worker pool starts;
/// simulated rows fire from worker threads as they finish, in completion
/// order, not request order). Calls are serialized by run_sweep — no two
/// fire concurrently — and an exception thrown by the callback becomes a
/// journal warning, never a sweep abort. The references are valid only for
/// the duration of the call; copy what you keep.
using RowCallback = std::function<void(
    std::size_t index, const SimResult& row, const RowOutcome& outcome)>;

/// Declarative description of one sweep: a fresh app per row (programs are
/// stateful), the machine spec of every row, and optional per-row
/// observability. The single entry point every driver builds.
struct SweepRequest {
  std::function<std::unique_ptr<Program>()> make_app;
  std::vector<MachineSpec> configs;
  ObserverFactory make_observer{};  ///< optional; null = unobserved rows
  SweepPolicy policy{};             ///< crash-safety knobs; default = off
  RowCallback on_row{};             ///< optional row streaming (csim_serve)
};

/// How one sweep row reached its SimResult.
struct RowOutcome {
  enum class Status : std::uint8_t {
    Ok,        ///< completed (possibly after retries, possibly from journal)
    Failed,    ///< threw a non-retryable error or exhausted its retries
    TimedOut,  ///< exceeded SweepPolicy::row_deadline_seconds
  };
  Status status = Status::Ok;
  /// Simulation attempts consumed; a journal hit replays the attempt count
  /// recorded when the row originally ran (keeps resumed CSVs bit-exact).
  unsigned attempts = 1;
  bool from_journal = false;  ///< satisfied from the journal, not simulated
  /// config_digest(cfg, app, scale) keying the journal; 0 when the sweep ran
  /// without journaling or fault injection (identity never computed).
  std::uint64_t config_digest = 0;
};

[[nodiscard]] std::string_view to_string(RowOutcome::Status s) noexcept;

/// Outcome of run_sweep: one SimResult per requested config, request order.
struct SweepResult {
  std::vector<SimResult> rows;
  std::vector<RowOutcome> outcomes;  ///< parallel to rows
  /// Diagnostics from journal loading/writing: corrupt records skipped,
  /// digest mismatches re-simulated, append failures. Empty on a clean run.
  std::vector<std::string> journal_warnings;

  [[nodiscard]] std::size_t failures() const noexcept;
  [[nodiscard]] bool all_ok() const noexcept { return failures() == 0; }

  // The row collection is the payload; iterate it directly.
  [[nodiscard]] auto begin() const noexcept { return rows.begin(); }
  [[nodiscard]] auto end() const noexcept { return rows.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows.size(); }
};

/// Width of the sweep's row worker pool given `rows` runnable rows, each
/// using up to `row_threads` threads (1 for sequential rows; a parallel
/// row's effective engine worker count otherwise), on a host with
/// `host_cores` cores: the pool is sized so pool x row_threads never
/// exceeds the host — a 16-row sweep at --par 8 on an 8-core host runs
/// one row at a time instead of requesting 128 threads. Always >= 1 (the
/// calling thread), never wider than `rows`.
[[nodiscard]] unsigned sweep_pool_width(std::size_t rows,
                                        unsigned row_threads,
                                        unsigned host_cores) noexcept;

/// Parallel map over the request's configurations: simulates a fresh app per
/// configuration concurrently on a worker pool whose width times the
/// per-row thread count is bounded at hardware_concurrency()
/// (sweep_pool_width), preserving input order. Each simulation is
/// deterministic at every thread count, so results are identical to a
/// serial sweep.
///
/// Degrades gracefully: a configuration whose run throws (bad config,
/// deadlock, livelock, protocol violation, app bug) does not abort the
/// sweep — its slot comes back with ok == false and the SimError
/// diagnostics in error_kind / error, while every other configuration's
/// results are returned normally. Render failures with write_failures().
SweepResult run_sweep(const SweepRequest& req);

/// Runs `make_app()` fresh for every cluster size on the given per-processor
/// cache size (0 = infinite) under the paper frame. Returns results in
/// cluster-size order (a thin wrapper over run_sweep).
std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes = {1, 2, 4, 8});

/// Standard bench command line: `--paper`/`--test` switch problem sizes,
/// `--procs N` overrides the processor count.
struct BenchOptions {
  ProblemScale scale = ProblemScale::Default;
  unsigned num_procs = 64;

  /// Parses, printing a usage message and exiting with status 2 on bad
  /// input (unknown flags, non-numeric/zero/out-of-range --procs).
  static BenchOptions parse(int argc, char** argv);

  /// Like parse() but throws ConfigError instead of exiting (testable core).
  static BenchOptions parse_checked(int argc, char** argv);
};

/// One CSV line per successful result: app,scale,procs,ppc,cacheKB,wall,cpu,
/// load,merge,sync,reads,writes,read_misses,write_misses,upgrades,merges,
/// cold,inv. Failed results are skipped (see write_failures).
void write_csv(std::ostream& os, const std::vector<SimResult>& results);

/// Sweep-aware CSV: the same columns plus trailing `status,attempts` from
/// the row outcomes. Journal provenance (from_journal) is deliberately
/// excluded so a resumed sweep's CSV is byte-identical to an uninterrupted
/// run's (the crash-safety acceptance invariant).
void write_csv(std::ostream& os, const SweepResult& sweep);

/// Human-readable per-row outcome table (digest, status, attempts, journal
/// provenance) followed by any journal warnings. Returns the number of rows
/// that did not complete ok.
std::size_t write_outcomes(std::ostream& os, const SweepResult& sweep);

/// Renders the failure table for every ok == false result (app, config
/// label, error kind, full diagnostic). Returns the number of failures, 0
/// when the sweep was clean (then nothing is written).
std::size_t write_failures(std::ostream& os,
                           const std::vector<SimResult>& results);

}  // namespace csim
