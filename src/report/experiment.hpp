// Experiment matrix runner: sweeps machine configurations over applications
// and collects SimResults for the figure/table generators.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {

class Observer;

/// The paper's fixed experimental frame: 64 processors, 64-byte lines,
/// fully associative LRU cluster caches, Table 1 latencies.
MachineConfig paper_machine(unsigned procs_per_cluster,
                            std::size_t cache_bytes_per_proc);

/// Runs `make_app()` fresh for every cluster size (programs are stateful) on
/// the given per-processor cache size (0 = infinite). Returns results in
/// cluster-size order. Runs are independent simulations and execute on a
/// worker pool bounded at hardware_concurrency() threads (each simulation
/// itself is single-threaded and deterministic, so results are identical to
/// a serial sweep).
std::vector<SimResult> sweep_clusters(
    const std::function<std::unique_ptr<Program>()>& make_app,
    std::size_t cache_bytes_per_proc,
    const std::vector<unsigned>& cluster_sizes = {1, 2, 4, 8});

/// Generic parallel map over machine configurations: simulates a fresh app
/// per configuration concurrently, preserving input order.
///
/// Degrades gracefully: a configuration whose run throws (bad config,
/// deadlock, livelock, protocol violation, app bug) does not abort the
/// sweep — its slot comes back with ok == false and the SimError
/// diagnostics in error_kind / error, while every other configuration's
/// results are returned normally. Render failures with write_failures().
std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineConfig>& configs);

/// Builds one Observer per sweep row (src/obs/observer.hpp); may return null
/// to leave that row unobserved. Called with the row's configuration and its
/// index in the sweep. Each row gets its own instance because rows run
/// concurrently; the runner keeps it alive for the row's whole simulation.
using ObserverFactory = std::function<std::unique_ptr<Observer>(
    const MachineConfig& cfg, std::size_t index)>;

/// run_configs with per-row observability: `make_observer` (when non-null)
/// attaches a fresh observer to every row's simulation. Used by the sweep
/// drivers for --trace-out / --metrics-interval.
std::vector<SimResult> run_configs(
    const std::function<std::unique_ptr<Program>()>& make_app,
    const std::vector<MachineConfig>& configs,
    const ObserverFactory& make_observer);

/// Standard bench command line: `--paper`/`--test` switch problem sizes,
/// `--procs N` overrides the processor count.
struct BenchOptions {
  ProblemScale scale = ProblemScale::Default;
  unsigned num_procs = 64;

  /// Parses, printing a usage message and exiting with status 2 on bad
  /// input (unknown flags, non-numeric/zero/out-of-range --procs).
  static BenchOptions parse(int argc, char** argv);

  /// Like parse() but throws ConfigError instead of exiting (testable core).
  static BenchOptions parse_checked(int argc, char** argv);
};

/// One CSV line per successful result: app,scale,procs,ppc,cacheKB,wall,cpu,
/// load,merge,sync,reads,writes,read_misses,write_misses,upgrades,merges,
/// cold,inv. Failed results are skipped (see write_failures).
void write_csv(std::ostream& os, const std::vector<SimResult>& results);

/// Renders the failure table for every ok == false result (app, config
/// label, error kind, full diagnostic). Returns the number of failures, 0
/// when the sweep was clean (then nothing is written).
std::size_t write_failures(std::ostream& os,
                           const std::vector<SimResult>& results);

}  // namespace csim
