// Shared command-line parsing for the sweep drivers (examples/csim_cli,
// bench/perf_micro): the observability and contention-model flags are spelled
// and validated identically everywhere, and both drivers build their per-row
// observers through the same factory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/machine.hpp"
#include "src/report/experiment.hpp"
#include "src/report/fault_injection.hpp"
#include "src/report/service.hpp"

namespace csim::cli {

/// Checked numeric parse: throws ConfigError naming `flag` on a non-numeric,
/// trailing-garbage, or out-of-range value.
std::uint64_t parse_u64(const std::string& flag, const std::string& val);

/// Checked floating-point parse (same contract as parse_u64).
double parse_f64(const std::string& flag, const std::string& val);

/// The flag group shared by every sweep driver:
///   --trace-out FILE      Chrome trace-event timeline per row
///   --metrics-interval N  sample interval metrics every N cycles (N > 0)
///   --metrics-out BASE    interval metrics path base (default "metrics")
///   --manifest FILE       run manifest (config, git, digests)
///   --contention          enable the queued contention model
///   --contention-busy B,D,N   override bank/directory/NIC busy cycles
///   --journal-dir DIR     write-ahead result journal (crash-safe sweeps)
///   --resume              skip rows already completed in the journal
///   --row-deadline S      per-row host wall-clock budget, seconds
///   --retries N           retry retryable row failures up to N times
///   --fault-plan FILE     deterministic fault injection plan (testing)
///   --sample W,D,P        interval sampling: warm W refs, then measure D
///                         refs every P refs (P 0 = one interval)
///   --ckpt-dir DIR        warm-state checkpoints (requires --sample)
///   --warm-quantum N      warming runahead quantum (requires --sample)
///   --shard k/N           run only shard k of an N-way digest partition
///   --shard-out BASE      write BASE.csv/BASE.json merge artifacts
///   --par N               conservative cluster-parallel execution with N
///                         worker threads (results identical at every N)
///   --par-horizon W       override the synchronization window width
struct ObsArgs {
  std::string trace_out;
  Cycles metrics_interval = 0;
  std::string metrics_out = "metrics";
  std::string manifest_out;
  ContentionSpec contention{};  ///< .enabled set by --contention
  SamplingSpec sampling{};      ///< .enabled set by --sample
  ParallelSpec par{};           ///< .workers set by --par
  bool warm_quantum_set = false;  ///< --warm-quantum given (needs --sample)
  SweepPolicy policy{};         ///< journal / deadline / retry knobs
  /// Owns the parsed --fault-plan; policy.faults points at it (apply()).
  std::shared_ptr<const FaultPlan> fault_plan;
  /// --shard k/N: run only the rows whose config digest maps to shard k of
  /// N (docs/SERVICE.md). shard_set distinguishes an explicit --shard 0/1
  /// (a trivial but valid single-shard spec) from no flag at all.
  serve::ShardSpec shard{};
  bool shard_set = false;
  /// --shard-out BASE: write BASE.csv + BASE.json shard artifacts for
  /// tools/csim_merge (requires --shard).
  std::string shard_out;

  /// The usage text block for these flags (indented two spaces per line).
  [[nodiscard]] static const char* usage();

  /// Tries to consume argv[i] as one of this group's flags, advancing `i`
  /// past any value it takes. Returns false if the flag is not ours; throws
  /// ConfigError on a missing or invalid value.
  bool consume(int argc, char** argv, int& i);

  /// Installs the crash-safety policy on a sweep request (validating flag
  /// combinations: --resume requires --journal-dir). The ObsArgs must
  /// outlive the sweep — it owns the fault plan the policy points into.
  void apply(SweepRequest& req) const;

  /// The standard per-row observer factory for a sweep of `rows` rows
  /// (obs::row_path naming), or null when no observability flag was given.
  [[nodiscard]] ObserverFactory observer_factory(std::size_t rows) const;
};

}  // namespace csim::cli
