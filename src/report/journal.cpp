#include "src/report/journal.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "src/core/atomic_file.hpp"
#include "src/obs/manifest.hpp"

namespace csim {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'J', 'L'};
// Version 2 appends the interval-sampling provenance fields (sampled,
// coverage, detailed_refs). Version-1 files decode with those fields zero.
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kMinVersion = 1;
// magic(4) + version(1) + payload_len(8) + payload_fnv(8)
constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 8 + 8;
// A record payload can't meaningfully exceed this (4096 procs of buckets is
// ~160 KB); anything larger is a corrupt length field, not a real record.
constexpr std::uint64_t kMaxPayloadBytes = 64u << 20;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_counters(std::string& out, const MissCounters& c) {
  put_u64(out, c.reads);
  put_u64(out, c.writes);
  put_u64(out, c.read_hits);
  put_u64(out, c.write_hits);
  put_u64(out, c.read_misses);
  put_u64(out, c.write_misses);
  put_u64(out, c.upgrade_misses);
  put_u64(out, c.merges);
  put_u64(out, c.cold_misses);
  put_u64(out, c.invalidations);
  put_u64(out, c.evictions);
  put_u64(out, c.snoop_transfers);
  put_u64(out, c.cluster_memory_hits);
  put_u64(out, c.bus_invalidations);
  put_u64(out, c.bank_conflicts);
  put_u64(out, c.bank_wait_cycles);
  put_u64(out, c.dir_wait_cycles);
  put_u64(out, c.nic_wait_cycles);
  for (std::uint64_t v : c.by_class) put_u64(out, v);
}

void put_buckets(std::string& out, const TimeBuckets& b) {
  put_u64(out, b.cpu);
  put_u64(out, b.load);
  put_u64(out, b.merge);
  put_u64(out, b.sync);
  put_u64(out, b.contention);
}

/// Bounds-checked little-endian reader over a payload. Any out-of-range
/// read sets `ok = false` and returns zeros; callers check once at the end.
struct Reader {
  std::string_view buf;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > buf.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint64_t u64() {
    if (pos + 8 > buf.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::string str(std::uint64_t n) {
    if (n > buf.size() - pos) {
      ok = false;
      return {};
    }
    std::string s(buf.substr(pos, n));
    pos += n;
    return s;
  }
  MissCounters counters() {
    MissCounters c;
    c.reads = u64();
    c.writes = u64();
    c.read_hits = u64();
    c.write_hits = u64();
    c.read_misses = u64();
    c.write_misses = u64();
    c.upgrade_misses = u64();
    c.merges = u64();
    c.cold_misses = u64();
    c.invalidations = u64();
    c.evictions = u64();
    c.snoop_transfers = u64();
    c.cluster_memory_hits = u64();
    c.bus_invalidations = u64();
    c.bank_conflicts = u64();
    c.bank_wait_cycles = u64();
    c.dir_wait_cycles = u64();
    c.nic_wait_cycles = u64();
    for (std::uint64_t& v : c.by_class) v = u64();
    return c;
  }
  TimeBuckets buckets() {
    TimeBuckets b;
    b.cpu = u64();
    b.load = u64();
    b.merge = u64();
    b.sync = u64();
    b.contention = u64();
    return b;
  }
};

std::string encode_payload(const JournalRecord& rec) {
  std::string p;
  p.reserve(256 + rec.per_proc.size() * 40 + rec.per_cluster.size() * 176);
  put_u64(p, rec.config_digest);
  put_u64(p, rec.result_digest);
  put_u64(p, rec.app_name.size());
  p.append(rec.app_name);
  put_u8(p, static_cast<std::uint8_t>(rec.scale));
  put_u8(p, 1);  // ok flag: only completed rows are journaled (reserved)
  put_u64(p, rec.wall_time);
  put_u64(p, rec.events);
  put_u64(p, std::bit_cast<std::uint64_t>(rec.host_seconds));
  put_u64(p, rec.attempts);
  put_counters(p, rec.totals);
  put_u64(p, rec.per_proc.size());
  for (const TimeBuckets& b : rec.per_proc) put_buckets(p, b);
  put_u64(p, rec.per_cluster.size());
  for (const MissCounters& c : rec.per_cluster) put_counters(p, c);
  // Version 2: interval-sampling provenance.
  put_u8(p, rec.sampled ? 1 : 0);
  put_u64(p, std::bit_cast<std::uint64_t>(rec.coverage));
  put_u64(p, rec.detailed_refs);
  return p;
}

/// Decodes one payload; returns false (with `why`) on structural damage.
bool decode_payload(std::string_view payload, std::uint8_t version,
                    JournalRecord& rec, std::string& why) {
  Reader r{payload};
  rec.config_digest = r.u64();
  rec.result_digest = r.u64();
  rec.app_name = r.str(r.u64());
  rec.scale = static_cast<ProblemScale>(r.u8());
  const std::uint8_t okflag = r.u8();
  rec.wall_time = r.u64();
  rec.events = r.u64();
  rec.host_seconds = std::bit_cast<double>(r.u64());
  rec.attempts = static_cast<std::uint32_t>(r.u64());
  rec.totals = r.counters();
  const std::uint64_t nproc = r.u64();
  // Guard the reserve: each entry needs 40 payload bytes, so a count that
  // can't fit in the remaining buffer is a corrupt field, not a big sweep.
  if (nproc > (payload.size() - std::min(r.pos, payload.size())) / 40) {
    why = "per_proc count exceeds payload";
    return false;
  }
  rec.per_proc.reserve(nproc);
  for (std::uint64_t i = 0; i < nproc && r.ok; ++i) {
    rec.per_proc.push_back(r.buckets());
  }
  const std::uint64_t nclust = r.u64();
  if (nclust > (payload.size() - std::min(r.pos, payload.size())) / 176) {
    why = "per_cluster count exceeds payload";
    return false;
  }
  rec.per_cluster.reserve(nclust);
  for (std::uint64_t i = 0; i < nclust && r.ok; ++i) {
    rec.per_cluster.push_back(r.counters());
  }
  if (version >= 2) {
    rec.sampled = r.u8() != 0;
    rec.coverage = std::bit_cast<double>(r.u64());
    rec.detailed_refs = r.u64();
  }
  if (!r.ok) {
    why = "payload truncated mid-field";
    return false;
  }
  if (okflag != 1) {
    why = "record not marked ok";
    return false;
  }
  if (r.pos != payload.size()) {
    why = "trailing bytes after payload";
    return false;
  }
  return true;
}

}  // namespace

std::string encode_journal_record(const JournalRecord& rec) {
  const std::string payload = encode_payload(rec);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kMagic, 4);
  put_u8(out, kVersion);
  put_u64(out, payload.size());
  put_u64(out, obs::fnv1a(payload));
  out.append(payload);
  return out;
}

JournalLoad decode_journal_records(std::string_view bytes,
                                   const std::string& origin) {
  JournalLoad out;
  const auto warn = [&](const std::string& what) {
    out.warnings.push_back("journal: " + origin + ": " + what);
  };
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      warn("truncated frame header (record skipped)");
      return out;
    }
    if (bytes.compare(pos, 4, kMagic, 4) != 0) {
      // Lost framing: without the magic there is no reliable way to resync,
      // so drop the rest of the file rather than misparse garbage.
      warn("bad magic (rest of file skipped)");
      return out;
    }
    const std::uint8_t version = static_cast<std::uint8_t>(bytes[pos + 4]);
    Reader hdr{bytes.substr(pos + 5, 16)};
    const std::uint64_t payload_len = hdr.u64();
    const std::uint64_t payload_fnv = hdr.u64();
    if (version < kMinVersion || version > kVersion) {
      warn("unsupported version " + std::to_string(version) +
           " (rest of file skipped)");
      return out;
    }
    if (payload_len > kMaxPayloadBytes ||
        payload_len > bytes.size() - pos - kFrameHeaderBytes) {
      warn("truncated record: declares " + std::to_string(payload_len) +
           " payload bytes, " +
           std::to_string(bytes.size() - pos - kFrameHeaderBytes) +
           " available (record skipped)");
      return out;
    }
    const std::string_view payload =
        bytes.substr(pos + kFrameHeaderBytes, payload_len);
    pos += kFrameHeaderBytes + payload_len;
    if (obs::fnv1a(payload) != payload_fnv) {
      warn("checksum mismatch (record skipped)");
      continue;  // frame length was intact, so the next record may be fine
    }
    JournalRecord rec;
    std::string why;
    if (!decode_payload(payload, version, rec, why)) {
      warn(why + " (record skipped)");
      continue;
    }
    const bool dup =
        std::any_of(out.records.begin(), out.records.end(),
                    [&](const JournalRecord& r) {
                      return r.config_digest == rec.config_digest;
                    });
    if (dup) {
      warn("duplicate record for config " +
           obs::digest_hex(rec.config_digest) + " (first record wins)");
      continue;
    }
    out.records.push_back(std::move(rec));
  }
  return out;
}

void append_journal_record(const std::string& dir, const JournalRecord& rec) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("journal: cannot create " + dir + ": " +
                             ec.message());
  }
  const std::string path =
      (std::filesystem::path(dir) /
       (obs::digest_hex(rec.config_digest) + ".csj"))
          .string();
  atomic_write_file(path, encode_journal_record(rec));
}

JournalLoad load_journal(const std::string& dir) {
  JournalLoad out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;  // missing directory = empty journal
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".csj") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // directory order is unspecified
  std::unordered_set<std::uint64_t> seen;
  for (const std::string& path : paths) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      out.warnings.push_back("journal: " + path + ": cannot open (skipped)");
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    if (bytes.empty()) {
      // A crash between creating the file and its first write leaves a
      // zero-length record: same treatment as a truncated frame — warn and
      // re-simulate, never error the whole resume.
      out.warnings.push_back("journal: " + path +
                             ": empty record file (record skipped)");
      continue;
    }
    JournalLoad one = decode_journal_records(bytes, path);
    for (std::string& w : one.warnings) out.warnings.push_back(std::move(w));
    for (JournalRecord& rec : one.records) {
      if (!seen.insert(rec.config_digest).second) {
        out.warnings.push_back("journal: " + path +
                               ": duplicate record for config " +
                               obs::digest_hex(rec.config_digest) +
                               " (first record wins)");
        continue;
      }
      out.records.push_back(std::move(rec));
    }
  }
  return out;
}

JournalRecord journal_record_from_result(const SimResult& r,
                                         std::uint32_t attempts) {
  if (!r.ok) {
    throw std::logic_error("journal_record_from_result: row not ok");
  }
  JournalRecord rec;
  rec.config_digest = obs::config_digest(r.config, r.app_name, r.scale);
  rec.result_digest = obs::result_digest(r);
  rec.app_name = r.app_name;
  rec.scale = r.scale;
  rec.wall_time = r.wall_time;
  rec.events = r.events;
  rec.host_seconds = r.host_seconds;
  rec.attempts = attempts;
  rec.sampled = r.sampled;
  rec.coverage = r.coverage;
  rec.detailed_refs = r.detailed_refs;
  rec.totals = r.totals;
  rec.per_proc = r.per_proc;
  rec.per_cluster = r.per_cluster;
  return rec;
}

SimResult journal_record_to_result(const JournalRecord& rec,
                                   const MachineSpec& cfg) {
  SimResult r;
  r.config = cfg;
  r.app_name = rec.app_name;
  r.scale = rec.scale;
  r.wall_time = rec.wall_time;
  r.events = rec.events;
  r.host_seconds = rec.host_seconds;
  r.sampled = rec.sampled;
  r.coverage = rec.coverage;
  r.detailed_refs = rec.detailed_refs;
  r.per_proc = rec.per_proc;
  r.per_cluster = rec.per_cluster;
  r.totals = rec.totals;
  r.ok = true;
  return r;
}

}  // namespace csim
