// Reference-trace capture and trace-driven replay.
//
// The paper's methodology is execution-driven simulation (Tango-lite):
// reference *timing* feeds back into reference *interleaving*. This module
// provides the classic alternative for comparison and tooling:
//
//  - RecordingMemorySystem decorates any MemorySystem and writes every
//    reference (proc, kind, line address) to a compact binary trace;
//  - TraceReader loads a trace;
//  - replay_trace() drives a fresh MemorySystem with the recorded global
//    interleaving, yielding miss statistics for any machine configuration
//    without re-running the application.
//
// Replay preserves the recorded interleaving but not timing feedback, so
// clustering studies based on replay under-account merge effects — the
// example `trace_replay` quantifies exactly that gap.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/machine.hpp"
#include "src/mem/memory_system.hpp"

namespace csim {

struct TraceRecord {
  ProcId proc;
  AccessKind kind;
  Addr addr;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// In-memory trace with binary (de)serialization.
class Trace {
 public:
  Trace() = default;
  Trace(unsigned num_procs, unsigned line_bytes)
      : num_procs_(num_procs), line_bytes_(line_bytes) {}

  void append(TraceRecord r) { records_.push_back(r); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] unsigned num_procs() const noexcept { return num_procs_; }
  [[nodiscard]] unsigned line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Binary format: 16-byte header (magic "CSTR", version, num_procs,
  /// line_bytes, record count) followed by 10-byte records
  /// (proc:1, kind:1, addr:8, little-endian).
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

 private:
  unsigned num_procs_ = 0;
  unsigned line_bytes_ = 64;
  std::vector<TraceRecord> records_;
};

/// Decorator that records every access while forwarding to the real system.
class RecordingMemorySystem final : public MemorySystem {
 public:
  RecordingMemorySystem(MemorySystem& inner, Trace& out)
      : inner_(&inner), out_(&out) {}

  AccessResult read(ProcId p, Addr a, Cycles now) override {
    out_->append(TraceRecord{p, AccessKind::Read, a});
    return inner_->read(p, a, now);
  }
  AccessResult write(ProcId p, Addr a, Cycles now) override {
    out_->append(TraceRecord{p, AccessKind::Write, a});
    return inner_->write(p, a, now);
  }
  [[nodiscard]] const MissCounters& cluster_counters(
      ClusterId c) const override {
    return inner_->cluster_counters(c);
  }
  [[nodiscard]] MissCounters totals() const override {
    return inner_->totals();
  }

 private:
  MemorySystem* inner_;
  Trace* out_;
};

/// Result of a trace-driven replay.
struct ReplayResult {
  MissCounters totals{};
  /// Approximate cycles: per-processor clocks advanced by 1 per reference
  /// plus read-miss latencies; the result is max over processors.
  Cycles approx_time = 0;
};

/// Replays the trace's global interleaving against a memory system built for
/// `cfg` (which may differ from the recording configuration in clustering
/// and cache size, but must have the same processor count).
ReplayResult replay_trace(const Trace& trace, const MachineSpec& cfg);

/// Records an execution-driven run of `prog` under `cfg` into a Trace.
class Program;
Trace record_trace(Program& prog, const MachineSpec& cfg);

}  // namespace csim
