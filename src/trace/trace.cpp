#include "src/trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/core/atomic_file.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"

namespace csim {

namespace {
constexpr char kMagic[4] = {'C', 'S', 'T', 'R'};
constexpr std::uint8_t kVersion = 1;

void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 8);
}

std::uint64_t get_u64(std::istream& is) {
  char b[8];
  is.read(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}
}  // namespace

void Trace::save(const std::string& path) const {
  atomic_write_file(path, [this](std::ostream& os) {
    os.write(kMagic, 4);
    os.put(static_cast<char>(kVersion));
    os.put(static_cast<char>(num_procs_));
    os.put(static_cast<char>(line_bytes_ & 0xff));
    os.put(static_cast<char>((line_bytes_ >> 8) & 0xff));
    put_u64(os, records_.size());
    for (const TraceRecord& r : records_) {
      os.put(static_cast<char>(r.proc));
      os.put(static_cast<char>(r.kind == AccessKind::Write ? 1 : 0));
      put_u64(os, r.addr);
    }
  });
}

Trace Trace::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("Trace::load: cannot open " + path);
  // Header: magic(4) version(1) procs(1) line_bytes(2) count(8); each record
  // is proc(1) kind(1) addr(8). Validate the declared record count against
  // the real file size before reserving: a truncated or corrupt header must
  // fail cleanly, not attempt a multi-gigabyte allocation.
  constexpr std::uint64_t kHeaderBytes = 4 + 1 + 1 + 2 + 8;
  constexpr std::uint64_t kRecordBytes = 1 + 1 + 8;
  is.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  if (file_size < kHeaderBytes) {
    throw std::runtime_error("Trace::load: truncated header");
  }
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("Trace::load: bad magic");
  }
  const int version = is.get();
  if (version != kVersion) throw std::runtime_error("Trace::load: bad version");
  Trace t;
  t.num_procs_ = static_cast<unsigned>(is.get());
  const unsigned lo = static_cast<unsigned>(is.get());
  const unsigned hi = static_cast<unsigned>(is.get());
  t.line_bytes_ = lo | (hi << 8);
  if (t.num_procs_ == 0) {
    throw std::runtime_error("Trace::load: header declares zero processors");
  }
  if (t.line_bytes_ == 0 || (t.line_bytes_ & (t.line_bytes_ - 1)) != 0) {
    throw std::runtime_error(
        "Trace::load: line_bytes not a power of two: " +
        std::to_string(t.line_bytes_));
  }
  const std::uint64_t n = get_u64(is);
  if (n > (file_size - kHeaderBytes) / kRecordBytes) {
    throw std::runtime_error(
        "Trace::load: header declares " + std::to_string(n) +
        " records but the file holds at most " +
        std::to_string((file_size - kHeaderBytes) / kRecordBytes));
  }
  t.records_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.proc = static_cast<ProcId>(is.get());
    r.kind = is.get() ? AccessKind::Write : AccessKind::Read;
    r.addr = get_u64(is);
    if (r.proc >= t.num_procs_) {
      throw std::runtime_error(
          "Trace::load: record " + std::to_string(i) + " names proc " +
          std::to_string(r.proc) + " of " + std::to_string(t.num_procs_));
    }
    t.records_.push_back(r);
  }
  if (!is) throw std::runtime_error("Trace::load: truncated trace");
  return t;
}

ReplayResult replay_trace(const Trace& trace, const MachineSpec& cfg) {
  if (cfg.num_procs != trace.num_procs()) {
    throw std::invalid_argument("replay_trace: processor count mismatch");
  }
  cfg.validate();
  // Homes revert to pure first-touch round robin: a raw reference trace
  // carries no placement metadata (a known limitation of trace-driven
  // methodology).
  AddressSpace as;
  std::unique_ptr<MemorySystem> mem;
  if (cfg.cluster_style == ClusterStyle::SharedMemory) {
    mem = std::make_unique<ClusteredMemorySystem>(cfg, as);
  } else {
    mem = std::make_unique<CoherenceController>(cfg, as);
  }

  ReplayResult out;
  std::vector<Cycles> clock(cfg.num_procs, 0);
  for (const TraceRecord& r : trace.records()) {
    Cycles& t = clock[r.proc];
    if (r.kind == AccessKind::Read) {
      const AccessResult a = mem->read(r.proc, r.addr, t);
      switch (a.kind) {
        case AccessResult::Kind::ReadMiss:
        case AccessResult::Kind::NearHit:
          t += 1 + a.latency;
          break;
        case AccessResult::Kind::Merge:
          t = std::max(t + 1, a.ready_at);
          break;
        default:
          t += 1;
      }
    } else {
      (void)mem->write(r.proc, r.addr, t);
      t += 1;
    }
  }
  out.totals = mem->totals();
  for (Cycles t : clock) out.approx_time = std::max(out.approx_time, t);
  return out;
}

Trace record_trace(Program& prog, const MachineSpec& cfg) {
  cfg.validate();
  Trace trace(cfg.num_procs, cfg.cache.line_bytes);
  // Run execution-driven with a recording decorator over the configured
  // memory system. The inner system must be built over the program's address
  // space, so mirror Simulator::run's construction here via a profiler-style
  // override: record against a *stand-in* run.
  struct Recorder final : MemorySystem {
    explicit Recorder(const MachineSpec& c) : cfg(&c) {}
    void bind(const AddressSpace& as) {
      if (cfg->cluster_style == ClusterStyle::SharedMemory) {
        inner = std::make_unique<ClusteredMemorySystem>(*cfg, as);
      } else {
        inner = std::make_unique<CoherenceController>(*cfg, as);
      }
    }
    AccessResult read(ProcId p, Addr a, Cycles now) override {
      out->append(TraceRecord{p, AccessKind::Read, a});
      return inner->read(p, a, now);
    }
    AccessResult write(ProcId p, Addr a, Cycles now) override {
      out->append(TraceRecord{p, AccessKind::Write, a});
      return inner->write(p, a, now);
    }
    const MissCounters& cluster_counters(ClusterId c) const override {
      return inner->cluster_counters(c);
    }
    MissCounters totals() const override { return inner->totals(); }
    const MachineSpec* cfg;
    std::unique_ptr<MemorySystem> inner;
    Trace* out = nullptr;
  };

  // The recorder needs the AddressSpace created inside Simulator::run; since
  // homes are first-touch there is no coupling beyond placement, which the
  // recording run reproduces by building its own space: placement metadata
  // affects only latency classes, not the reference stream we record.
  AddressSpace as;
  Recorder rec(cfg);
  rec.bind(as);
  rec.out = &trace;
  Simulator sim(cfg);
  (void)sim.run(prog, &rec);
  return trace;
}

}  // namespace csim
