// RunObserver: the driver-facing bundle behind --trace-out and
// --metrics-interval. Owns an optional TimelineTracer and IntervalSampler,
// fans the run's callbacks out to whichever are enabled, and writes their
// output files when the run completes (on_run_end fires only on success, so
// a failed run leaves no partial artifacts).
#pragma once

#include <memory>
#include <string>

#include "src/core/types.hpp"
#include "src/obs/observer.hpp"

namespace csim::obs {

class TimelineTracer;
class IntervalSampler;

class RunObserver final : public MultiObserver {
 public:
  RunObserver();
  ~RunObserver() override;

  /// Records a Chrome trace-event timeline, written to `path` at run end.
  void enable_trace(std::string path);

  /// Samples interval metrics every `interval` cycles; the time series is
  /// written to `csv_path` (and, when non-empty, `json_path`) at run end.
  void enable_metrics(Cycles interval, std::string csv_path,
                      std::string json_path = {});

  [[nodiscard]] bool enabled() const noexcept {
    return tracer_ != nullptr || sampler_ != nullptr;
  }
  [[nodiscard]] TimelineTracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] IntervalSampler* sampler() noexcept { return sampler_.get(); }

  void on_run_end(Cycles wall_time) override;

 private:
  std::unique_ptr<TimelineTracer> tracer_;
  std::unique_ptr<IntervalSampler> sampler_;
  std::string trace_path_;
  std::string metrics_csv_path_;
  std::string metrics_json_path_;
};

/// Derives the output path for sweep row `index`: `base` unchanged for a
/// single-row sweep, otherwise "name_ppc<P>.ext" so each row's artifact is
/// distinct (P = the row's procs-per-cluster).
[[nodiscard]] std::string row_path(const std::string& base, unsigned ppc,
                                   std::size_t num_rows);

}  // namespace csim::obs
