#include "src/obs/perf_baseline.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace csim::obs {

namespace {

/// Extracts the quoted string value following `"key":` at/after `pos` in
/// `line`. Returns false when the key is absent.
bool find_string(const std::string& line, const std::string& key,
                 std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t k = line.find(needle);
  if (k == std::string::npos) return false;
  std::size_t i = line.find('"', k + needle.size());
  if (i == std::string::npos) return false;
  const std::size_t j = line.find('"', i + 1);
  if (j == std::string::npos) return false;
  out = line.substr(i + 1, j - i - 1);
  return true;
}

bool find_number(const std::string& line, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t k = line.find(needle);
  if (k == std::string::npos) return false;
  const char* s = line.c_str() + k + needle.size();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return false;
  out = v;
  return true;
}

}  // namespace

PerfReport load_perf_report(std::istream& is) {
  PerfReport rep;
  std::string line;
  while (std::getline(is, line)) {
    std::string s;
    if (rep.benchmark.empty() && find_string(line, "benchmark", s)) {
      rep.benchmark = s;
    }
    PerfRow row;
    if (find_string(line, "name", row.name) &&
        find_number(line, "sim_refs_per_sec", row.refs_per_sec)) {
      if (row.refs_per_sec <= 0) {
        throw std::runtime_error("perf report: non-positive throughput for " +
                                 row.name);
      }
      rep.rows.push_back(std::move(row));
    }
  }
  if (rep.rows.empty()) {
    throw std::runtime_error(
        "perf report: no result rows found (expected BENCH_perf.json format)");
  }
  return rep;
}

PerfReport load_perf_report_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("perf report: cannot open " + path);
  return load_perf_report(is);
}

GateResult check_perf(const PerfReport& baseline, const PerfReport& current,
                      double max_regression) {
  GateResult g;
  for (const PerfRow& b : baseline.rows) {
    const PerfRow* cur = nullptr;
    for (const PerfRow& c : current.rows) {
      if (c.name == b.name) {
        cur = &c;
        break;
      }
    }
    if (cur == nullptr) {
      g.missing.push_back(b.name);
      g.ok = false;
      continue;
    }
    PerfDelta d;
    d.name = b.name;
    d.baseline = b.refs_per_sec;
    d.current = cur->refs_per_sec;
    d.ratio = d.current / d.baseline;
    d.regressed = d.current < (1.0 - max_regression) * d.baseline;
    if (d.regressed) g.ok = false;
    g.deltas.push_back(std::move(d));
  }
  return g;
}

void write_delta_table(std::ostream& os, const GateResult& g,
                       double max_regression) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-36s %14s %14s %8s  %s\n", "benchmark",
                "baseline", "current", "ratio", "verdict");
  os << buf;
  for (const PerfDelta& d : g.deltas) {
    std::snprintf(buf, sizeof buf, "%-36s %14.0f %14.0f %7.2fx  %s\n",
                  d.name.c_str(), d.baseline, d.current, d.ratio,
                  d.regressed ? "REGRESSED" : "ok");
    os << buf;
  }
  for (const std::string& m : g.missing) {
    std::snprintf(buf, sizeof buf, "%-36s %14s %14s %8s  %s\n", m.c_str(),
                  "-", "missing", "-", "MISSING");
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "gate: fail below %.0f%% of baseline -> %s\n",
                (1.0 - max_regression) * 100.0, g.ok ? "PASS" : "FAIL");
  os << buf;
}

}  // namespace csim::obs
