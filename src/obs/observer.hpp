// Observability hook interface (docs/OBSERVABILITY.md).
//
// An Observer attaches to a single simulation run via
// Simulator::set_observer() and receives callbacks from the engine's
// instrumentation points:
//
//   EventQueue       -> on_event_dispatched   (every event, after execution)
//   Proc             -> on_slice              (coroutine resume .. suspend)
//                       on_memory_stall       (load / merge stalls)
//                       on_barrier_arrive, on_lock_wait
//   Barrier release  -> on_barrier_release
//   memory systems   -> on_memory_stall       (hidden store-miss fills)
//                       on_invalidation       (invalidation rounds)
//
// Every hook site is guarded by a single `if (obs_ != nullptr)` branch on a
// pointer that is null unless an observer was explicitly attached, so the
// disabled cost is one predictable branch — the PR 2 hot path is untouched
// (verified by the CI perf gate against BENCH_perf.json).
//
// Concrete observers live in src/obs/: TimelineTracer (chrome_trace.hpp)
// and IntervalSampler (interval_metrics.hpp). MultiObserver fans one run
// out to several observers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

struct MachineSpec;
struct TimeBuckets;
class MemorySystem;
class Barrier;
class Lock;
class SamplingController;

class Observer {
 public:
  /// What a processor-visible memory stall was: a read miss (NearHit
  /// included), a read merged onto an in-flight fill, or a store-buffered
  /// write-miss fill (hidden from the processor, visible on the wire).
  enum class Stall : std::uint8_t { Load, Merge, Store };

  /// Read-only bindings into the running machine, valid for the duration of
  /// the run (between on_run_begin and on_run_end).
  struct RunBinding {
    const MachineSpec* config = nullptr;
    const MemorySystem* mem = nullptr;
    /// Per-processor raw time buckets (no final-barrier adjustment).
    std::vector<const TimeBuckets*> proc_buckets;
    /// Cumulative events dispatched, from the event queue.
    const std::uint64_t* events_run = nullptr;
    /// The run's sampling controller; null on unsampled runs.
    const SamplingController* sampling = nullptr;
  };

  virtual ~Observer() = default;

  virtual void on_run_begin(const RunBinding&) {}
  /// Called once when the run completes successfully (never on failure).
  virtual void on_run_end(Cycles wall_time) { (void)wall_time; }

  /// EventQueue::run_one, after the event executed; `now` is the event time.
  virtual void on_event_dispatched(Cycles now, std::uint64_t events_run) {
    (void)now;
    (void)events_run;
  }

  /// One processor execution slice: resumed at `begin`, suspended (or
  /// finished) with local clock `end`. When the slice ended in a memory
  /// stall, `end` includes the stall (see on_memory_stall for the split).
  virtual void on_slice(ProcId p, Cycles begin, Cycles end) {
    (void)p;
    (void)begin;
    (void)end;
  }

  /// A miss round-trip: issued at `issue`, data arrives at `ready`. For
  /// Stall::Load / Stall::Merge the processor stalls until `ready`; for
  /// Stall::Store the fill is hidden by the store buffer.
  virtual void on_memory_stall(ProcId p, Addr a, Stall kind, Cycles issue,
                               Cycles ready, LatencyClass lclass) {
    (void)p;
    (void)a;
    (void)kind;
    (void)issue;
    (void)ready;
    (void)lclass;
  }

  virtual void on_barrier_arrive(ProcId p, const Barrier* b, Cycles t) {
    (void)p;
    (void)b;
    (void)t;
  }
  /// Emitted by the last arriver; `released` waiters resume at `t`.
  virtual void on_barrier_release(const Barrier* b, unsigned released,
                                  Cycles t) {
    (void)b;
    (void)released;
    (void)t;
  }
  /// Processor `p` queued on a contended lock at `t`.
  virtual void on_lock_wait(ProcId p, const Lock* l, Cycles t) {
    (void)p;
    (void)l;
    (void)t;
  }

  /// An invalidation round destroyed `copies` cluster copies of `line`.
  virtual void on_invalidation(Addr line, unsigned copies, Cycles t) {
    (void)line;
    (void)copies;
    (void)t;
  }
};

/// Fans every callback out to a fixed list of observers (e.g. a tracer and
/// an interval sampler on the same run). Does not own its children.
/// Subclasses may override hooks to add behaviour (call the base to keep the
/// fan-out; obs::RunObserver writes output files from on_run_end this way).
class MultiObserver : public Observer {
 public:
  void add(Observer* o) {
    if (o != nullptr) children_.push_back(o);
  }
  [[nodiscard]] bool empty() const noexcept { return children_.empty(); }

  void on_run_begin(const RunBinding& b) override {
    for (Observer* o : children_) o->on_run_begin(b);
  }
  void on_run_end(Cycles wall) override {
    for (Observer* o : children_) o->on_run_end(wall);
  }
  void on_event_dispatched(Cycles now, std::uint64_t n) override {
    for (Observer* o : children_) o->on_event_dispatched(now, n);
  }
  void on_slice(ProcId p, Cycles b, Cycles e) override {
    for (Observer* o : children_) o->on_slice(p, b, e);
  }
  void on_memory_stall(ProcId p, Addr a, Stall k, Cycles i, Cycles r,
                       LatencyClass c) override {
    for (Observer* o : children_) o->on_memory_stall(p, a, k, i, r, c);
  }
  void on_barrier_arrive(ProcId p, const Barrier* b, Cycles t) override {
    for (Observer* o : children_) o->on_barrier_arrive(p, b, t);
  }
  void on_barrier_release(const Barrier* b, unsigned n, Cycles t) override {
    for (Observer* o : children_) o->on_barrier_release(b, n, t);
  }
  void on_lock_wait(ProcId p, const Lock* l, Cycles t) override {
    for (Observer* o : children_) o->on_lock_wait(p, l, t);
  }
  void on_invalidation(Addr line, unsigned copies, Cycles t) override {
    for (Observer* o : children_) o->on_invalidation(line, copies, t);
  }

 private:
  std::vector<Observer*> children_;
};

}  // namespace csim
