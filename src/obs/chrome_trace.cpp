#include "src/obs/chrome_trace.hpp"

#include <ostream>
#include <stdexcept>

#include "src/core/atomic_file.hpp"
#include "src/core/machine.hpp"
#include "src/mem/latency.hpp"

namespace csim::obs {

namespace {

const char* stall_name(Observer::Stall k) {
  switch (k) {
    case Observer::Stall::Load: return "stall:load";
    case Observer::Stall::Merge: return "stall:merge";
    case Observer::Stall::Store: return "stall:store";
  }
  return "stall";
}

const char* miss_name(Observer::Stall k) {
  switch (k) {
    case Observer::Stall::Load: return "miss:load";
    case Observer::Stall::Merge: return "miss:merge";
    case Observer::Stall::Store: return "miss:store";
  }
  return "miss";
}

}  // namespace

std::uint32_t TimelineTracer::pid_of(ProcId p) const noexcept {
  return p / procs_per_cluster_;
}

void TimelineTracer::on_run_begin(const RunBinding& b) {
  num_procs_ = b.config->num_procs;
  procs_per_cluster_ = b.config->procs_per_cluster;
  memory_pid_ = b.config->num_clusters();
  stall_.assign(num_procs_, PendingStall{});
  wait_.assign(num_procs_, PendingWait{});
  events_.clear();
  events_.reserve(4096);
}

void TimelineTracer::on_slice(ProcId p, Cycles begin, Cycles end) {
  if (p >= num_procs_) return;
  // A sync wait ended when this slice began: render the waiting interval.
  PendingWait& w = wait_[p];
  if (w.active) {
    if (begin > w.since) {
      Event e{Event::Ph::Complete, w.what, "sync", pid_of(p), p, w.since,
              begin - w.since};
      push(e);
    }
    w.active = false;
  }
  Cycles run_end = end;
  // A memory stall ended the slice: split [begin, end] into the computing
  // part and the stall part so the track shows where time actually went.
  PendingStall& s = stall_[p];
  if (s.active) {
    if (s.ready == end && s.issue >= begin && s.issue <= end) {
      run_end = s.issue;
      Event st{Event::Ph::Complete, stall_name(s.kind), "mem", pid_of(p), p,
               s.issue, end - s.issue};
      push(st);
    }
    s.active = false;
  }
  Event e{Event::Ph::Complete, "run", "cpu", pid_of(p), p, begin,
          run_end > begin ? run_end - begin : 0};
  push(e);
}

void TimelineTracer::on_memory_stall(ProcId p, Addr a, Stall kind,
                                     Cycles issue, Cycles ready,
                                     LatencyClass lclass) {
  if (p >= num_procs_) return;
  if (kind != Stall::Store) {
    stall_[p] = PendingStall{true, kind, issue, ready};
  }
  // Async begin/end pair: Perfetto draws the round-trip as a span with
  // arrows on the requesting processor's track.
  const std::uint64_t id = next_async_id_++;
  Event b{Event::Ph::AsyncBegin, miss_name(kind), "mem", pid_of(p), p, issue};
  b.id = id;
  b.addr = a;
  b.detail = static_cast<std::uint8_t>(lclass);
  b.has_args = true;
  push(b);
  Event e{Event::Ph::AsyncEnd, miss_name(kind), "mem", pid_of(p), p,
          ready > issue ? ready : issue};
  e.id = id;
  push(e);
}

void TimelineTracer::on_barrier_arrive(ProcId p, const Barrier*, Cycles t) {
  if (p >= num_procs_) return;
  wait_[p] = PendingWait{true, "wait:barrier", t};
  Event e{Event::Ph::Instant, "barrier:arrive", "sync", pid_of(p), p, t};
  push(e);
}

void TimelineTracer::on_barrier_release(const Barrier*, unsigned released,
                                        Cycles t) {
  Event e{Event::Ph::Instant, "barrier:release", "sync", memory_pid_, 0, t};
  e.detail = static_cast<std::uint8_t>(released > 255 ? 255 : released);
  e.has_args = true;
  push(e);
}

void TimelineTracer::on_lock_wait(ProcId p, const Lock*, Cycles t) {
  if (p >= num_procs_) return;
  wait_[p] = PendingWait{true, "wait:lock", t};
  Event e{Event::Ph::Instant, "lock:wait", "sync", pid_of(p), p, t};
  push(e);
}

void TimelineTracer::on_invalidation(Addr line, unsigned copies, Cycles t) {
  Event e{Event::Ph::Instant, "invalidation", "mem", memory_pid_, 0, t};
  e.addr = line;
  e.detail = static_cast<std::uint8_t>(copies > 255 ? 255 : copies);
  e.has_args = true;
  push(e);
}

void TimelineTracer::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Metadata: name clusters as processes and processors as threads.
  const unsigned num_clusters =
      num_procs_ != 0 ? (num_procs_ / procs_per_cluster_) : 0;
  for (unsigned c = 0; c < num_clusters; ++c) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << c
       << ",\"tid\":0,\"args\":{\"name\":\"cluster " << c << "\"}}";
  }
  if (num_clusters != 0) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << memory_pid_
       << ",\"tid\":0,\"args\":{\"name\":\"memory system\"}}";
  }
  for (unsigned p = 0; p < num_procs_; ++p) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid_of(p)
       << ",\"tid\":" << p << ",\"args\":{\"name\":\"proc " << p << "\"}}";
  }
  for (const Event& e : events_) {
    sep();
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
       << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
    switch (e.ph) {
      case Event::Ph::Complete:
        os << ",\"ph\":\"X\",\"dur\":" << e.dur;
        break;
      case Event::Ph::AsyncBegin:
        os << ",\"ph\":\"b\",\"id\":" << e.id;
        break;
      case Event::Ph::AsyncEnd:
        os << ",\"ph\":\"e\",\"id\":" << e.id;
        break;
      case Event::Ph::Instant:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    }
    if (e.has_args) {
      os << ",\"args\":{";
      bool afirst = true;
      if (e.addr != 0 || e.ph == Event::Ph::AsyncBegin) {
        os << "\"addr\":\"0x" << std::hex << e.addr << std::dec << "\"";
        afirst = false;
      }
      if (e.ph == Event::Ph::AsyncBegin) {
        if (!afirst) os << ",";
        os << "\"class\":\""
           << to_string(static_cast<LatencyClass>(
                  e.detail < kNumLatencyClasses ? e.detail : 0))
           << "\"";
        afirst = false;
      } else if (e.detail != 0) {
        if (!afirst) os << ",";
        os << "\"count\":" << static_cast<unsigned>(e.detail);
        afirst = false;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TimelineTracer::write_json_file(const std::string& path) const {
  atomic_write_file(path, [this](std::ostream& os) { write_json(os); });
}

}  // namespace csim::obs
