// Perf-baseline reports and the CI regression gate (docs/PERFORMANCE.md).
//
// `perf_micro --json` writes BENCH_perf.json; the committed copy is the
// tracked baseline. load_perf_report() parses that exact format (a minimal
// scanner, not a general JSON parser) and check_perf() compares a fresh
// report against the baseline: any benchmark whose throughput drops by more
// than `max_regression` (fraction, e.g. 0.25) fails the gate. The
// `tools/perf_check` binary wraps this for the release-perf CI job.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csim::obs {

struct PerfRow {
  std::string name;
  double refs_per_sec = 0;
};

struct PerfReport {
  std::string benchmark;
  std::vector<PerfRow> rows;
};

/// Parses a BENCH_perf.json document. Throws std::runtime_error on a
/// malformed report (no rows, or a row without both fields).
[[nodiscard]] PerfReport load_perf_report(std::istream& is);
[[nodiscard]] PerfReport load_perf_report_file(const std::string& path);

struct PerfDelta {
  std::string name;
  double baseline = 0;
  double current = 0;
  /// current / baseline: < 1 is a slowdown.
  double ratio = 0;
  bool regressed = false;
};

struct GateResult {
  std::vector<PerfDelta> deltas;
  /// Baseline rows absent from the current report (fails the gate: a
  /// silently vanished benchmark must not pass).
  std::vector<std::string> missing;
  bool ok = true;
};

/// Compares `current` against `baseline`; a row regresses when
/// current < (1 - max_regression) * baseline.
[[nodiscard]] GateResult check_perf(const PerfReport& baseline,
                                    const PerfReport& current,
                                    double max_regression);

/// Renders the delta table (printed by the CI step on every run).
void write_delta_table(std::ostream& os, const GateResult& g,
                       double max_regression);

}  // namespace csim::obs
