// TimelineTracer: records simulator events into the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Track layout (docs/OBSERVABILITY.md):
//  - one process per cluster (pid = cluster id, named "cluster N"),
//  - one thread per processor (tid = proc id, named "proc N"),
//  - "run" complete events for execution slices, "stall:load" /
//    "stall:merge" complete events for read-stall intervals,
//  - async begin/end pairs ("miss:*") spanning each miss round-trip, which
//    Perfetto renders as arrows from issue to fill,
//  - instant events for barrier arrivals/releases, lock waits, and
//    invalidation rounds (the latter on a dedicated "memory system" track).
//
// Simulated cycles map 1:1 to trace microseconds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/observer.hpp"

namespace csim::obs {

class TimelineTracer final : public Observer {
 public:
  TimelineTracer() = default;

  // Observer hooks.
  void on_run_begin(const RunBinding& b) override;
  void on_slice(ProcId p, Cycles begin, Cycles end) override;
  void on_memory_stall(ProcId p, Addr a, Stall kind, Cycles issue,
                       Cycles ready, LatencyClass lclass) override;
  void on_barrier_arrive(ProcId p, const Barrier* b, Cycles t) override;
  void on_barrier_release(const Barrier* b, unsigned released,
                          Cycles t) override;
  void on_lock_wait(ProcId p, const Lock* l, Cycles t) override;
  void on_invalidation(Addr line, unsigned copies, Cycles t) override;

  /// Number of trace events recorded so far (metadata excluded).
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Writes the full {"traceEvents": [...]} JSON document.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;

 private:
  /// One recorded event; rendered to a JSON object at export time.
  struct Event {
    enum class Ph : std::uint8_t {
      Complete,    // "X" (uses dur)
      AsyncBegin,  // "b" (uses id)
      AsyncEnd,    // "e" (uses id)
      Instant,     // "i"
    };
    Ph ph;
    const char* name;       // static string
    const char* cat;        // static string
    std::uint32_t pid = 0;  // cluster (or the memory-system track)
    std::uint32_t tid = 0;  // processor
    Cycles ts = 0;
    Cycles dur = 0;           // Complete only
    std::uint64_t id = 0;     // Async only
    Addr addr = 0;            // args.addr when nonzero kind_has_addr
    std::uint8_t detail = 0;  // args: latency class / copies / released
    bool has_args = false;
  };

  struct PendingStall {
    bool active = false;
    Stall kind = Stall::Load;
    Cycles issue = 0;
    Cycles ready = 0;
  };
  struct PendingWait {
    bool active = false;
    const char* what = "";  // "wait:barrier" | "wait:lock"
    Cycles since = 0;
  };

  void push(const Event& e) { events_.push_back(e); }
  [[nodiscard]] std::uint32_t pid_of(ProcId p) const noexcept;

  unsigned num_procs_ = 0;
  unsigned procs_per_cluster_ = 1;
  std::uint32_t memory_pid_ = 1;  // num_clusters (one past the last cluster)
  std::uint64_t next_async_id_ = 1;
  std::vector<PendingStall> stall_;  // per processor
  std::vector<PendingWait> wait_;    // per processor
  std::vector<Event> events_;
};

}  // namespace csim::obs
