// IntervalSampler: interval-resolved simulator metrics.
//
// A CounterRegistry is an ordered list of named cumulative counters (values
// that only grow over a run). The sampler snapshots the registry every N
// simulated cycles and records the per-interval *deltas*, turning the
// end-of-run aggregates (MissCounters, TimeBuckets) into a time series in
// which miss-rate phases and sync imbalance are visible per application.
//
// Guarantee (tested): the column-wise sum of all interval deltas equals the
// final cumulative counter value exactly — the last (partial) interval is
// flushed at run end, and rows are aligned to interval boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/observer.hpp"

namespace csim::obs {

/// Ordered name -> sampling-function registry over cumulative counters.
class CounterRegistry {
 public:
  using Fn = std::function<std::uint64_t()>;

  void add(std::string name, Fn fn) {
    names_.push_back(std::move(name));
    fns_.push_back(std::move(fn));
  }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return fns_.size(); }
  void clear() {
    names_.clear();
    fns_.clear();
  }

  /// Samples every counter in registration order into `out`.
  void sample(std::vector<std::uint64_t>& out) const {
    out.resize(fns_.size());
    for (std::size_t i = 0; i < fns_.size(); ++i) out[i] = fns_[i]();
  }

 private:
  std::vector<std::string> names_;
  std::vector<Fn> fns_;
};

class IntervalSampler final : public Observer {
 public:
  /// One row: counter deltas over simulated cycles [start, end).
  struct Row {
    Cycles start = 0;
    Cycles end = 0;
    std::vector<std::uint64_t> delta;
  };

  /// Snapshots every `interval_cycles` simulated cycles (must be > 0).
  explicit IntervalSampler(Cycles interval_cycles);

  /// Additional counters sampled alongside the built-in MissCounters /
  /// TimeBuckets columns. Register before the run starts.
  void add_counter(std::string name, CounterRegistry::Fn fn) {
    extra_.add(std::move(name), std::move(fn));
  }

  // Observer hooks.
  void on_run_begin(const RunBinding& b) override;
  void on_event_dispatched(Cycles now, std::uint64_t events_run) override;
  void on_run_end(Cycles wall_time) override;

  [[nodiscard]] Cycles interval() const noexcept { return interval_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return registry_.names();
  }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  /// Cumulative counter values at the final flush (== column-wise row sums).
  [[nodiscard]] const std::vector<std::uint64_t>& final_totals()
      const noexcept {
    return last_;
  }

  /// CSV: "interval,start_cycle,end_cycle,<columns...>", one row per
  /// interval, cells are per-interval deltas.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;
  /// JSON: columns, rows (deltas), and the final cumulative totals.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;

 private:
  void flush(Cycles boundary);

  Cycles interval_;
  CounterRegistry registry_;
  CounterRegistry extra_;
  std::vector<std::uint64_t> last_;
  std::vector<std::uint64_t> cur_;
  Cycles row_start_ = 0;
  Cycles next_ = 0;
  std::vector<Row> rows_;
};

}  // namespace csim::obs
