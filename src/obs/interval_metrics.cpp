#include "src/obs/interval_metrics.hpp"

#include <ostream>
#include <stdexcept>

#include "src/core/atomic_file.hpp"
#include "src/core/sampling.hpp"
#include "src/core/stats.hpp"
#include "src/mem/memory_system.hpp"

namespace csim::obs {

IntervalSampler::IntervalSampler(Cycles interval_cycles)
    : interval_(interval_cycles) {
  if (interval_ == 0) {
    throw std::invalid_argument("IntervalSampler: interval must be > 0");
  }
}

void IntervalSampler::on_run_begin(const RunBinding& b) {
  registry_.clear();
  rows_.clear();
  row_start_ = 0;
  next_ = interval_;

  const MemorySystem* mem = b.mem;
  // MissCounters columns (machine totals; totals() re-sums per cluster).
  const auto ctr = [mem](std::uint64_t MissCounters::* field) {
    return [mem, field]() { return mem->totals().*field; };
  };
  registry_.add("reads", ctr(&MissCounters::reads));
  registry_.add("writes", ctr(&MissCounters::writes));
  registry_.add("read_hits", ctr(&MissCounters::read_hits));
  registry_.add("write_hits", ctr(&MissCounters::write_hits));
  registry_.add("read_misses", ctr(&MissCounters::read_misses));
  registry_.add("write_misses", ctr(&MissCounters::write_misses));
  registry_.add("upgrade_misses", ctr(&MissCounters::upgrade_misses));
  registry_.add("merges", ctr(&MissCounters::merges));
  registry_.add("cold_misses", ctr(&MissCounters::cold_misses));
  registry_.add("invalidations", ctr(&MissCounters::invalidations));
  registry_.add("evictions", ctr(&MissCounters::evictions));
  registry_.add("snoop_transfers", ctr(&MissCounters::snoop_transfers));
  registry_.add("cluster_memory_hits",
                ctr(&MissCounters::cluster_memory_hits));
  registry_.add("bus_invalidations", ctr(&MissCounters::bus_invalidations));
  registry_.add("bank_conflicts", ctr(&MissCounters::bank_conflicts));
  registry_.add("bank_wait", ctr(&MissCounters::bank_wait_cycles));
  registry_.add("dir_wait", ctr(&MissCounters::dir_wait_cycles));
  registry_.add("nic_wait", ctr(&MissCounters::nic_wait_cycles));

  // TimeBuckets columns: machine-wide sums of the raw per-processor buckets
  // (no final-barrier adjustment — that is applied post-run by SimResult).
  const auto bkt = [procs = b.proc_buckets](Cycles TimeBuckets::* field) {
    return [procs, field]() {
      std::uint64_t sum = 0;
      for (const TimeBuckets* t : procs) sum += t->*field;
      return sum;
    };
  };
  registry_.add("t_cpu", bkt(&TimeBuckets::cpu));
  registry_.add("t_load", bkt(&TimeBuckets::load));
  registry_.add("t_merge", bkt(&TimeBuckets::merge));
  registry_.add("t_sync", bkt(&TimeBuckets::sync));
  registry_.add("t_contention", bkt(&TimeBuckets::contention));

  // Event-queue throughput.
  if (b.events_run != nullptr) {
    registry_.add("events", [n = b.events_run]() { return *n; });
  }

  // Interval-sampled runs: cumulative retired / detailed reference counts,
  // so the warming <-> detail regime schedule is visible per interval.
  if (b.sampling != nullptr) {
    registry_.add("sampled_refs", [s = b.sampling]() { return s->refs(); });
    registry_.add("detailed_refs", [s = b.sampling]() {
      return s->detailed_refs_so_far();
    });
  }

  // User-registered extras ride along.
  for (std::size_t i = 0; i < extra_.size(); ++i) {
    // Re-adding by sampling through the extra registry keeps Fn copies
    // alive in registry_ without exposing its internals.
    registry_.add(extra_.names()[i],
                  [this, i]() {
                    std::vector<std::uint64_t> one;
                    extra_.sample(one);
                    return one[i];
                  });
  }

  registry_.sample(last_);  // baseline (normally all zero at t = 0)
}

void IntervalSampler::flush(Cycles boundary) {
  registry_.sample(cur_);
  Row row;
  row.start = row_start_;
  row.end = boundary;
  row.delta.resize(cur_.size());
  for (std::size_t i = 0; i < cur_.size(); ++i) {
    row.delta[i] = cur_[i] - last_[i];
  }
  rows_.push_back(std::move(row));
  last_ = cur_;
  row_start_ = boundary;
}

void IntervalSampler::on_event_dispatched(Cycles now, std::uint64_t) {
  if (now < next_) return;
  // All activity since the previous snapshot is attributed to the interval
  // ending at the first crossed boundary; empty intervals are skipped.
  flush(next_);
  next_ += interval_;
  while (next_ <= now) next_ += interval_;
}

void IntervalSampler::on_run_end(Cycles wall_time) {
  const Cycles end = wall_time > row_start_ ? wall_time : row_start_;
  flush(end == row_start_ ? row_start_ + 1 : end);
}

void IntervalSampler::write_csv(std::ostream& os) const {
  os << "interval,start_cycle,end_cycle";
  for (const std::string& n : registry_.names()) os << ',' << n;
  os << '\n';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << i << ',' << r.start << ',' << r.end;
    for (std::uint64_t v : r.delta) os << ',' << v;
    os << '\n';
  }
}

void IntervalSampler::write_json(std::ostream& os) const {
  os << "{\n  \"interval_cycles\": " << interval_ << ",\n  \"columns\": [";
  const auto& names = registry_.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << (i ? ", " : "") << '"' << names[i] << '"';
  }
  os << "],\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << "    {\"start\": " << r.start << ", \"end\": " << r.end
       << ", \"delta\": [";
    for (std::size_t j = 0; j < r.delta.size(); ++j) {
      os << (j ? ", " : "") << r.delta[j];
    }
    os << "]}" << (i + 1 < rows_.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"final\": {";
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << (i ? ", " : "") << '"' << names[i]
       << "\": " << (i < last_.size() ? last_[i] : 0);
  }
  os << "}\n}\n";
}

void IntervalSampler::write_csv_file(const std::string& path) const {
  atomic_write_file(path, [this](std::ostream& os) { write_csv(os); });
}

void IntervalSampler::write_json_file(const std::string& path) const {
  atomic_write_file(path, [this](std::ostream& os) { write_json(os); });
}

}  // namespace csim::obs
