// Build provenance for run manifests (docs/OBSERVABILITY.md).
#pragma once

#include <string_view>

namespace csim::obs {

/// `git describe --always --dirty --tags` of the source tree, captured at
/// CMake configure time; "unknown" when the tree is not a git checkout.
/// Note: re-run CMake (or rebuild) after committing for a fresh value.
[[nodiscard]] std::string_view git_describe() noexcept;

}  // namespace csim::obs
