#include "src/obs/build_info.hpp"

// CSIM_GIT_DESCRIBE is injected per-source by src/CMakeLists.txt from
// `git describe --always --dirty --tags` at configure time.
#ifndef CSIM_GIT_DESCRIBE
#define CSIM_GIT_DESCRIBE "unknown"
#endif

namespace csim::obs {

std::string_view git_describe() noexcept { return CSIM_GIT_DESCRIBE; }

}  // namespace csim::obs
