#include "src/obs/run_observer.hpp"

#include <utility>

#include "src/obs/chrome_trace.hpp"
#include "src/obs/interval_metrics.hpp"

namespace csim::obs {

RunObserver::RunObserver() = default;
RunObserver::~RunObserver() = default;

void RunObserver::enable_trace(std::string path) {
  tracer_ = std::make_unique<TimelineTracer>();
  trace_path_ = std::move(path);
  add(tracer_.get());
}

void RunObserver::enable_metrics(Cycles interval, std::string csv_path,
                                 std::string json_path) {
  sampler_ = std::make_unique<IntervalSampler>(interval);
  metrics_csv_path_ = std::move(csv_path);
  metrics_json_path_ = std::move(json_path);
  add(sampler_.get());
}

void RunObserver::on_run_end(Cycles wall_time) {
  MultiObserver::on_run_end(wall_time);  // children flush first
  if (tracer_ != nullptr && !trace_path_.empty()) {
    tracer_->write_json_file(trace_path_);
  }
  if (sampler_ != nullptr) {
    if (!metrics_csv_path_.empty()) {
      sampler_->write_csv_file(metrics_csv_path_);
    }
    if (!metrics_json_path_.empty()) {
      sampler_->write_json_file(metrics_json_path_);
    }
  }
}

std::string row_path(const std::string& base, unsigned ppc,
                     std::size_t num_rows) {
  if (num_rows <= 1) return base;
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.rfind('/');
  const std::string suffix = "_ppc" + std::to_string(ppc);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

}  // namespace csim::obs
