#include "src/obs/manifest.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "src/core/atomic_file.hpp"
#include "src/obs/build_info.hpp"
#include "src/report/experiment.hpp"

namespace csim::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= kFnvPrime;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(std::string_view s) noexcept {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

void hash_counters(Fnv& f, const MissCounters& c) {
  f.u64(c.reads);
  f.u64(c.writes);
  f.u64(c.read_hits);
  f.u64(c.write_hits);
  f.u64(c.read_misses);
  f.u64(c.write_misses);
  f.u64(c.upgrade_misses);
  f.u64(c.merges);
  f.u64(c.cold_misses);
  f.u64(c.invalidations);
  f.u64(c.evictions);
  f.u64(c.snoop_transfers);
  f.u64(c.cluster_memory_hits);
  f.u64(c.bus_invalidations);
  f.u64(c.bank_conflicts);
  f.u64(c.bank_wait_cycles);
  f.u64(c.dir_wait_cycles);
  f.u64(c.nic_wait_cycles);
  for (std::uint64_t v : c.by_class) f.u64(v);
}

void hash_buckets(Fnv& f, const TimeBuckets& b) {
  f.u64(b.cpu);
  f.u64(b.load);
  f.u64(b.merge);
  f.u64(b.sync);
  f.u64(b.contention);
}

const char* style_name(ClusterStyle s) {
  return s == ClusterStyle::SharedMemory ? "shared_memory" : "shared_cache";
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  Fnv f;
  for (char c : bytes) f.byte(static_cast<std::uint8_t>(c));
  return f.h;
}

std::uint64_t config_digest(const MachineSpec& cfg, std::string_view app,
                            ProblemScale scale) {
  Fnv f;
  f.str(app);
  f.byte(static_cast<std::uint8_t>(scale));
  f.u64(cfg.num_procs);
  f.u64(cfg.procs_per_cluster);
  f.byte(static_cast<std::uint8_t>(cfg.cluster_style));
  f.u64(cfg.cache.per_proc_bytes);
  f.u64(cfg.cache.line_bytes);
  f.u64(cfg.cache.associativity);
  f.u64(cfg.latency.local_clean);
  f.u64(cfg.latency.local_dirty_remote);
  f.u64(cfg.latency.remote_clean);
  f.u64(cfg.latency.remote_dirty_third);
  f.u64(cfg.latency.snoop_transfer);
  f.u64(cfg.latency.cluster_memory);
  f.u64(cfg.hit_latency);
  f.byte(cfg.model_shared_hit_costs ? 1 : 0);
  f.u64(cfg.banks_per_proc);
  f.byte(cfg.contention.enabled ? 1 : 0);
  f.u64(cfg.contention.bank_busy);
  f.u64(cfg.contention.directory_busy);
  f.u64(cfg.contention.nic_busy);
  f.u64(cfg.page_bytes);
  f.u64(cfg.runahead_quantum);
  // Appended only when sampling is on: every digest of an unsampled
  // configuration hashes the exact byte stream it always has (the golden
  // digest suite pins this), and journal entries from older builds stay
  // valid cache hits.
  if (cfg.sampling.enabled) {
    f.byte(1);
    f.u64(cfg.sampling.warmup_refs);
    f.u64(cfg.sampling.detail_refs);
    f.u64(cfg.sampling.period_refs);
    f.u64(cfg.sampling.detail_at.size());
    for (std::uint64_t at : cfg.sampling.detail_at) f.u64(at);
    f.u64(cfg.sampling.warm_quantum);
  }
  // Appended only when cluster-parallel execution is on (same reasoning as
  // sampling above). The horizon changes results (window boundary floors);
  // the worker count never does — by construction — so it is excluded and
  // a cached row satisfies any --par N with the same horizon.
  if (cfg.parallel.enabled()) {
    f.byte(2);
    f.u64(cfg.parallel_horizon());
  }
  return f.h;
}

std::uint64_t warm_config_digest(const MachineSpec& cfg, std::string_view app,
                                 ProblemScale scale) {
  Fnv f;
  f.str(app);
  f.byte(static_cast<std::uint8_t>(scale));
  f.u64(cfg.num_procs);
  f.u64(cfg.procs_per_cluster);
  f.byte(static_cast<std::uint8_t>(cfg.cluster_style));
  f.u64(cfg.cache.per_proc_bytes);
  f.u64(cfg.cache.line_bytes);
  f.u64(cfg.cache.associativity);
  f.u64(cfg.page_bytes);
  f.u64(cfg.hit_latency);
  f.byte(cfg.model_shared_hit_costs ? 1 : 0);
  f.u64(cfg.banks_per_proc);
  f.u64(cfg.sampling.warm_quantum);
  // The effective warmup boundary: explicit detail_at points override the
  // periodic schedule, so the first of them is where warming ends.
  f.u64(cfg.sampling.detail_at.empty() ? cfg.sampling.warmup_refs
                                       : cfg.sampling.detail_at[0]);
  // Parallel runs shard warming per cluster; the boundary state matches a
  // sequential warmup, but proc_now clocks depend on the epoch schedule, so
  // checkpoints must not be shared across engines or horizon widths.
  if (cfg.parallel.enabled()) {
    f.byte(2);
    f.u64(cfg.parallel_horizon());
  }
  return f.h;
}

std::uint64_t result_digest(const SimResult& r) {
  Fnv f;
  f.str(r.app_name);
  f.byte(static_cast<std::uint8_t>(r.scale));
  f.u64(r.config.num_procs);
  f.u64(r.config.procs_per_cluster);
  f.byte(static_cast<std::uint8_t>(r.config.cluster_style));
  f.u64(r.config.cache.per_proc_bytes);
  f.u64(r.config.cache.line_bytes);
  f.u64(r.config.cache.associativity);
  f.u64(r.config.hit_latency);
  f.u64(r.config.runahead_quantum);
  f.byte(r.config.model_shared_hit_costs ? 1 : 0);
  f.byte(r.ok ? 1 : 0);
  if (!r.ok) {
    f.str(r.error_kind);
    return f.h;
  }
  f.u64(r.wall_time);
  f.u64(r.events);
  hash_counters(f, r.totals);
  f.u64(r.per_proc.size());
  for (const TimeBuckets& b : r.per_proc) hash_buckets(f, b);
  f.u64(r.per_cluster.size());
  for (const MissCounters& c : r.per_cluster) hash_counters(f, c);
  // Appended only for sampled rows: unsampled results hash the exact byte
  // stream they always have (golden digests unchanged).
  if (r.sampled) {
    f.byte(1);
    f.u64(r.detailed_refs);
  }
  return f.h;
}

std::uint64_t sweep_digest(const std::vector<SimResult>& rows) {
  Fnv f;
  f.u64(rows.size());
  for (const SimResult& r : rows) f.u64(result_digest(r));
  return f.h;
}

std::string digest_hex(std::uint64_t d) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(d));
  return buf;
}

void write_run_manifest(std::ostream& os, const std::string& tool,
                        const std::vector<SimResult>& rows,
                        std::time_t generated_unix) {
  os << "{\n";
  os << "  \"schema\": \"csim.run_manifest/3\",\n";
  os << "  \"tool\": \"" << json_escape(tool) << "\",\n";
  os << "  \"git\": \"" << json_escape(std::string(git_describe()))
     << "\",\n";
  os << "  \"generated_unix\": " << static_cast<long long>(generated_unix)
     << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimResult& r = rows[i];
    os << "    {\"app\": \"" << json_escape(r.app_name) << "\", \"scale\": \""
       << to_string(r.scale) << "\", \"ok\": " << (r.ok ? "true" : "false")
       << ",\n     \"config\": {\"label\": \"" << json_escape(r.config.label())
       << "\", \"procs\": " << r.config.num_procs
       << ", \"ppc\": " << r.config.procs_per_cluster << ", \"style\": \""
       << style_name(r.config.cluster_style)
       << "\", \"cache_bytes\": " << r.config.cache.per_proc_bytes
       << ", \"line_bytes\": " << r.config.cache.line_bytes
       << ", \"assoc\": " << r.config.cache.associativity
       << ", \"quantum\": " << r.config.runahead_quantum << "},\n";
    if (r.ok) {
      os << "     \"wall_time\": " << r.wall_time
         << ", \"events\": " << r.events;
      if (r.sampled) {
        char cov[32];
        std::snprintf(cov, sizeof cov, "%.6f", r.coverage);
        os << ", \"sampled\": true, \"coverage\": " << cov
           << ", \"detailed_refs\": " << r.detailed_refs;
      }
    } else {
      os << "     \"error_kind\": \"" << json_escape(r.error_kind) << "\"";
    }
    char host[32];
    std::snprintf(host, sizeof host, "%.6f", r.host_seconds);
    os << ", \"host_seconds\": " << host << ",\n     \"digest\": \""
       << digest_hex(result_digest(r)) << "\"}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"sweep_digest\": \"" << digest_hex(sweep_digest(rows)) << "\"\n";
  os << "}\n";
}

void write_run_manifest_file(const std::string& path, const std::string& tool,
                             const std::vector<SimResult>& rows) {
  atomic_write_file(path, [&](std::ostream& os) {
    write_run_manifest(os, tool, rows, std::time(nullptr));
  });
}

namespace {

/// Shared body of the /4 (prov == null) and /5 (prov given) sweep
/// manifests; the /4 byte stream is pinned by manifest_test.
void write_sweep_manifest(std::ostream& os, const std::string& tool,
                          const SweepResult& sweep,
                          std::time_t generated_unix,
                          const SweepProvenance* prov) {
  const std::vector<SimResult>& rows = sweep.rows;
  os << "{\n";
  os << "  \"schema\": \"csim.run_manifest/" << (prov != nullptr ? 5 : 4)
     << "\",\n";
  os << "  \"tool\": \"" << json_escape(tool) << "\",\n";
  os << "  \"git\": \"" << json_escape(std::string(git_describe()))
     << "\",\n";
  os << "  \"generated_unix\": " << static_cast<long long>(generated_unix)
     << ",\n";
  if (prov != nullptr) {
    os << "  \"shard\": {\"index\": " << prov->shard_index
       << ", \"count\": " << prov->shard_count
       << ", \"rows_total\": " << prov->rows_total << "},\n";
    os << "  \"cache_hits\": " << prov->cache_hits << ",\n";
  }
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimResult& r = rows[i];
    os << "    {\"app\": \"" << json_escape(r.app_name) << "\", \"scale\": \""
       << to_string(r.scale) << "\", \"ok\": " << (r.ok ? "true" : "false")
       << ",\n     \"config\": {\"label\": \"" << json_escape(r.config.label())
       << "\", \"procs\": " << r.config.num_procs
       << ", \"ppc\": " << r.config.procs_per_cluster << ", \"style\": \""
       << style_name(r.config.cluster_style)
       << "\", \"cache_bytes\": " << r.config.cache.per_proc_bytes
       << ", \"line_bytes\": " << r.config.cache.line_bytes
       << ", \"assoc\": " << r.config.cache.associativity
       << ", \"quantum\": " << r.config.runahead_quantum << "},\n";
    if (r.ok) {
      os << "     \"wall_time\": " << r.wall_time
         << ", \"events\": " << r.events;
      if (r.sampled) {
        char cov[32];
        std::snprintf(cov, sizeof cov, "%.6f", r.coverage);
        os << ", \"sampled\": true, \"coverage\": " << cov
           << ", \"detailed_refs\": " << r.detailed_refs;
      }
    } else {
      os << "     \"error_kind\": \"" << json_escape(r.error_kind) << "\"";
    }
    char host[32];
    std::snprintf(host, sizeof host, "%.6f", r.host_seconds);
    os << ", \"host_seconds\": " << host << ",\n";
    if (i < sweep.outcomes.size()) {
      const RowOutcome& o = sweep.outcomes[i];
      os << "     \"outcome\": {\"status\": \"" << to_string(o.status)
         << "\", \"attempts\": " << o.attempts << ", \"from_journal\": "
         << (o.from_journal ? "true" : "false") << ", \"config_digest\": \""
         << digest_hex(o.config_digest) << "\"},\n";
    }
    os << "     \"digest\": \"" << digest_hex(result_digest(r)) << "\"}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  if (!sweep.journal_warnings.empty()) {
    os << "  \"journal_warnings\": [\n";
    for (std::size_t i = 0; i < sweep.journal_warnings.size(); ++i) {
      os << "    \"" << json_escape(sweep.journal_warnings[i]) << "\""
         << (i + 1 < sweep.journal_warnings.size() ? "," : "") << '\n';
    }
    os << "  ],\n";
  }
  os << "  \"sweep_digest\": \"" << digest_hex(sweep_digest(rows)) << "\"\n";
  os << "}\n";
}

}  // namespace

void write_run_manifest(std::ostream& os, const std::string& tool,
                        const SweepResult& sweep,
                        std::time_t generated_unix) {
  write_sweep_manifest(os, tool, sweep, generated_unix, nullptr);
}

void write_run_manifest(std::ostream& os, const std::string& tool,
                        const SweepResult& sweep, std::time_t generated_unix,
                        const SweepProvenance& prov) {
  write_sweep_manifest(os, tool, sweep, generated_unix, &prov);
}

void write_run_manifest_file(const std::string& path, const std::string& tool,
                             const SweepResult& sweep) {
  atomic_write_file(path, [&](std::ostream& os) {
    write_run_manifest(os, tool, sweep, std::time(nullptr));
  });
}

void write_run_manifest_file(const std::string& path, const std::string& tool,
                             const SweepResult& sweep,
                             const SweepProvenance& prov) {
  atomic_write_file(path, [&](std::ostream& os) {
    write_run_manifest(os, tool, sweep, std::time(nullptr), prov);
  });
}

}  // namespace csim::obs
