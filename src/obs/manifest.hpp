// Run manifests: one JSON record per sweep row capturing configuration,
// build provenance (git describe), host wall time, and a digest of the
// simulation result — enough to reproduce (and verify the reproduction of)
// any figure from its manifest alone.
//
// The digest covers only deterministic simulation outputs (configuration,
// wall_time in cycles, event count, miss taxonomy, time buckets); host wall
// time and timestamps are recorded but excluded, so two identical runs
// always produce the same digest (pinned by the determinism suite).
#pragma once

#include <cstdint>
#include <ctime>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/stats.hpp"

namespace csim {
struct SweepResult;
}

namespace csim::obs {

/// FNV-1a 64-bit digest of an arbitrary byte string (the hash every digest
/// below is built from; exported for the journal's record framing).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// FNV-1a 64-bit digest of a simulation result's deterministic fields.
/// Failed runs (ok == false) hash their error kind instead of statistics.
[[nodiscard]] std::uint64_t result_digest(const SimResult& r);

/// FNV-1a 64-bit digest of a sweep row's *identity*: the application name,
/// problem scale, and every simulation-affecting MachineSpec field
/// (topology, cache geometry, latency model, contention model, quantum...).
/// Operational knobs that cannot change results — watchdog budgets, audit
/// cadence, host deadlines — are excluded, so a row journaled under one
/// deadline/retry policy is still a cache hit under another. Keys the
/// crash-safe sweep journal (src/report/journal.hpp).
[[nodiscard]] std::uint64_t config_digest(const MachineSpec& cfg,
                                          std::string_view app,
                                          ProblemScale scale);

/// FNV-1a 64-bit digest of a sampled row's *warmup identity*: the
/// application, scale, and every knob that determines the memory state and
/// processor clocks at the warmup boundary (topology, cache geometry, page
/// size, hit latency, warm quantum, and the boundary reference count). Knobs
/// that only matter inside detailed intervals — the latency model, the
/// contention model, the detailed runahead quantum, interval placement past
/// the first boundary — are excluded, so one warm-state checkpoint
/// (src/mem/warm_state.hpp) serves every row of a latency/contention sweep.
[[nodiscard]] std::uint64_t warm_config_digest(const MachineSpec& cfg,
                                               std::string_view app,
                                               ProblemScale scale);

/// Digest of a whole sweep: FNV-1a over the row digests, in order.
[[nodiscard]] std::uint64_t sweep_digest(const std::vector<SimResult>& rows);

/// 16-hex-digit lowercase rendering of a digest.
[[nodiscard]] std::string digest_hex(std::uint64_t d);

/// Writes the "csim.run_manifest/3" JSON document for a sweep.
/// `tool` names the producing driver (e.g. "csim_cli"); `generated_unix`
/// stamps the manifest (pass a fixed value in tests for byte-stable output).
void write_run_manifest(std::ostream& os, const std::string& tool,
                        const std::vector<SimResult>& rows,
                        std::time_t generated_unix);

/// Convenience: writes to `path`, stamped with the current time.
void write_run_manifest_file(const std::string& path, const std::string& tool,
                             const std::vector<SimResult>& rows);

/// Writes the "csim.run_manifest/4" JSON document for a SweepResult: the /3
/// rows augmented with a per-row "outcome" object (status, attempts, journal
/// provenance, config digest) and the sweep's journal warnings. The /3
/// writer above is unchanged, byte for byte, for existing consumers.
void write_run_manifest(std::ostream& os, const std::string& tool,
                        const SweepResult& sweep, std::time_t generated_unix);

/// Convenience: writes the /4 document to `path`, stamped with the current
/// time, atomically (temp + rename).
void write_run_manifest_file(const std::string& path, const std::string& tool,
                             const SweepResult& sweep);

/// Provenance of a sharded and/or cache-served sweep (csim_cli --shard,
/// csim_serve): which slice of the full sweep this artifact covers and how
/// much of it was satisfied without simulating.
struct SweepProvenance {
  unsigned shard_index = 0;
  unsigned shard_count = 1;    ///< 1 = unsharded
  std::size_t rows_total = 0;  ///< full sweep rows before shard selection
  std::size_t cache_hits = 0;  ///< rows served from the cache / journal
};

/// Writes the "csim.run_manifest/5" document: the /4 document plus a top-
/// level "shard" object and "cache_hits" count. The /4 writer keeps its
/// exact bytes for consumers that never shard.
void write_run_manifest(std::ostream& os, const std::string& tool,
                        const SweepResult& sweep, std::time_t generated_unix,
                        const SweepProvenance& prov);

/// Convenience: writes the /5 document to `path`, stamped with the current
/// time, atomically (temp + rename).
void write_run_manifest_file(const std::string& path, const std::string& tool,
                             const SweepResult& sweep,
                             const SweepProvenance& prov);

}  // namespace csim::obs
