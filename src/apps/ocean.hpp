// Regular-grid iterative solver with a multigrid V-cycle (SPLASH-2 "Ocean"
// analogue).
//
// Paper characterization: 130x130 grids (25 of them), near-neighbour
// communication at the four borders of each processor's square subgrid;
// processors in the same processor-grid row own horizontally adjacent
// subgrids, so clustering captures the (dominant, column-oriented) border
// traffic and roughly halves communication per doubling of cluster size.
// Figure 3 uses a smaller 66x66 grid to raise the communication rate.
//
// We solve a real Poisson problem (Gauss-Seidel red-black smoothing plus a
// multigrid V-cycle correction, with a lock-protected global residual
// reduction); verify() checks the residual actually fell. The paper's ~25
// auxiliary grids are modelled by `aux_fields` pointwise field updates per
// iteration, which carry the same (local) access pattern and keep the
// compute-to-communication ratio representative.
#pragma once

#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct OceanConfig {
  unsigned n = 130;          ///< grid dimension including border (paper: 130)
  unsigned iters = 4;        ///< outer iterations (time steps)
  unsigned aux_fields = 10;  ///< pointwise auxiliary field updates per step
  unsigned mg_levels = 3;    ///< coarse levels in the V-cycle
  unsigned relax_sweeps = 2; ///< red-black sweeps per level per V-cycle
  Cycles point_cycles = 24;  ///< busy cycles per stencil point
  std::uint64_t seed = 0x0cea'0cea;

  static OceanConfig preset(ProblemScale s);
  /// The Figure 3 small problem (66x66).
  static OceanConfig small_problem();
};

class OceanApp final : public Program {
 public:
  explicit OceanApp(OceanConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "ocean"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const OceanConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] double initial_residual() const noexcept { return res0_; }
  [[nodiscard]] double final_residual() const noexcept { return res_final_; }

 private:
  /// Subgrid-contiguous (4-D array) layout of one grid level.
  struct Level {
    unsigned dim = 0;  ///< including border
    std::vector<unsigned> owner_row, owner_col;    ///< global -> proc grid r/c
    std::vector<std::size_t> local_row, local_col; ///< global -> local index
    std::vector<std::size_t> tile_offset;          ///< proc -> element offset
    std::vector<std::size_t> tile_cols;            ///< proc -> tile width
    std::size_t elems = 0;

    [[nodiscard]] std::size_t index(std::size_t gr, std::size_t gc,
                                    const ProcGrid& g) const noexcept {
      const ProcId p = g.at(owner_row[gr], owner_col[gc]);
      return tile_offset[p] + local_row[gr] * tile_cols[p] + local_col[gc];
    }
  };

  /// A named field on a level: host values + simulated base address.
  struct Field {
    std::vector<double> v;
    Addr base = 0;
  };

  void build_level(Level& L, unsigned dim, const MachineSpec& mc);
  Field make_field(AddressSpace& as, const Level& L, const char* label);

  [[nodiscard]] Addr addr(const Field& f, const Level& L, std::size_t gr,
                          std::size_t gc) const noexcept {
    return f.base + L.index(gr, gc, grid_) * sizeof(double);
  }
  double& at(Field& f, const Level& L, std::size_t gr, std::size_t gc) noexcept {
    return f.v[L.index(gr, gc, grid_)];
  }
  [[nodiscard]] double at(const Field& f, const Level& L, std::size_t gr,
                          std::size_t gc) const noexcept {
    return f.v[L.index(gr, gc, grid_)];
  }

  /// One red-black Gauss-Seidel sweep of `u` against rhs `f` on level `lev`
  /// over this proc's tile; returns (via res_acc) the local residual.
  SimTask relax(Proc& p, unsigned lev, Field& u, const Field& f,
                double* res_acc);
  SimTask restrict_residual(Proc& p, unsigned lev);  // lev -> lev+1
  SimTask prolong_correction(Proc& p, unsigned lev); // lev+1 -> lev
  SimTask vcycle(Proc& p);
  SimTask aux_update(Proc& p, unsigned k);
  SimTask reduce_residual(Proc& p, double local);

  [[nodiscard]] Tile my_tile(unsigned lev, ProcId id) const noexcept {
    const Level& L = levels_[lev];
    return tile_of(L.dim, L.dim, grid_, id);
  }

  OceanConfig cfg_;
  ProcGrid grid_{};
  unsigned nprocs_ = 0;
  std::vector<Level> levels_;
  // Fields: per level u (solution/correction) and f (rhs); the fine level
  // also carries the aux fields.
  std::vector<Field> u_, f_;
  std::vector<Field> aux_;
  Field global_sum_;  ///< one shared scalar for the residual reduction
  double host_sum_ = 0;
  double res0_ = -1, res_final_ = -1;
  std::unique_ptr<Barrier> bar_;
  std::unique_ptr<Lock> sum_lock_;
};

}  // namespace csim
