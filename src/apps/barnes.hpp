// Hierarchical N-body simulation (SPLASH-2 "Barnes" analogue, Barnes-Hut).
//
// Paper characterization: 8192 particles, theta = 1.0; low-volume
// unstructured (but hierarchical) communication; small working sets
// (~12 KB) that overlap substantially across processors because processors
// with spatially adjacent particles touch the same upper tree nodes.
//
// Each step builds a real octree, computes real Barnes-Hut forces (Plummer
// softening) and integrates; verify() compares accelerations against a
// direct O(n^2) sum at Test scale and checks integration invariants
// otherwise. Bodies are partitioned in tree (space-filling) order so
// neighbouring processors own neighbouring bodies.
#pragma once

#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/octree.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct BarnesConfig {
  std::size_t bodies = 4096;  ///< paper: 8192
  unsigned steps = 3;
  double theta = 1.0;  ///< opening criterion (paper: 1.0)
  double dt = 0.02;
  double eps = 0.05;  ///< Plummer softening
  int leaf_cap = 8;
  Cycles interact_cycles = 70;
  std::uint64_t seed = 0xbab5'0001;

  static BarnesConfig preset(ProblemScale s);
};

class BarnesApp final : public Program {
 public:
  explicit BarnesApp(BarnesConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "barnes"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const BarnesConfig& config() const noexcept { return cfg_; }

  /// Barnes-Hut acceleration on body `i` from the current tree (host math).
  [[nodiscard]] Vec3 bh_accel(std::size_t i) const;
  /// Direct-sum acceleration on body `i` (verification reference).
  [[nodiscard]] Vec3 direct_accel(std::size_t i) const;

 private:
  [[nodiscard]] Addr body_addr(std::size_t i) const noexcept {
    return body_base_ + i * kBodyBytes;
  }
  void rebuild_tree();

  SimTask load_phase(Proc& p, const BlockRange& mine);
  SimTask com_phase(Proc& p);
  SimTask force_phase(Proc& p, const BlockRange& mine);
  SimTask update_phase(Proc& p, const BlockRange& mine);

  static constexpr Addr kBodyBytes = 128;
  static constexpr Addr kNodeBytes = 128;
  static constexpr unsigned kNumLocks = 64;

  BarnesConfig cfg_;
  unsigned nprocs_ = 0;
  std::vector<Vec3> pos_, vel_, acc_;
  std::vector<double> mass_;
  PointOctree tree_;
  Addr body_base_ = 0, node_base_ = 0;
  std::unique_ptr<Barrier> bar_;
  std::vector<std::unique_ptr<Lock>> cell_locks_;
  unsigned steps_done_ = 0;
};

}  // namespace csim
