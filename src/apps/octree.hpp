// Shared octree substrate: 3-D vectors and a point octree with centers of
// mass, used by Barnes (Barnes-Hut), FMM (hierarchical interaction lists) and
// as a spatial sort for processor partitioning.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

struct Vec3 {
  double x = 0, y = 0, z = 0;
  Vec3 operator+(const Vec3& o) const noexcept { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const noexcept { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  [[nodiscard]] double norm2() const noexcept { return x * x + y * y + z * z; }
};

/// An octree over a point set, with per-node mass / center-of-mass and a
/// simulated address per node.
class PointOctree {
 public:
  struct Node {
    Vec3 center{};
    double half = 0;  ///< half-width of the cube
    double mass = 0;
    Vec3 com{};
    int first_child = -1;  ///< internal: index into the child table; -1 = leaf
    int first_point = 0;   ///< leaf: index into point_order()
    int num_points = 0;    ///< points under this node (leaf: points in it)
    Addr addr = 0;         ///< simulated address of this node's record
    [[nodiscard]] bool leaf() const noexcept { return first_child < 0; }
  };

  /// Builds the tree over `points` with at most `leaf_cap` points per leaf.
  /// `masses` may be empty (all points weigh 1).
  void build(const std::vector<Vec3>& points, const std::vector<double>& masses,
             int leaf_cap);

  /// Assigns each node a simulated address (bytes_per_node apart) starting at
  /// `base`. Returns total bytes consumed.
  std::size_t assign_addrs(Addr base, unsigned bytes_per_node);

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const Node& root() const { return nodes_.front(); }

  /// Child node index of internal node `n` in octant `oct` (-1 if empty).
  [[nodiscard]] int child(const Node& n, int oct) const noexcept {
    return children_[static_cast<std::size_t>(n.first_child)][oct];
  }

  /// Point indices in depth-first leaf order — a space-filling order used to
  /// give processors spatially contiguous particle sets.
  [[nodiscard]] const std::vector<int>& point_order() const noexcept {
    return order_;
  }

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

 private:
  int build_rec(std::vector<int>& idx, int begin, int end, Vec3 center,
                double half, const std::vector<Vec3>& pts,
                const std::vector<double>& masses, int leaf_cap, int depth);

  std::vector<Node> nodes_;
  std::vector<std::array<int, 8>> children_;
  std::vector<int> order_;
};

}  // namespace csim
