#include "src/apps/radix.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

RadixConfig RadixConfig::preset(ProblemScale s) {
  RadixConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.n = 4096;
      c.radix = 64;
      c.key_bits = 12;
      break;
    case ProblemScale::Default:
      break;  // struct defaults
    case ProblemScale::Paper:
      c.n = 262144;
      c.radix = 256;
      c.key_bits = 24;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_radix(ProblemScale s) {
  auto app = std::make_unique<RadixApp>(RadixConfig::preset(s));
  app->set_scale(s);
  return app;
}

void RadixApp::setup(AddressSpace& as, const MachineSpec& mc) {
  if (!std::has_single_bit(cfg_.radix)) {
    throw std::invalid_argument("Radix: radix must be a power of two");
  }
  log_radix_ = static_cast<unsigned>(std::countr_zero(cfg_.radix));
  if (cfg_.key_bits % log_radix_ != 0) {
    throw std::invalid_argument("Radix: log2(radix) must divide key_bits");
  }
  passes_ = cfg_.key_bits / log_radix_;
  nprocs_ = mc.num_procs;

  Rng rng(cfg_.seed);
  keys_[0].resize(cfg_.n);
  keys_[1].assign(cfg_.n, 0);
  const std::uint32_t mask =
      cfg_.key_bits >= 32 ? ~0u : ((1u << cfg_.key_bits) - 1);
  for (auto& k : keys_[0]) k = static_cast<std::uint32_t>(rng.next()) & mask;
  input_ = keys_[0];

  hist_.assign(nprocs_, std::vector<std::uint32_t>(cfg_.radix, 0));

  key_base_[0] = as.alloc(cfg_.n * sizeof(std::uint32_t), "radix.keys0");
  key_base_[1] = as.alloc(cfg_.n * sizeof(std::uint32_t), "radix.keys1");
  hist_base_ =
      as.alloc(std::size_t{nprocs_} * cfg_.radix * sizeof(std::uint32_t),
               "radix.hist");
  ghist_base_ = as.alloc(cfg_.radix * sizeof(std::uint32_t), "radix.ghist");
  for (ProcId p = 0; p < nprocs_; ++p) {
    const BlockRange r = block_partition(cfg_.n, nprocs_, p);
    for (int b = 0; b < 2; ++b) {
      as.place(key_addr(b, r.begin), r.size() * sizeof(std::uint32_t), p);
    }
    as.place(hist_addr(p, 0), cfg_.radix * sizeof(std::uint32_t), p);
  }
  final_buf_ = 0;
  bar_ = std::make_unique<Barrier>(nprocs_);
}

SimTask RadixApp::body(Proc& p) {
  const BlockRange mine = block_partition(cfg_.n, nprocs_, p.id());
  const unsigned R = cfg_.radix;

  for (unsigned pass = 0; pass < passes_; ++pass) {
    const int src = static_cast<int>(pass & 1);
    const int dst = 1 - src;
    const unsigned shift = pass * log_radix_;
    auto& skeys = keys_[src];
    auto& dkeys = keys_[dst];
    auto& myhist = hist_[p.id()];

    // Phase 1: local histogram of my keys.
    std::fill(myhist.begin(), myhist.end(), 0);
    co_await stream_write(p, hist_addr(p.id(), 0), R * sizeof(std::uint32_t));
    for (std::size_t i = mine.begin; i < mine.end; ++i) {
      const unsigned d = (skeys[i] >> shift) & (R - 1);
      ++myhist[d];
      // The histogram slot is key-dependent, so each key is its own run —
      // still one awaitable per key instead of three.
      using Op = Proc::RunOp;
      const std::array<Op, 3> ops{Op::read(key_addr(src, i)), Op::compute(4),
                                  Op::write(hist_addr(p.id(), d))};
      co_await p.run(ops.data(), 3, 1);
    }
    co_await p.barrier(*bar_);

    // Phase 2: parallel-prefix over the histograms (SPLASH-2 radix builds a
    // reduction tree rather than having every processor read all P
    // histograms). References: tree rounds combine partner histograms; then
    // every processor reads the single shared global histogram at roughly
    // the same time — the shared-histogram traffic the paper highlights
    // (prefetching benefits and merge stalls under clustering).
    for (unsigned stride = 1; stride < nprocs_; stride <<= 1) {
      if (p.id() % (2 * stride) == 0 && p.id() + stride < nprocs_) {
        const ProcId partner = p.id() + stride;
        co_await stream_read(p, hist_addr(partner, 0),
                             R * sizeof(std::uint32_t));
        co_await stream_read(p, hist_addr(p.id(), 0),
                             R * sizeof(std::uint32_t));
        co_await stream_write(p, hist_addr(p.id(), 0),
                              R * sizeof(std::uint32_t));
        co_await p.compute(R / 4);
      }
      co_await p.barrier(*bar_);
    }
    if (p.id() == 0) {
      // Root publishes the global digit totals.
      co_await stream_write(p, ghist_base_, R * sizeof(std::uint32_t));
    }
    co_await p.barrier(*bar_);
    co_await stream_read(p, ghist_base_, R * sizeof(std::uint32_t));
    co_await stream_read(p, hist_addr(p.id(), 0), R * sizeof(std::uint32_t));
    co_await p.compute(R / 2);

    // Host math: exact offsets from the per-processor histograms.
    // offset[d] = (keys with digit < d anywhere)
    //           + (keys with digit d at processors before me)
    std::vector<std::uint32_t> offset(R, 0);
    for (ProcId q = 0; q < p.id(); ++q) {
      for (unsigned d = 0; d < R; ++d) offset[d] += hist_[q][d];
    }
    std::uint32_t run = 0;
    for (unsigned d = 0; d < R; ++d) {
      std::uint32_t all = 0;
      for (ProcId q = 0; q < nprocs_; ++q) all += hist_[q][d];
      offset[d] += run;
      run += all;
    }
    co_await p.barrier(*bar_);

    // Phase 3: permute my keys into the (globally scattered) destination.
    for (std::size_t i = mine.begin; i < mine.end; ++i) {
      const unsigned d = (skeys[i] >> shift) & (R - 1);
      const std::uint32_t pos = offset[d]++;
      dkeys[pos] = skeys[i];
      using Op = Proc::RunOp;
      const std::array<Op, 3> ops{Op::read(key_addr(src, i)), Op::compute(6),
                                  Op::write(key_addr(dst, pos))};
      co_await p.run(ops.data(), 3, 1);
    }
    co_await p.barrier(*bar_);
    if (p.id() == 0) final_buf_ = dst;
  }
}

void RadixApp::verify() const {
  const auto& out = keys_[final_buf_];
  if (!std::is_sorted(out.begin(), out.end())) {
    throw std::runtime_error("Radix verification failed: output not sorted");
  }
  std::uint64_t sum_in = 0, sum_out = 0, xor_in = 0, xor_out = 0;
  for (std::uint32_t k : input_) {
    sum_in += k;
    xor_in ^= k;
  }
  for (std::uint32_t k : out) {
    sum_out += k;
    xor_out ^= k;
  }
  if (sum_in != sum_out || xor_in != xor_out) {
    throw std::runtime_error("Radix verification failed: not a permutation");
  }
}

}  // namespace csim
