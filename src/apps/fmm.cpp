#include "src/apps/fmm.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

FmmConfig FmmConfig::preset(ProblemScale s) {
  FmmConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.bodies = 512;
      c.depth = 3;
      c.steps = 1;
      break;
    case ProblemScale::Default:
      break;  // struct defaults
    case ProblemScale::Paper:
      c.bodies = 8192;
      c.depth = 4;
      c.steps = 3;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_fmm(ProblemScale s) {
  auto app = std::make_unique<FmmApp>(FmmConfig::preset(s));
  app->set_scale(s);
  return app;
}

void FmmApp::setup(AddressSpace& as, const MachineSpec& mc) {
  nprocs_ = mc.num_procs;
  levels_.clear();
  levels_.resize(cfg_.depth + 1);
  for (unsigned l = 0; l <= cfg_.depth; ++l) {
    LevelGrid& g = levels_[l];
    g.dim = 1u << l;
    g.cells = static_cast<std::size_t>(g.dim) * g.dim * g.dim;
    g.m.assign(g.cells, 0.0);
    g.l.assign(g.cells, 0.0);
    g.base = as.alloc(g.cells * kCellBytes, "fmm.level");
    // Cells placed at their (slab-partitioned) owner.
    for (ProcId p = 0; p < nprocs_; ++p) {
      const BlockRange r = block_partition(g.cells, nprocs_, p);
      if (r.size()) {
        as.place(g.maddr(r.begin), r.size() * kCellBytes, p);
      }
    }
  }

  Rng rng(cfg_.seed);
  body_mass_.assign(cfg_.bodies, 0.0);
  body_cell_.assign(cfg_.bodies, 0);
  far_mass_.assign(cfg_.bodies, 0.0);
  cell_bodies_.assign(levels_[cfg_.depth].cells, {});
  total_mass_ = 0;
  const unsigned ld = levels_[cfg_.depth].dim;
  for (std::size_t i = 0; i < cfg_.bodies; ++i) {
    body_mass_[i] = rng.uniform(0.5, 1.5);
    total_mass_ += body_mass_[i];
    const unsigned x = static_cast<unsigned>(rng.below(ld));
    const unsigned y = static_cast<unsigned>(rng.below(ld));
    const unsigned z = static_cast<unsigned>(rng.below(ld));
    const std::size_t c = levels_[cfg_.depth].index(x, y, z);
    body_cell_[i] = c;
    cell_bodies_[c].push_back(static_cast<int>(i));
  }

  body_base_ = as.alloc(cfg_.bodies * kBodyBytes, "fmm.bodies");
  // Bodies placed with the owner of their leaf cell's slab.
  for (ProcId p = 0; p < nprocs_; ++p) {
    const BlockRange r = block_partition(levels_[cfg_.depth].cells, nprocs_, p);
    for (std::size_t c = r.begin; c < r.end; ++c) {
      for (int b : cell_bodies_[c]) as.place(body_addr(b), kBodyBytes, p);
    }
  }
  bar_ = std::make_unique<Barrier>(nprocs_);
}

std::vector<std::size_t> FmmApp::interaction_list(unsigned lev,
                                                  std::size_t c) const {
  std::vector<std::size_t> out;
  if (lev < 2) return out;  // root and level 1 have no well-separated cells
  const LevelGrid& g = levels_[lev];
  const unsigned dim = g.dim;
  const unsigned cx = static_cast<unsigned>(c / (std::size_t{dim} * dim));
  const unsigned cy = static_cast<unsigned>((c / dim) % dim);
  const unsigned cz = static_cast<unsigned>(c % dim);
  const int px = static_cast<int>(cx / 2), py = static_cast<int>(cy / 2),
            pz = static_cast<int>(cz / 2);
  const int pdim = static_cast<int>(dim / 2);
  for (int nx = px - 1; nx <= px + 1; ++nx) {
    for (int ny = py - 1; ny <= py + 1; ++ny) {
      for (int nz = pz - 1; nz <= pz + 1; ++nz) {
        if (nx < 0 || ny < 0 || nz < 0 || nx >= pdim || ny >= pdim ||
            nz >= pdim) {
          continue;
        }
        // Children of this parent-level neighbour.
        for (int dx = 0; dx < 2; ++dx) {
          for (int dy = 0; dy < 2; ++dy) {
            for (int dz = 0; dz < 2; ++dz) {
              const unsigned kx = static_cast<unsigned>(2 * nx + dx);
              const unsigned ky = static_cast<unsigned>(2 * ny + dy);
              const unsigned kz = static_cast<unsigned>(2 * nz + dz);
              // Skip cells adjacent (Chebyshev distance <= 1) to c.
              if (std::abs(static_cast<int>(kx) - static_cast<int>(cx)) <= 1 &&
                  std::abs(static_cast<int>(ky) - static_cast<int>(cy)) <= 1 &&
                  std::abs(static_cast<int>(kz) - static_cast<int>(cz)) <= 1) {
                continue;
              }
              out.push_back(g.index(kx, ky, kz));
            }
          }
        }
      }
    }
  }
  return out;
}

SimTask FmmApp::p2m_phase(Proc& p) {
  LevelGrid& leaf = levels_[cfg_.depth];
  const BlockRange mine = block_partition(leaf.cells, nprocs_, p.id());
  for (std::size_t c = mine.begin; c < mine.end; ++c) {
    double m = 0;
    // One run per leaf: all the cell's body reads plus the multipole write
    // (chunked only past the op-list capacity).
    std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
    unsigned cnt = 0;
    for (int b : cell_bodies_[c]) {
      m += body_mass_[b];
      if (cnt == Proc::kMaxRunOps) {
        co_await p.run(ops.data(), cnt, 1);
        cnt = 0;
      }
      ops[cnt++] = Proc::RunOp::read(body_addr(b));
    }
    leaf.m[c] = m;
    if (cnt == Proc::kMaxRunOps) {
      co_await p.run(ops.data(), cnt, 1);
      cnt = 0;
    }
    ops[cnt++] = Proc::RunOp::write(leaf.maddr(c));
    co_await p.run(ops.data(), cnt, 1);
  }
  co_await p.barrier(*bar_);
}

SimTask FmmApp::m2m_phase(Proc& p) {
  for (unsigned lev = cfg_.depth; lev-- > 0;) {
    LevelGrid& g = levels_[lev];
    const LevelGrid& ch = levels_[lev + 1];
    const BlockRange mine = block_partition(g.cells, nprocs_, p.id());
    for (std::size_t c = mine.begin; c < mine.end; ++c) {
      const unsigned cx = static_cast<unsigned>(c / (std::size_t{g.dim} * g.dim));
      const unsigned cy = static_cast<unsigned>((c / g.dim) % g.dim);
      const unsigned cz = static_cast<unsigned>(c % g.dim);
      double m = 0;
      std::array<Proc::RunOp, 10> ops;
      unsigned cnt = 0;
      for (int dx = 0; dx < 2; ++dx) {
        for (int dy = 0; dy < 2; ++dy) {
          for (int dz = 0; dz < 2; ++dz) {
            const std::size_t cc =
                ch.index(2 * cx + dx, 2 * cy + dy, 2 * cz + dz);
            m += ch.m[cc];
            ops[cnt++] = Proc::RunOp::read(ch.maddr(cc));
          }
        }
      }
      g.m[c] = m;
      ops[cnt++] = Proc::RunOp::compute(8);
      ops[cnt++] = Proc::RunOp::write(g.maddr(c));
      co_await p.run(ops.data(), cnt, 1);
    }
    co_await p.barrier(*bar_);
  }
}

SimTask FmmApp::m2l_phase(Proc& p) {
  for (unsigned lev = 2; lev <= cfg_.depth; ++lev) {
    LevelGrid& g = levels_[lev];
    const BlockRange mine = block_partition(g.cells, nprocs_, p.id());
    for (std::size_t c = mine.begin; c < mine.end; ++c) {
      double acc = 0;
      std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
      unsigned cnt = 0;
      for (std::size_t s : interaction_list(lev, c)) {
        acc += g.m[s];
        if (cnt + 2 > Proc::kMaxRunOps) {
          co_await p.run(ops.data(), cnt, 1);
          cnt = 0;
        }
        ops[cnt++] = Proc::RunOp::read(g.maddr(s));
        ops[cnt++] = Proc::RunOp::compute(cfg_.m2l_cycles);
      }
      g.l[c] += acc;
      if (cnt + 2 > Proc::kMaxRunOps) {
        co_await p.run(ops.data(), cnt, 1);
        cnt = 0;
      }
      ops[cnt++] = Proc::RunOp::read(g.laddr(c));
      ops[cnt++] = Proc::RunOp::write(g.laddr(c));
      co_await p.run(ops.data(), cnt, 1);
    }
    co_await p.barrier(*bar_);
  }
}

SimTask FmmApp::l2l_phase(Proc& p) {
  for (unsigned lev = 2; lev < cfg_.depth; ++lev) {
    const LevelGrid& g = levels_[lev];
    LevelGrid& ch = levels_[lev + 1];
    const BlockRange mine = block_partition(ch.cells, nprocs_, p.id());
    for (std::size_t cc = mine.begin; cc < mine.end; ++cc) {
      const unsigned kx = static_cast<unsigned>(cc / (std::size_t{ch.dim} * ch.dim));
      const unsigned ky = static_cast<unsigned>((cc / ch.dim) % ch.dim);
      const unsigned kz = static_cast<unsigned>(cc % ch.dim);
      const std::size_t parent = g.index(kx / 2, ky / 2, kz / 2);
      ch.l[cc] += g.l[parent];
      const std::array<Proc::RunOp, 3> ops{Proc::RunOp::read(g.laddr(parent)),
                                           Proc::RunOp::read(ch.laddr(cc)),
                                           Proc::RunOp::write(ch.laddr(cc))};
      co_await p.run(ops.data(), 3, 1);
    }
    co_await p.barrier(*bar_);
  }
}

SimTask FmmApp::near_phase(Proc& p) {
  LevelGrid& leaf = levels_[cfg_.depth];
  const BlockRange mine = block_partition(leaf.cells, nprocs_, p.id());
  const unsigned dim = leaf.dim;
  for (std::size_t c = mine.begin; c < mine.end; ++c) {
    if (cell_bodies_[c].empty()) continue;
    // L2P: bodies inherit the leaf's local expansion — the leaf read and the
    // per-body read/write pairs retire as one chunked run.
    {
      std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
      unsigned cnt = 0;
      ops[cnt++] = Proc::RunOp::read(leaf.laddr(c));
      for (int b : cell_bodies_[c]) {
        far_mass_[b] = leaf.l[c];
        if (cnt + 2 > Proc::kMaxRunOps) {
          co_await p.run(ops.data(), cnt, 1);
          cnt = 0;
        }
        ops[cnt++] = Proc::RunOp::read(body_addr(b));
        ops[cnt++] = Proc::RunOp::write(body_addr(b));
      }
      co_await p.run(ops.data(), cnt, 1);
    }
    // P2P: read neighbour cells' bodies (near-field direct interactions).
    const unsigned cx = static_cast<unsigned>(c / (std::size_t{dim} * dim));
    const unsigned cy = static_cast<unsigned>((c / dim) % dim);
    const unsigned cz = static_cast<unsigned>(c % dim);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const int nx = static_cast<int>(cx) + dx;
          const int ny = static_cast<int>(cy) + dy;
          const int nz = static_cast<int>(cz) + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<int>(dim) ||
              ny >= static_cast<int>(dim) || nz >= static_cast<int>(dim)) {
            continue;
          }
          const std::size_t nc = leaf.index(static_cast<unsigned>(nx),
                                            static_cast<unsigned>(ny),
                                            static_cast<unsigned>(nz));
          std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
          unsigned cnt = 0;
          for (int b : cell_bodies_[nc]) {
            if (cnt == Proc::kMaxRunOps) {
              co_await p.run(ops.data(), cnt, 1);
              cnt = 0;
            }
            ops[cnt++] = Proc::RunOp::read(body_addr(b));
          }
          if (cnt == Proc::kMaxRunOps) {
            co_await p.run(ops.data(), cnt, 1);
            cnt = 0;
          }
          ops[cnt++] = Proc::RunOp::compute(
              static_cast<Cycles>(cell_bodies_[nc].size() + 1));
          co_await p.run(ops.data(), cnt, 1);
        }
      }
    }
  }
  co_await p.barrier(*bar_);
}

SimTask FmmApp::body(Proc& p) {
  for (unsigned step = 0; step < cfg_.steps; ++step) {
    if (p.id() == 0) {
      // Reset expansions between steps (host-side).
      for (auto& g : levels_) {
        std::fill(g.m.begin(), g.m.end(), 0.0);
        std::fill(g.l.begin(), g.l.end(), 0.0);
      }
    }
    co_await p.barrier(*bar_);
    co_await p2m_phase(p);
    co_await m2m_phase(p);
    co_await m2l_phase(p);
    co_await l2l_phase(p);
    co_await near_phase(p);
  }
}

void FmmApp::verify() const {
  // Root multipole must hold the total mass (M2M correctness).
  if (std::abs(levels_[0].m[0] - total_mass_) > 1e-9 * total_mass_) {
    throw std::runtime_error("FMM verification failed: mass not conserved");
  }
  // The FMM coverage invariant: far-field mass accumulated at each body
  // equals total mass minus the 27-cell near neighbourhood around its leaf.
  const LevelGrid& leaf = levels_[cfg_.depth];
  const unsigned dim = leaf.dim;
  for (std::size_t i = 0; i < cfg_.bodies; i += 17) {
    const std::size_t c = body_cell_[i];
    const unsigned cx = static_cast<unsigned>(c / (std::size_t{dim} * dim));
    const unsigned cy = static_cast<unsigned>((c / dim) % dim);
    const unsigned cz = static_cast<unsigned>(c % dim);
    double near = 0;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const int nx = static_cast<int>(cx) + dx;
          const int ny = static_cast<int>(cy) + dy;
          const int nz = static_cast<int>(cz) + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<int>(dim) ||
              ny >= static_cast<int>(dim) || nz >= static_cast<int>(dim)) {
            continue;
          }
          near += leaf.m[leaf.index(static_cast<unsigned>(nx),
                                    static_cast<unsigned>(ny),
                                    static_cast<unsigned>(nz))];
        }
      }
    }
    const double expect = total_mass_ - near;
    if (std::abs(far_mass_[i] - expect) > 1e-6 * (total_mass_ + 1.0)) {
      throw std::runtime_error(
          "FMM verification failed: interaction-list coverage broken (body " +
          std::to_string(i) + ": far=" + std::to_string(far_mass_[i]) +
          " expect=" + std::to_string(expect) + ")");
    }
  }
}

}  // namespace csim
