#include "src/apps/fft.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

namespace {
constexpr double kPi = std::numbers::pi;

bool is_pow2(std::size_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

FftConfig FftConfig::preset(ProblemScale s) {
  FftConfig c;
  switch (s) {
    case ProblemScale::Test: c.n = 1024; break;      // 32 x 32
    case ProblemScale::Default: c.n = 16384; break;  // 128 x 128
    case ProblemScale::Paper: c.n = 65536; break;    // 256 x 256
  }
  return c;
}

std::unique_ptr<Program> make_fft(ProblemScale s) {
  auto app = std::make_unique<FftApp>(FftConfig::preset(s));
  app->set_scale(s);
  return app;
}

void FftApp::setup(AddressSpace& as, const MachineSpec& mc) {
  m_ = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(cfg_.n))));
  if (m_ * m_ != cfg_.n || !is_pow2(m_)) {
    throw std::invalid_argument("FFT: n must be the square of a power of two");
  }
  nprocs_ = mc.num_procs;

  Rng rng(cfg_.seed);
  a_.resize(cfg_.n);
  b_.assign(cfg_.n, Cx{});
  for (auto& v : a_) v = Cx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  input_ = a_;

  base_a_ = as.alloc(cfg_.n * sizeof(Cx), "fft.a");
  base_b_ = as.alloc(cfg_.n * sizeof(Cx), "fft.b");
  for (ProcId p = 0; p < nprocs_; ++p) {
    const BlockRange r = block_partition(m_, nprocs_, p);
    as.place(addr_of(base_a_, r.begin, 0), r.size() * m_ * sizeof(Cx), p);
    as.place(addr_of(base_b_, r.begin, 0), r.size() * m_ * sizeof(Cx), p);
  }
  bar_ = std::make_unique<Barrier>(nprocs_);
}

SimTask FftApp::transpose(Proc& p, std::vector<Cx>& dst, Addr dst_base,
                          const std::vector<Cx>& src, Addr src_base) {
  const BlockRange mine = block_partition(m_, nprocs_, p.id());
  // Patch-blocked: visit one source owner's rows at a time, so each
  // processor reads a distinct block of every other processor's partition.
  for (unsigned step = 0; step < nprocs_; ++step) {
    // Stagger the start owner so processors do not all storm the same
    // partition simultaneously (the SPLASH-2 staggered transpose).
    const ProcId owner = (p.id() + step) % nprocs_;
    const BlockRange theirs = block_partition(m_, nprocs_, owner);
    for (std::size_t sr = theirs.begin; sr < theirs.end; ++sr) {
      // Host math first (independent of the references): dst[dr][sr] =
      // src[sr][dr] for my whole strip of the source row.
      for (std::size_t dr = mine.begin; dr < mine.end; ++dr) {
        dst[dr * m_ + sr] = src[sr * m_ + dr];
      }
      // One run per source row: the read walks the row contiguously, the
      // write walks the destination column (stride m_), interleaved per
      // element exactly as the scalar loop issued them. (Named array rather
      // than a braced list: gcc cannot spill an initializer_list's backing
      // array into the coroutine frame.)
      using Op = Proc::RunOp;
      const std::array<Op, 2> ops{
          Op::read(addr_of(src_base, sr, mine.begin), sizeof(Cx)),
          Op::write(addr_of(dst_base, mine.begin, sr), m_ * sizeof(Cx))};
      co_await p.run(ops.data(), 2, static_cast<std::uint32_t>(mine.size()));
    }
  }
}

SimTask FftApp::row_fft(Proc& p, std::vector<Cx>& mat, Addr base,
                        std::size_t row) {
  Cx* r = &mat[row * m_];
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < m_; ++i) {
    std::size_t bit = m_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(r[i], r[j]);
      using Op = Proc::RunOp;
      const std::array<Op, 4> ops{
          Op::read(addr_of(base, row, i)), Op::read(addr_of(base, row, j)),
          Op::write(addr_of(base, row, i)), Op::write(addr_of(base, row, j))};
      co_await p.run(ops.data(), 4, 1);
    }
  }
  // Radix-2 decimation-in-time butterflies.
  for (std::size_t len = 2; len <= m_; len <<= 1) {
    const double ang = -2.0 * kPi / static_cast<double>(len);
    const Cx wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < m_; i += len) {
      // Host math for the whole butterfly block, then one run for its
      // references: both halves walk contiguously, four streams per element
      // in the scalar loop's order.
      Cx w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Cx u = r[i + j];
        const Cx v = r[i + j + len / 2] * w;
        r[i + j] = u + v;
        r[i + j + len / 2] = u - v;
        w *= wlen;
      }
      const Addr lo = addr_of(base, row, i);
      const Addr hi = addr_of(base, row, i + len / 2);
      using Op = Proc::RunOp;
      const std::array<Op, 4> ops{
          Op::read(lo, sizeof(Cx)), Op::read(hi, sizeof(Cx)),
          Op::write(lo, sizeof(Cx)), Op::write(hi, sizeof(Cx))};
      co_await p.run(ops.data(), 4, static_cast<std::uint32_t>(len / 2));
    }
    // ~10 flops per butterfly, charged per stage.
    co_await p.compute(cfg_.flop_cycles * 10 * (m_ / 2));
  }
}

SimTask FftApp::twiddle_row(Proc& p, std::vector<Cx>& mat, Addr base,
                            std::size_t row) {
  // mat[row][t] *= exp(-2 pi i row t / n)
  for (std::size_t t = 0; t < m_; ++t) {
    const double ang =
        -2.0 * kPi * static_cast<double>(row) * static_cast<double>(t) /
        static_cast<double>(cfg_.n);
    mat[row * m_ + t] *= Cx{std::cos(ang), std::sin(ang)};
  }
  using Op = Proc::RunOp;
  const std::array<Op, 2> ops{Op::read(addr_of(base, row, 0), sizeof(Cx)),
                              Op::write(addr_of(base, row, 0), sizeof(Cx))};
  co_await p.run(ops.data(), 2, static_cast<std::uint32_t>(m_));
  co_await p.compute(cfg_.flop_cycles * 8 * m_);
}

SimTask FftApp::body(Proc& p) {
  const BlockRange mine = block_partition(m_, nprocs_, p.id());

  // Step 1: transpose A -> B (all-to-all).
  co_await transpose(p, b_, base_b_, a_, base_a_);
  co_await p.barrier(*bar_);

  // Step 2+3: m-point FFT on each of my rows of B, then twiddle.
  for (std::size_t row = mine.begin; row < mine.end; ++row) {
    co_await row_fft(p, b_, base_b_, row);
    co_await twiddle_row(p, b_, base_b_, row);
  }
  co_await p.barrier(*bar_);

  // Step 4: transpose B -> A (all-to-all).
  co_await transpose(p, a_, base_a_, b_, base_b_);
  co_await p.barrier(*bar_);

  // Step 5: m-point FFT on each of my rows of A.
  for (std::size_t row = mine.begin; row < mine.end; ++row) {
    co_await row_fft(p, a_, base_a_, row);
  }
  co_await p.barrier(*bar_);

  // Step 6: transpose A -> B so the result is laid out by output rows.
  co_await transpose(p, b_, base_b_, a_, base_a_);
  co_await p.barrier(*bar_);
}

void FftApp::verify() const {
  // After the six steps, X[t + m*u] = b_[u*m + t].
  auto out = [&](std::size_t k) {
    const std::size_t t = k % m_;
    const std::size_t u = k / m_;
    return b_[u * m_ + t];
  };

  // Parseval: sum |X|^2 == n * sum |x|^2.
  double ein = 0, eout = 0;
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    ein += std::norm(input_[i]);
    eout += std::norm(out(i));
  }
  const double expect = ein * static_cast<double>(cfg_.n);
  if (std::abs(eout - expect) > 1e-6 * expect) {
    throw std::runtime_error("FFT verification failed: Parseval mismatch");
  }

  // Full reference check: an O(n log n) host FFT of the saved input,
  // compared at every output point. (This replaced a sampled O(n^2/7)
  // direct DFT that only ran at test scale yet dominated benchmark wall
  // time; the host FFT is cheap enough to check all points at all scales.)
  const std::size_t n = cfg_.n;
  std::vector<Cx> ref = input_;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(ref[i], ref[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * kPi / static_cast<double>(len);
    const Cx wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      Cx w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Cx u = ref[i + j];
        const Cx v = ref[i + j + len / 2] * w;
        ref[i + j] = u + v;
        ref[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (std::abs(ref[k] - out(k)) > 1e-6 * (std::abs(ref[k]) + 1.0)) {
      throw std::runtime_error("FFT verification failed: mismatch at k=" +
                               std::to_string(k));
    }
  }
}

}  // namespace csim
