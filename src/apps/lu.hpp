// Blocked dense LU factorization (SPLASH-2 "LU" analogue).
//
// Paper characterization (Tables 2, 3): 512x512 matrix, 16x16 blocks; low
// communication volume along rows and columns of the processor grid; the
// working set is a single 2 KB block, disjoint across processors.
//
// The factorization is performed for real (right-looking, no pivoting, on a
// diagonally dominant matrix); verify() reconstructs L*U and compares
// against the original matrix.
#pragma once

#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct LuConfig {
  unsigned n = 384;       ///< matrix dimension (paper: 512)
  unsigned block = 16;    ///< block dimension (paper: 16)
  Cycles flop_cycles = 2; ///< busy cycles charged per floating-point op
  std::uint64_t seed = 0x1234'5678;

  static LuConfig preset(ProblemScale s);
};

class LuApp final : public Program {
 public:
  explicit LuApp(LuConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "lu"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const LuConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] ProcId owner(unsigned bi, unsigned bj) const noexcept {
    return grid_.at(bi % grid_.rows, bj % grid_.cols);
  }
  [[nodiscard]] std::size_t block_offset(unsigned bi, unsigned bj) const noexcept {
    return (static_cast<std::size_t>(bi) * nb_ + bj) * cfg_.block * cfg_.block;
  }
  [[nodiscard]] Addr block_addr(unsigned bi, unsigned bj) const noexcept {
    return base_ + block_offset(bi, bj) * sizeof(double);
  }
  double& el(unsigned gi, unsigned gj) noexcept;
  [[nodiscard]] double el(unsigned gi, unsigned gj) const noexcept;

  SimTask factor_diag(Proc& p, unsigned k);
  SimTask row_solve(Proc& p, unsigned k, unsigned j);
  SimTask col_solve(Proc& p, unsigned i, unsigned k);
  SimTask trailing_update(Proc& p, unsigned i, unsigned j, unsigned k);

  /// Touch every line of a block for read/write with interleaved compute,
  /// issued as one run (a single awaitable for the whole block).
  Proc::RunAwaiter rw_block_lines(Proc& p, unsigned bi, unsigned bj,
                                  Cycles compute_per_line);

  LuConfig cfg_;
  unsigned nb_ = 0;  ///< blocks per dimension
  ProcGrid grid_{};
  Addr base_ = 0;
  std::vector<double> a_;   ///< block-major working matrix
  std::vector<double> a0_;  ///< original matrix for verification
  std::unique_ptr<Barrier> bar_;
};

}  // namespace csim
