#include "src/apps/barnes.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

BarnesConfig BarnesConfig::preset(ProblemScale s) {
  BarnesConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.bodies = 192;
      c.steps = 1;
      break;
    case ProblemScale::Default:
      break;  // struct defaults
    case ProblemScale::Paper:
      c.bodies = 8192;
      c.steps = 4;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_barnes(ProblemScale s) {
  auto app = std::make_unique<BarnesApp>(BarnesConfig::preset(s));
  app->set_scale(s);
  return app;
}

void BarnesApp::setup(AddressSpace& as, const MachineSpec& mc) {
  nprocs_ = mc.num_procs;
  Rng rng(cfg_.seed);
  pos_.resize(cfg_.bodies);
  vel_.resize(cfg_.bodies);
  acc_.assign(cfg_.bodies, Vec3{});
  mass_.assign(cfg_.bodies, 1.0 / static_cast<double>(cfg_.bodies));
  // Plummer-like distribution: radius with a dense core and sparse halo.
  for (std::size_t i = 0; i < cfg_.bodies; ++i) {
    const double u = rng.uniform(0.05, 0.95);
    const double r = 0.1 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    const double ct = rng.uniform(-1.0, 1.0);
    const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
    const double ph = rng.uniform(0.0, 6.2831853);
    pos_[i] = Vec3{r * st * std::cos(ph), r * st * std::sin(ph), r * ct};
    vel_[i] = Vec3{rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02),
                   rng.uniform(-0.02, 0.02)};
  }

  body_base_ = as.alloc(cfg_.bodies * kBodyBytes, "barnes.bodies");
  node_base_ = as.alloc(cfg_.bodies * 4 * kNodeBytes, "barnes.tree");

  rebuild_tree();
  // Bodies placed by their owner's chunk of the initial tree order.
  for (ProcId p = 0; p < nprocs_; ++p) {
    const BlockRange r = block_partition(cfg_.bodies, nprocs_, p);
    for (std::size_t k = r.begin; k < r.end; ++k) {
      as.place(body_addr(tree_.point_order()[k]), kBodyBytes, p);
    }
  }

  bar_ = std::make_unique<Barrier>(nprocs_);
  cell_locks_.clear();
  for (unsigned i = 0; i < kNumLocks; ++i) {
    cell_locks_.push_back(std::make_unique<Lock>());
  }
  steps_done_ = 0;
}

void BarnesApp::rebuild_tree() {
  tree_.build(pos_, mass_, cfg_.leaf_cap);
  if (tree_.size() > cfg_.bodies * 4) {
    throw std::runtime_error("Barnes: tree node region overflow");
  }
  tree_.assign_addrs(node_base_, kNodeBytes);
}

SimTask BarnesApp::load_phase(Proc& p, const BlockRange& mine) {
  // Each processor loads its bodies into the (host-prebuilt) tree: walk the
  // path from the root to the body's leaf, then update the leaf under a lock
  // — the write-shared tree-construction traffic of SPLASH-2 Barnes.
  const auto& nodes = tree_.nodes();
  for (std::size_t k = mine.begin; k < mine.end; ++k) {
    const int b = tree_.point_order()[k];
    co_await p.read(body_addr(b));
    int ni = 0;
    for (;;) {
      const auto& n = nodes[ni];
      co_await p.read(n.addr);
      if (n.leaf()) break;
      const Vec3& q = pos_[b];
      const int oct = (q.x >= n.center.x ? 1 : 0) | (q.y >= n.center.y ? 2 : 0) |
                      (q.z >= n.center.z ? 4 : 0);
      const int c = tree_.child(n, oct);
      if (c < 0) break;  // body sits in an empty octant's parent
      ni = c;
    }
    Lock& lk = *cell_locks_[static_cast<unsigned>(ni) % kNumLocks];
    co_await p.acquire(lk);
    co_await p.write(nodes[ni].addr);
    p.release(lk);
  }
  co_await p.barrier(*bar_);
}

SimTask BarnesApp::com_phase(Proc& p) {
  // Parallel upward pass: processors partition the node array and read each
  // node's children to form mass / center-of-mass, then write the node.
  const auto& nodes = tree_.nodes();
  const BlockRange mine = block_partition(nodes.size(), nprocs_, p.id());
  for (std::size_t i = mine.begin; i < mine.end; ++i) {
    const auto& n = nodes[i];
    if (!n.leaf()) {
      // One run per internal node: child reads, the combine compute, and the
      // node write all retire behind a single awaitable.
      std::array<Proc::RunOp, 10> ops;
      unsigned cnt = 0;
      for (int o = 0; o < 8; ++o) {
        const int c = tree_.child(n, o);
        if (c >= 0) ops[cnt++] = Proc::RunOp::read(nodes[c].addr);
      }
      ops[cnt++] = Proc::RunOp::compute(8);
      ops[cnt++] = Proc::RunOp::write(n.addr);
      co_await p.run(ops.data(), cnt, 1);
    } else {
      co_await p.write(n.addr);
    }
  }
  co_await p.barrier(*bar_);
}

Vec3 BarnesApp::bh_accel(std::size_t i) const {
  const auto& nodes = tree_.nodes();
  Vec3 a{};
  const double eps2 = cfg_.eps * cfg_.eps;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int ni = stack.back();
    stack.pop_back();
    const auto& n = nodes[ni];
    const Vec3 d = n.com - pos_[i];
    const double d2 = d.norm2() + eps2;
    const double s = 2.0 * n.half;
    if (n.leaf() || s * s < cfg_.theta * cfg_.theta * d2) {
      if (n.leaf()) {
        for (int k = 0; k < n.num_points; ++k) {
          const int j = tree_.point_order()[n.first_point + k];
          if (static_cast<std::size_t>(j) == i) continue;
          const Vec3 dj = pos_[j] - pos_[i];
          const double r2 = dj.norm2() + eps2;
          a += dj * (mass_[j] / (r2 * std::sqrt(r2)));
        }
      } else {
        a += d * (n.mass / (d2 * std::sqrt(d2)));
      }
    } else {
      for (int o = 0; o < 8; ++o) {
        const int c = tree_.child(n, o);
        if (c >= 0) stack.push_back(c);
      }
    }
  }
  return a;
}

Vec3 BarnesApp::direct_accel(std::size_t i) const {
  Vec3 a{};
  const double eps2 = cfg_.eps * cfg_.eps;
  for (std::size_t j = 0; j < cfg_.bodies; ++j) {
    if (j == i) continue;
    const Vec3 d = pos_[j] - pos_[i];
    const double r2 = d.norm2() + eps2;
    a += d * (mass_[j] / (r2 * std::sqrt(r2)));
  }
  return a;
}

SimTask BarnesApp::force_phase(Proc& p, const BlockRange& mine) {
  const auto& nodes = tree_.nodes();
  const double eps2 = cfg_.eps * cfg_.eps;
  std::vector<int> stack;
  for (std::size_t k = mine.begin; k < mine.end; ++k) {
    const std::size_t i = static_cast<std::size_t>(tree_.point_order()[k]);
    co_await p.read(body_addr(i));
    stack.assign(1, 0);
    while (!stack.empty()) {
      const int ni = stack.back();
      stack.pop_back();
      const auto& n = nodes[ni];
      co_await p.read(n.addr);
      const Vec3 d = n.com - pos_[i];
      const double d2 = d.norm2() + eps2;
      const double s = 2.0 * n.half;
      if (n.leaf() || s * s < cfg_.theta * cfg_.theta * d2) {
        // The interaction compute and the leaf's body reads retire as one
        // run (chunked only if a leaf exceeds the op-list capacity).
        std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
        unsigned cnt = 0;
        ops[cnt++] = Proc::RunOp::compute(cfg_.interact_cycles);
        if (n.leaf()) {
          for (int t = 0; t < n.num_points; ++t) {
            const int j = tree_.point_order()[n.first_point + t];
            if (static_cast<std::size_t>(j) == i) continue;
            if (cnt == Proc::kMaxRunOps) {
              co_await p.run(ops.data(), cnt, 1);
              cnt = 0;
            }
            ops[cnt++] = Proc::RunOp::read(body_addr(j));
          }
        }
        co_await p.run(ops.data(), cnt, 1);
      } else {
        for (int o = 0; o < 8; ++o) {
          const int c = tree_.child(n, o);
          if (c >= 0) stack.push_back(c);
        }
      }
    }
    acc_[i] = bh_accel(i);  // host math (same traversal)
    co_await p.write(body_addr(i));
  }
  co_await p.barrier(*bar_);
}

SimTask BarnesApp::update_phase(Proc& p, const BlockRange& mine) {
  for (std::size_t k = mine.begin; k < mine.end; ++k) {
    const std::size_t i = static_cast<std::size_t>(tree_.point_order()[k]);
    vel_[i] += acc_[i] * cfg_.dt;
    pos_[i] += vel_[i] * cfg_.dt;
    const std::array<Proc::RunOp, 3> ops{Proc::RunOp::read(body_addr(i)),
                                         Proc::RunOp::compute(6),
                                         Proc::RunOp::write(body_addr(i))};
    co_await p.run(ops.data(), 3, 1);
  }
  co_await p.barrier(*bar_);
}

SimTask BarnesApp::body(Proc& p) {
  for (unsigned step = 0; step < cfg_.steps; ++step) {
    const BlockRange mine = block_partition(cfg_.bodies, nprocs_, p.id());
    co_await load_phase(p, mine);
    co_await com_phase(p);
    co_await force_phase(p, mine);
    co_await update_phase(p, mine);
    if (p.id() == 0 && step + 1 < cfg_.steps) {
      rebuild_tree();  // host-side; the next load_phase re-walks it
      ++steps_done_;
    } else if (p.id() == 0) {
      ++steps_done_;
    }
    co_await p.barrier(*bar_);
  }
}

void BarnesApp::verify() const {
  if (steps_done_ != cfg_.steps) {
    throw std::runtime_error("Barnes verification failed: step count");
  }
  // Accuracy check against direct summation (affordable at small n).
  if (cfg_.bodies <= 512) {
    double worst = 0;
    for (std::size_t i = 0; i < cfg_.bodies; i += 3) {
      const Vec3 bh = bh_accel(i);
      const Vec3 ref = direct_accel(i);
      const double err =
          std::sqrt((bh - ref).norm2()) / (std::sqrt(ref.norm2()) + 1e-12);
      worst = std::max(worst, err);
    }
    if (worst > 0.35) {
      throw std::runtime_error(
          "Barnes verification failed: BH force error vs direct sum = " +
          std::to_string(worst));
    }
  }
  for (const auto& q : pos_) {
    if (!std::isfinite(q.x) || !std::isfinite(q.y) || !std::isfinite(q.z)) {
      throw std::runtime_error("Barnes verification failed: non-finite position");
    }
  }
}

}  // namespace csim
