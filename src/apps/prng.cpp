// Rng is header-only; this TU anchors the module in the build.
#include "src/apps/prng.hpp"
