#include "src/apps/app.hpp"

#include <stdexcept>

namespace csim {

const std::vector<AppFactory>& app_registry() {
  static const std::vector<AppFactory> reg = {
      {"barnes", "Hierarchical N-body (Barnes-Hut octree)", make_barnes},
      {"fft", "1-D FFT, blocked transpose (all-to-all)", make_fft},
      {"fmm", "Fast Multipole Method (hierarchical interaction lists)",
       make_fmm},
      {"lu", "Blocked dense LU factorization", make_lu},
      {"mp3d", "Rarefied-flow particle-in-cell (unstructured read-write)",
       make_mp3d},
      {"ocean", "Regular-grid iterative solver (near-neighbour)", make_ocean},
      {"radix", "Parallel radix sort (shared histograms, all-to-all permute)",
       make_radix},
      {"raytrace", "Recursive ray tracing (read-only scene, reflections)",
       make_raytrace},
      {"volrend", "Volume rendering (read-only volume, no reflections)",
       make_volrend},
  };
  return reg;
}

std::unique_ptr<Program> make_app(std::string_view name, ProblemScale s) {
  for (const auto& f : app_registry()) {
    if (f.name == name) {
      auto app = f.make(s);
      app->set_scale(s);  // safety net; the factories also set it
      return app;
    }
  }
  throw std::invalid_argument("unknown application: " + std::string(name));
}

std::vector<std::string> app_names() {
  std::vector<std::string> out;
  for (const auto& f : app_registry()) out.push_back(f.name);
  return out;
}

Proc::RunAwaiter stream_read(Proc& p, Addr base, std::size_t bytes,
                             Cycles compute_per_line) {
  const unsigned line = p.config().cache.line_bytes;
  const Addr first = base & ~Addr{line - 1};
  const Addr last = (base + bytes + line - 1) & ~Addr{line - 1};
  return p.run(first, line, static_cast<std::uint32_t>((last - first) / line),
               /*is_write=*/false, compute_per_line);
}

Proc::RunAwaiter stream_write(Proc& p, Addr base, std::size_t bytes,
                              Cycles compute_per_line) {
  const unsigned line = p.config().cache.line_bytes;
  const Addr first = base & ~Addr{line - 1};
  const Addr last = (base + bytes + line - 1) & ~Addr{line - 1};
  return p.run(first, line, static_cast<std::uint32_t>((last - first) / line),
               /*is_write=*/true, compute_per_line);
}

}  // namespace csim
