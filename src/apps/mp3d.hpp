// Rarefied hypersonic-flow particle simulation (SPLASH "MP3D" analogue).
//
// Paper characterization: 50,000 particles; the communication stress test.
// Particles are statically assigned to processors, but each particle
// interacts with the *space cell* containing its current position, and
// particles from many processors stream through the same cells — large
// communication volume, very unstructured, read-write in nature. Working
// sets are large (O(n/p)).
//
// We advance real particles (free flight + specular wall reflection),
// accumulate per-cell statistics read-modify-write, and do a simplified
// in-cell collision step that reads the cell's reservoir particle. verify()
// checks particle conservation and that every particle stayed in bounds.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct Mp3dConfig {
  std::size_t particles = 16000;  ///< paper: 50000
  unsigned cells_per_dim = 6;     ///< space-cell grid (cells = dim^3)
  unsigned steps = 4;
  Cycles move_cycles = 130; ///< busy cycles per particle move
  std::uint64_t seed = 0x3d3d'0001;

  static Mp3dConfig preset(ProblemScale s);
};

class Mp3dApp final : public Program {
 public:
  explicit Mp3dApp(Mp3dConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "mp3d"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const Mp3dConfig& config() const noexcept { return cfg_; }

 private:
  struct Particle {
    double x, y, z;
    double vx, vy, vz;
  };
  struct Cell {
    std::uint32_t count = 0;      ///< visits this step
    std::uint32_t reservoir = 0;  ///< index of last particle seen (collisions)
    double momentum = 0;          ///< accumulated |v| (statistic)
  };

  [[nodiscard]] unsigned cell_of(const Particle& q) const noexcept;
  [[nodiscard]] Addr particle_addr(std::size_t i) const noexcept {
    return part_base_ + i * kParticleBytes;
  }
  [[nodiscard]] Addr cell_addr(unsigned c) const noexcept {
    return cell_base_ + static_cast<Addr>(c) * kCellBytes;
  }

  static constexpr Addr kParticleBytes = 48;  // pos + vel, 6 doubles
  static constexpr Addr kCellBytes = 48;
  /// Reservoir value meaning "no particle yet" (sharded runs only; the
  /// `other < parts_.size()` guard in body() rejects it).
  static constexpr std::uint32_t kNoReservoir = 0xffff'ffffu;

  Mp3dConfig cfg_;
  unsigned nprocs_ = 0;
  std::vector<Particle> parts_;
  /// Host-side cell statistics. Sequential runs use one shard (the paper's
  /// lockless shared cells). Under cluster-parallel execution clusters run
  /// truly concurrently, so each cluster gets its own shard: the *simulated*
  /// cell addresses stay shared (the coherence traffic that makes MP3D the
  /// communication stress test is unchanged), but the host-side counters and
  /// the collision reservoir become cluster-local, keeping results
  /// bit-identical at every worker count. Laid out shard-major.
  std::vector<Cell> cells_;
  unsigned ncells_ = 0;
  unsigned shards_ = 1;
  Addr part_base_ = 0, cell_base_ = 0;
  std::atomic<std::uint64_t> total_moves_{0};
  std::unique_ptr<Barrier> bar_;
};

}  // namespace csim
