#include "src/apps/lu.hpp"

#include <cmath>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

LuConfig LuConfig::preset(ProblemScale s) {
  LuConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.n = 64;
      c.block = 8;
      break;
    case ProblemScale::Default:
      c.n = 384;
      c.block = 16;
      break;
    case ProblemScale::Paper:
      c.n = 512;
      c.block = 16;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_lu(ProblemScale s) {
  auto app = std::make_unique<LuApp>(LuConfig::preset(s));
  app->set_scale(s);
  return app;
}

double& LuApp::el(unsigned gi, unsigned gj) noexcept {
  const unsigned b = cfg_.block;
  return a_[block_offset(gi / b, gj / b) + (gi % b) * b + (gj % b)];
}

double LuApp::el(unsigned gi, unsigned gj) const noexcept {
  const unsigned b = cfg_.block;
  return a_[block_offset(gi / b, gj / b) + (gi % b) * b + (gj % b)];
}

void LuApp::setup(AddressSpace& as, const MachineSpec& mc) {
  if (cfg_.n % cfg_.block != 0) {
    throw std::invalid_argument("LU: block must divide n");
  }
  nb_ = cfg_.n / cfg_.block;
  grid_ = make_proc_grid(mc.num_procs);

  const std::size_t elems = std::size_t{cfg_.n} * cfg_.n;
  a_.assign(elems, 0.0);
  Rng rng(cfg_.seed);
  for (unsigned i = 0; i < cfg_.n; ++i) {
    for (unsigned j = 0; j < cfg_.n; ++j) {
      el(i, j) = rng.uniform(-1.0, 1.0);
    }
    el(i, i) += cfg_.n;  // diagonal dominance: no pivoting needed
  }
  a0_ = a_;

  base_ = as.alloc(elems * sizeof(double), "lu.matrix");
  // Blocks live at their owner (the paper's explicit data placement).
  const std::size_t block_bytes =
      std::size_t{cfg_.block} * cfg_.block * sizeof(double);
  for (unsigned bi = 0; bi < nb_; ++bi) {
    for (unsigned bj = 0; bj < nb_; ++bj) {
      as.place(block_addr(bi, bj), block_bytes, owner(bi, bj));
    }
  }
  bar_ = std::make_unique<Barrier>(mc.num_procs);
}

Proc::RunAwaiter LuApp::rw_block_lines(Proc& p, unsigned bi, unsigned bj,
                                       Cycles compute_per_line) {
  const unsigned line = p.config().cache.line_bytes;
  const std::size_t bytes =
      std::size_t{cfg_.block} * cfg_.block * sizeof(double);
  const Addr base = block_addr(bi, bj);
  const auto count = static_cast<std::uint32_t>((bytes + line - 1) / line);
  using Op = Proc::RunOp;
  if (compute_per_line != 0) {
    return p.run({Op::read(base, line), Op::compute(compute_per_line),
                  Op::write(base, line)},
                 count);
  }
  return p.run({Op::read(base, line), Op::write(base, line)}, count);
}

SimTask LuApp::factor_diag(Proc& p, unsigned k) {
  const unsigned b = cfg_.block;
  const unsigned g0 = k * b;
  // Host math: in-place LU of the diagonal block (unit lower diagonal).
  for (unsigned kk = 0; kk < b; ++kk) {
    const double pivot = el(g0 + kk, g0 + kk);
    for (unsigned i = kk + 1; i < b; ++i) {
      el(g0 + i, g0 + kk) /= pivot;
      for (unsigned j = kk + 1; j < b; ++j) {
        el(g0 + i, g0 + j) -= el(g0 + i, g0 + kk) * el(g0 + kk, g0 + j);
      }
    }
  }
  // References: the block is read and rewritten; ~b^3/3 fused ops of compute.
  const std::size_t lines =
      std::size_t{b} * b * sizeof(double) / p.config().cache.line_bytes;
  const Cycles per_line =
      cfg_.flop_cycles * (std::uint64_t{b} * b * b / 3) / std::max<std::size_t>(lines, 1);
  co_await rw_block_lines(p, k, k, per_line);
}

SimTask LuApp::row_solve(Proc& p, unsigned k, unsigned j) {
  const unsigned b = cfg_.block;
  const unsigned r0 = k * b, c0 = j * b;
  // Host math: A(k,j) = L(k,k)^-1 * A(k,j), L unit lower triangular.
  for (unsigned jj = 0; jj < b; ++jj) {
    for (unsigned ii = 1; ii < b; ++ii) {
      double s = el(r0 + ii, c0 + jj);
      for (unsigned kk = 0; kk < ii; ++kk) {
        s -= el(r0 + ii, r0 + kk) * el(r0 + kk, c0 + jj);
      }
      el(r0 + ii, c0 + jj) = s;
    }
  }
  // References: stream the (remote) diagonal block, then rewrite ours.
  const std::size_t bytes = std::size_t{b} * b * sizeof(double);
  const std::size_t lines = bytes / p.config().cache.line_bytes;
  const Cycles per_line =
      cfg_.flop_cycles * (std::uint64_t{b} * b * b / 2) / std::max<std::size_t>(lines, 1);
  co_await stream_read(p, block_addr(k, k), bytes);
  co_await rw_block_lines(p, k, j, per_line);
}

SimTask LuApp::col_solve(Proc& p, unsigned i, unsigned k) {
  const unsigned b = cfg_.block;
  const unsigned r0 = i * b, c0 = k * b;
  // Host math: A(i,k) = A(i,k) * U(k,k)^-1.
  for (unsigned ii = 0; ii < b; ++ii) {
    for (unsigned jj = 0; jj < b; ++jj) {
      double s = el(r0 + ii, c0 + jj);
      for (unsigned kk = 0; kk < jj; ++kk) {
        s -= el(r0 + ii, c0 + kk) * el(c0 + kk, c0 + jj);
      }
      el(r0 + ii, c0 + jj) = s / el(c0 + jj, c0 + jj);
    }
  }
  const std::size_t bytes = std::size_t{b} * b * sizeof(double);
  const std::size_t lines = bytes / p.config().cache.line_bytes;
  const Cycles per_line =
      cfg_.flop_cycles * (std::uint64_t{b} * b * b / 2) / std::max<std::size_t>(lines, 1);
  co_await stream_read(p, block_addr(k, k), bytes);
  co_await rw_block_lines(p, i, k, per_line);
}

SimTask LuApp::trailing_update(Proc& p, unsigned i, unsigned j, unsigned k) {
  const unsigned b = cfg_.block;
  const unsigned r0 = i * b, c0 = j * b, k0 = k * b;
  // Host math: A(i,j) -= A(i,k) * A(k,j).
  for (unsigned ii = 0; ii < b; ++ii) {
    for (unsigned jj = 0; jj < b; ++jj) {
      double s = 0;
      for (unsigned kk = 0; kk < b; ++kk) {
        s += el(r0 + ii, k0 + kk) * el(k0 + kk, c0 + jj);
      }
      el(r0 + ii, c0 + jj) -= s;
    }
  }
  // References: read both source blocks (often remote: row/column
  // communication), then read-modify-write our block with the DGEMM compute.
  const std::size_t bytes = std::size_t{b} * b * sizeof(double);
  const std::size_t lines = bytes / p.config().cache.line_bytes;
  const Cycles per_line = cfg_.flop_cycles * (2 * std::uint64_t{b} * b * b) /
                          std::max<std::size_t>(lines, 1);
  co_await stream_read(p, block_addr(i, k), bytes);
  co_await stream_read(p, block_addr(k, j), bytes);
  co_await rw_block_lines(p, i, j, per_line);
}

SimTask LuApp::body(Proc& p) {
  for (unsigned k = 0; k < nb_; ++k) {
    if (owner(k, k) == p.id()) co_await factor_diag(p, k);
    co_await p.barrier(*bar_);
    for (unsigned j = k + 1; j < nb_; ++j) {
      if (owner(k, j) == p.id()) co_await row_solve(p, k, j);
    }
    for (unsigned i = k + 1; i < nb_; ++i) {
      if (owner(i, k) == p.id()) co_await col_solve(p, i, k);
    }
    co_await p.barrier(*bar_);
    for (unsigned i = k + 1; i < nb_; ++i) {
      for (unsigned j = k + 1; j < nb_; ++j) {
        if (owner(i, j) == p.id()) co_await trailing_update(p, i, j, k);
      }
    }
    co_await p.barrier(*bar_);
  }
}

void LuApp::verify() const {
  // Reconstruct L*U (L unit lower) and compare with the original matrix.
  const unsigned n = cfg_.n;
  double max_rel_err = 0;
  // Sample rows to keep verification cheap at paper scale.
  const unsigned stride = n > 256 ? 7 : 1;
  for (unsigned i = 0; i < n; i += stride) {
    for (unsigned j = 0; j < n; ++j) {
      double s = 0;
      const unsigned kmax = std::min(i, j);
      for (unsigned k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : el(i, k);
        s += l * el(k, j);
      }
      const unsigned b = cfg_.block;
      const double orig =
          a0_[(static_cast<std::size_t>(i / b) * nb_ + j / b) * b * b +
              (i % b) * b + (j % b)];
      const double err = std::abs(s - orig) / (std::abs(orig) + 1.0);
      max_rel_err = std::max(max_rel_err, err);
    }
  }
  if (max_rel_err > 1e-8) {
    throw std::runtime_error("LU verification failed: max rel err " +
                             std::to_string(max_rel_err));
  }
}

}  // namespace csim
