#include "src/apps/octree.hpp"

#include <algorithm>
#include <cmath>

namespace csim {

namespace {
constexpr int kMaxDepth = 24;

int octant_of(const Vec3& p, const Vec3& c) noexcept {
  return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
}

Vec3 child_center(const Vec3& c, double quarter, int oct) noexcept {
  return Vec3{c.x + ((oct & 1) ? quarter : -quarter),
              c.y + ((oct & 2) ? quarter : -quarter),
              c.z + ((oct & 4) ? quarter : -quarter)};
}
}  // namespace

void PointOctree::build(const std::vector<Vec3>& points,
                        const std::vector<double>& masses, int leaf_cap) {
  nodes_.clear();
  children_.clear();
  order_.clear();
  if (points.empty()) return;

  Vec3 lo = points[0], hi = points[0];
  for (const Vec3& p : points) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  const Vec3 center = (lo + hi) * 0.5;
  double half = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z}) * 0.5;
  half = std::max(half, 1e-9) * 1.0001;  // avoid points exactly on the skin

  std::vector<int> idx(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) idx[i] = static_cast<int>(i);

  nodes_.reserve(points.size() * 2);
  order_.reserve(points.size());
  build_rec(idx, 0, static_cast<int>(points.size()), center, half, points,
            masses, leaf_cap, 0);
}

int PointOctree::build_rec(std::vector<int>& idx, int begin, int end,
                           Vec3 center, double half,
                           const std::vector<Vec3>& pts,
                           const std::vector<double>& masses, int leaf_cap,
                           int depth) {
  const int me = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  Node n;
  n.center = center;
  n.half = half;

  double mass = 0;
  Vec3 com{};
  for (int i = begin; i < end; ++i) {
    const double m = masses.empty() ? 1.0 : masses[idx[i]];
    mass += m;
    com += pts[idx[i]] * m;
  }
  n.mass = mass;
  n.com = mass > 0 ? com * (1.0 / mass) : center;
  n.num_points = end - begin;

  if (end - begin <= leaf_cap || depth >= kMaxDepth) {
    n.first_point = static_cast<int>(order_.size());
    n.num_points = end - begin;
    for (int i = begin; i < end; ++i) order_.push_back(idx[i]);
    nodes_[me] = n;
    return me;
  }

  // Partition [begin, end) into the 8 octants (stable bucket pass).
  std::array<std::vector<int>, 8> buckets;
  for (int i = begin; i < end; ++i) {
    buckets[octant_of(pts[idx[i]], center)].push_back(idx[i]);
  }
  int pos = begin;
  std::array<std::pair<int, int>, 8> ranges;
  for (int o = 0; o < 8; ++o) {
    ranges[o].first = pos;
    for (int v : buckets[o]) idx[pos++] = v;
    ranges[o].second = pos;
  }

  nodes_[me] = n;
  std::array<int, 8> kids{};
  for (int o = 0; o < 8; ++o) {
    if (ranges[o].second > ranges[o].first) {
      kids[o] = build_rec(idx, ranges[o].first, ranges[o].second,
                          child_center(center, half * 0.5, o), half * 0.5, pts,
                          masses, leaf_cap, depth + 1);
    } else {
      kids[o] = -1;
    }
  }
  const int table = static_cast<int>(children_.size());
  children_.push_back(kids);
  nodes_[me].first_child = table;
  return me;
}

std::size_t PointOctree::assign_addrs(Addr base, unsigned bytes_per_node) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].addr = base + static_cast<Addr>(i) * bytes_per_node;
  }
  return nodes_.size() * bytes_per_node;
}

}  // namespace csim
