#include "src/apps/raytrace.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace csim {

namespace {
Vec3 normalize(Vec3 v) {
  const double n = std::sqrt(v.norm2());
  return n > 0 ? v * (1.0 / n) : Vec3{0, 0, 1};
}
double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
}  // namespace

RaytraceConfig RaytraceConfig::preset(ProblemScale s) {
  RaytraceConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.image = 32;
      c.grid = 8;
      c.flake_depth = 1;
      c.max_bounces = 2;
      break;
    case ProblemScale::Default:
      break;  // struct defaults
    case ProblemScale::Paper:
      c.image = 128;
      c.grid = 16;
      c.flake_depth = 3;
      c.max_bounces = 4;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_raytrace(ProblemScale s) {
  auto app = std::make_unique<RaytraceApp>(RaytraceConfig::preset(s));
  app->set_scale(s);
  return app;
}

void RaytraceApp::add_flake(Vec3 c, double r, int depth, int exclude_dir) {
  spheres_.push_back(Sphere{c, r});
  if (depth == 0) return;
  static const Vec3 dirs[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                               {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  for (int d = 0; d < 6; ++d) {
    if (d == exclude_dir) continue;
    const double cr = r / 3.0;
    add_flake(c + dirs[d] * (r + cr), cr, depth - 1, d ^ 1);
  }
}

void RaytraceApp::build_grid() {
  const unsigned G = cfg_.grid;
  voxels_.assign(static_cast<std::size_t>(G) * G * G, {});
  const double cell = 1.0 / G;
  for (std::size_t i = 0; i < spheres_.size(); ++i) {
    const Sphere& s = spheres_[i];
    const int lo[3] = {
        std::max(0, static_cast<int>((s.c.x - s.r) / cell)),
        std::max(0, static_cast<int>((s.c.y - s.r) / cell)),
        std::max(0, static_cast<int>((s.c.z - s.r) / cell))};
    const int hi[3] = {
        std::min(static_cast<int>(G) - 1, static_cast<int>((s.c.x + s.r) / cell)),
        std::min(static_cast<int>(G) - 1, static_cast<int>((s.c.y + s.r) / cell)),
        std::min(static_cast<int>(G) - 1, static_cast<int>((s.c.z + s.r) / cell))};
    for (int x = lo[0]; x <= hi[0]; ++x) {
      for (int y = lo[1]; y <= hi[1]; ++y) {
        for (int z = lo[2]; z <= hi[2]; ++z) {
          voxels_[voxel_index(x, y, z)].push_back(static_cast<int>(i));
        }
      }
    }
  }
}

void RaytraceApp::setup(AddressSpace& as, const MachineSpec& mc) {
  nprocs_ = mc.num_procs;
  pgrid_ = make_proc_grid(nprocs_);
  spheres_.clear();
  add_flake(Vec3{0.5, 0.5, 0.5}, 0.22, static_cast<int>(cfg_.flake_depth), -1);
  build_grid();

  image_.assign(static_cast<std::size_t>(cfg_.image) * cfg_.image, 0.0f);
  hits_ = 0;

  // Scene data distributed randomly (round-robin first touch): no placement.
  sphere_base_ = as.alloc(spheres_.size() * 64, "raytrace.spheres");
  voxel_base_ = as.alloc(voxels_.size() * 64, "raytrace.voxels");
  image_base_ =
      as.alloc(image_.size() * sizeof(float), "raytrace.image");
  // Pixel tiles are written only by their owner; place them there.
  for (ProcId p = 0; p < nprocs_; ++p) {
    for (const Tile& t : cyclic_tiles(cfg_.image, cfg_.image, kTile, pgrid_, p)) {
      for (std::size_t y = t.row_begin; y < t.row_end; ++y) {
        as.place(pixel_addr(t.col_begin, y), t.cols() * sizeof(float), p);
      }
    }
  }
  bar_ = std::make_unique<Barrier>(nprocs_);
}

SimTask RaytraceApp::trace_ray(Proc& p, Vec3 org, Vec3 dir, unsigned bounce,
                               double atten, double* shade) {
  const unsigned G = cfg_.grid;
  const double cell = 1.0 / G;

  // Clip the ray to the unit cube.
  double t0 = 0.0, t1 = 1e30;
  const double o[3] = {org.x, org.y, org.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  for (int a = 0; a < 3; ++a) {
    if (std::abs(d[a]) < 1e-12) {
      if (o[a] < 0 || o[a] > 1) co_return;
    } else {
      double ta = (0.0 - o[a]) / d[a];
      double tb = (1.0 - o[a]) / d[a];
      if (ta > tb) std::swap(ta, tb);
      t0 = std::max(t0, ta);
      t1 = std::min(t1, tb);
    }
  }
  if (t0 > t1) co_return;

  // Amanatides-Woo DDA setup.
  const double eps = 1e-9;
  const Vec3 start = org + dir * (t0 + eps);
  int v[3];
  double tmax[3], tdelta[3];
  int step[3];
  const double s[3] = {start.x, start.y, start.z};
  for (int a = 0; a < 3; ++a) {
    int vi = static_cast<int>(s[a] / cell);
    vi = std::clamp(vi, 0, static_cast<int>(G) - 1);
    v[a] = vi;
    if (d[a] > eps) {
      step[a] = 1;
      tmax[a] = t0 + ((vi + 1) * cell - o[a]) / d[a];
      tdelta[a] = cell / d[a];
    } else if (d[a] < -eps) {
      step[a] = -1;
      tmax[a] = t0 + (vi * cell - o[a]) / d[a];
      tdelta[a] = -cell / d[a];
    } else {
      step[a] = 0;
      tmax[a] = 1e30;
      tdelta[a] = 1e30;
    }
  }

  while (true) {
    const std::size_t vi = voxel_index(v[0], v[1], v[2]);
    {
      // Voxel fetch + DDA arithmetic + the voxel's sphere intersection tests
      // retire as one run (chunked only past the op-list capacity).
      std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
      unsigned cnt = 0;
      ops[cnt++] = Proc::RunOp::read(voxel_addr(vi));
      ops[cnt++] = Proc::RunOp::compute(12);  // DDA step arithmetic
      for (int si : voxels_[vi]) {
        if (cnt + 2 > Proc::kMaxRunOps) {
          co_await p.run(ops.data(), cnt, 1);
          cnt = 0;
        }
        ops[cnt++] = Proc::RunOp::read(sphere_addr(static_cast<std::size_t>(si)));
        ops[cnt++] = Proc::RunOp::compute(cfg_.isect_cycles);
      }
      co_await p.run(ops.data(), cnt, 1);
    }
    const double t_exit = std::min({tmax[0], tmax[1], tmax[2]});

    double best_t = 1e30;
    int best = -1;
    for (int si : voxels_[vi]) {
      const Sphere& sp = spheres_[static_cast<std::size_t>(si)];
      const Vec3 oc = org - sp.c;
      const double b = dot(oc, dir);
      const double cq = oc.norm2() - sp.r * sp.r;
      const double disc = b * b - cq;
      if (disc <= 0) continue;
      const double sq = std::sqrt(disc);
      double t = -b - sq;
      if (t < 1e-6) t = -b + sq;
      if (t > 1e-6 && t < best_t) {
        best_t = t;
        best = si;
      }
    }
    if (best >= 0 && best_t <= t_exit + cell) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      const Sphere& sp = spheres_[static_cast<std::size_t>(best)];
      const Vec3 hitp = org + dir * best_t;
      const Vec3 n = normalize(hitp - sp.c);
      const Vec3 light = normalize(Vec3{1, 1, -1});
      *shade += atten * std::max(0.0, dot(n, light));
      co_await p.compute(25);  // shading arithmetic
      if (bounce < cfg_.max_bounces) {
        const Vec3 rdir = dir - n * (2.0 * dot(dir, n));
        co_await trace_ray(p, hitp + n * 1e-6, normalize(rdir), bounce + 1,
                           atten * 0.5, shade);
      }
      co_return;
    }

    // Advance to the next voxel.
    int axis = 0;
    if (tmax[1] < tmax[axis]) axis = 1;
    if (tmax[2] < tmax[axis]) axis = 2;
    v[axis] += step[axis];
    if (v[axis] < 0 || v[axis] >= static_cast<int>(G)) co_return;
    tmax[axis] += tdelta[axis];
  }
}

SimTask RaytraceApp::body(Proc& p) {
  // Short frame sequence with a slightly moved eye: cross-frame reuse of the
  // read-only scene is what finite caches thrash on.
  for (unsigned f = 0; f < cfg_.frames; ++f) {
    const Vec3 eye{0.5 + 0.04 * f, 0.5 - 0.03 * f, -1.3};
    for (const Tile& t :
         cyclic_tiles(cfg_.image, cfg_.image, kTile, pgrid_, p.id())) {
      for (std::size_t y = t.row_begin; y < t.row_end; ++y) {
        for (std::size_t x = t.col_begin; x < t.col_end; ++x) {
          const Vec3 px{(static_cast<double>(x) + 0.5) / cfg_.image,
                        (static_cast<double>(y) + 0.5) / cfg_.image, 0.0};
          double shade = 0.0;
          co_await trace_ray(p, eye, normalize(px - eye), 0, 1.0, &shade);
          image_[y * cfg_.image + x] = static_cast<float>(shade);
          const std::array<Proc::RunOp, 2> ops{
              Proc::RunOp::compute(4), Proc::RunOp::write(pixel_addr(x, y))};
          co_await p.run(ops.data(), 2, 1);
        }
      }
    }
    co_await p.barrier(*bar_);
  }
}

std::uint64_t RaytraceApp::image_checksum() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (float v : image_) {
    const auto q = static_cast<std::uint32_t>(
        std::lround(static_cast<double>(v) * 4096.0));
    for (int b = 0; b < 4; ++b) {
      h ^= (q >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

void RaytraceApp::verify() const {
  if (hits_ == 0) {
    throw std::runtime_error("Raytrace verification failed: no ray hits");
  }
  double mx = 0;
  for (float v : image_) mx = std::max(mx, static_cast<double>(v));
  if (!(mx > 0) || !std::isfinite(mx)) {
    throw std::runtime_error("Raytrace verification failed: empty image");
  }
}

}  // namespace csim
