// Partition helpers are header-only; this TU anchors the module in the build.
#include "src/apps/partition.hpp"
