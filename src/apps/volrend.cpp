#include "src/apps/volrend.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace csim {

VolrendConfig VolrendConfig::preset(ProblemScale s) {
  VolrendConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.volume = 32;
      c.image = 32;
      break;
    case ProblemScale::Default:
      break;  // struct defaults
    case ProblemScale::Paper:
      c.volume = 128;
      c.image = 128;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_volrend(ProblemScale s) {
  auto app = std::make_unique<VolrendApp>(VolrendConfig::preset(s));
  app->set_scale(s);
  return app;
}

float VolrendApp::block_max(unsigned bx, unsigned by, unsigned bz) const {
  const unsigned B = cfg_.block;
  float mx = 0;
  for (unsigned z = bz * B; z < (bz + 1) * B; ++z) {
    for (unsigned y = by * B; y < (by + 1) * B; ++y) {
      for (unsigned x = bx * B; x < (bx + 1) * B; ++x) {
        mx = std::max(mx, static_cast<float>(density(x, y, z)));
      }
    }
  }
  return mx;
}

int VolrendApp::build_octree(unsigned bx, unsigned by, unsigned bz,
                             unsigned size) {
  const int me = static_cast<int>(oct_.size());
  oct_.push_back(OctNode{});
  OctNode n;
  n.bx = bx;
  n.by = by;
  n.bz = bz;
  n.size = size;
  if (size == 1) {
    n.max_density = block_max(bx, by, bz);
    oct_[static_cast<std::size_t>(me)] = n;
    return me;
  }
  const unsigned h = size / 2;
  oct_[static_cast<std::size_t>(me)] = n;
  std::array<int, 8> kids{};
  float mx = 0;
  for (int o = 0; o < 8; ++o) {
    kids[static_cast<std::size_t>(o)] =
        build_octree(bx + ((o & 1) ? h : 0), by + ((o & 2) ? h : 0),
                     bz + ((o & 4) ? h : 0), h);
    mx = std::max(
        mx,
        oct_[static_cast<std::size_t>(kids[static_cast<std::size_t>(o)])].max_density);
  }
  children_.push_back(kids);
  oct_[static_cast<std::size_t>(me)].max_density = mx;
  oct_[static_cast<std::size_t>(me)].child0 =
      -2 - static_cast<int>(children_.size() - 1);  // encoded table index
  return me;
}

void VolrendApp::setup(AddressSpace& as, const MachineSpec& mc) {
  nprocs_ = mc.num_procs;
  pgrid_ = make_proc_grid(nprocs_);
  const unsigned V = cfg_.volume;
  if (!std::has_single_bit(V) || !std::has_single_bit(cfg_.block) ||
      V % cfg_.block != 0) {
    throw std::invalid_argument("Volrend: volume and block must be powers of 2");
  }

  // Procedural density volume: nested shells (a stand-in for the CT head).
  vol_.resize(static_cast<std::size_t>(V) * V * V);
  for (unsigned z = 0; z < V; ++z) {
    for (unsigned y = 0; y < V; ++y) {
      for (unsigned x = 0; x < V; ++x) {
        const double dx = (x + 0.5) / V - 0.5;
        const double dy = (y + 0.5) / V - 0.5;
        const double dz = (z + 0.5) / V - 0.5;
        const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
        double d = std::exp(-std::pow((r - 0.38) / 0.035, 2.0)) +
                   0.7 * std::exp(-std::pow((r - 0.22) / 0.05, 2.0)) +
                   0.5 * std::exp(-std::pow(r / 0.08, 2.0));
        // Deterministic speckle so blocks are not uniform.
        const std::uint32_t h =
            (x * 73856093u) ^ (y * 19349663u) ^ (z * 83492791u);
        d += 0.02 * ((h >> 8) & 0xff) / 255.0;
        vol_[(static_cast<std::size_t>(z) * V + y) * V + x] =
            static_cast<float>(std::min(d, 1.2));
      }
    }
  }

  oct_.clear();
  children_.clear();
  build_octree(0, 0, 0, V / cfg_.block);

  image_.assign(static_cast<std::size_t>(cfg_.image) * cfg_.image, 0.0f);
  early_terms_ = 0;
  samples_ = 0;
  skipped_blocks_ = 0;

  // Volume and octree distributed round-robin (random distribution);
  // pixel tiles placed at their owner.
  vol_base_ = as.alloc(vol_.size(), "volrend.volume");
  oct_base_ = as.alloc(oct_.size() * 64, "volrend.octree");
  image_base_ = as.alloc(image_.size() * sizeof(float), "volrend.image");
  for (ProcId p = 0; p < nprocs_; ++p) {
    for (const Tile& t : cyclic_tiles(cfg_.image, cfg_.image, kTile, pgrid_, p)) {
      for (std::size_t y = t.row_begin; y < t.row_end; ++y) {
        as.place(pixel_addr(t.col_begin, y), t.cols() * sizeof(float), p);
      }
    }
  }
  bar_ = std::make_unique<Barrier>(nprocs_);
}

SimTask VolrendApp::cast_ray(Proc& p, unsigned px, unsigned py, double shear) {
  const unsigned V = cfg_.volume;
  const unsigned B = cfg_.block;
  const unsigned nblocks = V / B;
  // Parallel projection along +z; the per-frame shear tilts the view
  // (shear-warp factorization), so the sampled column drifts with depth.
  const unsigned vx = std::min(V - 1, px * V / cfg_.image);
  const unsigned vy0 = std::min(V - 1, py * V / cfg_.image);
  const unsigned bx = vx / B;
  auto vy_at = [&](unsigned z) {
    const int v = static_cast<int>(vy0) + static_cast<int>(shear * z);
    return static_cast<unsigned>(std::clamp(v, 0, static_cast<int>(V) - 1));
  };

  double color = 0, alpha = 0;
  for (unsigned bz = 0; bz < nblocks && alpha < cfg_.term_opacity; ++bz) {
    const unsigned by = vy_at(bz * B + B / 2) / B;
    // Octree descent from the root to the leaf block (bx, by, bz): shared
    // read-only metadata; the top levels stay hot in every cache.
    std::size_t ni = 0;
    for (;;) {
      const OctNode& n = oct_[ni];
      const std::array<Proc::RunOp, 2> ops{Proc::RunOp::read(node_addr(ni)),
                                           Proc::RunOp::compute(2)};
      co_await p.run(ops.data(), 2, 1);
      if (n.size == 1) break;
      const unsigned h = n.size / 2;
      const int o = (bx >= n.bx + h ? 1 : 0) | (by >= n.by + h ? 2 : 0) |
                    (bz >= n.bz + h ? 4 : 0);
      const auto& tab = children_[static_cast<std::size_t>(-2 - n.child0)];
      ni = static_cast<std::size_t>(tab[static_cast<std::size_t>(o)]);
    }
    if (oct_[ni].max_density < cfg_.density_cut) {
      skipped_blocks_.fetch_add(1, std::memory_order_relaxed);
      continue;  // empty-space skip: no voxel references at all
    }
    // Sample the voxels of this block along z. Host math first — the
    // accumulation decides where the ray terminates — then the sample
    // references retire in chunked runs over the same z range.
    const unsigned z0 = bz * B;
    const unsigned z1 = (bz + 1) * B;
    unsigned zstop = z1;
    for (unsigned z = z0; z < z1; ++z) {
      const double d = density(vx, vy_at(z), z);
      samples_.fetch_add(1, std::memory_order_relaxed);
      if (d < cfg_.density_cut) continue;
      const double a = std::min(1.0, (d - cfg_.density_cut) * 4.0) * 0.5;
      color += (1.0 - alpha) * a * d;
      alpha += (1.0 - alpha) * a;
      if (alpha >= cfg_.term_opacity) {
        early_terms_.fetch_add(1, std::memory_order_relaxed);
        zstop = z + 1;
        break;
      }
    }
    std::array<Proc::RunOp, Proc::kMaxRunOps> ops;
    unsigned cnt = 0;
    for (unsigned z = z0; z < zstop; ++z) {
      if (cnt + 2 > Proc::kMaxRunOps) {
        co_await p.run(ops.data(), cnt, 1);
        cnt = 0;
      }
      ops[cnt++] = Proc::RunOp::read(voxel_addr(vx, vy_at(z), z));
      ops[cnt++] = Proc::RunOp::compute(cfg_.sample_cycles);
    }
    if (cnt != 0) co_await p.run(ops.data(), cnt, 1);
  }
  image_[static_cast<std::size_t>(py) * cfg_.image + px] =
      static_cast<float>(color);
  const std::array<Proc::RunOp, 2> ops{Proc::RunOp::compute(4),
                                       Proc::RunOp::write(pixel_addr(px, py))};
  co_await p.run(ops.data(), 2, 1);
}

SimTask VolrendApp::body(Proc& p) {
  // Rotating-view frame sequence (as in the SPLASH-2 volrend input): each
  // frame re-reads the per-tile volume region, so small caches thrash on it
  // while a clustered cache holds the (heavily overlapping) union.
  for (unsigned f = 0; f < cfg_.frames; ++f) {
    const double shear = 0.08 * f;
    for (const Tile& t :
         cyclic_tiles(cfg_.image, cfg_.image, kTile, pgrid_, p.id())) {
      for (std::size_t y = t.row_begin; y < t.row_end; ++y) {
        for (std::size_t x = t.col_begin; x < t.col_end; ++x) {
          co_await cast_ray(p, static_cast<unsigned>(x),
                            static_cast<unsigned>(y), shear);
        }
      }
    }
    co_await p.barrier(*bar_);
  }
}

std::uint64_t VolrendApp::image_checksum() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (float v : image_) {
    const auto q = static_cast<std::uint32_t>(
        std::lround(static_cast<double>(v) * 4096.0));
    for (int b = 0; b < 4; ++b) {
      h ^= (q >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

void VolrendApp::verify() const {
  double mx = 0;
  for (float v : image_) {
    if (!std::isfinite(v) || v < 0) {
      throw std::runtime_error("Volrend verification failed: bad pixel");
    }
    mx = std::max(mx, static_cast<double>(v));
  }
  if (!(mx > 0)) {
    throw std::runtime_error("Volrend verification failed: empty image");
  }
  if (samples_ == 0 || skipped_blocks_ == 0) {
    throw std::runtime_error(
        "Volrend verification failed: octree skipping never exercised");
  }
}

}  // namespace csim
