// 1-D high-radix FFT with blocked matrix transpose (SPLASH-2 "FFT" analogue).
//
// Paper characterization: 64K complex points organized as a sqrt(n) x sqrt(n)
// matrix, rows partitioned contiguously across processors; communication is
// an all-to-all blocked transpose in which each processor reads a different
// patch from every other processor. Clustering reduces the all-to-all
// communication only by a factor (P - C) / (P - 1).
//
// The transform is computed for real (six-step decomposition: transpose,
// row FFTs, twiddle, transpose, row FFTs); verify() checks Parseval's
// identity and, at Test scale, every output point against a direct DFT.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct FftConfig {
  std::size_t n = 16384;  ///< total complex points; must be a square of a
                          ///< power of two (paper: 65536)
  Cycles flop_cycles = 2;
  std::uint64_t seed = 0xfff7'0001;

  static FftConfig preset(ProblemScale s);
};

class FftApp final : public Program {
 public:
  explicit FftApp(FftConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "fft"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const FftConfig& config() const noexcept { return cfg_; }

 private:
  using Cx = std::complex<double>;

  [[nodiscard]] Addr addr_of(Addr base, std::size_t row, std::size_t col) const {
    return base + (row * m_ + col) * sizeof(Cx);
  }

  /// Transpose src -> dst, patch-blocked over source-owner partitions.
  SimTask transpose(Proc& p, std::vector<Cx>& dst, Addr dst_base,
                    const std::vector<Cx>& src, Addr src_base);
  /// In-place radix-2 FFT of one row (host math + element references).
  SimTask row_fft(Proc& p, std::vector<Cx>& mat, Addr base, std::size_t row);
  /// Twiddle multiply of one row of the intermediate matrix.
  SimTask twiddle_row(Proc& p, std::vector<Cx>& mat, Addr base, std::size_t row);

  FftConfig cfg_;
  std::size_t m_ = 0;  ///< sqrt(n)
  std::vector<Cx> a_, b_;
  std::vector<Cx> input_;  ///< saved input for verification
  Addr base_a_ = 0, base_b_ = 0;
  std::unique_ptr<Barrier> bar_;
  unsigned nprocs_ = 0;
};

}  // namespace csim
