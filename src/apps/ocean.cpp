#include "src/apps/ocean.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

OceanConfig OceanConfig::preset(ProblemScale s) {
  OceanConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.n = 34;
      c.iters = 2;
      c.aux_fields = 2;
      c.mg_levels = 2;
      break;
    case ProblemScale::Default:
      c.n = 130;
      c.iters = 3;
      break;
    case ProblemScale::Paper:
      c.n = 130;
      c.iters = 8;
      c.aux_fields = 16;
      break;
  }
  return c;
}

OceanConfig OceanConfig::small_problem() {
  OceanConfig c;
  c.n = 66;
  c.iters = 3;
  return c;
}

std::unique_ptr<Program> make_ocean(ProblemScale s) {
  auto app = std::make_unique<OceanApp>(OceanConfig::preset(s));
  app->set_scale(s);
  return app;
}

void OceanApp::build_level(Level& L, unsigned dim, const MachineSpec& mc) {
  L.dim = dim;
  L.owner_row.resize(dim);
  L.owner_col.resize(dim);
  L.local_row.resize(dim);
  L.local_col.resize(dim);
  for (unsigned pr = 0; pr < grid_.rows; ++pr) {
    const BlockRange r = block_partition(dim, grid_.rows, pr);
    for (std::size_t g = r.begin; g < r.end; ++g) {
      L.owner_row[g] = pr;
      L.local_row[g] = g - r.begin;
    }
  }
  for (unsigned pc = 0; pc < grid_.cols; ++pc) {
    const BlockRange c = block_partition(dim, grid_.cols, pc);
    for (std::size_t g = c.begin; g < c.end; ++g) {
      L.owner_col[g] = pc;
      L.local_col[g] = g - c.begin;
    }
  }
  L.tile_offset.resize(mc.num_procs);
  L.tile_cols.resize(mc.num_procs);
  std::size_t off = 0;
  for (ProcId p = 0; p < mc.num_procs; ++p) {
    const Tile t = tile_of(dim, dim, grid_, p);
    L.tile_offset[p] = off;
    L.tile_cols[p] = t.cols();
    off += t.rows() * t.cols();
  }
  L.elems = off;
}

OceanApp::Field OceanApp::make_field(AddressSpace& as, const Level& L,
                                     const char* label) {
  Field f;
  f.v.assign(L.elems, 0.0);
  f.base = as.alloc(L.elems * sizeof(double), label);
  // Subgrid-contiguous layout: place each processor's tile at its cluster.
  for (ProcId p = 0; p < nprocs_; ++p) {
    const Tile t = tile_of(L.dim, L.dim, grid_, p);
    as.place(f.base + L.tile_offset[p] * sizeof(double),
             t.rows() * t.cols() * sizeof(double), p);
  }
  return f;
}

void OceanApp::setup(AddressSpace& as, const MachineSpec& mc) {
  nprocs_ = mc.num_procs;
  grid_ = make_proc_grid(nprocs_);
  const unsigned interior = cfg_.n - 2;
  if (interior == 0 || (interior >> cfg_.mg_levels) << cfg_.mg_levels != interior) {
    throw std::invalid_argument("Ocean: n-2 must be divisible by 2^mg_levels");
  }
  if ((interior >> cfg_.mg_levels) == 0) {
    throw std::invalid_argument("Ocean: too many multigrid levels");
  }

  levels_.clear();
  levels_.resize(cfg_.mg_levels + 1);
  for (unsigned l = 0; l <= cfg_.mg_levels; ++l) {
    build_level(levels_[l], (interior >> l) + 2, mc);
  }

  u_.clear();
  f_.clear();
  aux_.clear();
  for (unsigned l = 0; l <= cfg_.mg_levels; ++l) {
    u_.push_back(make_field(as, levels_[l], "ocean.u"));
    f_.push_back(make_field(as, levels_[l], "ocean.f"));
  }
  for (unsigned k = 0; k < cfg_.aux_fields; ++k) {
    aux_.push_back(make_field(as, levels_[0], "ocean.aux"));
  }
  global_sum_.v.assign(1, 0.0);
  global_sum_.base = as.alloc(sizeof(double), "ocean.sum");

  // Smooth random right-hand side on the fine grid; u starts at zero.
  Rng rng(cfg_.seed);
  const Level& L0 = levels_[0];
  for (std::size_t gr = 1; gr + 1 < L0.dim; ++gr) {
    for (std::size_t gc = 1; gc + 1 < L0.dim; ++gc) {
      const double x = static_cast<double>(gr) / L0.dim;
      const double y = static_cast<double>(gc) / L0.dim;
      at(f_[0], L0, gr, gc) =
          std::sin(6.28 * x) * std::cos(6.28 * y) + 0.1 * rng.uniform(-1.0, 1.0);
    }
  }

  host_sum_ = 0;
  res0_ = res_final_ = -1;
  bar_ = std::make_unique<Barrier>(nprocs_);
  sum_lock_ = std::make_unique<Lock>();
}

SimTask OceanApp::relax(Proc& p, unsigned lev, Field& u, const Field& f,
                        double* res_acc) {
  const Level& L = levels_[lev];
  const Tile t = my_tile(lev, p.id());
  const std::size_t r0 = std::max<std::size_t>(t.row_begin, 1);
  const std::size_t r1 = std::min<std::size_t>(t.row_end, L.dim - 1);
  const std::size_t c0 = std::max<std::size_t>(t.col_begin, 1);
  const std::size_t c1 = std::min<std::size_t>(t.col_end, L.dim - 1);

  for (int color = 0; color < 2; ++color) {
    for (std::size_t gr = r0; gr < r1; ++gr) {
      unsigned pts = 0;
      for (std::size_t gc = c0; gc < c1; ++gc) {
        if (((gr + gc) & 1) != static_cast<unsigned>(color)) continue;
        ++pts;
        const double old = at(u, L, gr, gc);
        const double nb = at(u, L, gr - 1, gc) + at(u, L, gr + 1, gc) +
                          at(u, L, gr, gc - 1) + at(u, L, gr, gc + 1);
        const double nu = 0.25 * (nb - at(f, L, gr, gc));
        at(u, L, gr, gc) = nu;
        if (res_acc) *res_acc += std::abs(nu - old);
        // The 5-point stencil touches neighbouring tiles at the edges, so
        // addresses are not strided; a per-point run still retires all six
        // references behind one awaitable. (Named array rather than a braced
        // list: gcc cannot spill an initializer_list's backing array into the
        // coroutine frame.)
        using Op = Proc::RunOp;
        const std::array<Op, 6> ops{Op::read(addr(u, L, gr - 1, gc)),
                                    Op::read(addr(u, L, gr + 1, gc)),
                                    Op::read(addr(u, L, gr, gc - 1)),
                                    Op::read(addr(u, L, gr, gc + 1)),
                                    Op::read(addr(f, L, gr, gc)),
                                    Op::write(addr(u, L, gr, gc))};
        co_await p.run(ops.data(), 6, 1);
      }
      if (pts) co_await p.compute(cfg_.point_cycles * pts);
    }
    co_await p.barrier(*bar_);
  }
}

SimTask OceanApp::restrict_residual(Proc& p, unsigned lev) {
  // f[lev+1](i,j) = average of the residual r = f - A u at the 4 fine points
  // under coarse point (i,j); u[lev+1] is cleared.
  const Level& Lf = levels_[lev];
  const Level& Lc = levels_[lev + 1];
  const Tile t = my_tile(lev + 1, p.id());
  const std::size_t r0 = std::max<std::size_t>(t.row_begin, 1);
  const std::size_t r1 = std::min<std::size_t>(t.row_end, Lc.dim - 1);
  const std::size_t c0 = std::max<std::size_t>(t.col_begin, 1);
  const std::size_t c1 = std::min<std::size_t>(t.col_end, Lc.dim - 1);

  Field& uf = u_[lev];
  const Field& ff = f_[lev];
  for (std::size_t ci = r0; ci < r1; ++ci) {
    unsigned pts = 0;
    for (std::size_t cj = c0; cj < c1; ++cj) {
      ++pts;
      double acc = 0;
      // The whole coarse point — 16 fine-grid reads plus the two coarse
      // writes — retires as one run; the op list is assembled in the same
      // order the scalar loop issued the references.
      std::array<Proc::RunOp, 18> ops;
      unsigned n = 0;
      for (int di = 0; di < 2; ++di) {
        for (int dj = 0; dj < 2; ++dj) {
          const std::size_t fi = 2 * ci - 1 + di;
          const std::size_t fj = 2 * cj - 1 + dj;
          const double res =
              at(ff, Lf, fi, fj) -
              (4 * at(uf, Lf, fi, fj) - at(uf, Lf, fi - 1, fj) -
               at(uf, Lf, fi + 1, fj) - at(uf, Lf, fi, fj - 1) -
               at(uf, Lf, fi, fj + 1)) *
                  -1.0;  // A = -Laplacian with our relax convention
          acc += res;
          ops[n++] = Proc::RunOp::read(addr(ff, Lf, fi, fj));
          ops[n++] = Proc::RunOp::read(addr(uf, Lf, fi, fj));
          ops[n++] = Proc::RunOp::read(addr(uf, Lf, fi - 1, fj));
          ops[n++] = Proc::RunOp::read(addr(uf, Lf, fi + 1, fj));
        }
      }
      at(f_[lev + 1], Lc, ci, cj) = acc;  // scaled full-weighting (injection)
      at(u_[lev + 1], Lc, ci, cj) = 0;
      ops[n++] = Proc::RunOp::write(addr(f_[lev + 1], Lc, ci, cj));
      ops[n++] = Proc::RunOp::write(addr(u_[lev + 1], Lc, ci, cj));
      co_await p.run(ops.data(), n, 1);
    }
    if (pts) co_await p.compute(cfg_.point_cycles * pts * 2);
  }
  co_await p.barrier(*bar_);
}

SimTask OceanApp::prolong_correction(Proc& p, unsigned lev) {
  // u[lev] += injection of u[lev+1] onto the 4 fine points.
  const Level& Lf = levels_[lev];
  const Level& Lc = levels_[lev + 1];
  const Tile t = my_tile(lev + 1, p.id());
  const std::size_t r0 = std::max<std::size_t>(t.row_begin, 1);
  const std::size_t r1 = std::min<std::size_t>(t.row_end, Lc.dim - 1);
  const std::size_t c0 = std::max<std::size_t>(t.col_begin, 1);
  const std::size_t c1 = std::min<std::size_t>(t.col_end, Lc.dim - 1);

  for (std::size_t ci = r0; ci < r1; ++ci) {
    unsigned pts = 0;
    for (std::size_t cj = c0; cj < c1; ++cj) {
      ++pts;
      // The restriction summed 4 fine residuals (carrying the (2h)^2 / h^2
      // scaling), so the coarse correction transfers at full weight.
      const double e = at(u_[lev + 1], Lc, ci, cj);
      std::array<Proc::RunOp, 9> ops;
      unsigned n = 0;
      ops[n++] = Proc::RunOp::read(addr(u_[lev + 1], Lc, ci, cj));
      for (int di = 0; di < 2; ++di) {
        for (int dj = 0; dj < 2; ++dj) {
          const std::size_t fi = 2 * ci - 1 + di;
          const std::size_t fj = 2 * cj - 1 + dj;
          at(u_[lev], Lf, fi, fj) += e;
          ops[n++] = Proc::RunOp::read(addr(u_[lev], Lf, fi, fj));
          ops[n++] = Proc::RunOp::write(addr(u_[lev], Lf, fi, fj));
        }
      }
      co_await p.run(ops.data(), n, 1);
    }
    if (pts) co_await p.compute(cfg_.point_cycles * pts);
  }
  co_await p.barrier(*bar_);
}

SimTask OceanApp::vcycle(Proc& p) {
  for (unsigned l = 0; l < cfg_.mg_levels; ++l) {
    for (unsigned s = 0; s < cfg_.relax_sweeps; ++s) {
      co_await relax(p, l, u_[l], f_[l], nullptr);
    }
    co_await restrict_residual(p, l);
  }
  // Coarsest level: extra smoothing stands in for a direct solve.
  for (unsigned s = 0; s < 2 * cfg_.relax_sweeps; ++s) {
    co_await relax(p, cfg_.mg_levels, u_[cfg_.mg_levels], f_[cfg_.mg_levels],
                   nullptr);
  }
  for (unsigned l = cfg_.mg_levels; l-- > 0;) {
    co_await prolong_correction(p, l);
    for (unsigned s = 0; s < cfg_.relax_sweeps; ++s) {
      co_await relax(p, l, u_[l], f_[l], nullptr);
    }
  }
}

SimTask OceanApp::aux_update(Proc& p, unsigned k) {
  const Level& L = levels_[0];
  const Tile t = my_tile(0, p.id());
  Field& a = aux_[k];
  const auto cols = static_cast<std::uint32_t>(t.col_end - t.col_begin);
  for (std::size_t gr = t.row_begin; gr < t.row_end; ++gr) {
    // Entirely inside my tile, so both fields walk the row contiguously:
    // host math first, then one three-stream run for the whole row.
    for (std::size_t gc = t.col_begin; gc < t.col_end; ++gc) {
      at(a, L, gr, gc) += 0.1 * at(u_[0], L, gr, gc);
    }
    if (cols == 0) continue;
    using Op = Proc::RunOp;
    const std::array<Op, 3> ops{
        Op::read(addr(u_[0], L, gr, t.col_begin), sizeof(double)),
        Op::read(addr(a, L, gr, t.col_begin), sizeof(double)),
        Op::write(addr(a, L, gr, t.col_begin), sizeof(double))};
    co_await p.run(ops.data(), 3, cols);
    co_await p.compute(cfg_.point_cycles * cols);
  }
}

SimTask OceanApp::reduce_residual(Proc& p, double local) {
  co_await p.acquire(*sum_lock_);
  host_sum_ += local;
  global_sum_.v[0] = host_sum_;
  co_await p.read(global_sum_.base);
  co_await p.write(global_sum_.base);
  p.release(*sum_lock_);
  co_await p.barrier(*bar_);
  co_await p.read(global_sum_.base);  // everyone reads the total
  if (p.id() == 0) {
    if (res0_ < 0) res0_ = host_sum_;
    res_final_ = host_sum_;
    host_sum_ = 0;
  }
  co_await p.barrier(*bar_);
}

SimTask OceanApp::body(Proc& p) {
  for (unsigned it = 0; it < cfg_.iters; ++it) {
    double local_res = 0;
    // Smoothing sweeps on the fine grid (the "current" field update).
    for (unsigned s = 0; s < cfg_.relax_sweeps; ++s) {
      co_await relax(p, 0, u_[0], f_[0], &local_res);
    }
    // Auxiliary field updates (stand-in for Ocean's many grids).
    for (unsigned k = 0; k < cfg_.aux_fields; ++k) {
      co_await aux_update(p, k);
    }
    co_await p.barrier(*bar_);
    // Multigrid V-cycle correction.
    co_await vcycle(p);
    // Global residual reduction (lock + shared scalar).
    co_await reduce_residual(p, local_res);
  }
}

void OceanApp::verify() const {
  if (res0_ < 0 || res_final_ < 0) {
    throw std::runtime_error("Ocean verification failed: no residuals recorded");
  }
  if (!(res_final_ < 0.9 * res0_)) {
    throw std::runtime_error("Ocean verification failed: residual did not fall (" +
                             std::to_string(res0_) + " -> " +
                             std::to_string(res_final_) + ")");
  }
}

}  // namespace csim
