// Fast Multipole Method on a uniform octree (SPLASH-2 "FMM" analogue).
//
// Paper characterization: 8192 particles; like Barnes the communication is
// low-volume, unstructured but hierarchical, and the working set is even
// smaller (~4 KB) because interactions happen cell-to-cell through compact
// multipole records.
//
// We build the full uniform octree, run the real FMM phase structure
// (P2M, M2M up, M2L across interaction lists, L2L down, L2P + P2P near
// field) with a simplified monopole expansion. verify() exercises the FMM
// correctness invariant: every leaf's accumulated far-field mass must equal
// the total mass minus its 27-cell near neighbourhood — which holds iff
// every cell pair is covered by exactly one M2L or P2P interaction.
#pragma once

#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct FmmConfig {
  std::size_t bodies = 4096;  ///< paper: 8192
  unsigned depth = 4;         ///< leaf level; 8^depth leaf cells
  unsigned steps = 2;
  Cycles m2l_cycles = 80;  ///< busy cycles per M2L translation
  std::uint64_t seed = 0xf3f3'0001;

  static FmmConfig preset(ProblemScale s);
};

class FmmApp final : public Program {
 public:
  explicit FmmApp(FmmConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "fmm"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const FmmConfig& config() const noexcept { return cfg_; }

 private:
  struct LevelGrid {
    unsigned dim = 1;           ///< cells per axis = 2^level
    std::size_t cells = 1;      ///< dim^3
    Addr base = 0;              ///< cell records, kCellBytes apart
    std::vector<double> m;      ///< monopole (mass) per cell
    std::vector<double> l;      ///< local expansion (far-field mass) per cell
    [[nodiscard]] std::size_t index(unsigned x, unsigned y, unsigned z) const {
      return (static_cast<std::size_t>(x) * dim + y) * dim + z;
    }
    [[nodiscard]] Addr maddr(std::size_t c) const { return base + c * kCellBytes; }
    [[nodiscard]] Addr laddr(std::size_t c) const {
      return base + c * kCellBytes + 64;
    }
  };

  [[nodiscard]] Addr body_addr(std::size_t i) const {
    return body_base_ + i * kBodyBytes;
  }

  /// Interaction list of cell `c` at level `lev`: children of the parent's
  /// neighbours that are not adjacent to `c` (uniform-tree M2L list).
  [[nodiscard]] std::vector<std::size_t> interaction_list(unsigned lev,
                                                          std::size_t c) const;

  SimTask p2m_phase(Proc& p);
  SimTask m2m_phase(Proc& p);
  SimTask m2l_phase(Proc& p);
  SimTask l2l_phase(Proc& p);
  SimTask near_phase(Proc& p);

  static constexpr Addr kCellBytes = 128;  // multipole + local halves
  static constexpr Addr kBodyBytes = 64;

  FmmConfig cfg_;
  unsigned nprocs_ = 0;
  std::vector<LevelGrid> levels_;  ///< 0 = root, cfg_.depth = leaves
  std::vector<double> body_mass_;
  std::vector<std::size_t> body_cell_;          ///< leaf cell of each body
  std::vector<std::vector<int>> cell_bodies_;   ///< leaf cell -> body indices
  std::vector<double> far_mass_;                ///< per body: accumulated L
  Addr body_base_ = 0;
  double total_mass_ = 0;
  std::unique_ptr<Barrier> bar_;
};

}  // namespace csim
