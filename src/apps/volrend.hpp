// Volume rendering with octree empty-space skipping and early ray
// termination (SPLASH-2 "Volrend" analogue; the paper used a CT head scan).
//
// Paper characterization: read-only volume distributed randomly among
// processors; shared octree imposed on the volume for efficiency; pixel
// plane divided into per-processor tiles. Rays do not reflect, so working
// sets are quite small — a processor's rays touch a compact region of the
// volume plus the shared octree.
//
// We render a procedurally generated density volume (nested shells standing
// in for the CT head) with real front-to-back alpha compositing; verify()
// checks image determinism, opacity bounds and that early termination
// actually triggered.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct VolrendConfig {
  unsigned volume = 64;   ///< volume is volume^3 voxels (paper: CT head)
  unsigned frames = 3;    ///< rendered frames (rotating view, as in SPLASH-2)
  unsigned image = 128;   ///< image is image x image pixels
  unsigned block = 4;     ///< octree leaf block edge, in voxels
  double density_cut = 0.05;  ///< empty-space threshold
  double term_opacity = 0.95; ///< early-termination threshold
  Cycles sample_cycles = 24;
  std::uint64_t seed = 0x701e'0001;

  static VolrendConfig preset(ProblemScale s);
};

class VolrendApp final : public Program {
 public:
  explicit VolrendApp(VolrendConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "volrend"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const VolrendConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t image_checksum() const;
  [[nodiscard]] std::uint64_t early_terminations() const noexcept {
    return early_terms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocks_skipped() const noexcept {
    return skipped_blocks_.load(std::memory_order_relaxed);
  }

 private:
  struct OctNode {
    float max_density = 0;
    int child0 = -1;  ///< internal: encoded child-table index (-2 - idx)
    unsigned bx = 0, by = 0, bz = 0;  ///< block coords at leaf level
    unsigned size = 0;                ///< edge length in blocks
  };

  [[nodiscard]] double density(unsigned x, unsigned y, unsigned z) const {
    return vol_[(static_cast<std::size_t>(z) * cfg_.volume + y) * cfg_.volume + x];
  }
  [[nodiscard]] Addr voxel_addr(unsigned x, unsigned y, unsigned z) const {
    return vol_base_ +
           (static_cast<std::size_t>(z) * cfg_.volume + y) * cfg_.volume + x;
  }
  [[nodiscard]] Addr node_addr(std::size_t i) const { return oct_base_ + i * 64; }
  [[nodiscard]] Addr pixel_addr(std::size_t x, std::size_t y) const {
    return image_base_ + (y * cfg_.image + x) * sizeof(float);
  }

  static constexpr std::size_t kTile = 8;  ///< block-cyclic pixel tile edge

  int build_octree(unsigned bx, unsigned by, unsigned bz, unsigned size);
  [[nodiscard]] float block_max(unsigned bx, unsigned by, unsigned bz) const;

  /// Renders one pixel's ray: front-to-back compositing along +z with a
  /// per-frame view shear standing in for the rotating camera.
  SimTask cast_ray(Proc& p, unsigned px, unsigned py, double shear);

  VolrendConfig cfg_;
  unsigned nprocs_ = 0;
  ProcGrid pgrid_{};
  std::vector<float> vol_;
  std::vector<OctNode> oct_;
  std::vector<std::array<int, 8>> children_;  ///< child tables for internals
  std::vector<float> image_;
  Addr vol_base_ = 0, oct_base_ = 0, image_base_ = 0;
  /// Render statistics. Rays from different clusters run concurrently
  /// under --par; the counts are order-independent sums, so relaxed
  /// atomics keep them exact without ordering anything.
  std::atomic<std::uint64_t> early_terms_{0}, samples_{0}, skipped_blocks_{0};
  std::unique_ptr<Barrier> bar_;
};

}  // namespace csim
