// Deterministic, seedable PRNG for workload generation (no global state).
#pragma once

#include <cstdint>

namespace csim {

/// splitmix64: used for seeding and cheap hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace csim
