// Work-partition helpers shared by the workloads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

/// Contiguous 1-D block partition of [0, n) over `nprocs` processors.
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

inline BlockRange block_partition(std::size_t n, unsigned nprocs, ProcId p) noexcept {
  const std::size_t base = n / nprocs;
  const std::size_t extra = n % nprocs;
  const std::size_t begin = p * base + (p < extra ? p : extra);
  const std::size_t len = base + (p < extra ? 1 : 0);
  return BlockRange{begin, begin + len};
}

/// Square (or near-square) processor grid: rows x cols with rows*cols == P.
struct ProcGrid {
  unsigned rows = 1;
  unsigned cols = 1;
  [[nodiscard]] unsigned row_of(ProcId p) const noexcept { return p / cols; }
  [[nodiscard]] unsigned col_of(ProcId p) const noexcept { return p % cols; }
  [[nodiscard]] ProcId at(unsigned r, unsigned c) const noexcept {
    return r * cols + c;
  }
};

/// Factors P into the most-square rows x cols grid (rows <= cols).
inline ProcGrid make_proc_grid(unsigned nprocs) noexcept {
  unsigned rows = static_cast<unsigned>(std::sqrt(static_cast<double>(nprocs)));
  while (rows > 1 && nprocs % rows != 0) --rows;
  return ProcGrid{rows, nprocs / rows};
}

/// 2-D tile assignment over an N x M domain for a processor grid. Processors
/// in the same grid row own horizontally adjacent tiles — consecutive
/// processor ids are spatial neighbours, which is what lets clustering
/// capture near-neighbour communication (Ocean, Raytrace, Volrend).
struct Tile {
  std::size_t row_begin = 0, row_end = 0;
  std::size_t col_begin = 0, col_end = 0;
  [[nodiscard]] std::size_t rows() const noexcept { return row_end - row_begin; }
  [[nodiscard]] std::size_t cols() const noexcept { return col_end - col_begin; }
};

inline Tile tile_of(std::size_t n_rows, std::size_t n_cols, const ProcGrid& g,
                    ProcId p) noexcept {
  const BlockRange r = block_partition(n_rows, g.rows, g.row_of(p));
  const BlockRange c = block_partition(n_cols, g.cols, g.col_of(p));
  return Tile{r.begin, r.end, c.begin, c.end};
}

/// Block-cyclic 2-D tile ownership: the domain is cut into small fixed-size
/// tiles assigned round-robin over the processor grid, so each processor
/// owns several spatially compact tiles scattered across the domain. This
/// balances irregular per-pixel work (Raytrace, Volrend) while keeping
/// per-tile locality, and neighbouring processor ids still own neighbouring
/// tiles within each repeat block (so clustering captures shared data).
inline std::vector<Tile> cyclic_tiles(std::size_t n_rows, std::size_t n_cols,
                                      std::size_t tile, const ProcGrid& g,
                                      ProcId p) {
  std::vector<Tile> out;
  const std::size_t trows = (n_rows + tile - 1) / tile;
  const std::size_t tcols = (n_cols + tile - 1) / tile;
  for (std::size_t tr = 0; tr < trows; ++tr) {
    for (std::size_t tc = 0; tc < tcols; ++tc) {
      if (g.at(tr % g.rows, tc % g.cols) != p) continue;
      out.push_back(Tile{tr * tile, std::min(n_rows, (tr + 1) * tile),
                         tc * tile, std::min(n_cols, (tc + 1) * tile)});
    }
  }
  return out;
}

}  // namespace csim
