// Recursive ray tracing over a procedural sphere-flake scene (SPLASH-2
// "Raytrace" analogue; the paper used the Balls4 scene).
//
// Paper characterization: read-only scene data distributed randomly among
// processors; pixel plane divided into per-processor tiles (as in Ocean);
// rays reflect, so a processor's rays wander across the scene — much larger
// and more unstructured working sets than Volrend. Communication volume from
// sharing the read-only scene and false sharing of the pixel plane is small.
//
// Rays are traced for real (uniform-grid DDA + analytic sphere
// intersections, mirror reflections); verify() checks the image is
// deterministic (checksum stable across runs and machine configurations)
// and that rays actually hit geometry.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/octree.hpp"  // Vec3
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct RaytraceConfig {
  unsigned image = 160;     ///< image is image x image pixels
  unsigned grid = 16;       ///< acceleration grid cells per axis
  unsigned flake_depth = 3; ///< sphere-flake recursion (3 -> 187 spheres)
  unsigned max_bounces = 3;
  unsigned frames = 2;      ///< rendered frames (slightly moved eye)
  Cycles isect_cycles = 45; ///< busy cycles per ray-sphere test
  std::uint64_t seed = 0x5ce0'0001;

  static RaytraceConfig preset(ProblemScale s);
};

class RaytraceApp final : public Program {
 public:
  explicit RaytraceApp(RaytraceConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "raytrace"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const RaytraceConfig& config() const noexcept { return cfg_; }
  /// FNV-1a hash of the rendered image (deterministic identity).
  [[nodiscard]] std::uint64_t image_checksum() const;
  [[nodiscard]] std::uint64_t hit_count() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  struct Sphere {
    Vec3 c;
    double r;
  };

  [[nodiscard]] Addr sphere_addr(std::size_t i) const {
    return sphere_base_ + i * 64;
  }
  [[nodiscard]] Addr voxel_addr(std::size_t i) const {
    return voxel_base_ + i * 64;
  }
  [[nodiscard]] Addr pixel_addr(std::size_t x, std::size_t y) const {
    return image_base_ + (y * cfg_.image + x) * sizeof(float);
  }
  [[nodiscard]] std::size_t voxel_index(int x, int y, int z) const {
    return (static_cast<std::size_t>(x) * cfg_.grid + y) * cfg_.grid + z;
  }

  static constexpr std::size_t kTile = 5;  ///< block-cyclic pixel tile edge (160/5/8 exact)

  void add_flake(Vec3 c, double r, int depth, int exclude_dir);
  void build_grid();

  /// Traces one ray through the grid; returns shade contribution and leaves
  /// the reference trail on `p`. (Host math and simulated refs together.)
  SimTask trace_ray(Proc& p, Vec3 org, Vec3 dir, unsigned bounce, double atten,
                    double* shade);

  RaytraceConfig cfg_;
  unsigned nprocs_ = 0;
  ProcGrid pgrid_{};
  std::vector<Sphere> spheres_;
  std::vector<std::vector<int>> voxels_;  ///< sphere indices per voxel
  std::vector<float> image_;
  Addr sphere_base_ = 0, voxel_base_ = 0, image_base_ = 0;
  /// Shading-hit count; rays from different clusters run concurrently
  /// under --par, and the sum is order-independent, so a relaxed atomic
  /// keeps it exact.
  std::atomic<std::uint64_t> hits_{0};
  std::unique_ptr<Barrier> bar_;
};

}  // namespace csim
