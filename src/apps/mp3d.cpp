#include "src/apps/mp3d.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "src/apps/prng.hpp"

namespace csim {

Mp3dConfig Mp3dConfig::preset(ProblemScale s) {
  Mp3dConfig c;
  switch (s) {
    case ProblemScale::Test:
      c.particles = 2048;
      c.cells_per_dim = 6;
      c.steps = 2;
      break;
    case ProblemScale::Default:
      break;  // struct defaults
    case ProblemScale::Paper:
      c.particles = 50000;
      c.cells_per_dim = 16;
      c.steps = 6;
      break;
  }
  return c;
}

std::unique_ptr<Program> make_mp3d(ProblemScale s) {
  auto app = std::make_unique<Mp3dApp>(Mp3dConfig::preset(s));
  app->set_scale(s);
  return app;
}

unsigned Mp3dApp::cell_of(const Particle& q) const noexcept {
  const unsigned d = cfg_.cells_per_dim;
  auto idx = [&](double v) {
    int i = static_cast<int>(v * d);
    if (i < 0) i = 0;
    if (i >= static_cast<int>(d)) i = static_cast<int>(d) - 1;
    return static_cast<unsigned>(i);
  };
  return (idx(q.x) * d + idx(q.y)) * d + idx(q.z);
}

void Mp3dApp::setup(AddressSpace& as, const MachineSpec& mc) {
  nprocs_ = mc.num_procs;
  const unsigned d = cfg_.cells_per_dim;

  Rng rng(cfg_.seed);
  parts_.resize(cfg_.particles);
  for (auto& q : parts_) {
    q.x = rng.uniform();
    q.y = rng.uniform();
    q.z = rng.uniform();
    // Hypersonic flow: strong +x drift plus thermal spread.
    q.vx = 0.08 + 0.02 * rng.uniform(-1.0, 1.0);
    q.vy = 0.03 * rng.uniform(-1.0, 1.0);
    q.vz = 0.03 * rng.uniform(-1.0, 1.0);
  }
  ncells_ = d * d * d;
  shards_ = mc.parallel.enabled() ? mc.num_clusters() : 1;
  cells_.assign(std::size_t{ncells_} * shards_, Cell{});
  if (shards_ > 1) {
    // A zero-initialized reservoir means "particle 0", which cluster 0
    // owns — a cross-shard leak on a fresh cell. Sharded runs start with
    // no reservoir instead (the `other < parts_.size()` guard skips the
    // exchange); the single-shard path keeps the legacy sentinel so
    // sequential digests are unchanged.
    for (auto& cell : cells_) cell.reservoir = kNoReservoir;
  }

  part_base_ = as.alloc(cfg_.particles * kParticleBytes, "mp3d.particles");
  cell_base_ = as.alloc(Addr{ncells_} * kCellBytes, "mp3d.cells");
  // Particles are placed at their owner; the cell array is left to
  // round-robin first touch (it is shared, unstructured read-write state).
  for (ProcId p = 0; p < nprocs_; ++p) {
    const BlockRange r = block_partition(cfg_.particles, nprocs_, p);
    as.place(particle_addr(r.begin), r.size() * kParticleBytes, p);
  }
  total_moves_ = 0;
  bar_ = std::make_unique<Barrier>(nprocs_);
}

SimTask Mp3dApp::body(Proc& p) {
  const BlockRange mine = block_partition(cfg_.particles, nprocs_, p.id());
  // Sequential runs share one cell shard; parallel runs give each cluster
  // its own (see the cells_ comment in the header). The reservoir partner
  // is then always a particle owned by this cluster, so every host-side
  // access below stays inside the partition that this coroutine runs on.
  Cell* const cells =
      cells_.data() + std::size_t{shards_ == 1 ? 0 : p.cluster()} * ncells_;

  for (unsigned step = 0; step < cfg_.steps; ++step) {
    for (std::size_t i = mine.begin; i < mine.end; ++i) {
      Particle& q = parts_[i];
      // Free flight with specular reflection off the walls.
      auto bounce = [](double& x, double& v) {
        x += v;
        if (x < 0) {
          x = -x;
          v = -v;
        } else if (x > 1) {
          x = 2 - x;
          v = -v;
        }
      };
      bounce(q.x, q.vx);
      bounce(q.y, q.vy);
      bounce(q.z, q.vz);

      const unsigned c = cell_of(q);
      Cell& cell = cells[c];
      ++cell.count;
      cell.momentum += std::abs(q.vx) + std::abs(q.vy) + std::abs(q.vz);

      // Simplified DSMC collision: exchange a velocity component with the
      // cell's reservoir particle (the last particle that visited).
      const std::uint32_t other = cell.reservoir;
      cell.reservoir = static_cast<std::uint32_t>(i);
      if (other != static_cast<std::uint32_t>(i) && other < parts_.size()) {
        std::swap(parts_[other].vy, q.vy);
      }
      total_moves_.fetch_add(1, std::memory_order_relaxed);

      // References: read+write my particle record, read+write the shared
      // space cell, read+write the reservoir partner's record — one run
      // per move.
      std::array<Proc::RunOp, 7> ops;
      unsigned cnt = 0;
      ops[cnt++] = Proc::RunOp::read(particle_addr(i));
      ops[cnt++] = Proc::RunOp::compute(cfg_.move_cycles);
      ops[cnt++] = Proc::RunOp::read(cell_addr(c));
      ops[cnt++] = Proc::RunOp::write(cell_addr(c));
      if (other != static_cast<std::uint32_t>(i) && other < parts_.size()) {
        ops[cnt++] = Proc::RunOp::read(particle_addr(other));
        ops[cnt++] = Proc::RunOp::write(particle_addr(other));
      }
      ops[cnt++] = Proc::RunOp::write(particle_addr(i));
      co_await p.run(ops.data(), cnt, 1);
    }
    co_await p.barrier(*bar_);
  }
}

void Mp3dApp::verify() const {
  const std::uint64_t moves = total_moves_.load(std::memory_order_relaxed);
  if (moves != static_cast<std::uint64_t>(cfg_.particles) * cfg_.steps) {
    throw std::runtime_error("MP3D verification failed: move count mismatch");
  }
  for (const auto& q : parts_) {
    if (q.x < 0 || q.x > 1 || q.y < 0 || q.y > 1 || q.z < 0 || q.z > 1) {
      throw std::runtime_error("MP3D verification failed: particle escaped");
    }
  }
  // Visits conserve across shards: every move lands in exactly one shard.
  std::uint64_t visits = 0;
  for (const auto& c : cells_) visits += c.count;
  if (visits != moves) {
    throw std::runtime_error("MP3D verification failed: cell visits mismatch");
  }
}

}  // namespace csim
