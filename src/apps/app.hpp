// Workload framework: problem-size presets and the application registry.
//
// Each of the paper's nine applications (Table 2) is a Program whose
// per-processor bodies run the real algorithm over real data structures,
// issuing simulated memory references as they go. Problem sizes come in
// three presets:
//   Test    — tiny, for unit tests (milliseconds);
//   Default — scaled-down versions of the paper's inputs, sized so the whole
//             benchmark suite simulates in seconds (communication *patterns*,
//             which determine the clustering benefit percentages, are
//             topology-determined and size-stable — see DESIGN.md);
//   Paper   — the Table 2 sizes (8192-particle Barnes, 64K-point FFT,
//             512x512 LU, 50000-particle MP3D, 130x130 Ocean, 256K-key
//             Radix, ...).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/simulator.hpp"

namespace csim {

// ProblemScale (Test / Default / Paper) and to_string live in
// src/core/types.hpp so SimResult can record the preset that produced it.

/// Factory functions for each application (declared in their own headers as
/// well; collected here for generic sweeps).
std::unique_ptr<Program> make_lu(ProblemScale s);
std::unique_ptr<Program> make_fft(ProblemScale s);
std::unique_ptr<Program> make_ocean(ProblemScale s);
std::unique_ptr<Program> make_barnes(ProblemScale s);
std::unique_ptr<Program> make_fmm(ProblemScale s);
std::unique_ptr<Program> make_mp3d(ProblemScale s);
std::unique_ptr<Program> make_radix(ProblemScale s);
std::unique_ptr<Program> make_raytrace(ProblemScale s);
std::unique_ptr<Program> make_volrend(ProblemScale s);

struct AppFactory {
  std::string name;
  std::string description;
  std::function<std::unique_ptr<Program>(ProblemScale)> make;
};

/// All nine applications in the paper's Table 2 order.
const std::vector<AppFactory>& app_registry();

/// Creates an app by name; throws std::invalid_argument for unknown names.
std::unique_ptr<Program> make_app(std::string_view name,
                                  ProblemScale s = ProblemScale::Default);

/// Names of all registered applications.
std::vector<std::string> app_names();

// --- Helpers shared by workload bodies ------------------------------------

/// Reads every cache line of [base, base+bytes) once, with `compute_per_line`
/// busy cycles interleaved. Models streaming over a data block at line
/// granularity. Issued as a single run (Proc::run): one awaitable for the
/// whole stream instead of one coroutine suspension point per line.
Proc::RunAwaiter stream_read(Proc& p, Addr base, std::size_t bytes,
                             Cycles compute_per_line = 0);

/// Writes every cache line of [base, base+bytes) once.
Proc::RunAwaiter stream_write(Proc& p, Addr base, std::size_t bytes,
                              Cycles compute_per_line = 0);

}  // namespace csim
