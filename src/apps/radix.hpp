// Parallel radix sort (SPLASH-2 "Radix" analogue).
//
// Paper characterization: 256K integer keys, radix 256; per digit each
// processor histograms its keys, all processors then read the shared
// histograms (the paper observes "significant prefetching effects,
// particularly on the shared histograms", with large merge times because
// clustered processors read the same histogram at the same time), and the
// permutation writes keys to essentially random locations in the distributed
// destination array (all-to-all, relatively unstructured).
//
// The sort is performed for real; verify() checks the output is sorted and a
// permutation of the input.
#pragma once

#include <memory>
#include <vector>

#include "src/apps/app.hpp"
#include "src/apps/partition.hpp"
#include "src/core/sync.hpp"

namespace csim {

struct RadixConfig {
  std::size_t n = 131072;  ///< number of keys (paper: 262144)
  unsigned radix = 256;    ///< buckets per pass (paper: 256)
  unsigned key_bits = 16;  ///< key width; passes = key_bits / log2(radix)
  std::uint64_t seed = 0x5ad1'0001;

  static RadixConfig preset(ProblemScale s);
};

class RadixApp final : public Program {
 public:
  explicit RadixApp(RadixConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string name() const override { return "radix"; }
  void setup(AddressSpace& as, const MachineSpec& mc) override;
  SimTask body(Proc& p) override;
  void verify() const override;

  [[nodiscard]] const RadixConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] Addr key_addr(int buf, std::size_t i) const noexcept {
    return key_base_[buf] + i * sizeof(std::uint32_t);
  }
  [[nodiscard]] Addr hist_addr(ProcId p, unsigned d) const noexcept {
    return hist_base_ + (static_cast<Addr>(p) * cfg_.radix + d) *
                            sizeof(std::uint32_t);
  }

  RadixConfig cfg_;
  unsigned nprocs_ = 0;
  unsigned passes_ = 0;
  unsigned log_radix_ = 0;
  std::vector<std::uint32_t> keys_[2];  ///< ping-pong key arrays
  std::vector<std::uint32_t> input_;    ///< saved for verification
  std::vector<std::vector<std::uint32_t>> hist_;  ///< [proc][digit]
  Addr key_base_[2] = {0, 0};
  Addr hist_base_ = 0;
  Addr ghist_base_ = 0;  ///< the shared global histogram
  int final_buf_ = 0;
  std::unique_ptr<Barrier> bar_;
};

}  // namespace csim
