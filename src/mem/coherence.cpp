#include "src/mem/coherence.hpp"

#include <algorithm>

#include "src/core/error.hpp"
#include "src/mem/audit_util.hpp"
#include "src/mem/contention.hpp"
#include "src/mem/warm_state.hpp"
#include "src/obs/observer.hpp"

namespace csim {

CoherenceController::CoherenceController(std::shared_ptr<const MachineSpec> spec,
                                         const AddressSpace& as)
    : spec_(std::move(spec)), cfg_(*spec_), homes_(as, cfg_) {
  if (cfg_.contention.enabled) {
    contention_ = std::make_unique<ContentionModel>(cfg_);
  }
  const unsigned nc = cfg_.num_clusters();
  caches_.reserve(nc);
  for (unsigned c = 0; c < nc; ++c) {
    caches_.push_back(std::make_unique<CacheStorage>(
        cfg_.cache.infinite() ? 0 : cfg_.cluster_cache_lines(),
        cfg_.cache.associativity, cfg_.cache.line_bytes));
  }
  mshrs_.resize(nc);
  counters_.resize(nc);
  gen_.resize(nc, 0);
  // Size the directory and cold-line set to the application's allocated
  // footprint so steady-state operation never rehashes.
  const std::size_t lines =
      static_cast<std::size_t>(as.bytes_allocated() / cfg_.cache.line_bytes);
  dir_.reserve(lines);
  touched_lines_.reserve(lines);
  if (cfg_.cache.infinite()) {
    for (auto& c : caches_) c->reserve(lines);
  }
}

CoherenceController::~CoherenceController() = default;

MissCounters CoherenceController::totals() const {
  MissCounters t{};
  for (const auto& c : counters_) t += c;
  return t;
}

void CoherenceController::audit() const {
  using audit_util::dir_state_name;
  using audit_util::violation;
  const unsigned nc = cfg_.num_clusters();

  // Occupancy never exceeds capacity.
  for (unsigned c = 0; c < nc; ++c) {
    if (!caches_[c]->infinite() &&
        caches_[c]->size() > caches_[c]->capacity_lines()) {
      throw ProtocolError("audit: cluster " + std::to_string(c) + " cache holds " +
                          std::to_string(caches_[c]->size()) + " lines, capacity " +
                          std::to_string(caches_[c]->capacity_lines()));
    }
  }

  // Directory entries agree with cluster cache contents and states.
  for (const auto& [line, e] : dir_.entries()) {
    if (nc < 64 && (e.sharers >> nc) != 0) {
      violation(line, "sharer bit set beyond cluster count");
    }
    switch (e.state) {
      case DirState::NotCached:
        if (e.sharers != 0) violation(line, "NOT_CACHED but sharer bits set");
        break;
      case DirState::Shared:
        if (e.sharers == 0) violation(line, "SHARED with empty sharer vector");
        break;
      case DirState::Exclusive:
        if (e.count() != 1) {
          violation(line, "EXCLUSIVE with " + std::to_string(e.count()) +
                              " sharers (want exactly 1)");
        }
        break;
    }
    for (unsigned c = 0; c < nc; ++c) {
      const auto st = caches_[c]->lookup(line);
      if (e.has(c) != st.has_value()) {
        violation(line, std::string("directory ") + dir_state_name(e.state) +
                            (e.has(c) ? " lists" : " omits") + " cluster " +
                            std::to_string(c) + " but the line is " +
                            (st ? "cached" : "not cached") + " there");
      }
      if (st && e.state == DirState::Exclusive && *st != LineState::Exclusive) {
        violation(line, "directory EXCLUSIVE in cluster " + std::to_string(c) +
                            " but cached SHARED");
      }
      if (st && e.state == DirState::Shared && *st != LineState::Shared) {
        violation(line, "directory SHARED but cluster " + std::to_string(c) +
                            " caches it EXCLUSIVE");
      }
    }
  }

  // Every cached line is tracked by the directory (catches dropped entries).
  for (unsigned c = 0; c < nc; ++c) {
    for (Addr line : caches_[c]->resident_lines()) {
      if (!dir_.peek(line).has(c)) {
        violation(line, "cached in cluster " + std::to_string(c) +
                            " but absent from its directory sharer vector");
      }
    }
    // An in-flight fill implies the line was allocated in this cluster.
    for (const auto& [line, m] : mshrs_[c].entries()) {
      if (!caches_[c]->lookup(line)) {
        violation(line, "MSHR entry in cluster " + std::to_string(c) +
                            " for a line not resident in its cache");
      }
    }
  }
}

void CoherenceController::set_functional(bool on) {
  functional_ = on;
  // Either direction: pending fills are timing-only state, and the regime
  // boundary must look the same whether warmed in-process or restored from a
  // checkpoint (which stores no MSHRs) — so drop them.
  for (auto& m : mshrs_) m.clear();
}

bool CoherenceController::capture_warm_state(WarmState& out) const {
  out.cluster_style = static_cast<std::uint8_t>(ClusterStyle::SharedCache);
  out.num_procs = cfg_.num_procs;
  out.procs_per_cluster = cfg_.procs_per_cluster;
  out.counters = counters_;
  out.touched_lines = touched_lines_.to_vector();
  std::sort(out.touched_lines.begin(), out.touched_lines.end());
  out.home_rr_next = homes_.rr_next();
  out.homes = homes_.snapshot();
  out.directory.clear();
  out.directory.reserve(dir_.tracked_lines());
  for (const auto& [line, e] : dir_.entries()) {
    // Fully invalidated entries are behaviorally identical to absent ones.
    if (e.state == DirState::NotCached && e.sharers == 0) continue;
    out.directory.push_back(
        WarmDirLine{line, static_cast<std::uint8_t>(e.state), e.sharers});
  }
  std::sort(out.directory.begin(), out.directory.end(),
            [](const WarmDirLine& a, const WarmDirLine& b) {
              return a.line < b.line;
            });
  out.caches.clear();
  out.caches.reserve(caches_.size());
  for (const auto& c : caches_) {
    std::vector<WarmCacheLine> lines;
    const auto dumped = c->dump_lru_order();
    lines.reserve(dumped.size());
    for (const auto& [line, st] : dumped) {
      lines.push_back(WarmCacheLine{line, static_cast<std::uint8_t>(st)});
    }
    out.caches.push_back(std::move(lines));
  }
  out.attraction.clear();
  return true;
}

bool CoherenceController::restore_warm_state(const WarmState& ws) {
  const unsigned nc = cfg_.num_clusters();
  if (ws.cluster_style !=
          static_cast<std::uint8_t>(ClusterStyle::SharedCache) ||
      ws.num_procs != cfg_.num_procs ||
      ws.procs_per_cluster != cfg_.procs_per_cluster ||
      ws.counters.size() != nc || ws.caches.size() != nc ||
      !ws.attraction.empty()) {
    return false;
  }
  counters_ = ws.counters;
  for (Addr line : ws.touched_lines) touched_lines_.insert(line);
  homes_.restore(ws.homes, static_cast<ClusterId>(ws.home_rr_next));
  for (const WarmDirLine& d : ws.directory) {
    DirEntry& e = dir_.entry(d.line);
    e.state = static_cast<DirState>(d.state);
    e.sharers = d.sharers;
  }
  for (unsigned c = 0; c < nc; ++c) {
    for (const WarmCacheLine& l : ws.caches[c]) {
      if (caches_[c]->insert(l.line, static_cast<LineState>(l.state))) {
        return false;  // eviction while refilling: geometry mismatch
      }
    }
  }
  return true;
}

void CoherenceController::install(ClusterId c, Addr line, LineState st) {
  auto victim = caches_[c]->insert(line, st);
  if (victim) {
    ++gen_[c];  // replacement: any hint for the victim line is dead
    ++counters_[c].evictions;
    dir_.replacement_hint(victim->line, c);
    // A pending fill whose line was replaced before use is simply dropped;
    // merged readers already captured their completion times.
    mshrs_[c].release(victim->line);
  }
}

LatencyClass CoherenceController::classify(ClusterId requester, Addr line,
                                           const DirEntry& e) const {
  // homes_.home_of is non-const (first-touch assignment), so resolve the
  // home via the mutable map.
  auto& self = const_cast<CoherenceController&>(*this);
  return classify_miss(e, requester, self.homes_.home_of(line));
}

Cycles CoherenceController::acquire_port(ClusterId c, Addr line, Cycles now) {
  if (functional_ || !contention_) return 0;
  const Cycles wait = contention_->cluster_port(c, line, now);
  if (wait != 0) {
    ++counters_[c].bank_conflicts;
    counters_[c].bank_wait_cycles += wait;
  }
  return wait;
}

void CoherenceController::invalidate_others(Addr line, ClusterId keep,
                                            Cycles now) {
  // find(): this path only mutates existing state — an untracked line has no
  // copies to invalidate, and entry() would grow the directory with
  // NOT_CACHED garbage. Callers may hold a reference to this entry; no
  // insertion or erasure happens here, so it stays valid.
  DirEntry* pe = dir_.find(line);
  if (pe == nullptr) return;
  DirEntry& e = *pe;
  std::uint64_t rest = e.sharers & ~(std::uint64_t{1} << keep);
  unsigned killed = 0;
  while (rest) {
    const ClusterId x = static_cast<ClusterId>(__builtin_ctzll(rest));
    rest &= rest - 1;
    ++gen_[x];  // kill hook: cluster x's copy is going away
    if (caches_[x]->erase(line)) {
      ++counters_[x].invalidations;
      ++killed;
      // Kill any in-flight fill: the data will arrive but must not be used
      // by accesses issued after this point.
      mshrs_[x].release(line);
    }
    e.remove(x);
  }
  if (e.sharers == 0) e.state = DirState::NotCached;
  if (obs_ != nullptr && killed != 0) obs_->on_invalidation(line, killed, now);
}

AccessResult CoherenceController::handle_read_miss(ClusterId c, Addr line,
                                                   Cycles now,
                                                   Cycles port_wait) {
  DirEntry& e = dir_.entry(line);
  // A line the directory tracks is cached somewhere, so some earlier miss
  // already fetched it: only directory-absent lines can still be cold, and
  // only they pay the touched-set probe.
  const bool maybe_cold = e.state == DirState::NotCached;
  const ClusterId home = homes_.home_of(line);
  const LatencyClass lclass = classify_miss(e, c, home);
  const Cycles lat = cfg_.latency.of(lclass);

  if (e.state == DirState::Exclusive) {
    // Downgrade the owner's copy: it keeps a SHARED copy, data goes home.
    // Kill hook: the owner's writable hint for this line must die with the
    // downgrade.
    ++gen_[e.owner()];
    caches_[e.owner()]->set_state(line, LineState::Shared);
  }
  e.add(c);
  e.state = DirState::Shared;

  MissCounters& ctr = counters_[c];
  ++ctr.read_misses;
  ++ctr.by_class[static_cast<unsigned>(lclass)];
  if (maybe_cold && touched_lines_.insert(line)) ++ctr.cold_misses;

  // Queueing delays cascade in request order: bank (already paid), then the
  // home directory controller, then — for any miss leaving the cluster — the
  // requester's network interface. A read stalls the processor, so every
  // wait is processor-visible and delays the fill.
  Cycles queue = port_wait;
  if (contention_ && !functional_) {
    const Cycles dwait = contention_->directory(home, now + queue);
    ctr.dir_wait_cycles += dwait;
    queue += dwait;
    if (lclass != LatencyClass::LocalClean) {
      const Cycles nwait = contention_->nic(c, now + queue);
      ctr.nic_wait_cycles += nwait;
      queue += nwait;
    }
  }

  install(c, line, LineState::Shared);
  // Functional warming charges no stall and tracks no fill: fills complete
  // instantly, so no reader can merge and no MSHR entry is needed.
  if (!functional_) mshrs_[c].allocate(line, MshrEntry{now + queue + lat});
  AccessResult r{AccessResult::Kind::ReadMiss, lat, now + queue + lat, lclass};
  r.contention = queue;
  return r;
}

AccessResult CoherenceController::read(ProcId p, Addr a, Cycles now) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  ++ctr.reads;
  const Cycles port_wait = acquire_port(c, line, now);

  // Fast path: with no fill in flight anywhere in the cluster there is
  // nothing to merge on and no stale MSHR entry to drop, so a hit needs one
  // fused lookup+touch probe instead of three.
  std::optional<LineState> st;
  if (mshrs_[c].empty()) {
    st = caches_[c]->access(line);
  } else if ((st = caches_[c]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time > now) {
        ++ctr.merges;
        AccessResult r{AccessResult::Kind::Merge, 0, m->fill_time,
                       LatencyClass::LocalClean};
        r.contention = port_wait;
        return r;
      }
      mshrs_[c].release(line);  // fill has arrived
    }
    caches_[c]->touch(line);
  } else {
    mshrs_[c].release(line);  // drop any stale entry for a departed line
  }
  if (st) {
    ++ctr.read_hits;
    AccessResult r{AccessResult::Kind::Hit};
    // No pending fill remains (a live one returned Merge above), so a repeat
    // access while the hint holds is a plain hit: writes too, if EXCLUSIVE.
    r.hint = *st == LineState::Exclusive ? MruHint::ReadWrite
                                         : MruHint::ReadOnly;
    r.contention = port_wait;
    return r;
  }
  return handle_read_miss(c, line, now, port_wait);
}

std::optional<AccessResult> CoherenceController::local_read(ProcId p, Addr a,
                                                            Cycles now) {
  // Same fused probe as read(), restricted to cluster-local state. The
  // reads counter is bumped only on the completing paths — a deferred
  // operation is re-issued as a full read() at the window boundary, which
  // counts it exactly once. Parallel mode excludes the contention model
  // (MachineSpec::validate), so port queues are never consulted. Parallel
  // functional warming also probes through here (the timing fields are
  // ignored then); with warming never allocating MSHRs, the cluster-local
  // state transitions are the same ones the full functional read() takes.
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  std::optional<LineState> st;
  if (mshrs_[c].empty()) {
    st = caches_[c]->access(line);
  } else if ((st = caches_[c]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time > now) {
        ++ctr.reads;
        ++ctr.merges;
        return AccessResult{AccessResult::Kind::Merge, 0, m->fill_time,
                            LatencyClass::LocalClean};
      }
      mshrs_[c].release(line);  // fill has arrived
    }
    caches_[c]->touch(line);
  } else {
    mshrs_[c].release(line);  // drop any stale entry for a departed line
  }
  if (st) {
    ++ctr.reads;
    ++ctr.read_hits;
    AccessResult r{AccessResult::Kind::Hit};
    r.hint = *st == LineState::Exclusive ? MruHint::ReadWrite
                                         : MruHint::ReadOnly;
    return r;
  }
  return std::nullopt;  // directory transition: window-boundary work
}

std::optional<AccessResult> CoherenceController::local_write(ProcId p, Addr a,
                                                             Cycles now) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  std::optional<LineState> st;
  bool pending = false;
  if (mshrs_[c].empty()) {
    st = caches_[c]->access(line);
  } else if ((st = caches_[c]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time <= now) {
        mshrs_[c].release(line);
      } else {
        pending = true;  // a read while this fill is in flight must Merge
      }
    }
    caches_[c]->touch(line);
  } else {
    mshrs_[c].release(line);  // drop any stale entry for a departed line
  }
  if (st && *st == LineState::Exclusive) {
    ++ctr.writes;
    ++ctr.write_hits;
    AccessResult r{AccessResult::Kind::Hit};
    r.hint = pending ? MruHint::None : MruHint::ReadWrite;
    return r;
  }
  // SHARED (an upgrade invalidates other clusters) or absent (a write miss
  // moves directory ownership): both are globally visible — defer.
  return std::nullopt;
}

AccessResult CoherenceController::write(ProcId p, Addr a, Cycles now) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  ++ctr.writes;
  const Cycles port_wait = acquire_port(c, line, now);

  // Same fused-probe fast path as read(): no in-flight fill means no pending
  // merge and no stale entry, so one probe replaces three.
  std::optional<LineState> st;
  bool pending = false;
  if (mshrs_[c].empty()) {
    st = caches_[c]->access(line);
  } else if ((st = caches_[c]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time <= now) {
        mshrs_[c].release(line);
      } else {
        pending = true;  // a read while this fill is in flight must Merge
      }
    }
    caches_[c]->touch(line);
  } else {
    mshrs_[c].release(line);  // drop any stale entry for a departed line
  }
  if (st) {
    if (*st == LineState::Exclusive) {
      // Store buffered; a store to our own in-flight exclusive fill merges.
      ++ctr.write_hits;
      AccessResult r{AccessResult::Kind::Hit};
      r.hint = pending ? MruHint::None : MruHint::ReadWrite;
      r.contention = port_wait;
      return r;
    }
    // UPGRADE: write found the line SHARED. Ownership moves instantly; the
    // latency is fully hidden by the store buffer, but the home directory
    // controller is still occupied by the ownership transfer.
    invalidate_others(line, c, now);
    DirEntry& e = dir_.entry(line);
    e.sharers = 0;
    e.add(c);
    e.state = DirState::Exclusive;
    caches_[c]->set_state(line, LineState::Exclusive);
    ++ctr.upgrade_misses;
    if (contention_ && !functional_) {
      ctr.dir_wait_cycles +=
          contention_->directory(homes_.home_of(line), now + port_wait);
    }
    AccessResult r{AccessResult::Kind::UpgradeMiss};
    r.contention = port_wait;
    return r;
  }

  // WRITE miss: fetch the line EXCLUSIVE; latency hidden, fill in flight.
  DirEntry& e = dir_.entry(line);
  const bool maybe_cold = e.state == DirState::NotCached;  // see handle_read_miss
  const ClusterId home = homes_.home_of(line);
  const LatencyClass lclass = classify_miss(e, c, home);
  const Cycles lat = cfg_.latency.of(lclass);
  invalidate_others(line, c, now);
  e.sharers = 0;
  e.add(c);
  e.state = DirState::Exclusive;
  ++ctr.write_misses;
  ++ctr.by_class[static_cast<unsigned>(lclass)];
  if (maybe_cold && touched_lines_.insert(line)) ++ctr.cold_misses;
  install(c, line, LineState::Exclusive);

  // The store buffer hides directory/NIC queueing from the processor (only
  // the bank wait is visible at issue), but the fill still arrives later.
  Cycles hidden = 0;
  if (contention_ && !functional_) {
    const Cycles dwait = contention_->directory(home, now + port_wait);
    ctr.dir_wait_cycles += dwait;
    hidden += dwait;
    if (lclass != LatencyClass::LocalClean) {
      const Cycles nwait = contention_->nic(c, now + port_wait + hidden);
      ctr.nic_wait_cycles += nwait;
      hidden += nwait;
    }
  }
  const Cycles fill = now + port_wait + hidden + lat;
  if (!functional_) mshrs_[c].allocate(line, MshrEntry{fill});
  if (obs_ != nullptr) {
    obs_->on_memory_stall(p, a, Observer::Stall::Store, now, fill, lclass);
  }
  AccessResult r{AccessResult::Kind::WriteMiss, lat, fill, lclass};
  r.contention = port_wait;
  return r;
}

}  // namespace csim
