#include "src/mem/coherence.hpp"

#include "src/core/error.hpp"
#include "src/mem/audit_util.hpp"
#include "src/obs/observer.hpp"

namespace csim {

CoherenceController::CoherenceController(const MachineConfig& cfg,
                                         const AddressSpace& as)
    : cfg_(cfg), homes_(as, cfg) {
  const unsigned nc = cfg.num_clusters();
  caches_.reserve(nc);
  for (unsigned c = 0; c < nc; ++c) {
    caches_.push_back(std::make_unique<CacheStorage>(
        cfg.cache.infinite() ? 0 : cfg.cluster_cache_lines(),
        cfg.cache.associativity, cfg.cache.line_bytes));
  }
  mshrs_.resize(nc);
  counters_.resize(nc);
  // Size the directory and cold-line set to the application's allocated
  // footprint so steady-state operation never rehashes.
  const std::size_t lines =
      static_cast<std::size_t>(as.bytes_allocated() / cfg.cache.line_bytes);
  dir_.reserve(lines);
  touched_lines_.reserve(lines);
  if (cfg.cache.infinite()) {
    for (auto& c : caches_) c->reserve(lines);
  }
}

MissCounters CoherenceController::totals() const {
  MissCounters t{};
  for (const auto& c : counters_) t += c;
  return t;
}

void CoherenceController::audit() const {
  using audit_util::dir_state_name;
  using audit_util::violation;
  const unsigned nc = cfg_.num_clusters();

  // Occupancy never exceeds capacity.
  for (unsigned c = 0; c < nc; ++c) {
    if (!caches_[c]->infinite() &&
        caches_[c]->size() > caches_[c]->capacity_lines()) {
      throw ProtocolError("audit: cluster " + std::to_string(c) + " cache holds " +
                          std::to_string(caches_[c]->size()) + " lines, capacity " +
                          std::to_string(caches_[c]->capacity_lines()));
    }
  }

  // Directory entries agree with cluster cache contents and states.
  for (const auto& [line, e] : dir_.entries()) {
    if (nc < 64 && (e.sharers >> nc) != 0) {
      violation(line, "sharer bit set beyond cluster count");
    }
    switch (e.state) {
      case DirState::NotCached:
        if (e.sharers != 0) violation(line, "NOT_CACHED but sharer bits set");
        break;
      case DirState::Shared:
        if (e.sharers == 0) violation(line, "SHARED with empty sharer vector");
        break;
      case DirState::Exclusive:
        if (e.count() != 1) {
          violation(line, "EXCLUSIVE with " + std::to_string(e.count()) +
                              " sharers (want exactly 1)");
        }
        break;
    }
    for (unsigned c = 0; c < nc; ++c) {
      const auto st = caches_[c]->lookup(line);
      if (e.has(c) != st.has_value()) {
        violation(line, std::string("directory ") + dir_state_name(e.state) +
                            (e.has(c) ? " lists" : " omits") + " cluster " +
                            std::to_string(c) + " but the line is " +
                            (st ? "cached" : "not cached") + " there");
      }
      if (st && e.state == DirState::Exclusive && *st != LineState::Exclusive) {
        violation(line, "directory EXCLUSIVE in cluster " + std::to_string(c) +
                            " but cached SHARED");
      }
      if (st && e.state == DirState::Shared && *st != LineState::Shared) {
        violation(line, "directory SHARED but cluster " + std::to_string(c) +
                            " caches it EXCLUSIVE");
      }
    }
  }

  // Every cached line is tracked by the directory (catches dropped entries).
  for (unsigned c = 0; c < nc; ++c) {
    for (Addr line : caches_[c]->resident_lines()) {
      if (!dir_.peek(line).has(c)) {
        violation(line, "cached in cluster " + std::to_string(c) +
                            " but absent from its directory sharer vector");
      }
    }
    // An in-flight fill implies the line was allocated in this cluster.
    for (const auto& [line, m] : mshrs_[c].entries()) {
      if (!caches_[c]->lookup(line)) {
        violation(line, "MSHR entry in cluster " + std::to_string(c) +
                            " for a line not resident in its cache");
      }
    }
  }
}

void CoherenceController::install(ClusterId c, Addr line, LineState st) {
  auto victim = caches_[c]->insert(line, st);
  if (victim) {
    ++counters_[c].evictions;
    dir_.replacement_hint(victim->line, c);
    // A pending fill whose line was replaced before use is simply dropped;
    // merged readers already captured their completion times.
    mshrs_[c].release(victim->line);
  }
}

LatencyClass CoherenceController::classify(ClusterId requester, Addr line,
                                           const DirEntry& e) const {
  // homes_.home_of is non-const (first-touch assignment), so resolve the
  // home via the mutable map.
  auto& self = const_cast<CoherenceController&>(*this);
  return classify_miss(e, requester, self.homes_.home_of(line));
}

void CoherenceController::invalidate_others(Addr line, ClusterId keep,
                                            Cycles now) {
  // find(): this path only mutates existing state — an untracked line has no
  // copies to invalidate, and entry() would grow the directory with
  // NOT_CACHED garbage. Callers may hold a reference to this entry; no
  // insertion or erasure happens here, so it stays valid.
  DirEntry* pe = dir_.find(line);
  if (pe == nullptr) return;
  DirEntry& e = *pe;
  std::uint64_t rest = e.sharers & ~(std::uint64_t{1} << keep);
  unsigned killed = 0;
  while (rest) {
    const ClusterId x = static_cast<ClusterId>(__builtin_ctzll(rest));
    rest &= rest - 1;
    if (caches_[x]->erase(line)) {
      ++counters_[x].invalidations;
      ++killed;
      // Kill any in-flight fill: the data will arrive but must not be used
      // by accesses issued after this point.
      mshrs_[x].release(line);
    }
    e.remove(x);
  }
  if (e.sharers == 0) e.state = DirState::NotCached;
  if (obs_ != nullptr && killed != 0) obs_->on_invalidation(line, killed, now);
}

AccessResult CoherenceController::handle_read_miss(ClusterId c, Addr line,
                                                   Cycles now) {
  DirEntry& e = dir_.entry(line);
  const LatencyClass lclass = classify(c, line, e);
  const Cycles lat = cfg_.latency.of(lclass);

  if (e.state == DirState::Exclusive) {
    // Downgrade the owner's copy: it keeps a SHARED copy, data goes home.
    caches_[e.owner()]->set_state(line, LineState::Shared);
  }
  e.add(c);
  e.state = DirState::Shared;

  MissCounters& ctr = counters_[c];
  ++ctr.read_misses;
  ++ctr.by_class[static_cast<unsigned>(lclass)];
  if (touched_lines_.insert(line)) ++ctr.cold_misses;

  install(c, line, LineState::Shared);
  mshrs_[c].allocate(line, MshrEntry{now + lat});
  return AccessResult{AccessResult::Kind::ReadMiss, lat, now + lat, lclass};
}

AccessResult CoherenceController::read(ProcId p, Addr a, Cycles now) {
  ++epoch_;
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  ++ctr.reads;

  if (auto st = caches_[c]->lookup(line)) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time > now) {
        ++ctr.merges;
        return AccessResult{AccessResult::Kind::Merge, 0, m->fill_time,
                            LatencyClass::LocalClean};
      }
      mshrs_[c].release(line);  // fill has arrived
    }
    caches_[c]->touch(line);
    ++ctr.read_hits;
    AccessResult r{AccessResult::Kind::Hit};
    // No pending fill remains (a live one returned Merge above), so a repeat
    // access while the epoch holds is a plain hit: writes too, if EXCLUSIVE.
    r.hint = *st == LineState::Exclusive ? MruHint::ReadWrite
                                         : MruHint::ReadOnly;
    return r;
  }
  mshrs_[c].release(line);  // drop any stale entry for a departed line
  return handle_read_miss(c, line, now);
}

AccessResult CoherenceController::write(ProcId p, Addr a, Cycles now) {
  ++epoch_;
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  ++ctr.writes;

  if (auto st = caches_[c]->lookup(line)) {
    bool pending = false;
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time <= now) {
        mshrs_[c].release(line);
      } else {
        pending = true;  // a read while this fill is in flight must Merge
      }
    }
    caches_[c]->touch(line);
    if (*st == LineState::Exclusive) {
      // Store buffered; a store to our own in-flight exclusive fill merges.
      ++ctr.write_hits;
      AccessResult r{AccessResult::Kind::Hit};
      r.hint = pending ? MruHint::None : MruHint::ReadWrite;
      return r;
    }
    // UPGRADE: write found the line SHARED. Ownership moves instantly; the
    // latency is fully hidden by the store buffer.
    invalidate_others(line, c, now);
    DirEntry& e = dir_.entry(line);
    e.sharers = 0;
    e.add(c);
    e.state = DirState::Exclusive;
    caches_[c]->set_state(line, LineState::Exclusive);
    ++ctr.upgrade_misses;
    return AccessResult{AccessResult::Kind::UpgradeMiss};
  }
  mshrs_[c].release(line);  // drop any stale entry for a departed line

  // WRITE miss: fetch the line EXCLUSIVE; latency hidden, fill in flight.
  DirEntry& e = dir_.entry(line);
  const LatencyClass lclass = classify(c, line, e);
  const Cycles lat = cfg_.latency.of(lclass);
  invalidate_others(line, c, now);
  e.sharers = 0;
  e.add(c);
  e.state = DirState::Exclusive;
  ++ctr.write_misses;
  ++ctr.by_class[static_cast<unsigned>(lclass)];
  if (touched_lines_.insert(line)) ++ctr.cold_misses;
  install(c, line, LineState::Exclusive);
  mshrs_[c].allocate(line, MshrEntry{now + lat});
  if (obs_ != nullptr) {
    obs_->on_memory_stall(p, a, Observer::Stall::Store, now, now + lat, lclass);
  }
  return AccessResult{AccessResult::Kind::WriteMiss, lat, now + lat, lclass};
}

}  // namespace csim
