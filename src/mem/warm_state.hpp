// Warm-state checkpoints (.csc): the memory-system state at a sampled run's
// warmup boundary, serialized so later runs sharing the same
// warm_config_digest (obs/manifest.hpp) skip the warmup by fast-forward
// replay + state install instead of re-warming.
//
// One file per warm digest: `<dir>/<16-hex digest>.csc`, written atomically
// (temp + rename), framed exactly like the sweep journal — "CSCK" magic,
// version byte, payload length, FNV-1a payload checksum — and decoded by a
// hardened loader: any corruption shape (truncated header or record, bad
// magic, checksum mismatch, version skew) degrades into a warning and a
// fresh in-process warmup, never a wrong answer.
//
// Contents are byte-deterministic: hash-map state (directory, attraction
// memory, home map, touched-line set) is sorted by address before encoding,
// and cache lines are dumped in set order, LRU to MRU within each set, so
// re-inserting in file order rebuilds the exact replacement order. MSHR
// tables, hit-filter entries, and contention queues are deliberately
// omitted: at the warmup boundary MSHRs are dropped by the functional-mode
// toggle, hit filters are a digest-neutral fast path (pinned by
// hit_filter_test), and contention queues are untouched in functional mode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/stats.hpp"
#include "src/core/types.hpp"

namespace csim {

struct WarmCacheLine {
  Addr line = 0;
  std::uint8_t state = 0;  ///< LineState
  bool operator==(const WarmCacheLine&) const noexcept = default;
};

struct WarmDirLine {
  Addr line = 0;
  std::uint8_t state = 0;  ///< DirState
  std::uint64_t sharers = 0;
  bool operator==(const WarmDirLine&) const noexcept = default;
};

struct WarmAttractionLine {
  Addr line = 0;
  std::uint64_t proc_copies = 0;
  std::uint8_t cluster_exclusive = 0;
  bool operator==(const WarmAttractionLine&) const noexcept = default;
};

/// Organization-agnostic warm-state container. `caches` holds one entry per
/// cache unit: per cluster (shared-cache organization) or per processor
/// (shared-memory organization); `attraction` is shared-memory only.
struct WarmState {
  std::uint64_t warm_digest = 0;
  std::string app_name;
  std::uint8_t scale = 0;
  std::uint32_t num_procs = 0;
  std::uint32_t procs_per_cluster = 0;
  std::uint8_t cluster_style = 0;
  std::uint64_t warmup_refs = 0;
  /// Per-processor local clocks at the boundary: a restore verifies the
  /// fast-forward replay reproduced them exactly before trusting the state.
  std::vector<std::uint64_t> proc_now;
  std::vector<MissCounters> counters;  ///< per cluster
  std::vector<Addr> touched_lines;     ///< cold-miss set, sorted
  std::uint64_t home_rr_next = 0;
  std::vector<std::pair<Addr, std::uint32_t>> homes;  ///< page -> home, sorted
  std::vector<WarmDirLine> directory;                 ///< sorted by line
  std::vector<std::vector<WarmCacheLine>> caches;     ///< LRU -> MRU per set
  std::vector<std::vector<WarmAttractionLine>> attraction;  ///< per cluster
};

/// Frames the state as one "CSCK" record (magic + version + length + FNV-1a
/// + payload).
std::string encode_warm_state(const WarmState& ws);

struct WarmLoad {
  std::optional<WarmState> state;
  std::vector<std::string> warnings;
};

/// Hardened decode; `origin` names the source in warnings. A damaged record
/// yields an empty `state` plus a warning, never a throw.
WarmLoad decode_warm_state(std::string_view bytes, const std::string& origin);

/// `<dir>/<16-hex digest>.csc`.
std::string warm_state_path(const std::string& dir, std::uint64_t digest);

/// Atomically writes `<dir>/<ws.warm_digest>.csc`, creating `dir` if needed.
void save_warm_state(const std::string& dir, const WarmState& ws);

/// Loads the checkpoint for `digest`. A missing file is not an error (empty
/// state, no warning); a damaged or mismatched one carries a warning.
/// Repeat loads of an unchanged file (same size + mtime) are served from an
/// in-process cache of decoded states — sweeps resume many rows from one
/// checkpoint, and per-row re-decoding would rival the replay itself.
WarmLoad load_warm_state(const std::string& dir, std::uint64_t digest);

}  // namespace csim
