#include "src/mem/directory.hpp"

namespace csim {

void Directory::replacement_hint(Addr line, ClusterId c) {
  DirEntry* e = map_.find(line);
  if (e == nullptr) return;
  e->remove(c);
  if (e->sharers == 0 || e->state == DirState::Exclusive) {
    // Last copy gone (or the owner evicted — writeback; nobody else can have
    // held a copy): the line is NOT_CACHED, which is what peek() reports for
    // absent lines, so drop the entry entirely.
    map_.erase(line);
  }
}

std::vector<Addr> Directory::lines_in_state(DirState s) const {
  std::vector<Addr> out;
  for (const auto& [line, e] : map_) {
    if (e.state == s) out.push_back(line);
  }
  return out;
}

LatencyClass classify_miss(const DirEntry& e, ClusterId requester,
                           ClusterId home) noexcept {
  const bool dirty_elsewhere =
      e.state == DirState::Exclusive && e.owner() != requester;
  if (home == requester) {
    return dirty_elsewhere ? LatencyClass::LocalDirtyRemote
                           : LatencyClass::LocalClean;
  }
  if (dirty_elsewhere && e.owner() != home) {
    return LatencyClass::RemoteDirtyThird;  // three network hops
  }
  return LatencyClass::RemoteClean;  // home satisfies in two hops
}

}  // namespace csim
