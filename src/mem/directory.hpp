// Full-bit-vector directory with replacement hints.
//
// The directory tracks, per cache line, which *clusters* hold copies. States
// mirror the paper: NOT_CACHED, SHARED (one or more cluster copies, clean),
// EXCLUSIVE (exactly one cluster owns the line, potentially dirty).
// Replacement hints keep the sharer vector exact: a cluster evicting a line
// is removed immediately.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

enum class DirState : std::uint8_t { NotCached, Shared, Exclusive };

struct DirEntry {
  DirState state = DirState::NotCached;
  std::uint64_t sharers = 0;  ///< bit per cluster (<= 64 clusters)

  [[nodiscard]] bool has(ClusterId c) const noexcept {
    return (sharers >> c) & 1u;
  }
  void add(ClusterId c) noexcept { sharers |= (std::uint64_t{1} << c); }
  void remove(ClusterId c) noexcept { sharers &= ~(std::uint64_t{1} << c); }
  [[nodiscard]] unsigned count() const noexcept {
    return static_cast<unsigned>(__builtin_popcountll(sharers));
  }
  /// Owner cluster; meaningful only in EXCLUSIVE state.
  [[nodiscard]] ClusterId owner() const noexcept {
    return static_cast<ClusterId>(__builtin_ctzll(sharers));
  }
};

class Directory {
 public:
  /// Entry for `line`; creates a NOT_CACHED entry on first touch.
  DirEntry& entry(Addr line) { return map_[line]; }

  /// Read-only view; returns NOT_CACHED default for untracked lines.
  [[nodiscard]] DirEntry peek(Addr line) const {
    auto it = map_.find(line);
    return it == map_.end() ? DirEntry{} : it->second;
  }

  /// Replacement hint: cluster `c` evicted `line`. Transitions to NOT_CACHED
  /// when the last copy disappears (EXCLUSIVE eviction = writeback home).
  void replacement_hint(Addr line, ClusterId c);

  [[nodiscard]] std::size_t tracked_lines() const noexcept { return map_.size(); }

  /// All tracked entries (auditing / diagnostics). Iteration order
  /// unspecified.
  [[nodiscard]] const std::unordered_map<Addr, DirEntry>& entries() const noexcept {
    return map_;
  }

  /// Lines currently in the given state (testing / diagnostics).
  [[nodiscard]] std::vector<Addr> lines_in_state(DirState s) const;

 private:
  std::unordered_map<Addr, DirEntry> map_;
};

/// Table 1 latency classification of a miss by requester/home/ownership.
[[nodiscard]] LatencyClass classify_miss(const DirEntry& e, ClusterId requester,
                                         ClusterId home) noexcept;

}  // namespace csim
