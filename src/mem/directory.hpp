// Full-bit-vector directory with replacement hints.
//
// The directory tracks, per cache line, which *clusters* hold copies. States
// mirror the paper: NOT_CACHED, SHARED (one or more cluster copies, clean),
// EXCLUSIVE (exactly one cluster owns the line, potentially dirty).
// Replacement hints keep the sharer vector exact: a cluster evicting a line
// is removed immediately, and an entry whose last copy disappears is erased
// so tracked_lines() reflects only lines actually cached somewhere.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/flat_map.hpp"
#include "src/core/types.hpp"

namespace csim {

enum class DirState : std::uint8_t { NotCached, Shared, Exclusive };

struct DirEntry {
  DirState state = DirState::NotCached;
  std::uint64_t sharers = 0;  ///< bit per cluster (<= 64 clusters)

  [[nodiscard]] bool has(ClusterId c) const noexcept {
    return (sharers >> c) & 1u;
  }
  void add(ClusterId c) noexcept { sharers |= (std::uint64_t{1} << c); }
  void remove(ClusterId c) noexcept { sharers &= ~(std::uint64_t{1} << c); }
  [[nodiscard]] unsigned count() const noexcept {
    return static_cast<unsigned>(__builtin_popcountll(sharers));
  }
  /// Owner cluster; meaningful only in EXCLUSIVE state.
  [[nodiscard]] ClusterId owner() const noexcept {
    return static_cast<ClusterId>(__builtin_ctzll(sharers));
  }
};

class Directory {
 public:
  /// Entry for `line`; creates a NOT_CACHED entry on first touch. May rehash:
  /// invalidates pointers/references from earlier entry()/find() calls.
  DirEntry& entry(Addr line) { return map_[line]; }

  /// Entry for `line` if tracked, else nullptr. Never inserts — use on paths
  /// that only mutate existing state (invalidations, downgrades) so misses
  /// don't grow the table with NOT_CACHED garbage.
  [[nodiscard]] DirEntry* find(Addr line) { return map_.find(line); }

  /// Read-only view; returns NOT_CACHED default for untracked lines.
  [[nodiscard]] DirEntry peek(Addr line) const {
    const DirEntry* e = map_.find(line);
    return e == nullptr ? DirEntry{} : *e;
  }

  /// Pre-sizes the table for an expected number of distinct lines.
  void reserve(std::size_t lines) { map_.reserve(lines); }

  /// Replacement hint: cluster `c` evicted `line`. Erases the entry when the
  /// last copy disappears (EXCLUSIVE eviction = writeback home). Erasure is
  /// tombstone-based: references to *other* entries stay valid.
  void replacement_hint(Addr line, ClusterId c);

  [[nodiscard]] std::size_t tracked_lines() const noexcept { return map_.size(); }

  /// All tracked entries (auditing / diagnostics). Iteration order
  /// unspecified.
  [[nodiscard]] const FlatMap<DirEntry>& entries() const noexcept {
    return map_;
  }

  /// Lines currently in the given state (testing / diagnostics).
  [[nodiscard]] std::vector<Addr> lines_in_state(DirState s) const;

 private:
  FlatMap<DirEntry> map_;
};

/// Table 1 latency classification of a miss by requester/home/ownership.
[[nodiscard]] LatencyClass classify_miss(const DirEntry& e, ClusterId requester,
                                         ClusterId home) noexcept;

}  // namespace csim
