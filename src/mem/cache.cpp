#include "src/mem/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace csim {

CacheStorage::CacheStorage(std::size_t capacity_lines, unsigned associativity,
                           unsigned line_bytes)
    : capacity_(capacity_lines), ways_(associativity) {
  line_shift_ = 0;
  while ((1u << line_shift_) < line_bytes) ++line_shift_;
  if (capacity_ == 0) {
    num_sets_ = 0;  // infinite: no sets at all
  } else if (ways_ == 0) {
    num_sets_ = 1;  // fully associative
    sets_.resize(1);
  } else {
    if (capacity_ % ways_ != 0) {
      throw std::invalid_argument("capacity not a multiple of associativity");
    }
    num_sets_ = capacity_ / ways_;
    sets_.resize(num_sets_);
  }
  // A bounded cache can never hold more than capacity_ lines: size the line
  // table once so steady-state operation never rehashes. (Extra headroom to
  // make tombstone-reclaim rehashes rarer was tried and measured slower —
  // the larger table costs more in probe locality than the rehashes do.)
  if (capacity_ != 0) map_.reserve(capacity_);
}

unsigned CacheStorage::set_index(Addr line) const noexcept {
  if (num_sets_ <= 1) return 0;
  return static_cast<unsigned>((line >> line_shift_) % num_sets_);
}

std::optional<LineState> CacheStorage::lookup(Addr line) const {
  const MapEntry* e = map_.find(line);
  if (e == nullptr) return std::nullopt;
  return e->state;
}

void CacheStorage::touch(Addr line) {
  if (capacity_ == 0) return;
  MapEntry* e = map_.find(line);
  if (e == nullptr) return;
  auto& lru = sets_[set_index(line)];
  lru.splice(lru.begin(), lru, e->it);
}

std::optional<LineState> CacheStorage::access(Addr line) {
  MapEntry* e = map_.find(line);
  if (e == nullptr) return std::nullopt;
  if (capacity_ != 0) {
    auto& lru = sets_[set_index(line)];
    lru.splice(lru.begin(), lru, e->it);
  }
  return e->state;
}

std::optional<Evicted> CacheStorage::insert(Addr line, LineState st) {
  if (capacity_ == 0) {
    auto [e, fresh] = map_.try_emplace(line);
    if (!fresh) throw std::logic_error("CacheStorage::insert of resident line");
    e->state = st;
    return std::nullopt;
  }
  if (map_.contains(line)) {
    throw std::logic_error("CacheStorage::insert of resident line");
  }
  auto& lru = sets_[set_index(line)];
  std::optional<Evicted> victim;
  const std::size_t set_cap = (ways_ == 0) ? capacity_ : ways_;
  if (lru.size() >= set_cap) {
    const Node& v = lru.back();
    victim = Evicted{v.line, v.state};
    map_.erase(v.line);
    lru.pop_back();
  }
  lru.push_front(Node{line, st});
  MapEntry& e = map_[line];
  e.state = st;
  e.it = lru.begin();
  return victim;
}

bool CacheStorage::set_state(Addr line, LineState st) {
  MapEntry* e = map_.find(line);
  if (e == nullptr) return false;
  e->state = st;
  if (capacity_ != 0) e->it->state = st;
  return true;
}

std::optional<LineState> CacheStorage::erase(Addr line) {
  MapEntry* e = map_.find(line);
  if (e == nullptr) return std::nullopt;
  const LineState st = e->state;
  if (capacity_ != 0) sets_[set_index(line)].erase(e->it);
  map_.erase(line);
  return st;
}

std::vector<Addr> CacheStorage::resident_lines() const {
  std::vector<Addr> out;
  out.reserve(map_.size());
  for (const auto& [line, e] : map_) {
    (void)e;
    out.push_back(line);
  }
  return out;
}

std::vector<std::pair<Addr, LineState>> CacheStorage::dump_lru_order() const {
  std::vector<std::pair<Addr, LineState>> out;
  out.reserve(map_.size());
  if (capacity_ == 0) {
    for (const auto& [line, e] : map_) out.emplace_back(line, e.state);
    std::sort(out.begin(), out.end());
    return out;
  }
  for (const LruList& lru : sets_) {
    for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
      out.emplace_back(it->line, it->state);
    }
  }
  return out;
}

}  // namespace csim
