#include "src/mem/cache.hpp"

#include <stdexcept>

namespace csim {

CacheStorage::CacheStorage(std::size_t capacity_lines, unsigned associativity,
                           unsigned line_bytes)
    : capacity_(capacity_lines), ways_(associativity) {
  line_shift_ = 0;
  while ((1u << line_shift_) < line_bytes) ++line_shift_;
  if (capacity_ == 0) {
    num_sets_ = 0;  // infinite: no sets at all
  } else if (ways_ == 0) {
    num_sets_ = 1;  // fully associative
    sets_.resize(1);
  } else {
    if (capacity_ % ways_ != 0) {
      throw std::invalid_argument("capacity not a multiple of associativity");
    }
    num_sets_ = capacity_ / ways_;
    sets_.resize(num_sets_);
  }
}

unsigned CacheStorage::set_index(Addr line) const noexcept {
  if (num_sets_ <= 1) return 0;
  return static_cast<unsigned>((line >> line_shift_) % num_sets_);
}

std::optional<LineState> CacheStorage::lookup(Addr line) const {
  auto it = map_.find(line);
  if (it == map_.end()) return std::nullopt;
  return it->second.state;
}

void CacheStorage::touch(Addr line) {
  if (capacity_ == 0) return;
  auto it = map_.find(line);
  if (it == map_.end()) return;
  auto& lru = sets_[set_index(line)];
  lru.splice(lru.begin(), lru, it->second.it);
}

std::optional<Evicted> CacheStorage::insert(Addr line, LineState st) {
  if (map_.contains(line)) {
    throw std::logic_error("CacheStorage::insert of resident line");
  }
  if (capacity_ == 0) {
    map_.emplace(line, MapEntry{st, {}});
    return std::nullopt;
  }
  auto& lru = sets_[set_index(line)];
  std::optional<Evicted> victim;
  const std::size_t set_cap = (ways_ == 0) ? capacity_ : ways_;
  if (lru.size() >= set_cap) {
    const Node& v = lru.back();
    victim = Evicted{v.line, v.state};
    map_.erase(v.line);
    lru.pop_back();
  }
  lru.push_front(Node{line, st});
  map_.emplace(line, MapEntry{st, lru.begin()});
  return victim;
}

bool CacheStorage::set_state(Addr line, LineState st) {
  auto it = map_.find(line);
  if (it == map_.end()) return false;
  it->second.state = st;
  if (capacity_ != 0) it->second.it->state = st;
  return true;
}

std::optional<LineState> CacheStorage::erase(Addr line) {
  auto it = map_.find(line);
  if (it == map_.end()) return std::nullopt;
  const LineState st = it->second.state;
  if (capacity_ != 0) sets_[set_index(line)].erase(it->second.it);
  map_.erase(it);
  return st;
}

std::vector<Addr> CacheStorage::resident_lines() const {
  std::vector<Addr> out;
  out.reserve(map_.size());
  for (const auto& [line, _] : map_) out.push_back(line);
  return out;
}

}  // namespace csim
