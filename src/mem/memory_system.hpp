// MemorySystem: the interface between processors and a memory-hierarchy
// organization.
//
// The paper analyses two clustered organizations (Section 2):
//   - *shared cache* clusters: processors share one cache, backed by the
//     directory-coherent network (CoherenceController);
//   - *shared main memory* clusters: per-processor caches on a snoopy bus
//     over a cluster-local COMA-style attraction memory
//     (ClusteredMemorySystem).
// Both present the same access interface to the processor model.
#pragma once

#include <cstdint>
#include <optional>

#include "src/core/stats.hpp"
#include "src/core/types.hpp"

namespace csim {

class CacheStorage;
class Observer;
struct WarmState;

/// Repeat-access eligibility of a Hit, used by the processor's
/// generation-tagged hit filter (docs/PERFORMANCE.md). The memory system
/// promises that, as long as the hinted cluster's generation counter is
/// unchanged, another access to the same line by the same processor would be
/// a plain Hit with exactly the same counter updates — so the processor may
/// short-circuit it, provided it also performs the LRU touch the slow path
/// would have (touch_cache()).
enum class MruHint : std::uint8_t {
  None,       ///< not eligible (miss, merge, pending fill, …)
  ReadOnly,   ///< repeat reads are plain hits (line SHARED)
  ReadWrite,  ///< repeat reads and writes are plain hits (line EXCLUSIVE)
};

/// Outcome of one access, consumed by the processor model for time
/// accounting.
struct AccessResult {
  enum class Kind : std::uint8_t {
    Hit,          ///< satisfied at the processor's first-level (1 cycle)
    NearHit,      ///< satisfied within the cluster (snoop / cluster memory);
                  ///< stalls `latency` cycles but is not a global miss
    Merge,        ///< read joined an in-flight fill; ready_at = fill time
    ReadMiss,     ///< processor stalls `latency` cycles (Table 1)
    WriteMiss,    ///< hidden; fill in flight
    UpgradeMiss,  ///< hidden; ownership transferred instantly
  };
  Kind kind = Kind::Hit;
  Cycles latency = 0;   ///< stall (ReadMiss/NearHit) or fill (WriteMiss) time
  Cycles ready_at = 0;  ///< absolute fill time (Merge/ReadMiss/WriteMiss)
  LatencyClass lclass = LatencyClass::LocalClean;
  MruHint hint = MruHint::None;  ///< set only by opted-in memory systems
  /// Processor-visible queueing delay (bank / directory / NIC waits) under
  /// the contention model; charged to TimeBuckets::contention. Always 0 when
  /// ContentionSpec::enabled is false.
  Cycles contention = 0;
};

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Processor `p` reads / writes address `a` at time `now`.
  virtual AccessResult read(ProcId p, Addr a, Cycles now) = 0;
  virtual AccessResult write(ProcId p, Addr a, Cycles now) = 0;

  // --- Cluster-parallel execution support (ParallelSpec) -------------------

  /// Cluster-local attempt at a read/write, used inside a parallel window
  /// where only `p`'s own cluster state may be touched. Returns the access
  /// result when the operation completes entirely within the cluster
  /// (hit, merge, snoop / cluster-memory transfer, exclusive upgrade of an
  /// already cluster-exclusive line), or nullopt when it is globally
  /// visible and must be deferred to the window boundary, where the
  /// coordinator re-issues the full read()/write().
  ///
  /// Contract for the nullopt path: no state anywhere may change in a way
  /// the boundary re-issue would double-count — in particular the
  /// reads/writes counters are NOT bumped (the full call does that).
  /// Cluster-local cleanups that the full call would also perform (stale
  /// MSHR release, LRU touches) are allowed. The defaults defer everything,
  /// which is correct (if slow) for any organization.
  virtual std::optional<AccessResult> local_read(ProcId p, Addr a,
                                                 Cycles now) {
    (void)p;
    (void)a;
    (void)now;
    return std::nullopt;
  }
  virtual std::optional<AccessResult> local_write(ProcId p, Addr a,
                                                  Cycles now) {
    (void)p;
    (void)a;
    (void)now;
    return std::nullopt;
  }

  [[nodiscard]] virtual const MissCounters& cluster_counters(
      ClusterId c) const = 0;
  [[nodiscard]] virtual MissCounters totals() const = 0;

  /// Coherence invariant audit: cross-checks directory state against cache
  /// state and throws ProtocolError (naming the line and the disagreeing
  /// states) on any violation. The Simulator runs this at the end of every
  /// run and, when MachineSpec::audit_interval is set, every N events.
  /// Default is a no-op for memory systems with no coherence state to check
  /// (profilers, recorders). Invariants: docs/ROBUSTNESS.md.
  virtual void audit() const {}

  // --- Processor hit-filter fast-path support (docs/PERFORMANCE.md) --------

  /// Address of cluster `c`'s hit-filter generation counter, stable for this
  /// memory system's lifetime, or nullptr (the default) when the filter must
  /// stay disabled for that cluster. A participating memory system bumps the
  /// counter on every event that could invalidate a processor's cached hint
  /// for a line of that cluster — invalidations, evictions/replacements,
  /// downgrades — and, when the contention model is on with bounded caches
  /// (where a slow-path hit also occupies the bank/bus port), every slow-path
  /// access the cluster itself performs. Unrelated clusters' accesses leave
  /// it alone, so hints survive across event-queue slices in interleaved
  /// runs.
  [[nodiscard]] virtual const std::uint64_t* generation_addr(
      ClusterId) const noexcept {
    return nullptr;
  }

  /// Cache the processor must LRU-touch on each filtered hit for `p`'s
  /// accesses, or nullptr (the default) when no touch is needed. Bounded LRU
  /// caches need the touch — a skipped one would be observable in eviction
  /// order — so without it the memory system must instead kill hints on every
  /// slow-path access of the cluster (see generation_addr). Infinite caches
  /// have no replacement order to maintain and return nullptr.
  [[nodiscard]] virtual CacheStorage* touch_cache(ProcId) noexcept {
    return nullptr;
  }

  /// Counters the processor fast path bumps directly for short-circuited
  /// hits. nullptr (the default) disables the fast path entirely — memory
  /// systems that must observe every access (working-set profilers, trace
  /// recorders) simply don't override this.
  [[nodiscard]] virtual MissCounters* hot_counters(ClusterId) noexcept {
    return nullptr;
  }

  // --- Interval sampling support (SamplingSpec; src/core/sampling.hpp) -----

  /// Functional-warming mode: accesses still update caches, directory /
  /// snoop state, and miss counters, but skip everything that only affects
  /// timing — MSHR allocation (fills complete instantly) and the queued
  /// contention model. Toggling the mode (either direction) drops all MSHR
  /// entries, so the state at a regime boundary is canonical: identical
  /// whether it was warmed in-process or restored from a checkpoint (which
  /// never stores MSHRs). Default is a no-op for timing-free systems.
  virtual void set_functional(bool on) { (void)on; }

  /// Serializes the warm state (caches, directory, attraction memory, home
  /// map, touched-line set, counters) into `out` for checkpointing, in a
  /// byte-deterministic order. Returns false (the default) for memory
  /// systems that don't support warm-state checkpoints.
  virtual bool capture_warm_state(WarmState& out) const {
    (void)out;
    return false;
  }

  /// Installs a captured warm state. The memory system must be freshly
  /// constructed (nothing accessed yet). Returns false when unsupported or
  /// when `ws` does not fit this organization / geometry.
  virtual bool restore_warm_state(const WarmState& ws) {
    (void)ws;
    return false;
  }

  /// Attaches an observability sink (src/obs/observer.hpp). Null (the
  /// default) disables every hook — a single branch per site.
  void set_observer(Observer* obs) noexcept { obs_ = obs; }

 protected:
  Observer* obs_ = nullptr;  ///< invalidation / store-stall hook sink
};

}  // namespace csim
