// MemorySystem: the interface between processors and a memory-hierarchy
// organization.
//
// The paper analyses two clustered organizations (Section 2):
//   - *shared cache* clusters: processors share one cache, backed by the
//     directory-coherent network (CoherenceController);
//   - *shared main memory* clusters: per-processor caches on a snoopy bus
//     over a cluster-local COMA-style attraction memory
//     (ClusteredMemorySystem).
// Both present the same access interface to the processor model.
#pragma once

#include <cstdint>

#include "src/core/stats.hpp"
#include "src/core/types.hpp"

namespace csim {

class Observer;

/// Repeat-access eligibility of a Hit, used by the processor's MRU line
/// filter (docs/PERFORMANCE.md). The memory system promises that, as long as
/// it has processed no further access (access_epoch() unchanged), another
/// access to the same line by the same processor would be a plain Hit with
/// exactly the same counter updates — so the processor may short-circuit it.
enum class MruHint : std::uint8_t {
  None,       ///< not eligible (miss, merge, pending fill, …)
  ReadOnly,   ///< repeat reads are plain hits (line SHARED)
  ReadWrite,  ///< repeat reads and writes are plain hits (line EXCLUSIVE)
};

/// Outcome of one access, consumed by the processor model for time
/// accounting.
struct AccessResult {
  enum class Kind : std::uint8_t {
    Hit,          ///< satisfied at the processor's first-level (1 cycle)
    NearHit,      ///< satisfied within the cluster (snoop / cluster memory);
                  ///< stalls `latency` cycles but is not a global miss
    Merge,        ///< read joined an in-flight fill; ready_at = fill time
    ReadMiss,     ///< processor stalls `latency` cycles (Table 1)
    WriteMiss,    ///< hidden; fill in flight
    UpgradeMiss,  ///< hidden; ownership transferred instantly
  };
  Kind kind = Kind::Hit;
  Cycles latency = 0;   ///< stall (ReadMiss/NearHit) or fill (WriteMiss) time
  Cycles ready_at = 0;  ///< absolute fill time (Merge/ReadMiss/WriteMiss)
  LatencyClass lclass = LatencyClass::LocalClean;
  MruHint hint = MruHint::None;  ///< set only by opted-in memory systems
  /// Processor-visible queueing delay (bank / directory / NIC waits) under
  /// the contention model; charged to TimeBuckets::contention. Always 0 when
  /// ContentionSpec::enabled is false.
  Cycles contention = 0;
};

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Processor `p` reads / writes address `a` at time `now`.
  virtual AccessResult read(ProcId p, Addr a, Cycles now) = 0;
  virtual AccessResult write(ProcId p, Addr a, Cycles now) = 0;

  [[nodiscard]] virtual const MissCounters& cluster_counters(
      ClusterId c) const = 0;
  [[nodiscard]] virtual MissCounters totals() const = 0;

  /// Coherence invariant audit: cross-checks directory state against cache
  /// state and throws ProtocolError (naming the line and the disagreeing
  /// states) on any violation. The Simulator runs this at the end of every
  /// run and, when MachineSpec::audit_interval is set, every N events.
  /// Default is a no-op for memory systems with no coherence state to check
  /// (profilers, recorders). Invariants: docs/ROBUSTNESS.md.
  virtual void audit() const {}

  // --- Processor MRU fast-path support (docs/PERFORMANCE.md) ---------------

  /// Monotone counter bumped by every read()/write() a participating memory
  /// system processes. A processor's cached MruHint is valid only while this
  /// value is unchanged since the access that produced it: any intervening
  /// access anywhere in the machine may have invalidated, evicted, downgraded
  /// or reordered (LRU) the hinted line, so the hint is dropped.
  [[nodiscard]] std::uint64_t access_epoch() const noexcept { return epoch_; }

  /// Counters the processor fast path bumps directly for short-circuited
  /// hits. nullptr (the default) disables the fast path entirely — memory
  /// systems that must observe every access (working-set profilers, trace
  /// recorders) simply don't override this.
  [[nodiscard]] virtual MissCounters* hot_counters(ClusterId) noexcept {
    return nullptr;
  }

  /// Attaches an observability sink (src/obs/observer.hpp). Null (the
  /// default) disables every hook — a single branch per site.
  void set_observer(Observer* obs) noexcept { obs_ = obs; }

 protected:
  std::uint64_t epoch_ = 0;  ///< see access_epoch()
  Observer* obs_ = nullptr;  ///< invalidation / store-stall hook sink
};

}  // namespace csim
