#include "src/mem/address_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace csim {

namespace {
constexpr Addr kAllocPage = 4096;  // allocation alignment (>= any config page)
Addr round_up(Addr v, Addr align) { return (v + align - 1) & ~(align - 1); }
}  // namespace

Addr AddressSpace::alloc(std::size_t bytes, std::string_view label) {
  if (bytes == 0) throw std::invalid_argument("alloc of zero bytes");
  top_ = round_up(top_, kAllocPage);
  const Addr base = top_;
  top_ += round_up(bytes, kAllocPage);
  regions_.push_back(Region{std::string(label), base, bytes});
  return base;
}

void AddressSpace::place(Addr start, std::size_t bytes, ProcId proc) {
  if (bytes == 0) return;
  placed_.push_back(Placement{start, start + bytes, proc});
}

std::optional<Region> AddressSpace::find_region(std::string_view label) const {
  for (const auto& r : regions_) {
    if (r.label == label) return r;
  }
  return std::nullopt;
}

std::optional<ProcId> AddressSpace::placement_of_page(
    Addr page_base, unsigned page_bytes) const {
  const Addr page_end = page_base + page_bytes;
  // Later placements win, so scan back-to-front; a page counts as placed if
  // any placement overlaps it (placements are data partitions, which the
  // applications page-align where it matters).
  for (auto it = placed_.rbegin(); it != placed_.rend(); ++it) {
    if (it->base < page_end && page_base < it->end) return it->proc;
  }
  return std::nullopt;
}

std::vector<std::pair<Addr, std::uint32_t>> AddressSpace::HomeMap::snapshot()
    const {
  std::vector<std::pair<Addr, std::uint32_t>> out;
  out.reserve(homes_.size());
  for (const auto& [page, home] : homes_) out.emplace_back(page, home);
  std::sort(out.begin(), out.end());
  return out;
}

void AddressSpace::HomeMap::restore(
    const std::vector<std::pair<Addr, std::uint32_t>>& homes,
    ClusterId rr_next) {
  for (const auto& [page, home] : homes) homes_[page] = home;
  rr_next_ = rr_next;
}

ClusterId AddressSpace::HomeMap::home_of(Addr a) {
  const Addr page = (a >> page_shift_) << page_shift_;
  auto [slot, fresh] = homes_.try_emplace(page);
  if (!fresh) return *slot;
  ClusterId home;
  if (auto proc = as_->placement_of_page(page, cfg_.page_bytes)) {
    home = cfg_.cluster_of(std::min<ProcId>(*proc, cfg_.num_procs - 1));
  } else {
    home = rr_next_;
    rr_next_ = (rr_next_ + 1) % cfg_.num_clusters();
  }
  *slot = home;
  return home;
}

}  // namespace csim
