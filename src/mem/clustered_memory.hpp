// ClusteredMemorySystem: the paper's *shared main memory* cluster
// organization (Section 2).
//
// Each processor has a private cache; processors of a cluster sit on a
// snoopy bus backed by an effectively infinite COMA-style attraction memory.
// Between clusters, the same invalidation-based full-bit-vector directory as
// the shared-cache organization keeps cluster copies coherent.
//
// Paper semantics implemented here:
//  - "In a clustered memory architecture, the invalidations are sent to
//    processors that have copies, but ownership is kept within the cluster.
//    Subsequent accesses by other processors within the cluster are
//    satisfied by cache to cache transfers."
//  - "In a shared main memory cluster working sets are still duplicated but
//    the parts of the working set replaced by one processor may not have
//    been replaced by other processors, providing cache to cache sharing
//    opportunities."
//  - "In clustered memory systems destructive interference does not exist,
//    since the caches are separate."
//
// A read that misses the private cache is satisfied, in order of preference:
//  (1) by a peer cache on the bus   -> NearHit, snoop_transfer latency;
//  (2) by the cluster memory        -> NearHit, cluster_memory latency;
//  (3) remotely through the directory (Table 1 latencies, MERGE on
//      outstanding cluster fills, store-buffered writes) — a real miss.
#pragma once

#include <memory>
#include <vector>

#include "src/core/flat_map.hpp"
#include "src/core/machine.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/directory.hpp"
#include "src/mem/memory_system.hpp"
#include "src/mem/mshr.hpp"

namespace csim {

class ContentionModel;

class ClusteredMemorySystem final : public MemorySystem {
 public:
  /// Primary constructor: the run's shared immutable spec (no per-class
  /// config copy; every component of a run sees the same MachineSpec).
  ClusteredMemorySystem(std::shared_ptr<const MachineSpec> spec,
                        const AddressSpace& as);

  /// Legacy convenience: wraps `cfg` in a fresh shared spec (still safe
  /// against temporary config expressions).
  ClusteredMemorySystem(const MachineSpec& cfg, const AddressSpace& as)
      : ClusteredMemorySystem(std::make_shared<const MachineSpec>(cfg), as) {}

  // Out of line: ContentionModel is only forward-declared here.
  ~ClusteredMemorySystem() override;

  AccessResult read(ProcId p, Addr a, Cycles now) override;
  AccessResult write(ProcId p, Addr a, Cycles now) override;

  /// Cluster-local window paths (ParallelSpec): private hits, merges, bus
  /// snoop / cluster-memory transfers, and writes to lines the cluster
  /// already owns exclusively complete inline; anything that must reach the
  /// directory (remote fetch, machine-wide upgrade) defers to the window
  /// boundary.
  std::optional<AccessResult> local_read(ProcId p, Addr a,
                                         Cycles now) override;
  std::optional<AccessResult> local_write(ProcId p, Addr a,
                                          Cycles now) override;

  [[nodiscard]] const MissCounters& cluster_counters(
      ClusterId c) const override {
    return counters_[c];
  }
  [[nodiscard]] MissCounters totals() const override;

  /// Opts into the processor MRU fast path (docs/PERFORMANCE.md): repeat
  /// hits short-circuited by the processor bump these counters directly.
  /// Stays enabled under the contention model: a repeat private-cache hit
  /// never reaches the cluster bus, so short-circuiting it skips no queue.
  [[nodiscard]] MissCounters* hot_counters(ClusterId c) noexcept override {
    return &counters_[c];
  }

  /// Per-cluster hit-filter generation (docs/PERFORMANCE.md): bumped whenever
  /// any private cache in the cluster loses or downgrades a line — bus
  /// invalidations, cluster purges, snoop demotions, remote-owner demotions,
  /// private-cache evictions. A hint can only go stale through one of those
  /// events (a cluster fill for a hinted line would require the line to have
  /// left its private cache first), so no per-access bump is needed; LRU
  /// exactness is the processor's job via touch_cache().
  [[nodiscard]] const std::uint64_t* generation_addr(
      ClusterId c) const noexcept override {
    return &gen_[c];
  }

  /// Bounded private caches are LRU: the processor must touch the line on
  /// every filtered hit to keep eviction order bit-identical to the slow
  /// path. Infinite caches keep no replacement order — no touch needed.
  [[nodiscard]] CacheStorage* touch_cache(ProcId p) noexcept override {
    return cfg_.cache.infinite() ? nullptr : caches_[p].get();
  }

  /// Invariant audit (directory vs. attraction memories vs. private caches
  /// vs. MSHRs); throws ProtocolError on the first violation. See
  /// docs/ROBUSTNESS.md.
  void audit() const override;

  // --- Interval sampling (src/core/sampling.hpp) -------------------------
  void set_functional(bool on) override;
  bool capture_warm_state(WarmState& out) const override;
  bool restore_warm_state(const WarmState& ws) override;

  // --- Introspection for tests -------------------------------------------
  [[nodiscard]] const CacheStorage& private_cache(ProcId p) const {
    return *caches_[p];
  }
  [[nodiscard]] const Directory& directory() const { return dir_; }
  /// Test-only mutation hook: lets failure-injection tests corrupt directory
  /// state to prove audit() catches it. Never use outside tests.
  [[nodiscard]] Directory& mutable_directory_for_test() { return dir_; }
  [[nodiscard]] bool in_attraction(ClusterId c, Addr a) const {
    return attraction_[c].contains(a & ~Addr{cfg_.cache.line_bytes - 1});
  }
  [[nodiscard]] const ContentionModel* contention_model() const {
    return contention_.get();
  }

 private:
  /// Per-cluster per-line bus-level bookkeeping: which local processors hold
  /// a copy (bit per in-cluster processor index), and whether the cluster
  /// owns the line exclusively machine-wide.
  struct ClusterLine {
    std::uint64_t proc_copies = 0;
    bool cluster_exclusive = false;
  };
  using Attraction = FlatMap<ClusterLine>;

  [[nodiscard]] Addr line_of(Addr a) const noexcept {
    return a & ~Addr{cfg_.cache.line_bytes - 1};
  }
  [[nodiscard]] unsigned local_index(ProcId p) const noexcept {
    return p % cfg_.procs_per_cluster;
  }

  /// Installs into `p`'s private cache; evicted victims fall back to the
  /// attraction memory (still within the cluster, no directory hint).
  void install_private(ProcId p, Addr line, LineState st);

  /// Removes every copy of `line` in cluster `c` (bus + attraction).
  void purge_cluster(ClusterId c, Addr line);

  /// Invalidates all other clusters' copies via the directory, reporting the
  /// round to the observer at time `now`.
  void invalidate_other_clusters(Addr line, ClusterId keep, Cycles now);

  /// Brings a line into the cluster from outside (read: SHARED, write:
  /// EXCLUSIVE); shared miss/merge/latency logic of both access kinds.
  /// `bus_wait` is the already-paid cluster-bus queueing delay.
  AccessResult fetch_remote(ProcId p, Addr line, Cycles now, bool exclusive,
                            Cycles bus_wait);

  /// Contention-model cluster-bus acquisition (0 when disabled); accounts
  /// the wait into the cluster's counters. Only accesses that leave the
  /// private cache reach the bus.
  Cycles acquire_bus(ClusterId c, Addr line, Cycles now);

  std::shared_ptr<const MachineSpec> spec_;  // the run's shared immutable spec
  const MachineSpec& cfg_;                   // = *spec_
  bool functional_ = false;  // warming regime: timing-only work skipped
  std::unique_ptr<ContentionModel> contention_;  // null unless enabled
  AddressSpace::HomeMap homes_;
  Directory dir_;                                     // cluster granularity
  std::vector<std::unique_ptr<CacheStorage>> caches_; // one per processor
  std::vector<Attraction> attraction_;                // one per cluster
  std::vector<MshrTable> mshrs_;                      // one per cluster
  std::vector<MissCounters> counters_;
  std::vector<std::uint64_t> gen_;  // per-cluster hit-filter generations
  FlatSet touched_lines_;
};

}  // namespace csim
