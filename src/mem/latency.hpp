// Table 1 latency model: cycles charged per miss class.
#pragma once

#include <string_view>

#include "src/core/types.hpp"

namespace csim {

/// Miss latencies in cycles, per the paper's Table 1.
///
/// Hit latency is configured separately (MachineSpec::hit_latency); the
/// event simulator always charges that flat hit cost, and the larger
/// shared-cache hit times of Table 1 are applied by the Section 6 analytic
/// estimator (analysis/shared_cache_cost).
struct LatencyModel {
  Cycles local_clean = 30;          ///< local home, dir SHARED / NOT_CACHED
  Cycles local_dirty_remote = 100;  ///< local home, EXCLUSIVE in remote cluster
  Cycles remote_clean = 100;        ///< remote home satisfies request
  Cycles remote_dirty_third = 150;  ///< remote home, EXCLUSIVE in third cluster
  // Shared-main-memory cluster organization (Section 2) only:
  Cycles snoop_transfer = 15;   ///< cache-to-cache transfer on the cluster bus
  Cycles cluster_memory = 30;   ///< fetch from the cluster's attraction memory

  [[nodiscard]] Cycles of(LatencyClass c) const noexcept {
    switch (c) {
      case LatencyClass::LocalClean: return local_clean;
      case LatencyClass::LocalDirtyRemote: return local_dirty_remote;
      case LatencyClass::RemoteClean: return remote_clean;
      case LatencyClass::RemoteDirtyThird: return remote_dirty_third;
    }
    return 0;  // unreachable
  }

  bool operator==(const LatencyModel&) const noexcept = default;
};

/// Human-readable name for a latency class (for reports and tests).
std::string_view to_string(LatencyClass c) noexcept;

}  // namespace csim
