// Simulated shared address space: allocation, placement, home assignment.
//
// The paper's policy: "Memory is allocated to clusters when first touched on
// a round robin basis. Some application programs explicitly place data when
// such placement improves performance. All stack references are allocated
// locally."
//
// Explicit placement is recorded per *processor* (the application does not
// know the cluster size); the home cluster is resolved through the machine
// configuration at simulation time, so one workload setup serves every
// clustering configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/flat_map.hpp"
#include "src/core/machine.hpp"
#include "src/core/types.hpp"

namespace csim {

/// A named region of the simulated address space.
struct Region {
  std::string label;
  Addr base = 0;
  std::size_t bytes = 0;
  [[nodiscard]] Addr end() const noexcept { return base + bytes; }
  [[nodiscard]] bool contains(Addr a) const noexcept {
    return a >= base && a < end();
  }
};

/// Bump allocator over a 64-bit simulated address space with page-granular
/// home tracking. No data is stored; applications keep their real data in
/// host memory and use these addresses only to drive the cache simulation.
class AddressSpace {
 public:
  AddressSpace() = default;

  /// Allocates `bytes` (rounded up to a page), aligned to a page boundary so
  /// regions never share a home page. Returns the base address.
  Addr alloc(std::size_t bytes, std::string_view label = {});

  /// Declares that pages covering [start, start+bytes) belong to `proc`
  /// (resolved to proc's cluster at simulation time). Overrides first-touch.
  void place(Addr start, std::size_t bytes, ProcId proc);

  /// Removes any explicit placement (pages revert to first-touch).
  void clear_placements() { placed_.clear(); }

  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] std::optional<Region> find_region(std::string_view label) const;

  [[nodiscard]] Addr bytes_allocated() const noexcept { return top_; }

  /// Per-simulation view that resolves homes under a specific machine
  /// configuration. Resets first-touch state.
  class HomeMap {
   public:
    /// The configuration is copied (it is small), so temporaries are safe;
    /// the AddressSpace must outlive the map.
    HomeMap(const AddressSpace& as, const MachineSpec& cfg)
        : as_(&as), cfg_(cfg), page_shift_(page_shift(cfg.page_bytes)) {
      homes_.reserve(
          static_cast<std::size_t>(as.bytes_allocated() >> page_shift_));
    }

    /// Home cluster of the page containing `a`; assigns round-robin on first
    /// touch unless the page was explicitly placed.
    ClusterId home_of(Addr a);

    /// Number of pages assigned so far (touched or placed-and-touched).
    [[nodiscard]] std::size_t pages_touched() const noexcept {
      return homes_.size();
    }

    // --- Warm-state checkpointing (src/mem/warm_state.hpp) -----------------

    /// All (page base -> home) assignments, sorted by page address.
    [[nodiscard]] std::vector<std::pair<Addr, std::uint32_t>> snapshot() const;
    [[nodiscard]] ClusterId rr_next() const noexcept { return rr_next_; }
    /// Reinstalls a snapshot into a fresh map (nothing touched yet).
    void restore(const std::vector<std::pair<Addr, std::uint32_t>>& homes,
                 ClusterId rr_next);

   private:
    static unsigned page_shift(unsigned page_bytes) noexcept {
      unsigned s = 0;
      while ((1u << s) < page_bytes) ++s;
      return s;
    }
    const AddressSpace* as_;
    MachineSpec cfg_;
    unsigned page_shift_;
    FlatMap<ClusterId> homes_;
    ClusterId rr_next_ = 0;
  };

  /// Placement lookup by page address (page number << shift). Returns the
  /// owning processor, if any.
  [[nodiscard]] std::optional<ProcId> placement_of_page(Addr page_base,
                                                        unsigned page_bytes) const;

 private:
  friend class HomeMap;
  Addr top_ = 0x1000;  // skip the null page
  std::vector<Region> regions_;
  // Placement intervals: page-aligned [base, end) -> proc. Few, scanned
  // rarely (only on first touch of a page), so a sorted vector suffices.
  struct Placement {
    Addr base;
    Addr end;
    ProcId proc;
  };
  std::vector<Placement> placed_;
};

}  // namespace csim
