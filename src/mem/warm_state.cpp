#include "src/mem/warm_state.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <unordered_map>

#include "src/core/atomic_file.hpp"

namespace csim {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'C', 'K'};
constexpr std::uint8_t kVersion = 1;
// magic(4) + version(1) + payload_len(8) + payload_fnv(8)
constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 8 + 8;
// Warm state scales with cache capacity + directory size; a multi-GB length
// is a corrupt field, not a real checkpoint.
constexpr std::uint64_t kMaxPayloadBytes = 1u << 30;

// Same FNV-1a as obs::fnv1a; duplicated locally so src/mem does not grow a
// dependency on the obs layer.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_counters(std::string& out, const MissCounters& c) {
  put_u64(out, c.reads);
  put_u64(out, c.writes);
  put_u64(out, c.read_hits);
  put_u64(out, c.write_hits);
  put_u64(out, c.read_misses);
  put_u64(out, c.write_misses);
  put_u64(out, c.upgrade_misses);
  put_u64(out, c.merges);
  put_u64(out, c.cold_misses);
  put_u64(out, c.invalidations);
  put_u64(out, c.evictions);
  put_u64(out, c.snoop_transfers);
  put_u64(out, c.cluster_memory_hits);
  put_u64(out, c.bus_invalidations);
  put_u64(out, c.bank_conflicts);
  put_u64(out, c.bank_wait_cycles);
  put_u64(out, c.dir_wait_cycles);
  put_u64(out, c.nic_wait_cycles);
  for (std::uint64_t v : c.by_class) put_u64(out, v);
}

/// Bounds-checked little-endian reader (the journal.cpp pattern).
struct Reader {
  std::string_view buf;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > buf.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint64_t u64() {
    if (pos + 8 > buf.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::string str(std::uint64_t n) {
    if (n > buf.size() - pos) {
      ok = false;
      return {};
    }
    std::string s(buf.substr(pos, n));
    pos += n;
    return s;
  }
  MissCounters counters() {
    MissCounters c;
    c.reads = u64();
    c.writes = u64();
    c.read_hits = u64();
    c.write_hits = u64();
    c.read_misses = u64();
    c.write_misses = u64();
    c.upgrade_misses = u64();
    c.merges = u64();
    c.cold_misses = u64();
    c.invalidations = u64();
    c.evictions = u64();
    c.snoop_transfers = u64();
    c.cluster_memory_hits = u64();
    c.bus_invalidations = u64();
    c.bank_conflicts = u64();
    c.bank_wait_cycles = u64();
    c.dir_wait_cycles = u64();
    c.nic_wait_cycles = u64();
    for (std::uint64_t& v : c.by_class) v = u64();
    return c;
  }
  /// Guard for a count of `per_entry`-byte records against remaining bytes.
  bool fits(std::uint64_t n, std::size_t per_entry) {
    const std::size_t remaining = buf.size() - std::min(pos, buf.size());
    if (per_entry != 0 && n > remaining / per_entry) {
      ok = false;
      return false;
    }
    return true;
  }
};

std::string encode_payload(const WarmState& ws) {
  std::string p;
  p.reserve(512 + ws.directory.size() * 17 + ws.touched_lines.size() * 8);
  put_u64(p, ws.warm_digest);
  put_u64(p, ws.app_name.size());
  p.append(ws.app_name);
  put_u8(p, ws.scale);
  put_u64(p, ws.num_procs);
  put_u64(p, ws.procs_per_cluster);
  put_u8(p, ws.cluster_style);
  put_u64(p, ws.warmup_refs);
  put_u64(p, ws.proc_now.size());
  for (std::uint64_t v : ws.proc_now) put_u64(p, v);
  put_u64(p, ws.counters.size());
  for (const MissCounters& c : ws.counters) put_counters(p, c);
  put_u64(p, ws.touched_lines.size());
  for (Addr a : ws.touched_lines) put_u64(p, a);
  put_u64(p, ws.home_rr_next);
  put_u64(p, ws.homes.size());
  for (const auto& [page, home] : ws.homes) {
    put_u64(p, page);
    put_u64(p, home);
  }
  put_u64(p, ws.directory.size());
  for (const WarmDirLine& d : ws.directory) {
    put_u64(p, d.line);
    put_u8(p, d.state);
    put_u64(p, d.sharers);
  }
  put_u64(p, ws.caches.size());
  for (const auto& cache : ws.caches) {
    put_u64(p, cache.size());
    for (const WarmCacheLine& l : cache) {
      put_u64(p, l.line);
      put_u8(p, l.state);
    }
  }
  put_u64(p, ws.attraction.size());
  for (const auto& cluster : ws.attraction) {
    put_u64(p, cluster.size());
    for (const WarmAttractionLine& l : cluster) {
      put_u64(p, l.line);
      put_u64(p, l.proc_copies);
      put_u8(p, l.cluster_exclusive);
    }
  }
  return p;
}

bool decode_payload(std::string_view payload, WarmState& ws,
                    std::string& why) {
  Reader r{payload};
  ws.warm_digest = r.u64();
  ws.app_name = r.str(r.u64());
  ws.scale = r.u8();
  ws.num_procs = static_cast<std::uint32_t>(r.u64());
  ws.procs_per_cluster = static_cast<std::uint32_t>(r.u64());
  ws.cluster_style = r.u8();
  ws.warmup_refs = r.u64();
  const std::uint64_t nproc = r.u64();
  if (!r.fits(nproc, 8)) {
    why = "proc_now count exceeds payload";
    return false;
  }
  ws.proc_now.reserve(nproc);
  for (std::uint64_t i = 0; i < nproc && r.ok; ++i) {
    ws.proc_now.push_back(r.u64());
  }
  const std::uint64_t nclust = r.u64();
  if (!r.fits(nclust, 176)) {
    why = "counter count exceeds payload";
    return false;
  }
  ws.counters.reserve(nclust);
  for (std::uint64_t i = 0; i < nclust && r.ok; ++i) {
    ws.counters.push_back(r.counters());
  }
  const std::uint64_t ntouched = r.u64();
  if (!r.fits(ntouched, 8)) {
    why = "touched-line count exceeds payload";
    return false;
  }
  ws.touched_lines.reserve(ntouched);
  for (std::uint64_t i = 0; i < ntouched && r.ok; ++i) {
    ws.touched_lines.push_back(r.u64());
  }
  ws.home_rr_next = r.u64();
  const std::uint64_t nhomes = r.u64();
  if (!r.fits(nhomes, 16)) {
    why = "home-map count exceeds payload";
    return false;
  }
  ws.homes.reserve(nhomes);
  for (std::uint64_t i = 0; i < nhomes && r.ok; ++i) {
    const Addr page = r.u64();
    ws.homes.emplace_back(page, static_cast<std::uint32_t>(r.u64()));
  }
  const std::uint64_t ndir = r.u64();
  if (!r.fits(ndir, 17)) {
    why = "directory count exceeds payload";
    return false;
  }
  ws.directory.reserve(ndir);
  for (std::uint64_t i = 0; i < ndir && r.ok; ++i) {
    WarmDirLine d;
    d.line = r.u64();
    d.state = r.u8();
    d.sharers = r.u64();
    ws.directory.push_back(d);
  }
  const std::uint64_t ncaches = r.u64();
  if (!r.fits(ncaches, 8)) {
    why = "cache count exceeds payload";
    return false;
  }
  ws.caches.reserve(ncaches);
  for (std::uint64_t i = 0; i < ncaches && r.ok; ++i) {
    const std::uint64_t nlines = r.u64();
    if (!r.fits(nlines, 9)) {
      why = "cache-line count exceeds payload";
      return false;
    }
    std::vector<WarmCacheLine> cache;
    cache.reserve(nlines);
    for (std::uint64_t j = 0; j < nlines && r.ok; ++j) {
      WarmCacheLine l;
      l.line = r.u64();
      l.state = r.u8();
      cache.push_back(l);
    }
    ws.caches.push_back(std::move(cache));
  }
  const std::uint64_t nattr = r.u64();
  if (!r.fits(nattr, 8)) {
    why = "attraction count exceeds payload";
    return false;
  }
  ws.attraction.reserve(nattr);
  for (std::uint64_t i = 0; i < nattr && r.ok; ++i) {
    const std::uint64_t nlines = r.u64();
    if (!r.fits(nlines, 17)) {
      why = "attraction-line count exceeds payload";
      return false;
    }
    std::vector<WarmAttractionLine> cluster;
    cluster.reserve(nlines);
    for (std::uint64_t j = 0; j < nlines && r.ok; ++j) {
      WarmAttractionLine l;
      l.line = r.u64();
      l.proc_copies = r.u64();
      l.cluster_exclusive = r.u8();
      cluster.push_back(l);
    }
    ws.attraction.push_back(std::move(cluster));
  }
  if (!r.ok) {
    why = "payload truncated mid-field";
    return false;
  }
  if (r.pos != payload.size()) {
    why = "trailing bytes after payload";
    return false;
  }
  return true;
}

std::string digest_hex16(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

// In-process cache of decoded checkpoints, keyed by path and validated
// against the file's size + mtime on every hit. Sweeps resume many rows
// from the same checkpoint; re-reading and re-decoding the file per row
// costs more than the whole fast-forward replay for small apps. External
// modification (a new save, a corrupted file) changes the stat signature
// and falls through to the real loader. Bounded: sweeps touch a handful of
// warm digests at a time.
struct WarmCacheSlot {
  std::uintmax_t size = 0;
  std::filesystem::file_time_type mtime;
  std::shared_ptr<const WarmState> state;
};
std::mutex g_warm_cache_mu;                              // NOLINT
std::unordered_map<std::string, WarmCacheSlot> g_warm_cache;  // NOLINT
constexpr std::size_t kWarmCacheSlots = 8;

void warm_cache_put(const std::string& path, const WarmState& ws) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return;
  const std::lock_guard<std::mutex> lock(g_warm_cache_mu);
  if (g_warm_cache.size() >= kWarmCacheSlots &&
      g_warm_cache.find(path) == g_warm_cache.end()) {
    g_warm_cache.clear();  // coarse but rare: sweeps reuse few digests
  }
  g_warm_cache[path] =
      WarmCacheSlot{size, mtime, std::make_shared<const WarmState>(ws)};
}

std::shared_ptr<const WarmState> warm_cache_get(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return nullptr;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return nullptr;
  const std::lock_guard<std::mutex> lock(g_warm_cache_mu);
  const auto it = g_warm_cache.find(path);
  if (it == g_warm_cache.end() || it->second.size != size ||
      it->second.mtime != mtime) {
    return nullptr;
  }
  return it->second.state;
}

}  // namespace

std::string encode_warm_state(const WarmState& ws) {
  const std::string payload = encode_payload(ws);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kMagic, 4);
  put_u8(out, kVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a(payload));
  out.append(payload);
  return out;
}

WarmLoad decode_warm_state(std::string_view bytes,
                           const std::string& origin) {
  WarmLoad out;
  const auto warn = [&](const std::string& what) {
    out.warnings.push_back("warm-state: " + origin + ": " + what);
  };
  if (bytes.size() < kFrameHeaderBytes) {
    warn("truncated frame header (checkpoint ignored)");
    return out;
  }
  if (bytes.compare(0, 4, kMagic, 4) != 0) {
    warn("bad magic (checkpoint ignored)");
    return out;
  }
  const std::uint8_t version = static_cast<std::uint8_t>(bytes[4]);
  Reader hdr{bytes.substr(5, 16)};
  const std::uint64_t payload_len = hdr.u64();
  const std::uint64_t payload_fnv = hdr.u64();
  if (version != kVersion) {
    warn("unsupported version " + std::to_string(version) +
         " (checkpoint ignored)");
    return out;
  }
  if (payload_len > kMaxPayloadBytes ||
      payload_len != bytes.size() - kFrameHeaderBytes) {
    warn("truncated record: declares " + std::to_string(payload_len) +
         " payload bytes, " +
         std::to_string(bytes.size() - kFrameHeaderBytes) +
         " available (checkpoint ignored)");
    return out;
  }
  const std::string_view payload = bytes.substr(kFrameHeaderBytes);
  if (fnv1a(payload) != payload_fnv) {
    warn("checksum mismatch (checkpoint ignored)");
    return out;
  }
  WarmState ws;
  std::string why;
  if (!decode_payload(payload, ws, why)) {
    warn(why + " (checkpoint ignored)");
    return out;
  }
  out.state = std::move(ws);
  return out;
}

std::string warm_state_path(const std::string& dir, std::uint64_t digest) {
  return (std::filesystem::path(dir) / (digest_hex16(digest) + ".csc"))
      .string();
}

void save_warm_state(const std::string& dir, const WarmState& ws) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("warm-state: cannot create " + dir + ": " +
                             ec.message());
  }
  const std::string path = warm_state_path(dir, ws.warm_digest);
  atomic_write_file(path, encode_warm_state(ws));
  warm_cache_put(path, ws);
}

WarmLoad load_warm_state(const std::string& dir, std::uint64_t digest) {
  WarmLoad out;
  const std::string path = warm_state_path(dir, digest);
  if (const std::shared_ptr<const WarmState> hit = warm_cache_get(path)) {
    out.state = *hit;
    return out;
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // no checkpoint yet: not an error
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  out = decode_warm_state(bytes, path);
  if (out.state && out.state->warm_digest != digest) {
    out.warnings.push_back("warm-state: " + path +
                           ": digest mismatch (checkpoint ignored)");
    out.state.reset();
  }
  if (out.state) warm_cache_put(path, *out.state);
  return out;
}

}  // namespace csim
