#include "src/mem/clustered_memory.hpp"

#include <algorithm>

#include "src/core/error.hpp"
#include "src/mem/audit_util.hpp"
#include "src/mem/contention.hpp"
#include "src/mem/warm_state.hpp"
#include "src/obs/observer.hpp"

namespace csim {

ClusteredMemorySystem::ClusteredMemorySystem(
    std::shared_ptr<const MachineSpec> spec, const AddressSpace& as)
    : spec_(std::move(spec)), cfg_(*spec_), homes_(as, cfg_) {
  if (cfg_.contention.enabled) {
    contention_ = std::make_unique<ContentionModel>(cfg_);
  }
  caches_.reserve(cfg_.num_procs);
  const std::size_t lines_per_proc =
      cfg_.cache.infinite() ? 0
                            : cfg_.cache.per_proc_bytes / cfg_.cache.line_bytes;
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    caches_.push_back(std::make_unique<CacheStorage>(
        lines_per_proc, cfg_.cache.associativity, cfg_.cache.line_bytes));
  }
  attraction_.resize(cfg_.num_clusters());
  mshrs_.resize(cfg_.num_clusters());
  counters_.resize(cfg_.num_clusters());
  gen_.resize(cfg_.num_clusters(), 0);
  // Size the directory, cold-line set, attraction memories, and (infinite)
  // private caches to the application's allocated footprint so steady-state
  // operation never rehashes.
  const std::size_t lines =
      static_cast<std::size_t>(as.bytes_allocated() / cfg_.cache.line_bytes);
  dir_.reserve(lines);
  touched_lines_.reserve(lines);
  for (auto& a : attraction_) a.reserve(lines);
  if (cfg_.cache.infinite()) {
    for (auto& c : caches_) c->reserve(lines);
  }
}

Cycles ClusteredMemorySystem::acquire_bus(ClusterId c, Addr line, Cycles now) {
  if (functional_ || !contention_) return 0;
  const Cycles wait = contention_->cluster_port(c, line, now);
  if (wait != 0) {
    ++counters_[c].bank_conflicts;
    counters_[c].bank_wait_cycles += wait;
  }
  return wait;
}

ClusteredMemorySystem::~ClusteredMemorySystem() = default;

MissCounters ClusteredMemorySystem::totals() const {
  MissCounters t{};
  for (const auto& c : counters_) t += c;
  return t;
}

void ClusteredMemorySystem::audit() const {
  using audit_util::violation;
  const unsigned nc = cfg_.num_clusters();
  const unsigned ppc = cfg_.procs_per_cluster;

  // Private cache occupancy never exceeds capacity.
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    if (!caches_[p]->infinite() &&
        caches_[p]->size() > caches_[p]->capacity_lines()) {
      throw ProtocolError("audit: proc " + std::to_string(p) + " cache holds " +
                          std::to_string(caches_[p]->size()) + " lines, capacity " +
                          std::to_string(caches_[p]->capacity_lines()));
    }
  }

  // Directory sharer bits agree with attraction-memory residency, and the
  // EXCLUSIVE owner is exactly the cluster flagged cluster_exclusive.
  for (const auto& [line, e] : dir_.entries()) {
    if (nc < 64 && (e.sharers >> nc) != 0) {
      violation(line, "sharer bit set beyond cluster count");
    }
    if (e.state == DirState::NotCached && e.sharers != 0) {
      violation(line, "NOT_CACHED but sharer bits set");
    }
    if (e.state == DirState::Shared && e.sharers == 0) {
      violation(line, "SHARED with empty sharer vector");
    }
    if (e.state == DirState::Exclusive && e.count() != 1) {
      violation(line, "EXCLUSIVE with " + std::to_string(e.count()) +
                          " sharers (want exactly 1)");
    }
    for (unsigned c = 0; c < nc; ++c) {
      const ClusterLine* cl = attraction_[c].find(line);
      const bool resident = cl != nullptr;
      if (e.has(c) != resident) {
        violation(line, std::string("directory ") +
                            (e.has(c) ? "lists" : "omits") + " cluster " +
                            std::to_string(c) + " but the line is " +
                            (resident ? "present" : "absent") +
                            " in its attraction memory");
      }
      if (resident) {
        const bool owner = e.state == DirState::Exclusive && e.owner() == c;
        if (cl->cluster_exclusive != owner) {
          violation(line, "cluster " + std::to_string(c) +
                              (cl->cluster_exclusive
                                   ? " flagged cluster_exclusive but directory disagrees"
                                   : " owns the line per directory but is not "
                                     "flagged cluster_exclusive"));
        }
      }
    }
  }

  // Bus-level copy bits agree with private cache contents; an EXCLUSIVE
  // private copy is the sole copy of a cluster_exclusive line.
  for (unsigned c = 0; c < nc; ++c) {
    const ProcId base = c * ppc;
    for (const auto& [line, cl] : attraction_[c]) {
      if (ppc < 64 && (cl.proc_copies >> ppc) != 0) {
        violation(line, "proc_copies bit set beyond cluster size");
      }
      for (unsigned li = 0; li < ppc; ++li) {
        const auto st = caches_[base + li]->lookup(line);
        const bool bit = (cl.proc_copies >> li) & 1u;
        if (bit != st.has_value()) {
          violation(line, "proc " + std::to_string(base + li) +
                              (bit ? " listed on the bus but line not in its cache"
                                   : " caches the line but is missing from "
                                     "proc_copies"));
        }
        if (st && *st == LineState::Exclusive) {
          if (!cl.cluster_exclusive) {
            violation(line, "proc " + std::to_string(base + li) +
                                " holds the line EXCLUSIVE in a non-exclusive "
                                "cluster");
          }
          if (cl.proc_copies != (std::uint64_t{1} << li)) {
            violation(line, "proc " + std::to_string(base + li) +
                                " holds the line EXCLUSIVE alongside peer "
                                "copies");
          }
        }
      }
    }
    // Private cache contents are always tracked on the bus.
    for (unsigned li = 0; li < ppc; ++li) {
      for (Addr line : caches_[base + li]->resident_lines()) {
        const ClusterLine* cl = attraction_[c].find(line);
        if (cl == nullptr || ((cl->proc_copies >> li) & 1u) == 0) {
          violation(line, "cached by proc " + std::to_string(base + li) +
                              " but untracked by its cluster's attraction "
                              "memory");
        }
      }
    }
    // An in-flight fill implies the line is resident in the cluster.
    for (const auto& [line, m] : mshrs_[c].entries()) {
      if (!attraction_[c].contains(line)) {
        violation(line, "MSHR entry in cluster " + std::to_string(c) +
                            " for a line absent from its attraction memory");
      }
    }
  }
}

void ClusteredMemorySystem::set_functional(bool on) {
  functional_ = on;
  // Either direction: pending fills are timing-only state, and the regime
  // boundary must look the same whether warmed in-process or restored from a
  // checkpoint (which stores no MSHRs) — so drop them.
  for (auto& m : mshrs_) m.clear();
}

bool ClusteredMemorySystem::capture_warm_state(WarmState& out) const {
  out.cluster_style = static_cast<std::uint8_t>(ClusterStyle::SharedMemory);
  out.num_procs = cfg_.num_procs;
  out.procs_per_cluster = cfg_.procs_per_cluster;
  out.counters = counters_;
  out.touched_lines = touched_lines_.to_vector();
  std::sort(out.touched_lines.begin(), out.touched_lines.end());
  out.home_rr_next = homes_.rr_next();
  out.homes = homes_.snapshot();
  out.directory.clear();
  out.directory.reserve(dir_.tracked_lines());
  for (const auto& [line, e] : dir_.entries()) {
    // Fully invalidated entries are behaviorally identical to absent ones.
    if (e.state == DirState::NotCached && e.sharers == 0) continue;
    out.directory.push_back(
        WarmDirLine{line, static_cast<std::uint8_t>(e.state), e.sharers});
  }
  std::sort(out.directory.begin(), out.directory.end(),
            [](const WarmDirLine& a, const WarmDirLine& b) {
              return a.line < b.line;
            });
  out.caches.clear();
  out.caches.reserve(caches_.size());
  for (const auto& c : caches_) {
    std::vector<WarmCacheLine> lines;
    const auto dumped = c->dump_lru_order();
    lines.reserve(dumped.size());
    for (const auto& [line, st] : dumped) {
      lines.push_back(WarmCacheLine{line, static_cast<std::uint8_t>(st)});
    }
    out.caches.push_back(std::move(lines));
  }
  out.attraction.clear();
  out.attraction.reserve(attraction_.size());
  for (const Attraction& a : attraction_) {
    std::vector<WarmAttractionLine> lines;
    lines.reserve(a.size());
    for (const auto& [line, cl] : a) {
      lines.push_back(WarmAttractionLine{
          line, cl.proc_copies,
          static_cast<std::uint8_t>(cl.cluster_exclusive ? 1 : 0)});
    }
    std::sort(lines.begin(), lines.end(),
              [](const WarmAttractionLine& x, const WarmAttractionLine& y) {
                return x.line < y.line;
              });
    out.attraction.push_back(std::move(lines));
  }
  return true;
}

bool ClusteredMemorySystem::restore_warm_state(const WarmState& ws) {
  const unsigned nc = cfg_.num_clusters();
  if (ws.cluster_style !=
          static_cast<std::uint8_t>(ClusterStyle::SharedMemory) ||
      ws.num_procs != cfg_.num_procs ||
      ws.procs_per_cluster != cfg_.procs_per_cluster ||
      ws.counters.size() != nc || ws.caches.size() != cfg_.num_procs ||
      ws.attraction.size() != nc) {
    return false;
  }
  counters_ = ws.counters;
  for (Addr line : ws.touched_lines) touched_lines_.insert(line);
  homes_.restore(ws.homes, static_cast<ClusterId>(ws.home_rr_next));
  for (const WarmDirLine& d : ws.directory) {
    DirEntry& e = dir_.entry(d.line);
    e.state = static_cast<DirState>(d.state);
    e.sharers = d.sharers;
  }
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    for (const WarmCacheLine& l : ws.caches[p]) {
      if (caches_[p]->insert(l.line, static_cast<LineState>(l.state))) {
        return false;  // eviction while refilling: geometry mismatch
      }
    }
  }
  for (unsigned c = 0; c < nc; ++c) {
    for (const WarmAttractionLine& l : ws.attraction[c]) {
      attraction_[c][l.line] =
          ClusterLine{l.proc_copies, l.cluster_exclusive != 0};
    }
  }
  return true;
}

void ClusteredMemorySystem::install_private(ProcId p, Addr line,
                                            LineState st) {
  auto victim = caches_[p]->insert(line, st);
  if (victim) {
    const ClusterId c = cfg_.cluster_of(p);
    ++gen_[c];  // kill hook: any hint for the victim line is dead
    ++counters_[c].evictions;
    // The victim falls back to the (infinite) attraction memory: the line
    // stays in the cluster, so no directory replacement hint is sent.
    if (ClusterLine* cl = attraction_[c].find(victim->line)) {
      cl->proc_copies &= ~(std::uint64_t{1} << local_index(p));
    }
  }
}

void ClusteredMemorySystem::purge_cluster(ClusterId c, Addr line) {
  ClusterLine* cl = attraction_[c].find(line);
  if (cl == nullptr) return;
  ++gen_[c];  // kill hook: copies in this cluster are going away
  std::uint64_t copies = cl->proc_copies;
  const ProcId base = c * cfg_.procs_per_cluster;
  while (copies) {
    const unsigned li = static_cast<unsigned>(__builtin_ctzll(copies));
    copies &= copies - 1;
    caches_[base + li]->erase(line);
    ++counters_[c].bus_invalidations;
  }
  attraction_[c].erase(line);
  mshrs_[c].release(line);
  ++counters_[c].invalidations;
}

void ClusteredMemorySystem::invalidate_other_clusters(Addr line,
                                                      ClusterId keep,
                                                      Cycles now) {
  // find(): this path only mutates existing state — an untracked line has no
  // copies to purge, and entry() would grow the directory with NOT_CACHED
  // garbage. Callers may hold a reference to this entry; no insertion or
  // erasure happens here, so it stays valid.
  DirEntry* pe = dir_.find(line);
  if (pe == nullptr) return;
  DirEntry& e = *pe;
  std::uint64_t rest = e.sharers & ~(std::uint64_t{1} << keep);
  unsigned purged = 0;
  while (rest) {
    const ClusterId x = static_cast<ClusterId>(__builtin_ctzll(rest));
    rest &= rest - 1;
    if (attraction_[x].contains(line)) ++purged;
    purge_cluster(x, line);
    e.remove(x);
  }
  if (e.sharers == 0) e.state = DirState::NotCached;
  if (obs_ != nullptr && purged != 0) obs_->on_invalidation(line, purged, now);
}

AccessResult ClusteredMemorySystem::fetch_remote(ProcId p, Addr line,
                                                 Cycles now, bool exclusive,
                                                 Cycles bus_wait) {
  const ClusterId c = cfg_.cluster_of(p);
  DirEntry& e = dir_.entry(line);
  // A directory-tracked line is cached somewhere, so an earlier miss already
  // fetched it: only directory-absent lines pay the touched-set probe.
  const bool maybe_cold = e.state == DirState::NotCached;
  const ClusterId home = homes_.home_of(line);
  const LatencyClass lclass = classify_miss(e, c, home);
  const Cycles lat = cfg_.latency.of(lclass);
  MissCounters& ctr = counters_[c];

  if (exclusive) {
    invalidate_other_clusters(line, c, now);
    e.sharers = 0;
    e.add(c);
    e.state = DirState::Exclusive;
    ++ctr.write_misses;
  } else {
    if (e.state == DirState::Exclusive) {
      // Remote owner cluster keeps a SHARED copy; demote its caches too.
      const ClusterId o = e.owner();
      if (ClusterLine* ocl = attraction_[o].find(line)) {
        ++gen_[o];  // kill hook: owner cluster's copies demoted to SHARED
        ocl->cluster_exclusive = false;
        std::uint64_t copies = ocl->proc_copies;
        const ProcId base = o * cfg_.procs_per_cluster;
        while (copies) {
          const unsigned li = static_cast<unsigned>(__builtin_ctzll(copies));
          copies &= copies - 1;
          caches_[base + li]->set_state(line, LineState::Shared);
        }
      }
    }
    e.add(c);
    e.state = DirState::Shared;
    ++ctr.read_misses;
  }
  ++ctr.by_class[static_cast<unsigned>(lclass)];
  if (maybe_cold && touched_lines_.insert(line)) ++ctr.cold_misses;

  attraction_[c][line] =
      ClusterLine{std::uint64_t{1} << local_index(p), exclusive};
  install_private(p, line, exclusive ? LineState::Exclusive : LineState::Shared);

  // Queueing delays cascade in request order: bus (already paid), then the
  // home directory controller, then — for any miss leaving the cluster — the
  // requester's network interface. A read stalls the processor, so its waits
  // are all visible; a write's directory/NIC waits are hidden by the store
  // buffer but still delay the fill.
  Cycles queue = bus_wait;
  if (contention_ && !functional_) {
    const Cycles dwait = contention_->directory(home, now + queue);
    ctr.dir_wait_cycles += dwait;
    queue += dwait;
    if (lclass != LatencyClass::LocalClean) {
      const Cycles nwait = contention_->nic(c, now + queue);
      ctr.nic_wait_cycles += nwait;
      queue += nwait;
    }
  }
  const Cycles fill = now + queue + lat;
  // Functional warming charges no stall and tracks no fill: fills complete
  // instantly, so no reader can merge and no MSHR entry is needed.
  if (!functional_) mshrs_[c].allocate(line, MshrEntry{fill});
  if (exclusive && obs_ != nullptr) {
    obs_->on_memory_stall(p, line, Observer::Stall::Store, now, fill, lclass);
  }
  AccessResult r{exclusive ? AccessResult::Kind::WriteMiss
                           : AccessResult::Kind::ReadMiss,
                 lat, fill, lclass};
  r.contention = exclusive ? bus_wait : queue;
  return r;
}

AccessResult ClusteredMemorySystem::read(ProcId p, Addr a, Cycles now) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  ++ctr.reads;

  // Fast path: with no fill in flight in the cluster there is nothing to
  // merge on and no stale MSHR entry to drop, so a private-cache hit needs
  // one fused lookup+touch probe instead of three.
  const bool no_fills = mshrs_[c].empty();
  std::optional<LineState> st;
  if (no_fills) {
    st = caches_[p]->access(line);
  } else if ((st = caches_[p]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time > now) {
        ++ctr.merges;
        return AccessResult{AccessResult::Kind::Merge, 0, m->fill_time,
                            LatencyClass::LocalClean};
      }
      mshrs_[c].release(line);
    }
    caches_[p]->touch(line);
  }
  if (st) {
    ++ctr.read_hits;
    AccessResult r{AccessResult::Kind::Hit};
    // No pending fill remains (a live one returned Merge above), so a repeat
    // access while the hint holds is a plain hit: writes too, if EXCLUSIVE.
    r.hint = *st == LineState::Exclusive ? MruHint::ReadWrite
                                         : MruHint::ReadOnly;
    return r;
  }

  // Past the private cache: the access is a bus transaction.
  const Cycles bus_wait = acquire_bus(c, line, now);

  if (ClusterLine* pcl = attraction_[c].find(line)) {
    // The line is in the cluster. A fill still in flight merges; otherwise
    // a peer cache (snoop) or the cluster memory supplies it.
    if (MshrEntry* m = no_fills ? nullptr : mshrs_[c].find(line);
        m && m->fill_time > now) {
      ++ctr.merges;
      AccessResult r{AccessResult::Kind::Merge, 0, m->fill_time,
                     LatencyClass::LocalClean};
      r.contention = bus_wait;
      return r;
    }
    ClusterLine& cl = *pcl;
    Cycles lat;
    if (cl.proc_copies) {
      lat = cfg_.latency.snoop_transfer;
      ++ctr.snoop_transfers;
      ++gen_[c];  // kill hook: peer copies demoted to SHARED
      // Cache-to-cache transfer demotes any proc-exclusive peer copy.
      std::uint64_t copies = cl.proc_copies;
      const ProcId base = c * cfg_.procs_per_cluster;
      while (copies) {
        const unsigned li = static_cast<unsigned>(__builtin_ctzll(copies));
        copies &= copies - 1;
        caches_[base + li]->set_state(line, LineState::Shared);
      }
    } else {
      lat = cfg_.latency.cluster_memory;
      ++ctr.cluster_memory_hits;
    }
    install_private(p, line, LineState::Shared);
    attraction_[c][line].proc_copies |= std::uint64_t{1} << local_index(p);
    AccessResult r{AccessResult::Kind::NearHit, lat, now + lat + bus_wait,
                   LatencyClass::LocalClean};
    r.contention = bus_wait;
    return r;
  }

  if (!no_fills) mshrs_[c].release(line);  // stale entry for a purged line
  return fetch_remote(p, line, now, /*exclusive=*/false, bus_wait);
}

std::optional<AccessResult> ClusteredMemorySystem::local_read(ProcId p,
                                                              Addr a,
                                                              Cycles now) {
  // read() restricted to cluster-local state: the private-cache probe, the
  // in-cluster merge, and the snoop / cluster-memory NearHit paths touch
  // only cluster `c` (its caches, attraction memory, MSHRs, generation);
  // a directory fetch defers. The reads counter is bumped only on the
  // completing paths — the boundary re-issue of the full read() counts a
  // deferred access exactly once. Parallel mode excludes the contention
  // model (MachineSpec::validate), so the bus never queues here. Parallel
  // functional warming also probes through here (timing fields ignored);
  // warming never allocates MSHRs, so the cluster-local state transitions
  // match the full functional read()'s.
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  const bool no_fills = mshrs_[c].empty();
  std::optional<LineState> st;
  if (no_fills) {
    st = caches_[p]->access(line);
  } else if ((st = caches_[p]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time > now) {
        ++ctr.reads;
        ++ctr.merges;
        return AccessResult{AccessResult::Kind::Merge, 0, m->fill_time,
                            LatencyClass::LocalClean};
      }
      mshrs_[c].release(line);
    }
    caches_[p]->touch(line);
  }
  if (st) {
    ++ctr.reads;
    ++ctr.read_hits;
    AccessResult r{AccessResult::Kind::Hit};
    r.hint = *st == LineState::Exclusive ? MruHint::ReadWrite
                                         : MruHint::ReadOnly;
    return r;
  }

  if (ClusterLine* pcl = attraction_[c].find(line)) {
    if (MshrEntry* m = no_fills ? nullptr : mshrs_[c].find(line);
        m && m->fill_time > now) {
      ++ctr.reads;
      ++ctr.merges;
      return AccessResult{AccessResult::Kind::Merge, 0, m->fill_time,
                          LatencyClass::LocalClean};
    }
    ++ctr.reads;
    ClusterLine& cl = *pcl;
    Cycles lat;
    if (cl.proc_copies) {
      lat = cfg_.latency.snoop_transfer;
      ++ctr.snoop_transfers;
      ++gen_[c];  // kill hook: peer copies demoted to SHARED
      std::uint64_t copies = cl.proc_copies;
      const ProcId base = c * cfg_.procs_per_cluster;
      while (copies) {
        const unsigned li = static_cast<unsigned>(__builtin_ctzll(copies));
        copies &= copies - 1;
        caches_[base + li]->set_state(line, LineState::Shared);
      }
    } else {
      lat = cfg_.latency.cluster_memory;
      ++ctr.cluster_memory_hits;
    }
    install_private(p, line, LineState::Shared);
    attraction_[c][line].proc_copies |= std::uint64_t{1} << local_index(p);
    return AccessResult{AccessResult::Kind::NearHit, lat, now + lat,
                        LatencyClass::LocalClean};
  }
  return std::nullopt;  // remote fetch through the directory: boundary work
}

std::optional<AccessResult> ClusteredMemorySystem::local_write(ProcId p,
                                                               Addr a,
                                                               Cycles now) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];

  auto kill_local_peers = [&](ClusterLine& cl) {
    std::uint64_t others =
        cl.proc_copies & ~(std::uint64_t{1} << local_index(p));
    if (others != 0) ++gen_[c];  // kill hook: peer copies erased off the bus
    const ProcId base = c * cfg_.procs_per_cluster;
    while (others) {
      const unsigned li = static_cast<unsigned>(__builtin_ctzll(others));
      others &= others - 1;
      caches_[base + li]->erase(line);
      ++ctr.bus_invalidations;
    }
    cl.proc_copies = std::uint64_t{1} << local_index(p);
  };

  const bool no_fills = mshrs_[c].empty();
  std::optional<LineState> st;
  bool pending = false;
  if (no_fills) {
    st = caches_[p]->access(line);
  } else if ((st = caches_[p]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time <= now) {
        mshrs_[c].release(line);
      } else {
        pending = true;  // a read while this fill is in flight must Merge
      }
    }
    caches_[p]->touch(line);
  }
  if (st) {
    if (*st == LineState::Exclusive) {
      ++ctr.writes;
      ++ctr.write_hits;
      AccessResult r{AccessResult::Kind::Hit};
      r.hint = pending ? MruHint::None : MruHint::ReadWrite;
      return r;
    }
    // Proc-level upgrade. Ownership already in the cluster keeps the whole
    // transaction on the bus; otherwise the machine-wide ownership grab
    // (invalidate_other_clusters + directory) defers — checked before any
    // mutation so the boundary re-issue starts from untouched state.
    ClusterLine* pcl = attraction_[c].find(line);
    if (pcl == nullptr || !pcl->cluster_exclusive) return std::nullopt;
    ++ctr.writes;
    kill_local_peers(*pcl);
    caches_[p]->set_state(line, LineState::Exclusive);
    ++ctr.write_hits;
    AccessResult r{AccessResult::Kind::Hit};
    r.hint = pending ? MruHint::None : MruHint::ReadWrite;
    return r;
  }

  if (ClusterLine* pcl = attraction_[c].find(line)) {
    // Write-allocate from within the cluster, but only when ownership is
    // already here; taking it machine-wide is boundary work.
    if (!pcl->cluster_exclusive) return std::nullopt;
    ++ctr.writes;
    kill_local_peers(*pcl);
    install_private(p, line, LineState::Exclusive);
    pcl->proc_copies |= std::uint64_t{1} << local_index(p);
    ++ctr.write_hits;
    return AccessResult{AccessResult::Kind::Hit};
  }
  return std::nullopt;  // exclusive remote fetch: boundary work
}

AccessResult ClusteredMemorySystem::write(ProcId p, Addr a, Cycles now) {
  const ClusterId c = cfg_.cluster_of(p);
  const Addr line = line_of(a);
  MissCounters& ctr = counters_[c];
  ++ctr.writes;

  auto kill_local_peers = [&](ClusterLine& cl) {
    std::uint64_t others =
        cl.proc_copies & ~(std::uint64_t{1} << local_index(p));
    if (others != 0) ++gen_[c];  // kill hook: peer copies erased off the bus
    const ProcId base = c * cfg_.procs_per_cluster;
    while (others) {
      const unsigned li = static_cast<unsigned>(__builtin_ctzll(others));
      others &= others - 1;
      caches_[base + li]->erase(line);
      ++ctr.bus_invalidations;
    }
    cl.proc_copies = std::uint64_t{1} << local_index(p);
  };

  // Same fused-probe fast path as read(): no in-flight fill means no pending
  // merge and no stale entry, so one probe replaces three.
  const bool no_fills = mshrs_[c].empty();
  std::optional<LineState> st;
  bool pending = false;
  if (no_fills) {
    st = caches_[p]->access(line);
  } else if ((st = caches_[p]->lookup(line))) {
    if (MshrEntry* m = mshrs_[c].find(line)) {
      if (m->fill_time <= now) {
        mshrs_[c].release(line);
      } else {
        pending = true;  // a read while this fill is in flight must Merge
      }
    }
    caches_[p]->touch(line);
  }
  if (st) {
    if (*st == LineState::Exclusive) {
      ++ctr.write_hits;
      AccessResult r{AccessResult::Kind::Hit};
      r.hint = pending ? MruHint::None : MruHint::ReadWrite;
      return r;
    }
    // Proc-level upgrade: kill peer copies on the bus; if other clusters
    // also hold the line, take machine-wide ownership through the directory.
    const Cycles bus_wait = acquire_bus(c, line, now);
    ClusterLine& cl = attraction_[c][line];
    kill_local_peers(cl);
    caches_[p]->set_state(line, LineState::Exclusive);
    if (!cl.cluster_exclusive) {
      invalidate_other_clusters(line, c, now);
      DirEntry& e = dir_.entry(line);
      e.sharers = 0;
      e.add(c);
      e.state = DirState::Exclusive;
      cl.cluster_exclusive = true;
      ++ctr.upgrade_misses;
      if (contention_ && !functional_) {
        ctr.dir_wait_cycles +=
            contention_->directory(homes_.home_of(line), now + bus_wait);
      }
      AccessResult r{AccessResult::Kind::UpgradeMiss};
      r.contention = bus_wait;
      return r;
    }
    // Ownership was already in the cluster: the write is a bus transaction
    // only ("ownership is kept within the cluster"). The private copy is now
    // EXCLUSIVE, so repeat accesses are plain hits unless a fill is pending.
    ++ctr.write_hits;
    AccessResult r{AccessResult::Kind::Hit};
    r.hint = pending ? MruHint::None : MruHint::ReadWrite;
    r.contention = bus_wait;
    return r;
  }

  // Past the private cache: the access is a bus transaction.
  const Cycles bus_wait = acquire_bus(c, line, now);

  if (ClusterLine* pcl = attraction_[c].find(line)) {
    // Write-allocate from within the cluster (hidden by the store buffer).
    ClusterLine& cl = *pcl;
    kill_local_peers(cl);
    install_private(p, line, LineState::Exclusive);
    cl.proc_copies |= std::uint64_t{1} << local_index(p);
    if (!cl.cluster_exclusive) {
      invalidate_other_clusters(line, c, now);
      DirEntry& e = dir_.entry(line);
      e.sharers = 0;
      e.add(c);
      e.state = DirState::Exclusive;
      cl.cluster_exclusive = true;
      ++ctr.upgrade_misses;
      if (contention_ && !functional_) {
        ctr.dir_wait_cycles +=
            contention_->directory(homes_.home_of(line), now + bus_wait);
      }
      AccessResult r{AccessResult::Kind::UpgradeMiss};
      r.contention = bus_wait;
      return r;
    }
    ++ctr.write_hits;
    AccessResult r{AccessResult::Kind::Hit};
    r.contention = bus_wait;
    return r;
  }

  if (!no_fills) mshrs_[c].release(line);
  return fetch_remote(p, line, now, /*exclusive=*/true, bus_wait);
}

}  // namespace csim
