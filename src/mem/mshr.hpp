// Outstanding-miss registry (MSHR table), one per cluster.
//
// Directory/ownership transitions — and cache-line allocation, including the
// victim eviction — happen instantaneously at request time (the paper's
// simplification); only the *data* arrival is delayed. An MSHR entry records
// the in-flight fill time so that subsequent reads by other processors in
// the cluster MERGE on it (blocking until the fill completes) instead of
// issuing duplicate misses.
//
// An invalidation from another cluster may kill a pending fill ("possibly
// invalidating a line still pending in the cache"): the line leaves the
// cache and the entry is dropped; readers that already merged still complete
// at the fill time they captured — they logically received the data before
// it was invalidated.
#pragma once

#include <optional>

#include "src/core/flat_map.hpp"
#include "src/core/types.hpp"

namespace csim {

/// One in-flight fill.
struct MshrEntry {
  Cycles fill_time = 0;  ///< when the data arrives at the cluster
};

class MshrTable {
 public:
  /// Looks up the pending entry for `line`, if any.
  [[nodiscard]] const MshrEntry* find(Addr line) const {
    return map_.find(line);
  }
  [[nodiscard]] MshrEntry* find(Addr line) { return map_.find(line); }

  /// Registers a fill for `line`, replacing any stale entry.
  void allocate(Addr line, MshrEntry e) { map_[line] = e; }

  /// Removes and returns the entry (fill arrived, line invalidated, or line
  /// evicted before the data came back).
  std::optional<MshrEntry> release(Addr line) {
    MshrEntry* e = map_.find(line);
    if (e == nullptr) return std::nullopt;
    MshrEntry out = *e;
    map_.erase(line);
    return out;
  }

  /// Drops every in-flight entry (functional-mode toggle: the warm-state
  /// boundary holds no live fills, so pending entries are dead bookkeeping).
  void clear() { map_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  /// True when no fill is in flight — the hot-path guard that lets accesses
  /// skip the per-line find()/release() probes entirely.
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }

  /// All in-flight entries (auditing / diagnostics).
  [[nodiscard]] const FlatMap<MshrEntry>& entries() const noexcept {
    return map_;
  }

 private:
  FlatMap<MshrEntry> map_;
};

}  // namespace csim
