// Queued occupancy resources for the opt-in contention model
// (ContentionSpec, DESIGN.md "Contention model").
//
// Every resource is a FIFO single server described by one number: the cycle
// until which it is busy. A request arriving at `now` starts service at
// max(now, busy_until), waits for the difference, and extends busy_until by
// its busy (service) time. Requests are processed in the deterministic event
// order of the single-threaded simulation, so the backlog — and therefore
// every derived statistic — is bit-reproducible across runs.
//
// Three resource classes (paper architecture, Fig. 1):
//  - ClusterPort: per-cluster shared-cache banks (address-interleaved,
//    Table 4's m = 4n) for the shared-cache organization, or the single
//    snoopy bus for the shared-memory organization;
//  - per-cluster directory controller at a line's home node;
//  - per-cluster network interface for remote hops.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/machine.hpp"
#include "src/core/types.hpp"

namespace csim {

/// One FIFO single-server occupancy resource.
struct QueuedResource {
  Cycles busy_until = 0;

  /// A request arriving at `now` holds the server for `busy` cycles;
  /// returns how long it had to wait for the server to free up.
  Cycles acquire(Cycles now, Cycles busy) noexcept {
    const Cycles start = busy_until > now ? busy_until : now;
    const Cycles wait = start - now;
    busy_until = start + busy;
    return wait;
  }
};

/// B address-interleaved banks, each a QueuedResource.
class BankedResource {
 public:
  BankedResource(unsigned banks, Cycles busy) : banks_(banks), busy_(busy) {}

  /// Routes `key` (e.g. line address / line size) to its bank.
  Cycles acquire(std::uint64_t key, Cycles now) noexcept {
    return banks_[key % banks_.size()].acquire(now, busy_);
  }

  [[nodiscard]] unsigned banks() const noexcept {
    return static_cast<unsigned>(banks_.size());
  }
  [[nodiscard]] Cycles busy_until(unsigned bank) const noexcept {
    return banks_[bank].busy_until;
  }

 private:
  std::vector<QueuedResource> banks_;
  Cycles busy_;
};

/// Per-run contention state for one memory system: cluster ports (banks or
/// bus), directory controllers, and network interfaces. Constructed by the
/// memory system only when the spec enables contention; every acquire
/// returns the queueing delay the caller charges (and accounts).
class ContentionModel {
 public:
  explicit ContentionModel(const MachineSpec& spec);

  /// Access to cluster `c`'s shared-cache bank for `line` (shared-cache
  /// organization) or its bus (shared-memory organization).
  [[nodiscard]] Cycles cluster_port(ClusterId c, Addr line, Cycles now) {
    if (banked_) {
      return ports_[c].acquire(line / line_bytes_, now);
    }
    return bus_[c].acquire(now, bank_busy_);
  }

  /// The home cluster's directory controller services one miss.
  [[nodiscard]] Cycles directory(ClusterId home, Cycles now) {
    return dir_[home].acquire(now, directory_busy_);
  }

  /// Cluster `c`'s network interface serializes one remote hop.
  [[nodiscard]] Cycles nic(ClusterId c, Cycles now) {
    return nic_[c].acquire(now, nic_busy_);
  }

  // --- Introspection (tests) ---------------------------------------------
  [[nodiscard]] bool banked() const noexcept { return banked_; }
  [[nodiscard]] unsigned banks_per_cluster() const noexcept {
    return banked_ ? ports_[0].banks() : 1;
  }
  [[nodiscard]] Cycles port_busy_until(ClusterId c, unsigned bank) const {
    return banked_ ? ports_[c].busy_until(bank) : bus_[c].busy_until;
  }

 private:
  bool banked_;  ///< shared-cache organization: banks; otherwise one bus
  unsigned line_bytes_;
  Cycles bank_busy_;
  Cycles directory_busy_;
  Cycles nic_busy_;
  std::vector<BankedResource> ports_;  ///< per cluster (banked_ only)
  std::vector<QueuedResource> bus_;    ///< per cluster (!banked_ only)
  std::vector<QueuedResource> dir_;    ///< per cluster (home directory)
  std::vector<QueuedResource> nic_;    ///< per cluster (network interface)
};

}  // namespace csim
