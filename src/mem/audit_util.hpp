// Shared helpers for the coherence invariant auditors
// (CoherenceController::audit, ClusteredMemorySystem::audit).
#pragma once

#include <cstdio>
#include <string>

#include "src/core/error.hpp"
#include "src/mem/directory.hpp"

namespace csim::audit_util {

inline std::string hex_line(Addr line) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(line));
  return buf;
}

inline const char* dir_state_name(DirState s) {
  switch (s) {
    case DirState::NotCached: return "NOT_CACHED";
    case DirState::Shared: return "SHARED";
    case DirState::Exclusive: return "EXCLUSIVE";
  }
  return "?";
}

[[noreturn]] inline void violation(Addr line, const std::string& what) {
  throw ProtocolError("audit: line " + hex_line(line) + ": " + what);
}

}  // namespace csim::audit_util
