// Cluster cache storage: infinite, fully associative LRU, or set associative.
//
// The paper simulates fully associative LRU caches ("to exclude the effect of
// conflict misses from the performance characterizations") and infinite
// caches (Section 4). Set-associative mode is provided for the paper's
// stated future work on destructive interference under limited associativity
// (used by bench/ablation_associativity).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/flat_map.hpp"
#include "src/core/machine.hpp"
#include "src/core/types.hpp"

namespace csim {

/// Cache line states (invalidation protocol, no Owned/Modified distinction:
/// EXCLUSIVE implies potentially dirty).
enum class LineState : std::uint8_t { Shared, Exclusive };

/// A line evicted to make room (replacement hint / writeback to home).
struct Evicted {
  Addr line;
  LineState state;
};

/// One cluster's cache contents. Keys are line-aligned addresses.
class CacheStorage {
 public:
  /// capacity_lines == 0 => infinite. associativity == 0 => fully associative.
  /// line_bytes is needed only for set indexing in set-associative mode.
  CacheStorage(std::size_t capacity_lines, unsigned associativity,
               unsigned line_bytes = 64);

  /// Pre-sizes the line table for an expected footprint (bounded caches are
  /// already sized to their capacity at construction).
  void reserve(std::size_t lines) { map_.reserve(lines); }

  /// Returns the state of `line` if present (does not touch LRU).
  [[nodiscard]] std::optional<LineState> lookup(Addr line) const;

  /// Marks `line` most-recently-used. No-op if absent.
  void touch(Addr line);

  /// Combined lookup + touch in a single table probe: returns the state of
  /// `line` if present, marking it most-recently-used. Equivalent to
  /// lookup(line) followed by touch(line) — the hit fast path.
  [[nodiscard]] std::optional<LineState> access(Addr line);

  /// Inserts `line` (must not be present), possibly evicting the LRU line of
  /// the relevant set. Returns the victim, if any.
  std::optional<Evicted> insert(Addr line, LineState st);

  /// Changes the state of a present line. Returns false if absent.
  bool set_state(Addr line, LineState st);

  /// Removes `line` (invalidation or external downgrade-erase). Returns its
  /// prior state if it was present.
  std::optional<LineState> erase(Addr line);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool infinite() const noexcept { return capacity_ == 0; }
  [[nodiscard]] std::size_t capacity_lines() const noexcept { return capacity_; }

  /// All resident lines (testing / diagnostics). Order unspecified.
  [[nodiscard]] std::vector<Addr> resident_lines() const;

  /// All resident lines with state, in a byte-deterministic order suitable
  /// for warm-state checkpointing: set order, LRU to MRU within each set, so
  /// insert()-ing in dumped order into an empty cache of the same geometry
  /// rebuilds the exact replacement order. Infinite caches (no replacement
  /// order) dump sorted by line address.
  [[nodiscard]] std::vector<std::pair<Addr, LineState>> dump_lru_order() const;

 private:
  struct Node {
    Addr line;
    LineState state;
  };
  using LruList = std::list<Node>;

  unsigned set_index(Addr line) const noexcept;

  std::size_t capacity_ = 0;     // total lines; 0 = infinite
  unsigned ways_ = 0;            // 0 = fully associative
  unsigned line_shift_ = 6;
  std::size_t num_sets_ = 1;
  // One LRU list per set (fully associative => single set). For the infinite
  // cache the list is unused; only the map holds state.
  std::vector<LruList> sets_;
  struct MapEntry {
    LineState state = LineState::Shared;  // authoritative for infinite mode
    LruList::iterator it{};               // valid only in bounded mode
  };
  FlatMap<MapEntry> map_;
};

}  // namespace csim
