// MshrTable is header-only; this TU anchors the module in the build.
#include "src/mem/mshr.hpp"
