#include "src/mem/contention.hpp"

namespace csim {

ContentionModel::ContentionModel(const MachineSpec& spec)
    : banked_(spec.cluster_style == ClusterStyle::SharedCache),
      line_bytes_(spec.cache.line_bytes),
      bank_busy_(spec.contention.bank_busy),
      directory_busy_(spec.contention.directory_busy),
      nic_busy_(spec.contention.nic_busy) {
  const unsigned nc = spec.num_clusters();
  if (banked_) {
    ports_.reserve(nc);
    for (unsigned c = 0; c < nc; ++c) {
      ports_.emplace_back(spec.cluster_banks(), bank_busy_);
    }
  } else {
    bus_.resize(nc);
  }
  dir_.resize(nc);
  nic_.resize(nc);
}

}  // namespace csim
