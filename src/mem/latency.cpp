#include "src/mem/latency.hpp"

namespace csim {

std::string_view to_string(LatencyClass c) noexcept {
  switch (c) {
    case LatencyClass::LocalClean: return "local-clean";
    case LatencyClass::LocalDirtyRemote: return "local-dirty-remote";
    case LatencyClass::RemoteClean: return "remote-clean";
    case LatencyClass::RemoteDirtyThird: return "remote-dirty-third";
  }
  return "?";
}

}  // namespace csim
