// CoherenceController: the invalidation-based directory protocol over shared
// cluster caches, implementing the paper's simulated architecture (Fig. 1).
//
// Protocol summary (Section 3.1 of the paper):
//  - Cache states INVALID / SHARED / EXCLUSIVE; directory NOT_CACHED /
//    SHARED / EXCLUSIVE (full bit vector of clusters, replacement hints).
//  - READ misses fetch in SHARED and stall the processor for the Table 1
//    latency. WRITE and UPGRADE misses are fully hidden (store buffers +
//    relaxed consistency) but still transfer ownership and create an
//    in-flight fill (WRITE) that later reads can MERGE on.
//  - Invalidations are instantaneous, and may invalidate a pending line.
//  - Directory/ownership transitions and cache-line allocation (with the
//    victim eviction) happen at request time; only the data arrival is
//    delayed, tracked by the MSHR for merge accounting.
#pragma once

#include <memory>
#include <vector>

#include "src/core/flat_map.hpp"
#include "src/core/machine.hpp"
#include "src/core/stats.hpp"
#include "src/core/types.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/directory.hpp"
#include "src/mem/memory_system.hpp"
#include "src/mem/mshr.hpp"

namespace csim {

class ContentionModel;

class CoherenceController final : public MemorySystem {
 public:
  /// Primary constructor: the run's shared immutable spec (no per-class
  /// config copy; every component of a run sees the same MachineSpec).
  CoherenceController(std::shared_ptr<const MachineSpec> spec,
                      const AddressSpace& as);

  /// Legacy convenience: wraps `cfg` in a fresh shared spec (still safe
  /// against temporary config expressions).
  CoherenceController(const MachineSpec& cfg, const AddressSpace& as)
      : CoherenceController(std::make_shared<const MachineSpec>(cfg), as) {}

  // Out of line: ContentionModel is only forward-declared here.
  ~CoherenceController() override;

  /// Processor `p` reads address `a` at time `now`.
  AccessResult read(ProcId p, Addr a, Cycles now) override;

  /// Processor `p` writes address `a` at time `now`.
  AccessResult write(ProcId p, Addr a, Cycles now) override;

  /// Cluster-local window paths (ParallelSpec): hits and merges complete
  /// against cluster `c`'s cache/MSHRs only; every directory transition
  /// (read miss, upgrade, write miss) defers to the window boundary.
  std::optional<AccessResult> local_read(ProcId p, Addr a,
                                         Cycles now) override;
  std::optional<AccessResult> local_write(ProcId p, Addr a,
                                          Cycles now) override;

  [[nodiscard]] const MissCounters& cluster_counters(
      ClusterId c) const override {
    return counters_[c];
  }
  [[nodiscard]] MissCounters totals() const override;

  /// Opts into the processor hit-filter fast path (docs/PERFORMANCE.md):
  /// repeat hits short-circuited by the processor bump these counters
  /// directly. Disabled under the contention model — every access must pass
  /// through its cluster's bank queue, so none may be short-circuited.
  [[nodiscard]] MissCounters* hot_counters(ClusterId c) noexcept override {
    return contention_ ? nullptr : &counters_[c];
  }

  /// Per-cluster hit-filter generation (docs/PERFORMANCE.md): bumped by
  /// invalidations, evictions, and owner downgrades hitting the cluster's
  /// cache. A hint can only go stale through one of those events — a fill
  /// for a hinted line would require the line to have left the cache first —
  /// so no per-access bump is needed; LRU exactness is the processor's job
  /// via touch_cache().
  [[nodiscard]] const std::uint64_t* generation_addr(
      ClusterId c) const noexcept override {
    return &gen_[c];
  }

  /// Bounded cluster caches are LRU: the processor must touch the line on
  /// every filtered hit to keep eviction order bit-identical to the slow
  /// path. Infinite caches keep no replacement order — no touch needed.
  [[nodiscard]] CacheStorage* touch_cache(ProcId p) noexcept override {
    return cfg_.cache.infinite() ? nullptr
                                 : caches_[cfg_.cluster_of(p)].get();
  }

  /// Invariant audit (directory vs. cluster caches vs. MSHRs); throws
  /// ProtocolError on the first violation. See docs/ROBUSTNESS.md.
  void audit() const override;

  // --- Interval sampling (src/core/sampling.hpp) -------------------------
  void set_functional(bool on) override;
  bool capture_warm_state(WarmState& out) const override;
  bool restore_warm_state(const WarmState& ws) override;

  // --- Introspection for tests -------------------------------------------
  [[nodiscard]] const CacheStorage& cache(ClusterId c) const { return *caches_[c]; }
  [[nodiscard]] const Directory& directory() const { return dir_; }
  /// Test-only mutation hook: lets failure-injection tests corrupt directory
  /// state to prove audit() catches it. Never use outside tests.
  [[nodiscard]] Directory& mutable_directory_for_test() { return dir_; }
  [[nodiscard]] const MshrTable& mshrs(ClusterId c) const { return mshrs_[c]; }
  [[nodiscard]] ClusterId home_of(Addr a) { return homes_.home_of(a); }
  [[nodiscard]] const ContentionModel* contention_model() const {
    return contention_.get();
  }

 private:
  Addr line_of(Addr a) const noexcept { return a & ~Addr{cfg_.cache.line_bytes - 1}; }

  /// Classifies a miss per Table 1 and updates remote copies/directory for a
  /// read (fetch SHARED). `port_wait` is the already-paid bank queueing
  /// delay folded into the result's contention total.
  AccessResult handle_read_miss(ClusterId c, Addr line, Cycles now,
                                Cycles port_wait);

  /// Contention-model bank/bus acquisition for cluster `c` (0 when the
  /// model is disabled); accounts the wait into the cluster's counters.
  Cycles acquire_port(ClusterId c, Addr line, Cycles now);

  /// Invalidates every copy except `keep` (storage and pending fills),
  /// reporting the round to the observer at time `now`.
  void invalidate_others(Addr line, ClusterId keep, Cycles now);

  /// Installs a line into cluster `c`'s storage, processing any eviction.
  void install(ClusterId c, Addr line, LineState st);

  LatencyClass classify(ClusterId requester, Addr line, const DirEntry& e) const;

  std::shared_ptr<const MachineSpec> spec_;  // the run's shared immutable spec
  const MachineSpec& cfg_;                   // = *spec_
  bool functional_ = false;  // warming regime: timing-only work skipped
  std::unique_ptr<ContentionModel> contention_;  // null unless enabled
  AddressSpace::HomeMap homes_;
  Directory dir_;
  std::vector<std::unique_ptr<CacheStorage>> caches_;
  std::vector<MshrTable> mshrs_;
  std::vector<MissCounters> counters_;
  std::vector<std::uint64_t> gen_;  // per-cluster hit-filter generations
  FlatSet touched_lines_;  // cold-miss tracking
};

}  // namespace csim
