// Simulation statistics: per-processor time buckets and miss taxonomy.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/machine.hpp"
#include "src/core/types.hpp"

namespace csim {

/// The execution-time components of the paper's stacked bars, plus the
/// contention-stall bucket of the opt-in queued-resource model.
struct TimeBuckets {
  Cycles cpu = 0;    ///< busy cycles (includes 1-cycle cache hits)
  Cycles load = 0;   ///< read-miss stall cycles
  Cycles merge = 0;  ///< merge-miss stall cycles (waiting on another
                     ///< processor's in-flight fill)
  Cycles sync = 0;   ///< barrier / lock wait (incl. final-barrier wait)
  Cycles contention = 0;  ///< queueing-delay stalls (bank / directory / NIC
                          ///< waits; always 0 unless ContentionSpec::enabled)

  [[nodiscard]] Cycles total() const noexcept {
    return cpu + load + merge + sync + contention;
  }
  bool operator==(const TimeBuckets&) const noexcept = default;
  TimeBuckets& operator+=(const TimeBuckets& o) noexcept {
    cpu += o.cpu;
    load += o.load;
    merge += o.merge;
    sync += o.sync;
    contention += o.contention;
    return *this;
  }
};

/// Reference / miss counters, aggregated machine-wide (the paper reports
/// machine-level behaviour; per-cluster splits are available via
/// SimResult::per_cluster).
struct MissCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t upgrade_misses = 0;  ///< write found line SHARED
  std::uint64_t merges = 0;          ///< reads merged on an in-flight fill
  std::uint64_t cold_misses = 0;     ///< first-ever access to the line
  std::uint64_t invalidations = 0;   ///< cluster copies destroyed
  std::uint64_t evictions = 0;       ///< capacity replacements
  // Shared-main-memory cluster organization only:
  std::uint64_t snoop_transfers = 0;     ///< served cache-to-cache on the bus
  std::uint64_t cluster_memory_hits = 0; ///< served by the attraction memory
  std::uint64_t bus_invalidations = 0;   ///< peer private-cache copies killed
  // Contention model only (ContentionSpec::enabled); otherwise all zero:
  std::uint64_t bank_conflicts = 0;   ///< accesses that waited on a busy bank/bus
  std::uint64_t bank_wait_cycles = 0; ///< cycles spent waiting on banks/bus
  std::uint64_t dir_wait_cycles = 0;  ///< cycles waiting on the home directory
  std::uint64_t nic_wait_cycles = 0;  ///< cycles waiting on network interfaces
  std::array<std::uint64_t, kNumLatencyClasses> by_class{};

  MissCounters& operator+=(const MissCounters& o) noexcept;
  bool operator==(const MissCounters&) const noexcept = default;

  [[nodiscard]] std::uint64_t total_misses() const noexcept {
    return read_misses + write_misses;
  }
  [[nodiscard]] double read_miss_rate() const noexcept {
    return reads ? static_cast<double>(read_misses) / static_cast<double>(reads) : 0.0;
  }
};

/// Result of one simulation run. A failed run (captured by run_sweep's
/// graceful degradation) has ok == false, empty statistics, and the error
/// fields describing the SimError that killed it.
struct SimResult {
  MachineSpec config{};
  std::string app_name;
  ProblemScale scale = ProblemScale::Default;
  Cycles wall_time = 0;
  std::uint64_t events = 0;  ///< events the queue dispatched during the run
  double host_seconds = 0;   ///< real (wall-clock) time the run took to simulate
  std::vector<TimeBuckets> per_proc;
  std::vector<MissCounters> per_cluster;
  MissCounters totals{};

  bool ok = true;          ///< false: the run threw instead of completing
  std::string error_kind;  ///< to_string(SimErrorKind), or "exception"
  std::string error;       ///< full what(), including the machine snapshot

  // --- Interval sampling (SamplingSpec; all defaults when sampling is off) --
  /// True when the run used interval sampling: miss counters are exact, but
  /// wall_time / per_proc buckets are extrapolated from the detailed
  /// intervals.
  bool sampled = false;
  /// References measured in detailed intervals (<= totals.reads + writes).
  std::uint64_t detailed_refs = 0;
  /// detailed_refs / total retired references; 0 when the run ended before
  /// any detailed interval (buckets are then raw warming time, unscaled).
  double coverage = 0;

  /// Sum of per-processor buckets. With final-barrier accounting,
  /// aggregate().total() == num_procs * wall_time.
  [[nodiscard]] TimeBuckets aggregate() const;

  /// Loads per CPU-busy cycle (input to the Section 6 hit-time estimator).
  [[nodiscard]] double loads_per_cpu_cycle() const;
};

}  // namespace csim
