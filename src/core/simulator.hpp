// Simulator facade: runs a Program on a configured machine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/machine.hpp"
#include "src/core/processor.hpp"
#include "src/core/sim_task.hpp"
#include "src/core/stats.hpp"
#include "src/mem/address_space.hpp"

namespace csim {

/// A simulated parallel program. Implementations allocate their simulated
/// data in setup() and provide one coroutine body per processor.
class Program {
 public:
  virtual ~Program() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocates simulated memory (and optional explicit placement). Called
  /// once per simulation run, before any body starts.
  virtual void setup(AddressSpace& as, const MachineConfig& cfg) = 0;

  /// The code processor `p` executes.
  virtual SimTask body(Proc& p) = 0;

  /// Optional post-run check of the computation's real result; throws on
  /// failure. Lets tests prove the reference stream is the real algorithm.
  virtual void verify() const {}
};

/// Runs programs under a machine configuration and collects results.
class Simulator {
 public:
  explicit Simulator(MachineConfig cfg);

  /// Simulates `prog` to completion and returns timing + miss statistics.
  /// Throws std::runtime_error on deadlock (e.g. mismatched barriers).
  ///
  /// `memory_override` substitutes the memory system built from the
  /// configuration (used by the working-set profiler and trace tooling);
  /// the caller keeps ownership and the object must outlive the run.
  SimResult run(Program& prog, MemorySystem* memory_override = nullptr);

  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }

 private:
  MachineConfig cfg_;
};

/// Convenience: one-shot run.
SimResult simulate(Program& prog, const MachineConfig& cfg);

}  // namespace csim
