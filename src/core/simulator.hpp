// Simulator facade: runs a Program on a configured machine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/machine.hpp"
#include "src/core/processor.hpp"
#include "src/core/sim_task.hpp"
#include "src/core/stats.hpp"
#include "src/mem/address_space.hpp"

namespace csim {

class Observer;

/// A simulated parallel program. Implementations allocate their simulated
/// data in setup() and provide one coroutine body per processor.
class Program {
 public:
  virtual ~Program() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Problem-size preset this instance was built from. Set by the app
  /// factories; recorded into SimResult::scale for reporting.
  [[nodiscard]] ProblemScale scale() const noexcept { return scale_; }
  void set_scale(ProblemScale s) noexcept { scale_ = s; }

  /// Allocates simulated memory (and optional explicit placement). Called
  /// once per simulation run, before any body starts.
  virtual void setup(AddressSpace& as, const MachineSpec& cfg) = 0;

  /// The code processor `p` executes.
  virtual SimTask body(Proc& p) = 0;

  /// Optional post-run check of the computation's real result; throws on
  /// failure. Lets tests prove the reference stream is the real algorithm.
  virtual void verify() const {}

 private:
  ProblemScale scale_ = ProblemScale::Default;
};

/// Runs programs under a machine configuration and collects results.
class Simulator {
 public:
  /// Validates and wraps `cfg` in the run-wide shared immutable spec.
  explicit Simulator(MachineSpec cfg);

  /// Primary constructor: adopts an existing shared spec (e.g. from
  /// MachineSpecBuilder::build_shared()); every component of a run — memory
  /// system, processors, profilers — sees this one object.
  explicit Simulator(std::shared_ptr<const MachineSpec> spec);

  /// Simulates `prog` to completion and returns timing + miss statistics.
  ///
  /// Failure taxonomy (src/core/error.hpp) — all carry a MachineSnapshot:
  ///  - DeadlockError: the event queue drained with processors still parked
  ///    on a barrier or lock (e.g. mismatched barriers);
  ///  - LivelockError: a watchdog budget tripped (MachineSpec::max_cycles /
  ///    max_events / no_progress_events);
  ///  - ProtocolError: the coherence invariant audit failed (end of run, and
  ///    every MachineSpec::audit_interval events when set);
  ///  - AppError: the program's setup() or verify() threw.
  /// Exceptions escaping processor bodies propagate unwrapped.
  ///
  /// `memory_override` substitutes the memory system built from the
  /// configuration (used by the working-set profiler and trace tooling);
  /// the caller keeps ownership and the object must outlive the run.
  SimResult run(Program& prog, MemorySystem* memory_override = nullptr);

  /// Attaches an observability sink (src/obs/observer.hpp) to subsequent
  /// run() calls: the event queue, every processor, and the memory system
  /// report into it. Null (the default) leaves every hook disabled — one
  /// branch per site, no other cost.
  void set_observer(Observer* obs) noexcept { obs_ = obs; }

  [[nodiscard]] const MachineSpec& config() const noexcept { return *spec_; }
  [[nodiscard]] const std::shared_ptr<const MachineSpec>& spec() const noexcept {
    return spec_;
  }

 private:
  std::shared_ptr<const MachineSpec> spec_;
  Observer* obs_ = nullptr;
};

/// Convenience: one-shot run.
SimResult simulate(Program& prog, const MachineSpec& cfg);

/// Convenience: one-shot observed run (obs may be null).
SimResult simulate(Program& prog, const MachineSpec& cfg, Observer* obs);

}  // namespace csim
