#include "src/core/simulator.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/core/error.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/par_engine.hpp"
#include "src/core/run_debug.hpp"
#include "src/core/sampling.hpp"
#include "src/core/sync.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/observer.hpp"

namespace csim {
namespace {

using detail::describe_wait;

MachineSnapshot capture_snapshot(const EventQueue& queue,
                                 const std::vector<std::unique_ptr<Proc>>& procs) {
  return detail::capture_proc_snapshot(queue.now(), queue.size(),
                                       queue.events_run(), procs);
}

}  // namespace

Simulator::Simulator(MachineSpec cfg) {
  cfg.validate();
  spec_ = std::make_shared<const MachineSpec>(std::move(cfg));
}

Simulator::Simulator(std::shared_ptr<const MachineSpec> spec)
    : spec_(std::move(spec)) {
  if (spec_ == nullptr) throw ConfigError("Simulator: null machine spec");
  spec_->validate();
}

SimResult Simulator::run(Program& prog, MemorySystem* memory_override) {
  const MachineSpec& cfg_ = *spec_;  // the run-wide shared immutable spec
  if (cfg_.parallel.enabled()) {
    // Observability hooks assume one global event stream; the window engine
    // has per-cluster queues. The contention model is already rejected by
    // MachineSpec::validate(); sampling composes (the window engine runs
    // its own per-cluster sampling shards).
    if (obs_ != nullptr) {
      throw ConfigError(
          "parallel execution is incompatible with an attached observer "
          "(tracing/metrics assume a single global event order)");
    }
    return par::run_parallel(spec_, prog, memory_override);
  }
  const auto host_start = std::chrono::steady_clock::now();
  AddressSpace as;
  try {
    prog.setup(as, cfg_);
  } catch (const SimError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    // Bad app parameters are configuration errors (and stay catchable as
    // std::invalid_argument, which ConfigError derives from).
    throw ConfigError("setup of '" + prog.name() + "' rejected: " + e.what());
  } catch (const std::exception& e) {
    throw AppError("setup of '" + prog.name() + "' failed: " + e.what());
  }

  EventQueue queue;
  queue.set_budget(EventQueue::Budget{cfg_.max_cycles, cfg_.max_events,
                                      cfg_.no_progress_events});
  std::unique_ptr<MemorySystem> mem;
  if (memory_override == nullptr) {
    if (cfg_.cluster_style == ClusterStyle::SharedMemory) {
      mem = std::make_unique<ClusteredMemorySystem>(spec_, as);
    } else {
      mem = std::make_unique<CoherenceController>(spec_, as);
    }
  }
  MemorySystem& coh = memory_override ? *memory_override : *mem;

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    procs.push_back(std::make_unique<Proc>(cfg_, queue, coh, p));
  }

  // --- Interval sampling (src/core/sampling.hpp) ---------------------------
  // With a checkpoint directory configured, try to load the warm-state
  // checkpoint keyed by this run's warm digest. A usable checkpoint turns
  // the warmup into a fast-forward replay (no memory simulation at all);
  // anything else — missing file, corruption, header mismatch — degrades
  // into a normal in-process warmup, never a wrong answer.
  std::unique_ptr<SamplingController> sampler;
  if (cfg_.sampling.enabled) {
    const std::uint64_t warm_digest =
        obs::warm_config_digest(cfg_, prog.name(), prog.scale());
    WarmCheckpointSetup wcs = setup_warm_checkpoint(
        cfg_, warm_digest, prog.name(),
        static_cast<std::uint8_t>(prog.scale()), coh, procs);
    sampler = std::make_unique<SamplingController>(cfg_, &coh,
                                                   wcs.fast_forward,
                                                   host_start);
    std::vector<const TimeBuckets*> raw_buckets;
    raw_buckets.reserve(procs.size());
    for (auto& pp : procs) {
      pp->set_sampling(sampler.get());
      raw_buckets.push_back(&pp->buckets());
    }
    sampler->bind_buckets(std::move(raw_buckets));
    if (wcs.hook) sampler->set_warmup_boundary_hook(std::move(wcs.hook));
  }

  if (obs_ != nullptr) {
    queue.set_observer(obs_);
    coh.set_observer(obs_);
    Observer::RunBinding binding;
    binding.config = &cfg_;
    binding.mem = &coh;
    binding.proc_buckets.reserve(procs.size());
    for (auto& pp : procs) {
      pp->set_observer(obs_);
      binding.proc_buckets.push_back(&pp->buckets());
    }
    binding.events_run = queue.events_run_addr();
    binding.sampling = sampler.get();
    obs_->on_run_begin(binding);
  }

  // Launch every processor at t = 0. A body runs until its first suspension;
  // completion is detected after each resume via the root task.
  for (auto& pp : procs) {
    Proc* proc = pp.get();
    proc->root = prog.body(*proc);
    queue.schedule(0, [proc] { proc->launch(); });
  }

  // Drive the event queue to exhaustion under the watchdog; processors
  // record their own completion when their root coroutine finishes.
  const std::uint64_t audit_every = cfg_.audit_interval;
  std::uint64_t until_audit = audit_every;
  // Host-deadline watchdog: poll the real clock only every few thousand
  // events (a steady_clock read per event would dominate short events). The
  // deadline can never alter simulation results — it only bounds how long
  // the host lets the run take (per-row deadlines in run_sweep).
  constexpr std::uint64_t kDeadlineCheckEvents = 4096;
  const bool deadline_armed = cfg_.max_host_seconds > 0;
  std::uint64_t until_deadline_check = kDeadlineCheckEvents;
  while (!queue.empty()) {
    queue.run_one();
    if (queue.over_budget()) [[unlikely]] {
      auto v = queue.budget_violation();
      throw LivelockError(*std::move(v), capture_snapshot(queue, procs));
    }
    if (deadline_armed && --until_deadline_check == 0) [[unlikely]] {
      until_deadline_check = kDeadlineCheckEvents;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        host_start)
              .count();
      if (elapsed > cfg_.max_host_seconds) {
        char msg[96];
        std::snprintf(msg, sizeof msg,
                      "host deadline of %.3f s exceeded (ran %.3f s)",
                      cfg_.max_host_seconds, elapsed);
        throw TimeoutError(msg, capture_snapshot(queue, procs));
      }
    }
    // Countdown instead of `events_run % audit_every`: one decrement per
    // event rather than a 64-bit divide. run_one() dispatches exactly one
    // event, so the countdown fires at the same event counts.
    if (audit_every != 0 && --until_audit == 0) {
      coh.audit();
      until_audit = audit_every;
    }
  }

  for (auto& pp : procs) {
    pp->root.rethrow_if_failed();
  }

  // Protocol state must be internally consistent once the machine is idle.
  coh.audit();

  unsigned unfinished = 0;
  for (auto& pp : procs) {
    if (!pp->finished) ++unfinished;
  }
  if (unfinished != 0) {
    std::string summary = std::to_string(unfinished) + " of " +
                          std::to_string(cfg_.num_procs) +
                          " processors never finished:";
    for (auto& pp : procs) {
      if (pp->finished) continue;
      summary += " proc " + std::to_string(pp->id()) + " " +
                 describe_wait(*pp) + ";";
    }
    summary.pop_back();
    throw DeadlockError(std::move(summary), capture_snapshot(queue, procs));
  }

  SimResult res;
  res.config = cfg_;
  res.app_name = prog.name();
  res.scale = prog.scale();

  Cycles wall = 0;
  for (auto& pp : procs) wall = std::max(wall, pp->finish_time);
  res.wall_time = wall;
  res.events = queue.events_run();
  if (obs_ != nullptr) obs_->on_run_end(wall);

  res.per_proc.reserve(cfg_.num_procs);
  for (auto& pp : procs) {
    TimeBuckets b = pp->buckets();
    // Early finishers wait at the implicit final barrier.
    b.sync += wall - pp->finish_time;
    res.per_proc.push_back(b);
  }

  res.per_cluster.reserve(cfg_.num_clusters());
  for (ClusterId c = 0; c < cfg_.num_clusters(); ++c) {
    res.per_cluster.push_back(coh.cluster_counters(c));
  }
  res.totals = coh.totals();

  if (sampler != nullptr) {
    apply_sampling_extrapolation(res, sampler->finish());
  }

  try {
    prog.verify();
  } catch (const SimError&) {
    throw;
  } catch (const std::exception& e) {
    throw AppError("verification of '" + prog.name() + "' failed: " + e.what(),
                   capture_snapshot(queue, procs));
  }
  res.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return res;
}

SimResult simulate(Program& prog, const MachineSpec& cfg) {
  return Simulator(cfg).run(prog);
}

SimResult simulate(Program& prog, const MachineSpec& cfg, Observer* obs) {
  Simulator sim(cfg);
  sim.set_observer(obs);
  return sim.run(prog);
}

}  // namespace csim
