#include "src/core/simulator.hpp"

#include <stdexcept>

#include "src/core/event_queue.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"

namespace csim {

Simulator::Simulator(MachineConfig cfg) : cfg_(cfg) { cfg_.validate(); }

SimResult Simulator::run(Program& prog, MemorySystem* memory_override) {
  AddressSpace as;
  prog.setup(as, cfg_);

  EventQueue queue;
  std::unique_ptr<MemorySystem> mem;
  if (memory_override == nullptr) {
    if (cfg_.cluster_style == ClusterStyle::SharedMemory) {
      mem = std::make_unique<ClusteredMemorySystem>(cfg_, as);
    } else {
      mem = std::make_unique<CoherenceController>(cfg_, as);
    }
  }
  MemorySystem& coh = memory_override ? *memory_override : *mem;

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    procs.push_back(std::make_unique<Proc>(cfg_, queue, coh, p));
  }

  // Launch every processor at t = 0. A body runs until its first suspension;
  // completion is detected after each resume via the root task.
  for (auto& pp : procs) {
    Proc* proc = pp.get();
    proc->root = prog.body(*proc);
    queue.schedule(0, [proc] {
      proc->begin_slice(0);
      proc->root.start();
      proc->note_if_finished();
    });
  }

  // Drive the event queue to exhaustion; processors record their own
  // completion when their root coroutine finishes.
  queue.run_to_completion();

  for (auto& pp : procs) {
    pp->root.rethrow_if_failed();
  }

  SimResult res;
  res.config = cfg_;
  res.app_name = prog.name();

  Cycles wall = 0;
  for (auto& pp : procs) {
    if (!pp->finished) {
      throw std::runtime_error("deadlock: processor " + std::to_string(pp->id()) +
                               " never finished (mismatched barrier/lock?)");
    }
    wall = std::max(wall, pp->finish_time);
  }
  res.wall_time = wall;

  res.per_proc.reserve(cfg_.num_procs);
  for (auto& pp : procs) {
    TimeBuckets b = pp->buckets();
    // Early finishers wait at the implicit final barrier.
    b.sync += wall - pp->finish_time;
    res.per_proc.push_back(b);
  }

  res.per_cluster.reserve(cfg_.num_clusters());
  for (ClusterId c = 0; c < cfg_.num_clusters(); ++c) {
    res.per_cluster.push_back(coh.cluster_counters(c));
  }
  res.totals = coh.totals();

  prog.verify();
  return res;
}

SimResult simulate(Program& prog, const MachineConfig& cfg) {
  return Simulator(cfg).run(prog);
}

}  // namespace csim
