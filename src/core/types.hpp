// Fundamental scalar types shared across the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace csim {

/// Simulated byte address in the shared address space.
using Addr = std::uint64_t;

/// Simulated time / durations, in processor clock cycles.
using Cycles = std::uint64_t;

/// Processor identifier (0 .. num_procs-1).
using ProcId = unsigned;

/// Cluster identifier (0 .. num_clusters-1).
using ClusterId = unsigned;

/// Sentinel for "no cluster".
inline constexpr ClusterId kNoCluster = ~0u;

/// The two access kinds a processor can issue.
enum class AccessKind : std::uint8_t { Read, Write };

/// Latency classification of a cluster-cache miss, mirroring Table 1 of the
/// paper. "Local" means the home of the line is the requesting cluster.
enum class LatencyClass : std::uint8_t {
  LocalClean,        ///< local home, directory SHARED or NOT_CACHED (30 cy)
  LocalDirtyRemote,  ///< local home, line EXCLUSIVE in a remote cluster (100 cy)
  RemoteClean,       ///< remote home satisfies the request (100 cy)
  RemoteDirtyThird,  ///< remote home, line EXCLUSIVE in a third cluster (150 cy)
};

inline constexpr unsigned kNumLatencyClasses = 4;

/// Problem-size preset of a workload (see src/apps/app.hpp for the presets).
/// Lives here so results (SimResult) can record which preset produced them.
enum class ProblemScale : std::uint8_t { Test, Default, Paper };

[[nodiscard]] constexpr std::string_view to_string(ProblemScale s) noexcept {
  switch (s) {
    case ProblemScale::Test: return "test";
    case ProblemScale::Default: return "default";
    case ProblemScale::Paper: return "paper";
  }
  return "?";
}

}  // namespace csim
