#include "src/core/processor.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/sync.hpp"
#include "src/mem/cache.hpp"
#include "src/obs/observer.hpp"

namespace csim {

void Proc::schedule_resume(Cycles t, std::coroutine_handle<> h) {
  if (pending_defer_) {
    // A deferring memory op staged pending_ (detail_read / detail_write);
    // this is the suspension that carries its coroutine handle. Route it to
    // the partition outbox — the coordinator resumes it past the boundary.
    pending_.h = h;
    outbox_->push(pending_);
    pending_defer_ = false;
    return;
  }
  queue_->schedule_resume(t, this, h);
}

void Proc::resume_event(Cycles t, std::coroutine_handle<> h) {
  begin_slice(t);
  if (run_.active) {
    // Re-enter the suspended run without resuming the coroutine; only a
    // completed run hands control back to the application code.
    Cycles resume_at = 0;
    if (!run_step(resume_at)) {
      schedule_resume(resume_at, h);
      if (obs_ != nullptr) obs_->on_slice(id_, t, now_);
      return;
    }
    run_.active = false;
  }
  h.resume();
  note_if_finished();
  if (obs_ != nullptr) obs_->on_slice(id_, t, now_);
}

void Proc::launch() {
  begin_slice(0);
  root.start();
  note_if_finished();
  if (obs_ != nullptr) obs_->on_slice(id_, 0, now_);
}

void Proc::note_if_finished() noexcept {
  if (!finished && root.valid() && root.done()) {
    finished = true;
    finish_time = now_;
  }
}

bool Proc::do_read(Addr a, Cycles& resume_at) {
  if (sampling_ != nullptr) return sampled_read(a, resume_at);
  return detail_read(a, resume_at);
}

bool Proc::do_write(Addr a, Cycles& resume_at) {
  if (sampling_ != nullptr) return sampled_write(a, resume_at);
  return detail_write(a, resume_at);
}

bool Proc::sampled_read(Addr a, Cycles& resume_at) {
  if (sampling_->detail()) {
    const bool ok = detail_read(a, resume_at);
    sampling_->on_ref(now_);
    if (ok && sampling_->yield_due()) [[unlikely]] {
      // Shard-mode epoch cap (parallel sampled runs): end the slice so the
      // epoch can close and the coordinator can flip the regime.
      resume_at = now_;
      return false;
    }
    return ok;
  }
  return warm_read(a, resume_at);
}

bool Proc::sampled_write(Addr a, Cycles& resume_at) {
  if (sampling_->detail()) {
    const bool ok = detail_write(a, resume_at);
    sampling_->on_ref(now_);
    if (ok && sampling_->yield_due()) [[unlikely]] {
      resume_at = now_;
      return false;
    }
    return ok;
  }
  return warm_write(a, resume_at);
}

bool Proc::warm_read(Addr a, Cycles& resume_at) {
  if (!sampling_->fast_forward()) {
    const Addr line = a & line_mask_;
    bool filtered = false;
    if (gen_ != nullptr) {
      const FilterEntry& e = warm_filter_[warm_slot(line)];
      if (e.line == line && e.gen == *gen_) {
        ++hot_->reads;
        ++hot_->read_hits;
        if (touch_cache_ != nullptr) touch_cache_->touch(line);
        filtered = true;
      }
    }
    if (!filtered) {
      if (outbox_ == nullptr) {
        const AccessResult r = coh_->read(id_, a, now_);
        if (r.hint != MruHint::None && gen_ != nullptr) {
          warm_filter_[warm_slot(line)] =
              FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
        }
      } else if (const auto lr = coh_->local_read(id_, a, now_)) {
        if (lr->hint != MruHint::None && gen_ != nullptr) {
          warm_filter_[warm_slot(line)] =
              FilterEntry{line, *gen_, lr->hint == MruHint::ReadWrite};
        }
      } else {
        // Cross-cluster warming access: commit at the epoch boundary. The
        // issuer never stalls (warming has no latency), so this entry is
        // non-blocking — it neither suspends this processor nor forces the
        // epoch to end.
        outbox_->push(Deferred{Deferred::Kind::WarmRead, a, nullptr, nullptr,
                               now_, {}, this});
      }
    }
  }
  const Cycles hit = cfg_->hit_latency;
  buckets_.cpu += hit;
  now_ += hit;
  sampling_->on_ref(now_);
  if (sampling_->yield_due()) [[unlikely]] {
    resume_at = now_;
    return false;
  }
  return check_slice(resume_at);
}

bool Proc::warm_write(Addr a, Cycles& resume_at) {
  if (!sampling_->fast_forward()) {
    const Addr line = a & line_mask_;
    bool filtered = false;
    if (gen_ != nullptr) {
      const FilterEntry& e = warm_filter_[warm_slot(line)];
      if (e.line == line && e.writable && e.gen == *gen_) {
        ++hot_->writes;
        ++hot_->write_hits;
        if (touch_cache_ != nullptr) touch_cache_->touch(line);
        filtered = true;
      }
    }
    if (!filtered) {
      if (outbox_ == nullptr) {
        const AccessResult r = coh_->write(id_, a, now_);
        if (r.hint != MruHint::None && gen_ != nullptr) {
          warm_filter_[warm_slot(line)] =
              FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
        }
      } else if (const auto lw = coh_->local_write(id_, a, now_)) {
        if (lw->hint != MruHint::None && gen_ != nullptr) {
          warm_filter_[warm_slot(line)] =
              FilterEntry{line, *gen_, lw->hint == MruHint::ReadWrite};
        }
      } else {
        outbox_->push(Deferred{Deferred::Kind::WarmWrite, a, nullptr, nullptr,
                               now_, {}, this});
      }
    }
  }
  const Cycles hit = cfg_->hit_latency;
  buckets_.cpu += hit;
  now_ += hit;
  sampling_->on_ref(now_);
  if (sampling_->yield_due()) [[unlikely]] {
    resume_at = now_;
    return false;
  }
  return check_slice(resume_at);
}

bool Proc::detail_read(Addr a, Cycles& resume_at) {
  const Addr line = a & line_mask_;
  if (gen_ != nullptr) {
    const FilterEntry& e = filter_[filter_slot(line)];
    if (e.line == line && e.gen == *gen_) {
      // Repeat hit to a hinted line, cluster generation unchanged: bypass
      // the memory system, mirroring its hit-path counter updates and (for
      // bounded LRU caches) its most-recently-used promotion.
      ++hot_->reads;
      ++hot_->read_hits;
      if (touch_cache_ != nullptr) touch_cache_->touch(line);
      const Cycles hit = access_cost();
      buckets_.cpu += hit;
      now_ += hit;
      return check_slice(resume_at);
    }
  }
  AccessResult r;
  if (outbox_ == nullptr) {
    r = coh_->read(id_, a, now_);
  } else if (const auto lr = coh_->local_read(id_, a, now_)) {
    r = *lr;
  } else {
    // Globally-visible read: defer to the window boundary. The suspension
    // that follows (OpAwaiter / run_step yield) lands in schedule_resume,
    // which captures the handle into the outbox.
    wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, a, 0, now_};
    pending_ = Deferred{Deferred::Kind::Read, a, nullptr, nullptr, now_, {},
                        this};
    pending_defer_ = true;
    resume_at = now_;
    return false;
  }
  if (r.hint != MruHint::None && gen_ != nullptr) {
    filter_[filter_slot(line)] =
        FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
  }
  const Cycles hit = access_cost();
  switch (r.kind) {
    case AccessResult::Kind::Hit:
      buckets_.cpu += hit;
      buckets_.contention += r.contention;
      now_ += hit + r.contention;
      return check_slice(resume_at);
    case AccessResult::Kind::Merge: {
      const Cycles issued = now_;
      buckets_.cpu += hit;
      buckets_.contention += r.contention;
      const Cycles issue_done = now_ + hit + r.contention;
      const Cycles stall = r.ready_at > issue_done ? r.ready_at - issue_done : 0;
      buckets_.merge += stall;
      now_ = issue_done + stall;
      resume_at = now_;
      wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, a, now_, issued};
      if (obs_ != nullptr) {
        obs_->on_memory_stall(id_, a, Observer::Stall::Merge, issue_done, now_,
                              r.lclass);
      }
      return false;  // a stall always yields to the queue
    }
    case AccessResult::Kind::ReadMiss:
    case AccessResult::Kind::NearHit: {
      // NearHit: served within the cluster (snoop / attraction memory) in
      // the shared-main-memory organization; the stall is still load time.
      // Queueing delays (bank / directory / NIC waits) are charged to the
      // contention bucket, separating Table 1 latency from backlog stalls.
      const Cycles issued = now_;
      buckets_.cpu += hit;
      buckets_.load += r.latency;
      buckets_.contention += r.contention;
      now_ += hit + r.latency + r.contention;
      resume_at = now_;
      wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, a, now_, issued};
      if (obs_ != nullptr) {
        obs_->on_memory_stall(id_, a, Observer::Stall::Load, issued + hit,
                              now_, r.lclass);
      }
      return false;
    }
    default:
      // Writes never come back from CoherenceController::read.
      return check_slice(resume_at);
  }
}

bool Proc::detail_write(Addr a, Cycles& resume_at) {
  const Addr line = a & line_mask_;
  const FilterEntry* fe = nullptr;
  if (gen_ != nullptr) {
    const FilterEntry& e = filter_[filter_slot(line)];
    if (e.line == line && e.writable && e.gen == *gen_) fe = &e;
  }
  if (fe != nullptr) {
    // Repeat store to our own EXCLUSIVE line, cluster generation unchanged:
    // bypass the memory system, mirroring its write-hit counter updates and
    // (for bounded LRU caches) its most-recently-used promotion.
    ++hot_->writes;
    ++hot_->write_hits;
    if (touch_cache_ != nullptr) touch_cache_->touch(line);
  } else {
    AccessResult r;
    if (outbox_ == nullptr) {
      r = coh_->write(id_, a, now_);
    } else if (const auto lw = coh_->local_write(id_, a, now_)) {
      r = *lw;
    } else {
      // Directory work (upgrade / write miss): window-boundary territory.
      wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, a, 0, now_};
      pending_ = Deferred{Deferred::Kind::Write, a, nullptr, nullptr, now_,
                          {}, this};
      pending_defer_ = true;
      resume_at = now_;
      return false;
    }
    if (r.hint != MruHint::None && gen_ != nullptr) {
      filter_[filter_slot(line)] =
          FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
    }
    // The store buffer hides miss latency but not the port queue: issue
    // itself waits for the bank/bus, a processor-visible contention stall.
    buckets_.contention += r.contention;
    now_ += r.contention;
  }
  // Store issue occupies the cache for one access; all miss/upgrade latency
  // is hidden by the store buffer under relaxed consistency.
  const Cycles cost = access_cost();
  buckets_.cpu += cost;
  now_ += cost;
  return check_slice(resume_at);
}

bool Proc::do_compute(Cycles n, Cycles& resume_at) {
  buckets_.cpu += n;
  now_ += n;
  return check_slice(resume_at);
}

bool Proc::run_step(Cycles& resume_at) {
  if (sampling_ != nullptr) return run_step_sampled(resume_at);
  RunState& r = run_;
  while (r.idx < r.count) {
    while (r.pc < r.num_ops) {
      const RunOp& op = r.ops[r.pc];
      ++r.pc;
      bool ok;
      switch (op.kind) {
        case RunOp::Kind::Read:
          ok = do_read(op.base + Addr{r.idx} * op.stride, resume_at);
          break;
        case RunOp::Kind::Write:
          ok = do_write(op.base + Addr{r.idx} * op.stride, resume_at);
          break;
        default:
          ok = do_compute(op.base, resume_at);
          break;
      }
      if (!ok) return false;
    }
    r.pc = 0;
    ++r.idx;
  }
  return true;
}

bool Proc::run_step_sampled(Cycles& resume_at) {
  RunState& r = run_;
  while (r.idx < r.count) {
    // Batched fast path: in a non-detail regime, whole groups of run
    // iterations retire per memory probe, whatever the op mix. Requires the
    // hit filter (gen_) to mirror the repeat-hit counter updates in bulk —
    // except in FastForward, which makes no memory calls at all. Per-ref
    // and batched warming retire identical timing (flat costs; the
    // iteration that crosses a slice, regime, or poll point always runs
    // per reference), so mixing them across runs stays exact.
    if (r.pc == 0 && !sampling_->detail() &&
        (sampling_->fast_forward() || gen_ != nullptr)) {
      bool progressed = false;
      if (!warm_run_batch(resume_at, progressed)) return false;
      if (progressed) continue;
    }
    while (r.pc < r.num_ops) {
      const RunOp& op = r.ops[r.pc];
      ++r.pc;
      bool ok;
      switch (op.kind) {
        case RunOp::Kind::Read:
          ok = do_read(op.base + Addr{r.idx} * op.stride, resume_at);
          break;
        case RunOp::Kind::Write:
          ok = do_write(op.base + Addr{r.idx} * op.stride, resume_at);
          break;
        default:
          ok = do_compute(op.base, resume_at);
          break;
      }
      if (!ok) return false;
    }
    r.pc = 0;
    ++r.idx;
  }
  return true;
}

bool Proc::warm_run_batch(Cycles& resume_at, bool& progressed) {
  RunState& r = run_;
  const Cycles hit = cfg_->hit_latency;
  // Flat cost and memory-reference count of one whole iteration.
  Cycles per_iter = 0;
  std::uint64_t mem_per_iter = 0;
  for (unsigned j = 0; j < r.num_ops; ++j) {
    if (r.ops[j].kind == RunOp::Kind::Compute) {
      per_iter += r.ops[j].base;
    } else {
      per_iter += hit;
      ++mem_per_iter;
    }
  }
  if (per_iter == 0) {  // zero-cost iterations: nothing to amortize
    progressed = false;
    return true;
  }
  // Cap 1: remaining iterations of the run.
  std::uint64_t k = r.count - r.idx;
  // Cap 2: whole iterations left in the slice (now_ < slice_end_ here; the
  // crossing iteration runs per reference, preserving the exact yield
  // cycle of unbatched warming).
  const std::uint64_t in_slice = (slice_end_ - now_) / per_iter;
  if (in_slice < k) k = in_slice;
  // Cap 3: never cross a regime boundary or a watchdog poll point (the
  // crossing iteration runs per reference, so boundaries land mid-iteration
  // on exactly the right reference).
  if (mem_per_iter != 0) {
    const std::uint64_t in_regime = sampling_->max_batch() / mem_per_iter;
    if (in_regime < k) k = in_regime;
  }
  if (k == 0) {
    progressed = false;
    return true;
  }

  if (!sampling_->fast_forward()) {
    // Memory state (FastForward makes no accesses): walk the group in
    // line-sized chunks — within a chunk every memory op stays on one cache
    // line, so a single real access (or warm-filter probe) covers it and
    // the rest are exactly the repeat hits the filter would short-circuit,
    // bumped in bulk. Chunking inside one call, instead of capping the
    // batch at a line crossing, amortizes the batch setup over strided
    // streams whose chunks are a single iteration (LU's block sweeps).
    // (Filter collisions between ops are harmless: the filter is a
    // digest-neutral fast path, so extra real accesses to a warm line
    // count identically.)
    std::uint64_t remaining = k;
    while (remaining != 0) {
      std::uint64_t chunk = remaining;
      for (unsigned j = 0; j < r.num_ops && chunk > 1; ++j) {
        const RunOp& op = r.ops[j];
        if (op.kind == RunOp::Kind::Compute || op.stride == 0) continue;
        const Addr addr = op.base + Addr{r.idx} * op.stride;
        const Addr next_line = (addr | ~line_mask_) + 1;
        const std::uint64_t in_line =
            (next_line - addr + op.stride - 1) / op.stride;
        if (in_line < chunk) chunk = in_line;
      }
      for (unsigned j = 0; j < r.num_ops; ++j) {
        const RunOp& op = r.ops[j];
        if (op.kind == RunOp::Kind::Compute) continue;
        const bool is_read = op.kind == RunOp::Kind::Read;
        const Addr addr = op.base + Addr{r.idx} * op.stride;
        const Addr line = addr & line_mask_;
        const FilterEntry& e = warm_filter_[warm_slot(line)];
        std::uint64_t repeats = chunk;
        if (!(e.line == line && (is_read || e.writable) && e.gen == *gen_)) {
          if (outbox_ == nullptr) {
            const AccessResult ar = is_read ? coh_->read(id_, addr, now_)
                                            : coh_->write(id_, addr, now_);
            if (ar.hint != MruHint::None) {
              warm_filter_[warm_slot(line)] =
                  FilterEntry{line, *gen_, ar.hint == MruHint::ReadWrite};
            }
          } else if (const auto ar = is_read
                         ? coh_->local_read(id_, addr, now_)
                         : coh_->local_write(id_, addr, now_)) {
            if (ar->hint != MruHint::None) {
              warm_filter_[warm_slot(line)] =
                  FilterEntry{line, *gen_, ar->hint == MruHint::ReadWrite};
            }
          } else {
            // Deferred cross-cluster access: the boundary commit is the one
            // real access of this chunk; the rest are its repeat hits.
            outbox_->push(Deferred{is_read ? Deferred::Kind::WarmRead
                                           : Deferred::Kind::WarmWrite,
                                   addr, nullptr, nullptr, now_, {}, this});
          }
          repeats = chunk - 1;
        }
        if (repeats != 0) {
          if (is_read) {
            hot_->reads += repeats;
            hot_->read_hits += repeats;
          } else {
            hot_->writes += repeats;
            hot_->write_hits += repeats;
          }
          if (touch_cache_ != nullptr) touch_cache_->touch(line);
        }
      }
      // Advance the local clock per chunk so real accesses carry the same
      // timestamps a line-capped batch sequence would have issued.
      buckets_.cpu += chunk * per_iter;
      now_ += chunk * per_iter;
      r.idx += static_cast<std::uint32_t>(chunk);
      remaining -= chunk;
    }
  } else {
    buckets_.cpu += k * per_iter;
    now_ += k * per_iter;
    r.idx += static_cast<std::uint32_t>(k);
  }
  if (mem_per_iter != 0) sampling_->on_refs(k * mem_per_iter, now_);
  progressed = true;
  if (sampling_->yield_due()) [[unlikely]] {
    resume_at = now_;
    return false;
  }
  return check_slice(resume_at);
}

Proc::RunAwaiter Proc::run(const RunOp* ops, unsigned num_ops,
                           std::uint32_t count) {
  if (num_ops > kMaxRunOps) {
    throw std::invalid_argument("Proc::run: more than kMaxRunOps ops");
  }
  RunState& r = run_;
  r.num_ops = num_ops;
  std::copy(ops, ops + num_ops, r.ops.begin());
  r.pc = 0;
  r.idx = 0;
  r.count = count;
  r.active = true;
  RunAwaiter aw{this};
  aw.ready = run_step(aw.resume_at);
  if (aw.ready) r.active = false;
  return aw;
}

Proc::RunAwaiter Proc::run(std::initializer_list<RunOp> ops,
                           std::uint32_t count) {
  return run(ops.begin(), static_cast<unsigned>(ops.size()), count);
}

Proc::RunAwaiter Proc::run(Addr base, Addr stride, std::uint32_t count,
                           bool is_write, Cycles compute_per_ref) {
  const RunOp access =
      is_write ? RunOp::write(base, stride) : RunOp::read(base, stride);
  if (compute_per_ref != 0) {
    return run({access, RunOp::compute(compute_per_ref)}, count);
  }
  return run({access}, count);
}

bool Proc::BarrierAwaiter::await_ready() const {
  // Parallel windows: every arrival defers — barrier state is coordinator-
  // only, and even the would-be last arriver cannot know it is last until
  // all partitions quiesce at the boundary.
  if (p->outbox_ != nullptr) return false;
  Barrier& bar = *b;
  if (bar.arrived_ + 1 < bar.participants_) return false;
  // Last arriver: release everyone at (no earlier than) our current time.
  const Cycles release = p->now_;
  if (p->obs_ != nullptr) p->obs_->on_barrier_arrive(p->id_, b, release);
  const unsigned released = static_cast<unsigned>(bar.waiters_.size()) + 1;
  for (auto& w : bar.waiters_) {
    const Cycles t = std::max(release, w.arrival);
    w.p->mutable_buckets().sync += t - w.arrival;
    w.p->schedule_resume(t, w.h);
  }
  bar.waiters_.clear();
  bar.arrived_ = 0;
  ++bar.generations_;
  if (p->obs_ != nullptr) p->obs_->on_barrier_release(b, released, release);
  return true;
}

void Proc::BarrierAwaiter::await_suspend(std::coroutine_handle<> h) const {
  if (p->outbox_ != nullptr) {
    p->wait_ = WaitInfo{WaitKind::Barrier, b, nullptr, 0, 0, p->now_};
    p->outbox_->push(
        Deferred{Deferred::Kind::BarrierArrive, 0, b, nullptr, p->now_, h, p});
    return;
  }
  Barrier& bar = *b;
  ++bar.arrived_;
  bar.waiters_.push_back(Barrier::Waiter{h, p, p->now_});
  p->wait_ = WaitInfo{WaitKind::Barrier, b, nullptr, 0, 0, p->now_};
  if (p->obs_ != nullptr) p->obs_->on_barrier_arrive(p->id_, b, p->now_);
}

bool Proc::AcquireAwaiter::await_ready() const {
  // Acquisition is a globally visible action: even an uncontended acquire
  // takes a queue round-trip so that other processors at the same simulated
  // time observe the lock as held (otherwise a critical section shorter than
  // the run-ahead quantum could overlap with a cluster-mate's).
  return false;
}

void Proc::AcquireAwaiter::await_suspend(std::coroutine_handle<> h) const {
  if (p->outbox_ != nullptr) {
    p->wait_ = WaitInfo{WaitKind::Lock, nullptr, l, 0, 0, p->now_};
    p->outbox_->push(
        Deferred{Deferred::Kind::LockAcquire, 0, nullptr, l, p->now_, h, p});
    return;
  }
  Lock& lk = *l;
  if (!lk.held_) {
    lk.held_ = true;
    lk.owner_ = p->id();
    ++lk.acquisitions_;
    p->schedule_resume(p->now_, h);
    return;
  }
  ++lk.contended_;
  lk.waiters_.push_back(Lock::Waiter{h, p, p->now_});
  p->wait_ = WaitInfo{WaitKind::Lock, nullptr, l, 0, 0, p->now_};
  if (p->obs_ != nullptr) p->obs_->on_lock_wait(p->id_, l, p->now_);
}

void Proc::release(Lock& l) {
  if (outbox_ != nullptr) {
    // Lock state is coordinator-only in parallel mode; the release takes
    // effect at the boundary. The releaser itself never suspends.
    outbox_->push(
        Deferred{Deferred::Kind::LockRelease, 0, nullptr, &l, now_, {}, this});
    return;
  }
  if (!l.held_) return;
  if (l.waiters_.empty()) {
    l.held_ = false;
    return;
  }
  Lock::Waiter w = l.waiters_.front();
  l.waiters_.pop_front();
  const Cycles t = std::max(now_, w.arrival);
  w.p->mutable_buckets().sync += t - w.arrival;
  l.owner_ = w.p->id();
  ++l.acquisitions_;
  w.p->schedule_resume(t, w.h);
}

// --- Window-boundary execution (coordinator; every partition quiescent) ----

void Proc::finish_deferred(const Deferred& d, Cycles floor) {
  switch (d.kind) {
    case Deferred::Kind::Read: finish_read(d, floor); break;
    case Deferred::Kind::Write: finish_write(d, floor); break;
    case Deferred::Kind::BarrierArrive: finish_barrier_arrive(d, floor); break;
    case Deferred::Kind::LockAcquire: finish_lock_acquire(d, floor); break;
    case Deferred::Kind::LockRelease: finish_lock_release(d, floor); break;
    case Deferred::Kind::WarmRead:
    case Deferred::Kind::WarmWrite: finish_warm(d); break;
  }
}

void Proc::finish_warm(const Deferred& d) {
  // Functional mode is still on (the coordinator flips regimes only after
  // the boundary drain), so this is exactly the access warming would have
  // made inline: state and counters through the full protocol path, no
  // timing, no MSHRs. The hint is installed under the *current* generation
  // — earlier commits of this very drain may have bumped it.
  const AccessResult r = d.kind == Deferred::Kind::WarmRead
                             ? coh_->read(id_, d.addr, d.t)
                             : coh_->write(id_, d.addr, d.t);
  if (r.hint != MruHint::None && gen_ != nullptr) {
    const Addr line = d.addr & line_mask_;
    warm_filter_[warm_slot(line)] =
        FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
  }
}

void Proc::finish_read(const Deferred& d, Cycles floor) {
  // Re-issue the FULL read at its original time: an earlier boundary op of
  // the same drain (a same-cluster fill, a peer's upgrade) may have changed
  // what this access sees, and the full path classifies it correctly —
  // including Hit/Merge against state another deferred op just created.
  const AccessResult r = coh_->read(id_, d.addr, d.t);
  const Addr line = d.addr & line_mask_;
  if (r.hint != MruHint::None && gen_ != nullptr) {
    filter_[filter_slot(line)] =
        FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
  }
  const Cycles hit = access_cost();
  Cycles done;
  bool merge = false;
  switch (r.kind) {
    case AccessResult::Kind::Hit:
      buckets_.cpu += hit;
      done = d.t + hit;
      break;
    case AccessResult::Kind::Merge: {
      buckets_.cpu += hit;
      const Cycles issue_done = d.t + hit;
      const Cycles stall = r.ready_at > issue_done ? r.ready_at - issue_done : 0;
      buckets_.merge += stall;
      done = issue_done + stall;
      merge = true;
      break;
    }
    default:  // ReadMiss / NearHit
      buckets_.cpu += hit;
      buckets_.load += r.latency;
      done = d.t + hit + r.latency;
      break;
  }
  // The outcome was only determined at the boundary: resume no earlier than
  // the next window, the gap charged to the bucket the stall belongs to.
  const Cycles res = std::max(done, floor);
  (merge ? buckets_.merge : buckets_.load) += res - done;
  now_ = res;
  wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, d.addr, res, d.t};
  queue_->schedule_resume(res, this, d.h);
}

void Proc::finish_write(const Deferred& d, Cycles floor) {
  const AccessResult r = coh_->write(id_, d.addr, d.t);
  const Addr line = d.addr & line_mask_;
  if (r.hint != MruHint::None && gen_ != nullptr) {
    filter_[filter_slot(line)] =
        FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
  }
  // Store issue occupies the cache for one access; miss/upgrade latency is
  // hidden by the store buffer exactly as on the inline path.
  const Cycles cost = access_cost();
  buckets_.cpu += cost;
  const Cycles done = d.t + cost;
  const Cycles res = std::max(done, floor);
  buckets_.load += res - done;
  now_ = res;
  wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, d.addr, res, d.t};
  queue_->schedule_resume(res, this, d.h);
}

void Proc::finish_barrier_arrive(const Deferred& d, Cycles floor) {
  Barrier& bar = *d.barrier;
  if (bar.arrived_ + 1 < bar.participants_) {
    ++bar.arrived_;
    bar.waiters_.push_back(Barrier::Waiter{d.h, this, d.t});
    return;  // wait_ was set at suspension; stays until release
  }
  // Last arrival of the generation: release everyone. Waiters resume at the
  // latest of the release time, their own arrival, and the window floor.
  const Cycles release = d.t;
  for (auto& w : bar.waiters_) {
    const Cycles t = std::max(std::max(release, w.arrival), floor);
    w.p->mutable_buckets().sync += t - w.arrival;
    w.p->queue_->schedule_resume(t, w.p, w.h);
  }
  bar.waiters_.clear();
  bar.arrived_ = 0;
  ++bar.generations_;
  const Cycles t = std::max(release, floor);
  buckets_.sync += t - d.t;
  now_ = t;
  queue_->schedule_resume(t, this, d.h);
}

void Proc::finish_lock_acquire(const Deferred& d, Cycles floor) {
  Lock& lk = *d.lock;
  if (!lk.held_) {
    lk.held_ = true;
    lk.owner_ = id_;
    ++lk.acquisitions_;
    const Cycles t = std::max(d.t, floor);
    buckets_.sync += t - d.t;
    now_ = t;
    queue_->schedule_resume(t, this, d.h);
    return;
  }
  ++lk.contended_;
  lk.waiters_.push_back(Lock::Waiter{d.h, this, d.t});
  // wait_ was set at suspension; stays until the owner releases.
}

void Proc::finish_lock_release(const Deferred& d, Cycles floor) {
  Lock& lk = *d.lock;
  if (!lk.held_) return;
  if (lk.waiters_.empty()) {
    lk.held_ = false;
    return;
  }
  Lock::Waiter w = lk.waiters_.front();
  lk.waiters_.pop_front();
  const Cycles t = std::max(std::max(d.t, w.arrival), floor);
  w.p->mutable_buckets().sync += t - w.arrival;
  lk.owner_ = w.p->id();
  ++lk.acquisitions_;
  w.p->queue_->schedule_resume(t, w.p, w.h);
}

}  // namespace csim
