#include "src/core/processor.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/sync.hpp"
#include "src/mem/cache.hpp"
#include "src/obs/observer.hpp"

namespace csim {

void Proc::schedule_resume(Cycles t, std::coroutine_handle<> h) {
  queue_->schedule_resume(t, this, h);
}

void Proc::resume_event(Cycles t, std::coroutine_handle<> h) {
  begin_slice(t);
  if (run_.active) {
    // Re-enter the suspended run without resuming the coroutine; only a
    // completed run hands control back to the application code.
    Cycles resume_at = 0;
    if (!run_step(resume_at)) {
      schedule_resume(resume_at, h);
      if (obs_ != nullptr) obs_->on_slice(id_, t, now_);
      return;
    }
    run_.active = false;
  }
  h.resume();
  note_if_finished();
  if (obs_ != nullptr) obs_->on_slice(id_, t, now_);
}

void Proc::launch() {
  begin_slice(0);
  root.start();
  note_if_finished();
  if (obs_ != nullptr) obs_->on_slice(id_, 0, now_);
}

void Proc::note_if_finished() noexcept {
  if (!finished && root.valid() && root.done()) {
    finished = true;
    finish_time = now_;
  }
}

bool Proc::do_read(Addr a, Cycles& resume_at) {
  const Addr line = a & line_mask_;
  if (gen_ != nullptr) {
    const FilterEntry& e = filter_[filter_slot(line)];
    if (e.line == line && e.gen == *gen_) {
      // Repeat hit to a hinted line, cluster generation unchanged: bypass
      // the memory system, mirroring its hit-path counter updates and (for
      // bounded LRU caches) its most-recently-used promotion.
      ++hot_->reads;
      ++hot_->read_hits;
      if (touch_cache_ != nullptr) touch_cache_->touch(line);
      const Cycles hit = access_cost();
      buckets_.cpu += hit;
      now_ += hit;
      return check_slice(resume_at);
    }
  }
  const AccessResult r = coh_->read(id_, a, now_);
  if (r.hint != MruHint::None && gen_ != nullptr) {
    filter_[filter_slot(line)] =
        FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
  }
  const Cycles hit = access_cost();
  switch (r.kind) {
    case AccessResult::Kind::Hit:
      buckets_.cpu += hit;
      buckets_.contention += r.contention;
      now_ += hit + r.contention;
      return check_slice(resume_at);
    case AccessResult::Kind::Merge: {
      const Cycles issued = now_;
      buckets_.cpu += hit;
      buckets_.contention += r.contention;
      const Cycles issue_done = now_ + hit + r.contention;
      const Cycles stall = r.ready_at > issue_done ? r.ready_at - issue_done : 0;
      buckets_.merge += stall;
      now_ = issue_done + stall;
      resume_at = now_;
      wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, a, now_, issued};
      if (obs_ != nullptr) {
        obs_->on_memory_stall(id_, a, Observer::Stall::Merge, issue_done, now_,
                              r.lclass);
      }
      return false;  // a stall always yields to the queue
    }
    case AccessResult::Kind::ReadMiss:
    case AccessResult::Kind::NearHit: {
      // NearHit: served within the cluster (snoop / attraction memory) in
      // the shared-main-memory organization; the stall is still load time.
      // Queueing delays (bank / directory / NIC waits) are charged to the
      // contention bucket, separating Table 1 latency from backlog stalls.
      const Cycles issued = now_;
      buckets_.cpu += hit;
      buckets_.load += r.latency;
      buckets_.contention += r.contention;
      now_ += hit + r.latency + r.contention;
      resume_at = now_;
      wait_ = WaitInfo{WaitKind::Memory, nullptr, nullptr, a, now_, issued};
      if (obs_ != nullptr) {
        obs_->on_memory_stall(id_, a, Observer::Stall::Load, issued + hit,
                              now_, r.lclass);
      }
      return false;
    }
    default:
      // Writes never come back from CoherenceController::read.
      return check_slice(resume_at);
  }
}

bool Proc::do_write(Addr a, Cycles& resume_at) {
  const Addr line = a & line_mask_;
  const FilterEntry* fe = nullptr;
  if (gen_ != nullptr) {
    const FilterEntry& e = filter_[filter_slot(line)];
    if (e.line == line && e.writable && e.gen == *gen_) fe = &e;
  }
  if (fe != nullptr) {
    // Repeat store to our own EXCLUSIVE line, cluster generation unchanged:
    // bypass the memory system, mirroring its write-hit counter updates and
    // (for bounded LRU caches) its most-recently-used promotion.
    ++hot_->writes;
    ++hot_->write_hits;
    if (touch_cache_ != nullptr) touch_cache_->touch(line);
  } else {
    const AccessResult r = coh_->write(id_, a, now_);
    if (r.hint != MruHint::None && gen_ != nullptr) {
      filter_[filter_slot(line)] =
          FilterEntry{line, *gen_, r.hint == MruHint::ReadWrite};
    }
    // The store buffer hides miss latency but not the port queue: issue
    // itself waits for the bank/bus, a processor-visible contention stall.
    buckets_.contention += r.contention;
    now_ += r.contention;
  }
  // Store issue occupies the cache for one access; all miss/upgrade latency
  // is hidden by the store buffer under relaxed consistency.
  const Cycles cost = access_cost();
  buckets_.cpu += cost;
  now_ += cost;
  return check_slice(resume_at);
}

bool Proc::do_compute(Cycles n, Cycles& resume_at) {
  buckets_.cpu += n;
  now_ += n;
  return check_slice(resume_at);
}

bool Proc::run_step(Cycles& resume_at) {
  RunState& r = run_;
  while (r.idx < r.count) {
    while (r.pc < r.num_ops) {
      const RunOp& op = r.ops[r.pc];
      ++r.pc;
      bool ok;
      switch (op.kind) {
        case RunOp::Kind::Read:
          ok = do_read(op.base + Addr{r.idx} * op.stride, resume_at);
          break;
        case RunOp::Kind::Write:
          ok = do_write(op.base + Addr{r.idx} * op.stride, resume_at);
          break;
        default:
          ok = do_compute(op.base, resume_at);
          break;
      }
      if (!ok) return false;
    }
    r.pc = 0;
    ++r.idx;
  }
  return true;
}

Proc::RunAwaiter Proc::run(const RunOp* ops, unsigned num_ops,
                           std::uint32_t count) {
  if (num_ops > kMaxRunOps) {
    throw std::invalid_argument("Proc::run: more than kMaxRunOps ops");
  }
  RunState& r = run_;
  r.num_ops = num_ops;
  std::copy(ops, ops + num_ops, r.ops.begin());
  r.pc = 0;
  r.idx = 0;
  r.count = count;
  r.active = true;
  RunAwaiter aw{this};
  aw.ready = run_step(aw.resume_at);
  if (aw.ready) r.active = false;
  return aw;
}

Proc::RunAwaiter Proc::run(std::initializer_list<RunOp> ops,
                           std::uint32_t count) {
  return run(ops.begin(), static_cast<unsigned>(ops.size()), count);
}

Proc::RunAwaiter Proc::run(Addr base, Addr stride, std::uint32_t count,
                           bool is_write, Cycles compute_per_ref) {
  const RunOp access =
      is_write ? RunOp::write(base, stride) : RunOp::read(base, stride);
  if (compute_per_ref != 0) {
    return run({access, RunOp::compute(compute_per_ref)}, count);
  }
  return run({access}, count);
}

bool Proc::BarrierAwaiter::await_ready() const {
  Barrier& bar = *b;
  if (bar.arrived_ + 1 < bar.participants_) return false;
  // Last arriver: release everyone at (no earlier than) our current time.
  const Cycles release = p->now_;
  if (p->obs_ != nullptr) p->obs_->on_barrier_arrive(p->id_, b, release);
  const unsigned released = static_cast<unsigned>(bar.waiters_.size()) + 1;
  for (auto& w : bar.waiters_) {
    const Cycles t = std::max(release, w.arrival);
    w.p->mutable_buckets().sync += t - w.arrival;
    w.p->schedule_resume(t, w.h);
  }
  bar.waiters_.clear();
  bar.arrived_ = 0;
  ++bar.generations_;
  if (p->obs_ != nullptr) p->obs_->on_barrier_release(b, released, release);
  return true;
}

void Proc::BarrierAwaiter::await_suspend(std::coroutine_handle<> h) const {
  Barrier& bar = *b;
  ++bar.arrived_;
  bar.waiters_.push_back(Barrier::Waiter{h, p, p->now_});
  p->wait_ = WaitInfo{WaitKind::Barrier, b, nullptr, 0, 0, p->now_};
  if (p->obs_ != nullptr) p->obs_->on_barrier_arrive(p->id_, b, p->now_);
}

bool Proc::AcquireAwaiter::await_ready() const {
  // Acquisition is a globally visible action: even an uncontended acquire
  // takes a queue round-trip so that other processors at the same simulated
  // time observe the lock as held (otherwise a critical section shorter than
  // the run-ahead quantum could overlap with a cluster-mate's).
  return false;
}

void Proc::AcquireAwaiter::await_suspend(std::coroutine_handle<> h) const {
  Lock& lk = *l;
  if (!lk.held_) {
    lk.held_ = true;
    lk.owner_ = p->id();
    ++lk.acquisitions_;
    p->schedule_resume(p->now_, h);
    return;
  }
  ++lk.contended_;
  lk.waiters_.push_back(Lock::Waiter{h, p, p->now_});
  p->wait_ = WaitInfo{WaitKind::Lock, nullptr, l, 0, 0, p->now_};
  if (p->obs_ != nullptr) p->obs_->on_lock_wait(p->id_, l, p->now_);
}

void Proc::release(Lock& l) {
  if (!l.held_) return;
  if (l.waiters_.empty()) {
    l.held_ = false;
    return;
  }
  Lock::Waiter w = l.waiters_.front();
  l.waiters_.pop_front();
  const Cycles t = std::max(now_, w.arrival);
  w.p->mutable_buckets().sync += t - w.arrival;
  l.owner_ = w.p->id();
  ++l.acquisitions_;
  w.p->schedule_resume(t, w.h);
}

}  // namespace csim
