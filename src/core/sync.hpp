// Synchronization primitives for simulated programs: barriers and FIFO locks.
//
// Wait time is charged to the waiting processor's sync bucket. Barrier
// release and lock handoff are instantaneous (the paper does not model
// synchronization hardware latency; synchronization *wait* — load imbalance
// and serialization — is what its bars show).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

class Proc;

/// A reusable counting barrier for a fixed set of participants. The optional
/// name shows up in deadlock/livelock diagnostics (MachineSnapshot).
class Barrier {
 public:
  explicit Barrier(unsigned participants, std::string name = {})
      : participants_(participants), name_(std::move(name)) {}

  [[nodiscard]] unsigned participants() const noexcept { return participants_; }
  [[nodiscard]] unsigned arrived() const noexcept { return arrived_; }
  [[nodiscard]] std::uint64_t generations() const noexcept { return generations_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class Proc;
  struct Waiter {
    std::coroutine_handle<> h;
    Proc* p;
    Cycles arrival;
  };
  unsigned participants_;
  unsigned arrived_ = 0;
  std::uint64_t generations_ = 0;
  std::string name_;
  std::vector<Waiter> waiters_;
};

/// A FIFO mutual-exclusion lock. The optional name shows up in
/// deadlock/livelock diagnostics (MachineSnapshot).
class Lock {
 public:
  Lock() = default;
  explicit Lock(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool held() const noexcept { return held_; }
  [[nodiscard]] ProcId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return waiters_.size(); }
  [[nodiscard]] std::uint64_t acquisitions() const noexcept { return acquisitions_; }
  [[nodiscard]] std::uint64_t contended_acquisitions() const noexcept {
    return contended_;
  }

 private:
  friend class Proc;
  struct Waiter {
    std::coroutine_handle<> h;
    Proc* p;
    Cycles arrival;
  };
  bool held_ = false;
  ProcId owner_ = 0;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
  std::string name_;
  std::deque<Waiter> waiters_;
};

}  // namespace csim
