// Structured simulator failure taxonomy.
//
// Every way the simulator can fail maps to one error class, and every error
// carries a MachineSnapshot — the machine state at the moment of failure —
// rendered into what() so a failed run (CI log, sweep failure table) is
// diagnosable without re-running under a debugger:
//
//   ConfigError    inconsistent MachineSpec / malformed options
//                  (also a std::invalid_argument, like the checks it absorbs)
//   DeadlockError  the event queue drained with processors still parked on a
//                  barrier or lock
//   LivelockError  a watchdog budget tripped: the program exceeded
//                  max_cycles / max_events, or kept processing events without
//                  simulated time advancing
//   ProtocolError  a coherence invariant audit failed (directory and cache
//                  state disagree) — see MemorySystem::audit()
//   AppError       the application's setup() or verify() threw
//   TimeoutError   the run exceeded its host wall-clock deadline
//                  (MachineSpec::max_host_seconds / run_sweep row deadlines)
//   TransientError an environment-dependent failure worth retrying (I/O,
//                  injected faults) — never a determinism bug
//
// All of these implement the SimError interface, so sweep drivers can
// `catch (const SimError&)` and record kind + snapshot uniformly while each
// class remains catchable as the std exception its domain suggests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

enum class SimErrorKind : std::uint8_t {
  Config,
  Deadlock,
  Livelock,
  Protocol,
  App,
  Timeout,
  Transient,
};

[[nodiscard]] constexpr std::string_view to_string(SimErrorKind k) noexcept {
  switch (k) {
    case SimErrorKind::Config: return "config";
    case SimErrorKind::Deadlock: return "deadlock";
    case SimErrorKind::Livelock: return "livelock";
    case SimErrorKind::Protocol: return "protocol";
    case SimErrorKind::App: return "app";
    case SimErrorKind::Timeout: return "timeout";
    case SimErrorKind::Transient: return "transient";
  }
  return "?";
}

/// Parses a kind name ("config", "timeout", ...); throws
/// std::invalid_argument on anything else. Used by the fault-plan parser.
[[nodiscard]] SimErrorKind sim_error_kind_from_string(std::string_view name);

/// True for failures that depend on the host environment rather than the
/// simulated machine: re-running the row may legitimately succeed. The
/// deterministic kinds (deadlock, livelock, protocol, app, config) would
/// fail identically on every retry, so sweep retry policies skip them.
[[nodiscard]] constexpr bool is_retryable(SimErrorKind k) noexcept {
  return k == SimErrorKind::Timeout || k == SimErrorKind::Transient;
}

/// Machine state attached to a structured error: what every processor was
/// doing, how deep the event queue was, and when. Captured by the Simulator
/// at the point of failure (errors raised outside a run carry an empty one).
struct MachineSnapshot {
  Cycles cycle = 0;                  ///< simulated time of the failure
  std::size_t event_queue_depth = 0; ///< events still pending
  std::uint64_t events_processed = 0;

  struct ProcState {
    ProcId id = 0;
    bool finished = false;
    Cycles last_progress = 0;  ///< local clock when the proc last ran
    std::string detail;        ///< "running", "blocked on barrier ...", ...
  };
  std::vector<ProcState> procs;

  [[nodiscard]] bool empty() const noexcept {
    return procs.empty() && cycle == 0 && event_queue_depth == 0 &&
           events_processed == 0;
  }

  /// Multi-line human-readable rendering (indented, one line per proc).
  [[nodiscard]] std::string format() const;
};

/// Interface common to all structured simulator errors. Not itself an
/// exception type: concrete errors derive from the std exception matching
/// their domain *and* from this, so `catch (const SimError& e)` works
/// alongside `catch (const std::invalid_argument&)` etc.
class SimError {
 public:
  virtual ~SimError() = default;

  [[nodiscard]] virtual SimErrorKind kind() const noexcept = 0;
  [[nodiscard]] virtual const MachineSnapshot& snapshot() const noexcept = 0;
  /// The one-line failure summary (what() minus the snapshot rendering).
  [[nodiscard]] virtual std::string_view summary() const noexcept = 0;
};

namespace detail {
/// what() text: "<kind>: <summary>" plus the snapshot block when non-empty.
[[nodiscard]] std::string render_error(SimErrorKind kind,
                                       const std::string& summary,
                                       const MachineSnapshot& snap);
}  // namespace detail

/// Concrete error template: `StdBase` picks the std exception domain, `K`
/// the taxonomy slot. Distinct K => distinct type, individually catchable.
template <SimErrorKind K, class StdBase>
class BasicSimError : public StdBase, public SimError {
 public:
  explicit BasicSimError(std::string summary, MachineSnapshot snap = {})
      : StdBase(detail::render_error(K, summary, snap)),
        summary_(std::move(summary)),
        snap_(std::move(snap)) {}

  [[nodiscard]] SimErrorKind kind() const noexcept override { return K; }
  [[nodiscard]] const MachineSnapshot& snapshot() const noexcept override {
    return snap_;
  }
  [[nodiscard]] std::string_view summary() const noexcept override {
    return summary_;
  }

 private:
  std::string summary_;
  MachineSnapshot snap_;
};

using ConfigError = BasicSimError<SimErrorKind::Config, std::invalid_argument>;
using DeadlockError = BasicSimError<SimErrorKind::Deadlock, std::runtime_error>;
using LivelockError = BasicSimError<SimErrorKind::Livelock, std::runtime_error>;
using ProtocolError = BasicSimError<SimErrorKind::Protocol, std::runtime_error>;
using AppError = BasicSimError<SimErrorKind::App, std::runtime_error>;
using TimeoutError = BasicSimError<SimErrorKind::Timeout, std::runtime_error>;
using TransientError =
    BasicSimError<SimErrorKind::Transient, std::runtime_error>;

/// Throws the concrete error type for `kind` (fault injection and other
/// code that picks the taxonomy slot at runtime).
[[noreturn]] void throw_sim_error(SimErrorKind kind, std::string summary,
                                  MachineSnapshot snap = {});

}  // namespace csim
