#include "src/core/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/core/error.hpp"
#include "src/obs/observer.hpp"

namespace csim {

void EventQueue::push(Event ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule(Cycles t, Callback fn) {
  if (t < now_) t = now_;  // never schedule into the past
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  }
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.target = nullptr;
  ev.slot = slot;
  push(ev);
}

void EventQueue::schedule_resume(Cycles t, Resumable* r,
                                 std::coroutine_handle<> h) {
  if (t < now_) t = now_;  // never schedule into the past
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.target = r;
  ev.handle = h.address();
  push(ev);
}

void EventQueue::run_one() {
  if (heap_.empty()) throw std::logic_error("EventQueue::run_one on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event ev = heap_.back();
  heap_.pop_back();
  const bool advanced = ev.t > now_;
  now_ = ev.t;
  ++events_run_;
  if (advanced) events_at_last_advance_ = events_run_;
  if (ev.target != nullptr) {
    ev.target->resume_event(ev.t,
                            std::coroutine_handle<>::from_address(ev.handle));
  } else {
    // Move the callback out and recycle its slot before invoking: the
    // callback may schedule further events (growing slots_ / heap_).
    Callback fn = std::move(slots_[ev.slot]);
    slots_[ev.slot] = nullptr;
    free_slots_.push_back(ev.slot);
    fn();
  }
  if (obs_ != nullptr) obs_->on_event_dispatched(now_, events_run_);
}

std::optional<std::string> EventQueue::budget_violation() const {
  if (budget_.max_cycles != 0 && now_ > budget_.max_cycles) {
    return "exceeded max_cycles budget (" + std::to_string(budget_.max_cycles) +
           ") at cycle " + std::to_string(now_);
  }
  if (budget_.max_events != 0 && events_run_ > budget_.max_events) {
    return "exceeded max_events budget (" + std::to_string(budget_.max_events) +
           ") at cycle " + std::to_string(now_);
  }
  if (budget_.no_progress_events != 0 &&
      events_run_ - events_at_last_advance_ >= budget_.no_progress_events) {
    return "no progress: " +
           std::to_string(events_run_ - events_at_last_advance_) +
           " events without simulated time advancing past cycle " +
           std::to_string(now_);
  }
  return std::nullopt;
}

Cycles EventQueue::run_to_completion() {
  while (!heap_.empty()) {
    run_one();
    if (auto v = budget_violation()) {
      MachineSnapshot snap;
      snap.cycle = now_;
      snap.event_queue_depth = heap_.size();
      snap.events_processed = events_run_;
      throw LivelockError(*std::move(v), std::move(snap));
    }
  }
  return now_;
}

}  // namespace csim
