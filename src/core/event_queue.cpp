#include "src/core/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace csim {

void EventQueue::schedule(Cycles t, Callback fn) {
  if (t < now_) t = now_;  // never schedule into the past
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::run_one() {
  if (heap_.empty()) throw std::logic_error("EventQueue::run_one on empty queue");
  // priority_queue::top() is const; move out via const_cast is UB-adjacent, so
  // copy the callback (std::function copy) before popping. Events are popped
  // once each, and callbacks are small, so this is not a hot-path concern
  // relative to protocol work.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.t;
  ev.fn();
}

Cycles EventQueue::run_to_completion() {
  while (!heap_.empty()) run_one();
  return now_;
}

}  // namespace csim
