#include "src/core/event_queue.hpp"

#include <stdexcept>
#include <utility>

#include "src/core/error.hpp"

namespace csim {

void EventQueue::schedule(Cycles t, Callback fn) {
  if (t < now_) t = now_;  // never schedule into the past
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::run_one() {
  if (heap_.empty()) throw std::logic_error("EventQueue::run_one on empty queue");
  // priority_queue::top() is const; move out via const_cast is UB-adjacent, so
  // copy the callback (std::function copy) before popping. Events are popped
  // once each, and callbacks are small, so this is not a hot-path concern
  // relative to protocol work.
  Event ev = heap_.top();
  heap_.pop();
  const bool advanced = ev.t > now_;
  now_ = ev.t;
  ++events_run_;
  if (advanced) events_at_last_advance_ = events_run_;
  ev.fn();
}

std::optional<std::string> EventQueue::budget_violation() const {
  if (budget_.max_cycles != 0 && now_ > budget_.max_cycles) {
    return "exceeded max_cycles budget (" + std::to_string(budget_.max_cycles) +
           ") at cycle " + std::to_string(now_);
  }
  if (budget_.max_events != 0 && events_run_ > budget_.max_events) {
    return "exceeded max_events budget (" + std::to_string(budget_.max_events) +
           ") at cycle " + std::to_string(now_);
  }
  if (budget_.no_progress_events != 0 &&
      events_run_ - events_at_last_advance_ >= budget_.no_progress_events) {
    return "no progress: " +
           std::to_string(events_run_ - events_at_last_advance_) +
           " events without simulated time advancing past cycle " +
           std::to_string(now_);
  }
  return std::nullopt;
}

Cycles EventQueue::run_to_completion() {
  while (!heap_.empty()) {
    run_one();
    if (auto v = budget_violation()) {
      MachineSnapshot snap;
      snap.cycle = now_;
      snap.event_queue_depth = heap_.size();
      snap.events_processed = events_run_;
      throw LivelockError(*std::move(v), std::move(snap));
    }
  }
  return now_;
}

}  // namespace csim
