#include "src/core/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/core/error.hpp"
#include "src/obs/observer.hpp"

namespace csim {

// 4-ary sift operations: half the depth of a binary heap, and the four
// children of node i sit in adjacent slots 4i+1..4i+4 (one or two cache
// lines), so the extra per-level comparisons are cheap.

void EventQueue::push(Event ev) {
  std::size_t i = heap_.size();
  heap_.push_back(ev);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!later(heap_[parent], ev)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

EventQueue::Event EventQueue::pop_min() {
  const Event top = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n != 0) {
    std::size_t i = 0;
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t k = first + 1; k < end; ++k) {
        if (later(heap_[best], heap_[k])) best = k;
      }
      if (!later(last, heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void EventQueue::schedule(Cycles t, Callback fn) {
  if (t < now_) t = now_;  // never schedule into the past
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  }
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.target = nullptr;
  ev.slot = slot;
  push(ev);
}

void EventQueue::schedule_resume(Cycles t, Resumable* r,
                                 std::coroutine_handle<> h) {
  if (t < now_) t = now_;  // never schedule into the past
  Event ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.target = r;
  ev.handle = h.address();
  push(ev);
}

void EventQueue::dispatch(const Event& ev) {
  const bool advanced = ev.t > now_;
  now_ = ev.t;
  ++events_run_;
  if (advanced) events_at_last_advance_ = events_run_;
  if (ev.target != nullptr) {
    ev.target->resume_event(ev.t,
                            std::coroutine_handle<>::from_address(ev.handle));
  } else {
    // Move the callback out and recycle its slot before invoking: the
    // callback may schedule further events (growing slots_ / heap_).
    Callback fn = std::move(slots_[ev.slot]);
    slots_[ev.slot] = nullptr;
    free_slots_.push_back(ev.slot);
    fn();
  }
  if (obs_ != nullptr) obs_->on_event_dispatched(now_, events_run_);
}

void EventQueue::run_one() {
  if (ready_pos_ == ready_.size()) {
    if (heap_.empty()) {
      throw std::logic_error("EventQueue::run_one on empty queue");
    }
    // Refill: drain the whole same-cycle burst in (time, seq) order. Events
    // scheduled at this cycle during the burst have larger sequence numbers
    // than everything buffered, so deferring them to the next refill keeps
    // the global dispatch order identical to popping one by one. A
    // single-event burst — the common case once processors spread out —
    // skips the buffer entirely.
    const Event first = pop_min();
    if (heap_.empty() || heap_.front().t != first.t) {
      dispatch(first);
      return;
    }
    ready_.clear();
    ready_pos_ = 0;
    ready_.push_back(first);
    const Cycles t0 = first.t;
    do {
      ready_.push_back(pop_min());
    } while (!heap_.empty() && heap_.front().t == t0);
  }
  const Event ev = ready_[ready_pos_++];
  dispatch(ev);
}

std::optional<std::string> EventQueue::budget_violation() const {
  if (budget_.max_cycles != 0 && now_ > budget_.max_cycles) {
    return "exceeded max_cycles budget (" + std::to_string(budget_.max_cycles) +
           ") at cycle " + std::to_string(now_);
  }
  if (budget_.max_events != 0 && events_run_ > budget_.max_events) {
    return "exceeded max_events budget (" + std::to_string(budget_.max_events) +
           ") at cycle " + std::to_string(now_);
  }
  if (budget_.no_progress_events != 0 &&
      events_run_ - events_at_last_advance_ >= budget_.no_progress_events) {
    return "no progress: " +
           std::to_string(events_run_ - events_at_last_advance_) +
           " events without simulated time advancing past cycle " +
           std::to_string(now_);
  }
  return std::nullopt;
}

Cycles EventQueue::run_to_completion() {
  while (!empty()) {
    run_one();
    if (over_budget()) [[unlikely]] {
      auto v = budget_violation();
      MachineSnapshot snap;
      snap.cycle = now_;
      snap.event_queue_depth = size();
      snap.events_processed = events_run_;
      throw LivelockError(*std::move(v), std::move(snap));
    }
  }
  return now_;
}

}  // namespace csim
