// Deterministic time-ordered event queue for the simulation engine.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

class Observer;

/// A 4-ary min-heap of (time, sequence) ordered events with a same-cycle
/// dispatch buffer.
///
/// Ties in time are broken by insertion order, which makes simulations fully
/// deterministic for a given workload and configuration.
///
/// The dominant event — "resume coroutine handle h on target r at time t",
/// scheduled once per processor suspension — is stored inline in a 32-byte
/// trivially copyable record with no heap allocation. Generic callbacks
/// (simulation launch, tests, tooling) go through a std::function escape
/// hatch whose storage is recycled in a slot table.
///
/// Dispatch drains every event due at the current cycle from the heap into a
/// flat buffer in (time, seq) order, then serves them sequentially; events
/// scheduled *at* the current cycle during the burst carry larger sequence
/// numbers, land in the heap, and are picked up by the next refill — the
/// global (time, seq) dispatch order is identical to popping one by one.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Target of the allocation-free fast path. Implemented by Proc: the
  /// queue's only dependency is "something that can resume a coroutine at a
  /// simulated time".
  class Resumable {
   public:
    virtual void resume_event(Cycles t, std::coroutine_handle<> h) = 0;

   protected:
    ~Resumable() = default;
  };

  /// Watchdog budgets. A zero field disables that check. `no_progress_events`
  /// bounds the number of events processed without simulated time advancing
  /// (the livelock signature: the queue churns at a fixed cycle forever).
  struct Budget {
    std::uint64_t max_cycles = 0;
    std::uint64_t max_events = 0;
    std::uint64_t no_progress_events = 0;
  };

  /// Schedules `fn` to run at absolute simulated time `t` (escape hatch;
  /// allocates whatever the std::function needs).
  void schedule(Cycles t, Callback fn);

  /// Allocation-free fast path: schedules `r->resume_event(t, h)` at
  /// absolute simulated time `t`. Shares the (time, seq) order with
  /// schedule(), so interleavings stay deterministic.
  void schedule_resume(Cycles t, Resumable* r, std::coroutine_handle<> h);

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept {
    return heap_.empty() && ready_pos_ == ready_.size();
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return heap_.size() + (ready_.size() - ready_pos_);
  }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Cycles next_time() const {
    return ready_pos_ != ready_.size() ? ready_[ready_pos_].t : heap_.front().t;
  }

  /// Current simulated time (time of the last event popped).
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Pops and runs the earliest event, advancing now(). Precondition:
  /// !empty().
  void run_one();

  /// Runs events until the queue drains. Returns the final time. If a budget
  /// is set, throws LivelockError (with a queue-level snapshot) on violation.
  Cycles run_to_completion();

  /// Arms the watchdog. The budget is checked by run_to_completion() after
  /// every event; external drivers (Simulator::run) poll over_budget().
  void set_budget(const Budget& b) noexcept { budget_ = b; }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t events_run() const noexcept { return events_run_; }

  /// Inline fast path of the watchdog: true when any armed budget is
  /// violated. Checked after every event, so it must not allocate; the
  /// message lives in budget_violation().
  [[nodiscard]] bool over_budget() const noexcept {
    return (budget_.max_cycles != 0 && now_ > budget_.max_cycles) ||
           (budget_.max_events != 0 && events_run_ > budget_.max_events) ||
           (budget_.no_progress_events != 0 &&
            events_run_ - events_at_last_advance_ >=
                budget_.no_progress_events);
  }

  /// Description of the violated budget, or nullopt while within budget.
  [[nodiscard]] std::optional<std::string> budget_violation() const;

  /// Attaches an observability sink (src/obs/observer.hpp): run_one()
  /// reports every dispatched event. Null (the default) disables the hook —
  /// a single branch on the hot path.
  void set_observer(Observer* obs) noexcept { obs_ = obs; }

  /// Address of the events-run counter, stable for this queue's lifetime
  /// (bound into Observer::RunBinding for interval sampling).
  [[nodiscard]] const std::uint64_t* events_run_addr() const noexcept {
    return &events_run_;
  }

 private:
  /// 32 bytes, trivially copyable, so heap sift operations are cheap moves.
  /// target != nullptr: resume-coroutine fast path, payload is the coroutine
  /// frame address (`handle`). target == nullptr: generic callback, payload
  /// is `slot` into slots_. The handle is stored as its address because
  /// std::coroutine_handle is not a valid union member (non-trivial default
  /// constructor); from_address() restores it losslessly.
  struct Event {
    Cycles t;
    std::uint64_t seq;
    Resumable* target;
    union {
      void* handle;
      std::uint32_t slot;
    };
  };
  /// True when `a` dispatches after `b`.
  static bool later(const Event& a, const Event& b) noexcept {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }

  void push(Event ev);
  /// Removes and returns the heap minimum. Precondition: !heap_.empty().
  Event pop_min();
  void dispatch(const Event& ev);

  std::vector<Event> heap_;            // 4-ary min-heap, later() order
  std::vector<Event> ready_;           // events due at the current cycle
  std::size_t ready_pos_ = 0;          // next undispatched index in ready_
  std::vector<Callback> slots_;        // generic callback storage
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  Cycles now_ = 0;
  Budget budget_{};
  Observer* obs_ = nullptr;
  std::uint64_t events_run_ = 0;
  std::uint64_t events_at_last_advance_ = 0;  // events_run_ when now_ last grew
};

}  // namespace csim
