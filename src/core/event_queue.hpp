// Deterministic time-ordered event queue for the simulation engine.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

/// A min-heap of (time, sequence) ordered callbacks.
///
/// Ties in time are broken by insertion order, which makes simulations fully
/// deterministic for a given workload and configuration.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Watchdog budgets. A zero field disables that check. `no_progress_events`
  /// bounds the number of events processed without simulated time advancing
  /// (the livelock signature: the queue churns at a fixed cycle forever).
  struct Budget {
    std::uint64_t max_cycles = 0;
    std::uint64_t max_events = 0;
    std::uint64_t no_progress_events = 0;
  };

  /// Schedules `fn` to run at absolute simulated time `t`.
  void schedule(Cycles t, Callback fn);

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Cycles next_time() const { return heap_.top().t; }

  /// Current simulated time (time of the last event popped).
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Pops and runs the earliest event, advancing now(). Precondition:
  /// !empty().
  void run_one();

  /// Runs events until the queue drains. Returns the final time. If a budget
  /// is set, throws LivelockError (with a queue-level snapshot) on violation.
  Cycles run_to_completion();

  /// Arms the watchdog. The budget is checked by run_to_completion() after
  /// every event; external drivers (Simulator::run) poll budget_violation().
  void set_budget(const Budget& b) noexcept { budget_ = b; }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t events_run() const noexcept { return events_run_; }

  /// Description of the violated budget, or nullopt while within budget.
  [[nodiscard]] std::optional<std::string> budget_violation() const;

 private:
  struct Event {
    Cycles t;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  Cycles now_ = 0;
  Budget budget_{};
  std::uint64_t events_run_ = 0;
  std::uint64_t events_at_last_advance_ = 0;  // events_run_ when now_ last grew
};

}  // namespace csim
