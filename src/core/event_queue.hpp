// Deterministic time-ordered event queue for the simulation engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

/// A min-heap of (time, sequence) ordered callbacks.
///
/// Ties in time are broken by insertion order, which makes simulations fully
/// deterministic for a given workload and configuration.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to run at absolute simulated time `t`.
  void schedule(Cycles t, Callback fn);

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Cycles next_time() const { return heap_.top().t; }

  /// Current simulated time (time of the last event popped).
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Pops and runs the earliest event, advancing now(). Precondition:
  /// !empty().
  void run_one();

  /// Runs events until the queue drains. Returns the final time.
  Cycles run_to_completion();

 private:
  struct Event {
    Cycles t;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  Cycles now_ = 0;
};

}  // namespace csim
