// SamplingController: the regime scheduler for interval-sampled runs
// (SamplingSpec; docs/PERFORMANCE.md "Sampled simulation").
//
// One controller is owned by Simulator::run for the duration of a sampled
// run and consulted by every processor on every retired reference. It
// tracks the global retired-reference count, flips the run between
// regimes at the configured boundaries, toggles the memory system's
// functional mode, accumulates the per-processor TimeBuckets deltas of
// each detailed interval (the extrapolation inputs), and polls the host
// wall-clock deadline / cycle budget every poll stride (kPollMinRefs
// doubling to kPollMaxRefs) references so the
// watchdogs fire inside the warming retirement loop too — warming retires
// millions of references between event-queue entries, where the event-loop
// watchdog cannot see.
//
// Regimes:
//   Warming      functional warming: memory state updated, flat hit cost,
//                no stalls, no latency/contention/MSHR timing.
//   FastForward  checkpoint-restore replay: identical timing to Warming but
//                no memory-system calls at all (the warmup-boundary state
//                arrives from the checkpoint instead). Clocks, slice
//                schedules, and sync interleavings are bit-identical to
//                Warming because warming's timing never depends on memory
//                state — that invariant is what makes restore exact.
//   Detail       full event-driven simulation, exactly the sampling-off
//                path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/machine.hpp"
#include "src/core/stats.hpp"

namespace csim {

class MemorySystem;
class Proc;

class SamplingController {
 public:
  enum class Regime : std::uint8_t { Warming, FastForward, Detail };

  /// Watchdog poll stride bounds (satellite of the event-loop poll, which
  /// fires every 4096 events). The stride starts at the minimum and doubles
  /// to the maximum, because it is also the hard cap on warming batch size
  /// (max_batch): small early polls keep tiny runs and tight budgets
  /// fast-failing, large late strides stop the poll from chopping
  /// multi-million-reference streaming runs into 4K-reference batches.
  /// Warming retires tens of millions of references per second, so 64K
  /// references is well under a host millisecond between polls. The stride
  /// sequence depends only on retired-reference counts, keeping Warming and
  /// FastForward replay bit-identical.
  static constexpr std::uint64_t kPollMinRefs = 4096;
  static constexpr std::uint64_t kPollMaxRefs = 65536;

  /// `fast_forward`: start in FastForward (a checkpoint will be installed at
  /// the warmup boundary) instead of Warming. `host_start` anchors the
  /// max_host_seconds deadline to the same clock origin as the event loop's.
  SamplingController(const MachineSpec& cfg, MemorySystem* mem,
                     bool fast_forward,
                     std::chrono::steady_clock::time_point host_start);

  /// Shard mode (cluster-parallel sampled runs; src/core/par_engine.cpp):
  /// one controller per cluster counts that cluster's references and polls
  /// the watchdogs, but never flips regimes or toggles functional mode — the
  /// epoch coordinator owns the machine-global schedule and drives every
  /// shard through set_regime / set_yield_cap at quiescent epoch boundaries.
  SamplingController(const MachineSpec& cfg, Regime initial,
                     std::chrono::steady_clock::time_point host_start);

  /// Coordinator-only (shard mode): sets the regime for the next epoch.
  void set_regime(Regime r) noexcept { regime_ = r; }
  /// Coordinator-only (shard mode): this shard may retire at most `more`
  /// further references before its processors yield and flag the epoch for
  /// termination (yield_due). Ref-count driven, so Warming and FastForward
  /// replay see identical epoch schedules.
  void set_yield_cap(std::uint64_t more) noexcept {
    yield_at_ = more > ~refs_ ? ~std::uint64_t{0} : refs_ + more;
  }
  /// True once the epoch's reference cap is consumed; the retiring processor
  /// ends its slice and the coordinator ends the epoch at the next boundary.
  /// Always false outside shard mode.
  [[nodiscard]] bool yield_due() const noexcept { return refs_ >= yield_at_; }

  /// Per-processor raw bucket bindings, in processor order. Must be called
  /// before the first reference retires.
  void bind_buckets(std::vector<const TimeBuckets*> buckets);

  /// Called once, at the first Warming/FastForward -> Detail transition
  /// (the warmup boundary): save (Warming) or install (FastForward) the
  /// checkpoint. Runs before the memory system leaves functional mode.
  template <typename Fn>
  void set_warmup_boundary_hook(Fn&& fn) {
    boundary_hook_ = std::forward<Fn>(fn);
  }

  [[nodiscard]] Regime regime() const noexcept { return regime_; }
  [[nodiscard]] bool detail() const noexcept {
    return regime_ == Regime::Detail;
  }
  [[nodiscard]] bool fast_forward() const noexcept {
    return regime_ == Regime::FastForward;
  }
  /// The runahead quantum for the current regime.
  [[nodiscard]] Cycles quantum() const noexcept {
    return detail() ? cfg_->runahead_quantum : cfg_->sampling.warm_quantum;
  }
  [[nodiscard]] std::uint64_t refs() const noexcept { return refs_; }
  /// Detailed references retired so far, including the open interval (the
  /// interval-metrics sampler reads this mid-run).
  [[nodiscard]] std::uint64_t detailed_refs_so_far() const noexcept {
    return detailed_refs_ + (detail() ? refs_ - detail_enter_refs_ : 0);
  }

  /// Max references a warming batch may retire before it must call
  /// on_refs(): never crosses a regime boundary, a watchdog poll point, or
  /// (shard mode) the epoch's yield cap.
  [[nodiscard]] std::uint64_t max_batch() const noexcept {
    std::uint64_t cap = next_boundary_ < next_poll_ ? next_boundary_
                                                    : next_poll_;
    if (yield_at_ < cap) cap = yield_at_;
    // Boundaries and polls trigger eagerly, so cap > refs_ — except past a
    // consumed yield cap, where processors retire one reference per slice
    // until the window closes.
    return cap > refs_ ? cap - refs_ : 1;
  }

  /// Account `n` just-retired references (n <= max_batch() for n > 1).
  /// `now` is the retiring processor's local clock, for the cycle-budget
  /// watchdog. May flip the regime (affects the *next* reference) and may
  /// throw TimeoutError / LivelockError from the watchdog poll.
  void on_refs(std::uint64_t n, Cycles now) {
    refs_ += n;
    if (refs_ >= next_poll_) poll(now);
    if (refs_ >= next_boundary_) advance_regime();
  }
  void on_ref(Cycles now) { on_refs(1, now); }

  /// Run-end accounting: closes an open detailed interval and returns the
  /// extrapolation inputs.
  struct Accounting {
    std::uint64_t total_refs = 0;
    std::uint64_t detailed_refs = 0;
    /// Per-processor buckets accumulated inside detailed intervals only.
    std::vector<TimeBuckets> detail_buckets;
  };
  [[nodiscard]] Accounting finish();

 private:
  void advance_regime();
  void enter_detail();
  void leave_detail();
  void poll(Cycles now);
  /// Start of detailed interval `k`, or UINT64_MAX when there is none.
  [[nodiscard]] std::uint64_t interval_start(std::uint64_t k) const;

  const MachineSpec* cfg_;
  MemorySystem* mem_;
  Regime regime_;
  std::uint64_t refs_ = 0;
  std::uint64_t next_boundary_ = 0;
  std::uint64_t yield_at_ = ~std::uint64_t{0};  ///< shard-mode epoch cap
  std::uint64_t next_poll_ = kPollMinRefs;
  std::uint64_t poll_stride_ = kPollMinRefs;
  std::uint64_t interval_index_ = 0;  ///< detailed intervals entered so far
  std::uint64_t detail_enter_refs_ = 0;
  std::uint64_t detailed_refs_ = 0;
  bool boundary_hook_fired_ = false;
  std::function<void()> boundary_hook_;
  std::vector<const TimeBuckets*> buckets_;
  std::vector<TimeBuckets> detail_snapshot_;
  std::vector<TimeBuckets> detail_buckets_;
  std::chrono::steady_clock::time_point host_start_;
};

/// Global reference count at which detailed interval `k` starts, or
/// UINT64_MAX when there is none. The one sampling schedule, shared by the
/// sequential controller and the parallel epoch coordinator.
[[nodiscard]] std::uint64_t sampling_interval_start(const MachineSpec& cfg,
                                                    std::uint64_t k);

/// Warm-checkpoint wiring shared by the sequential and parallel engines:
/// with a checkpoint directory configured, try to load the warm state keyed
/// by `warm_digest`; a usable checkpoint turns the warmup into a
/// fast-forward replay. `hook` (empty when checkpointing is off) must run
/// once at the warmup boundary, before the memory system leaves functional
/// mode: it installs the loaded state (fast_forward) or captures and saves
/// the warmed state. `procs` is captured by reference and must outlive the
/// hook.
struct WarmCheckpointSetup {
  std::function<void()> hook;
  bool fast_forward = false;
};
[[nodiscard]] WarmCheckpointSetup setup_warm_checkpoint(
    const MachineSpec& cfg, std::uint64_t warm_digest,
    const std::string& app_name, std::uint8_t scale, MemorySystem& coh,
    const std::vector<std::unique_ptr<Proc>>& procs);

/// Run-end extrapolation shared by both engines: scales the detailed-interval
/// TimeBuckets in `res.per_proc` (already holding raw whole-run buckets) by
/// the inverse sampling fraction and recomputes wall time. Miss counters are
/// exact already; coverage 0 flags a run that never reached an interval.
void apply_sampling_extrapolation(SimResult& res,
                                  const SamplingController::Accounting& acc);

}  // namespace csim
