// Conservative cluster-parallel event execution (ParallelSpec).
//
// The machine is partitioned by cluster: each cluster gets its own event
// queue and advances independently inside a synchronization window whose
// width is the minimum inter-cluster latency (MachineSpec::parallel_horizon,
// >= 30 cycles from the paper's Table 1) — no event in one cluster can
// affect another cluster sooner than that, so intra-window execution is
// conflict-free by construction. Operations that would cross a cluster
// boundary (directory transitions, barrier arrivals, lock traffic) are
// recorded in per-partition outboxes at their issue time and executed by
// the coordinator at the window boundary in a fixed deterministic order:
// (issue time, source cluster, enqueue sequence). Results are therefore
// bit-identical at every worker count, including workers == 1 (the windowed
// algorithm run inline, no threads). See DESIGN.md, "Conservative
// cluster-parallel windows".
#pragma once

#include <memory>

#include "src/core/machine.hpp"
#include "src/core/stats.hpp"

namespace csim {

class Program;
class MemorySystem;

namespace par {

/// Runs `prog` to completion under the conservative window engine.
/// Preconditions (enforced by MachineSpec::validate / Simulator::run):
/// spec->parallel.enabled(), no sampling, no contention model, no observer.
/// Same failure taxonomy and message formats as the sequential driver.
SimResult run_parallel(const std::shared_ptr<const MachineSpec>& spec,
                       Program& prog, MemorySystem* memory_override);

}  // namespace par
}  // namespace csim
