// Conservative cluster-parallel event execution (ParallelSpec).
//
// The machine is partitioned by cluster: each cluster gets its own event
// queue and advances independently inside a synchronization window whose
// width is the minimum inter-cluster latency (MachineSpec::parallel_horizon,
// >= 30 cycles from the paper's Table 1) — no event in one cluster can
// affect another cluster sooner than that, so intra-window execution is
// conflict-free by construction. Operations that would cross a cluster
// boundary (directory transitions, barrier arrivals, lock traffic) are
// recorded in per-partition outboxes at their issue time and executed by
// the coordinator at the window boundary in a fixed deterministic order:
// (issue time, source cluster, enqueue sequence). Results are therefore
// bit-identical at every worker count, including workers == 1 (the windowed
// algorithm run inline, no threads).
//
// Windows are batched into *epochs*: while no outbox holds an entry that
// must commit at a boundary, the worker pool runs consecutive windows —
// skipping whole empty ones — separated only by a spin barrier, and the
// coordinator's serial boundary work (the cross-cluster drain, a k-way
// merge over the per-partition outboxes; watchdog and audit checks;
// sampling regime flips) happens once per epoch instead of once per window.
// An epoch ends at the first boundary where any outbox holds a blocking
// entry, so every cross-cluster operation still commits at the same W-grid
// boundary the one-window engine used, preserving the digests above.
//
// Interval sampling (SamplingSpec) composes: reference counting is sharded
// per cluster, functional warming runs inside the partitions (cluster-local
// accesses warm directly, remote ones are deferred as non-blocking warm
// entries and committed in drain order at the epoch boundary), and the
// coordinator flips regimes at quiescent boundaries driven purely by
// retired-reference counts — the schedule is identical at every worker
// count and identical between Warming and FastForward checkpoint replay.
// See DESIGN.md, "Conservative cluster-parallel windows".
#pragma once

#include <memory>

#include "src/core/machine.hpp"
#include "src/core/stats.hpp"

namespace csim {

class Program;
class MemorySystem;

namespace par {

/// Runs `prog` to completion under the conservative window engine.
/// Preconditions (enforced by MachineSpec::validate / Simulator::run):
/// spec->parallel.enabled(), no contention model, no observer. Interval
/// sampling is supported (sharded per cluster, see header comment).
/// Same failure taxonomy and message formats as the sequential driver.
SimResult run_parallel(const std::shared_ptr<const MachineSpec>& spec,
                       Program& prog, MemorySystem* memory_override);

}  // namespace par
}  // namespace csim
