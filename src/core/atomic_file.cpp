#include "src/core/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define CSIM_HAVE_FSYNC 1
#endif

namespace csim {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + ": " + path);
}

/// Temp names must be unique per in-flight write: sweep workers append
/// journal records concurrently, and two rows with identical configurations
/// target the same record path.
std::string temp_name(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = temp_name(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("cannot open temp file", tmp);
  const bool wrote =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  bool synced = wrote && std::fflush(f) == 0;
#if defined(CSIM_HAVE_FSYNC)
  // Durability, not just atomicity: the rename must not be reordered before
  // the data blocks reach the disk, or a crash could expose a complete-
  // looking but empty record.
  synced = synced && ::fsync(::fileno(f)) == 0;
#endif
  if (std::fclose(f) != 0) synced = false;
  if (!synced) {
    std::remove(tmp.c_str());
    fail("write failed", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("rename failed", path);
  }
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& fill) {
  std::ostringstream os;
  fill(os);
  if (!os) fail("serialization failed", path);
  atomic_write_file(path, os.str());
}

}  // namespace csim
