// SimTask: the coroutine type in which simulated application code runs.
//
// Every simulated processor executes one root SimTask.  Application code is
// ordinary C++ written as coroutines: it issues memory references and
// synchronisation via `co_await proc.read(a)`, `co_await proc.barrier(b)`,
// etc., and may factor work into nested SimTasks awaited with
// `co_await subroutine(proc, ...)` (symmetric transfer, no scheduler
// round-trip).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace csim {

/// A lazily-started coroutine task returning void, supporting nesting.
///
/// Lifetime: the SimTask owns its coroutine frame and destroys it on
/// destruction. Move-only.
class SimTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation{};  // resumed when we complete
    std::exception_ptr exception{};

    SimTask get_return_object() noexcept {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  SimTask(SimTask&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  /// True when the coroutine has run to completion.
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }

  /// Starts a root task (resumes from the initial suspend point). The task
  /// runs until its first suspension (memory stall, sync, quantum end).
  void start() {
    h_.resume();
    rethrow_if_failed();
  }

  /// Rethrows any exception that escaped the coroutine body.
  void rethrow_if_failed() const {
    if (h_ && h_.done() && h_.promise().exception) {
      std::rethrow_exception(h_.promise().exception);
    }
  }

  /// Awaiting a SimTask runs it to completion as a nested call.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      void await_resume() const {
        if (h && h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace csim
