// Open-addressing flat hash map keyed by simulated addresses.
//
// The coherence hot path does several hash lookups per simulated reference
// (cluster cache, MSHR, directory, cold-line set). std::unordered_map pays a
// heap-allocated node and a pointer chase per entry; FlatMap stores keys,
// values, and occupancy tags in three dense arrays with linear probing and a
// multiplicative (Fibonacci) hash, so the common lookup touches one or two
// cache lines and inserts allocate nothing.
//
// Deliberate semantics (narrower than std::unordered_map, and relied upon by
// the memory-system code):
//  - Keys are Addr (64-bit). Values must be default-constructible and
//    movable; a default-constructed V is treated as "vacant storage".
//  - erase() uses tombstones and never moves other entries, so pointers and
//    references to *other* values stay valid across erases.
//  - Any insertion (operator[], try_emplace) may rehash and invalidates all
//    pointers, references, and iterators.
//  - Iteration order is unspecified (used only by audits / diagnostics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/types.hpp"

namespace csim {

template <typename V>
class FlatMap {
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };

 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pre-sizes the table for `n` entries without rehashing on the way there.
  void reserve(std::size_t n) {
    if (n == 0) return;
    std::size_t cap = 16;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load factor under 3/4
    if (cap > ctrl_.size()) rehash(cap);
  }

  [[nodiscard]] V* find(Addr k) noexcept {
    if (ctrl_.empty()) return nullptr;
    std::size_t i = slot_of(k);
    while (true) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) return nullptr;
      if (c == kFull && keys_[i] == k) return &vals_[i];
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] const V* find(Addr k) const noexcept {
    return const_cast<FlatMap*>(this)->find(k);
  }
  [[nodiscard]] bool contains(Addr k) const noexcept {
    return find(k) != nullptr;
  }

  /// Inserts a default-constructed value for `k` if absent. Returns the
  /// value slot and whether it was newly inserted.
  std::pair<V*, bool> try_emplace(Addr k) {
    if ((size_ + tombs_ + 1) * 4 > ctrl_.size() * 3) {
      // Grow only when live entries justify it; a tombstone-dominated table
      // (high-churn allocate/release patterns, e.g. the MSHR) rehashes at
      // the same capacity to reclaim the dead slots, keeping memory bounded.
      const std::size_t cap = ctrl_.empty()          ? 16
                              : size_ * 4 >= ctrl_.size() ? ctrl_.size() * 2
                                                          : ctrl_.size();
      rehash(cap);
    }
    std::size_t i = slot_of(k);
    std::size_t tomb = kNoSlot;
    while (true) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) {
        if (tomb != kNoSlot) {
          i = tomb;
          --tombs_;
        }
        ctrl_[i] = kFull;
        keys_[i] = k;
        ++size_;
        return {&vals_[i], true};
      }
      if (c == kFull && keys_[i] == k) return {&vals_[i], false};
      if (c == kTomb && tomb == kNoSlot) tomb = i;
      i = (i + 1) & mask_;
    }
  }

  V& operator[](Addr k) { return *try_emplace(k).first; }

  /// Removes `k`; other entries are not moved. Returns false if absent.
  bool erase(Addr k) {
    V* v = find(k);
    if (v == nullptr) return false;
    const std::size_t i = static_cast<std::size_t>(v - vals_.data());
    ctrl_[i] = kTomb;
    vals_[i] = V{};  // release any held resources; slot stays vacant
    --size_;
    ++tombs_;
    return true;
  }

  void clear() {
    ctrl_.assign(ctrl_.size(), kEmpty);
    for (auto& v : vals_) v = V{};
    size_ = 0;
    tombs_ = 0;
  }

  /// Forward iteration over (key, value); order unspecified.
  class const_iterator {
   public:
    const_iterator(const FlatMap* m, std::size_t i) : m_(m), i_(i) { skip(); }
    [[nodiscard]] std::pair<Addr, const V&> operator*() const {
      return {m_->keys_[i_], m_->vals_[i_]};
    }
    const_iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const noexcept { return i_ != o.i_; }

   private:
    void skip() {
      while (i_ < m_->ctrl_.size() && m_->ctrl_[i_] != kFull) ++i_;
    }
    const FlatMap* m_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, ctrl_.size()}; }

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  [[nodiscard]] std::size_t slot_of(Addr k) const noexcept {
    // Fibonacci hashing: line addresses share low zero bits; the multiply
    // spreads them across the high bits, which the shift selects.
    return static_cast<std::size_t>((k * 0x9E3779B97F4A7C15ULL) >> shift_);
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint8_t> octrl = std::move(ctrl_);
    std::vector<Addr> okeys = std::move(keys_);
    std::vector<V> ovals = std::move(vals_);
    ctrl_.assign(cap, kEmpty);
    keys_.assign(cap, 0);
    vals_.assign(cap, V{});
    mask_ = cap - 1;
    shift_ = 64;
    while ((std::size_t{1} << (64 - shift_)) < cap) --shift_;
    size_ = 0;
    tombs_ = 0;
    for (std::size_t i = 0; i < octrl.size(); ++i) {
      if (octrl[i] != kFull) continue;
      auto [v, fresh] = try_emplace(okeys[i]);
      (void)fresh;
      *v = std::move(ovals[i]);
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Addr> keys_;
  std::vector<V> vals_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

/// Flat hash set of addresses (cold-miss tracking).
class FlatSet {
 public:
  void reserve(std::size_t n) { m_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return m_.size(); }
  [[nodiscard]] bool contains(Addr k) const noexcept { return m_.contains(k); }
  /// Returns true if `k` was newly inserted.
  bool insert(Addr k) { return m_.try_emplace(k).second; }

  /// All members, in unspecified order (warm-state capture; caller sorts).
  [[nodiscard]] std::vector<Addr> to_vector() const {
    std::vector<Addr> out;
    out.reserve(m_.size());
    for (const auto& [k, v] : m_) {
      (void)v;
      out.push_back(k);
    }
    return out;
  }

 private:
  struct Unit {};
  FlatMap<Unit> m_;
};

}  // namespace csim
