// Shared run diagnostics: human-readable processor wait descriptions and
// machine snapshots. Used by both the sequential driver (simulator.cpp) and
// the cluster-parallel window engine (par_engine.cpp) so DeadlockError /
// LivelockError / TimeoutError messages are identical in both modes.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/error.hpp"
#include "src/core/processor.hpp"
#include "src/core/sync.hpp"

namespace csim::detail {

inline std::string sync_object_name(const std::string& name,
                                    const void* fallback) {
  if (!name.empty()) return "'" + name + "'";
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "@%p", fallback);
  return buf;
}

/// One-line description of what a processor is doing / waiting for.
inline std::string describe_wait(const Proc& p) {
  const Proc::WaitInfo& w = p.wait();
  switch (w.kind) {
    case Proc::WaitKind::Barrier: {
      const Barrier* b = w.barrier;
      return "blocked on barrier " + sync_object_name(b->name(), b) +
             " (arrived " + std::to_string(b->arrived()) + "/" +
             std::to_string(b->participants()) + ") since cycle " +
             std::to_string(w.since);
    }
    case Proc::WaitKind::Lock: {
      const Lock* l = w.lock;
      std::string s = "blocked on lock " + sync_object_name(l->name(), l);
      if (l->held()) s += " (owner proc " + std::to_string(l->owner()) + ")";
      s += ", queue length " + std::to_string(l->queue_length()) +
           ", since cycle " + std::to_string(w.since);
      return s;
    }
    case Proc::WaitKind::Memory: {
      char buf[2 + 16 + 1];
      std::snprintf(buf, sizeof buf, "0x%llx",
                    static_cast<unsigned long long>(w.addr));
      return std::string("stalled on outstanding miss at ") + buf +
             " (fill due cycle " + std::to_string(w.ready_at) + ")";
    }
    case Proc::WaitKind::None:
      break;
  }
  return "running";
}

/// Snapshot over a processor set. The caller supplies the queue-level
/// aggregates, which differ between one global event queue (sequential) and
/// per-cluster queues (parallel windows).
inline MachineSnapshot capture_proc_snapshot(
    Cycles cycle, std::size_t queue_depth, std::uint64_t events,
    const std::vector<std::unique_ptr<Proc>>& procs) {
  MachineSnapshot snap;
  snap.cycle = cycle;
  snap.event_queue_depth = queue_depth;
  snap.events_processed = events;
  snap.procs.reserve(procs.size());
  for (const auto& pp : procs) {
    MachineSnapshot::ProcState st;
    st.id = pp->id();
    st.finished = pp->finished;
    st.last_progress = pp->now();
    st.detail = pp->finished
                    ? "finished at cycle " + std::to_string(pp->finish_time)
                    : describe_wait(*pp);
    snap.procs.push_back(std::move(st));
  }
  return snap;
}

}  // namespace csim::detail
