#include "src/core/stats.hpp"

namespace csim {

MissCounters& MissCounters::operator+=(const MissCounters& o) noexcept {
  reads += o.reads;
  writes += o.writes;
  read_hits += o.read_hits;
  write_hits += o.write_hits;
  read_misses += o.read_misses;
  write_misses += o.write_misses;
  upgrade_misses += o.upgrade_misses;
  merges += o.merges;
  cold_misses += o.cold_misses;
  invalidations += o.invalidations;
  evictions += o.evictions;
  snoop_transfers += o.snoop_transfers;
  cluster_memory_hits += o.cluster_memory_hits;
  bus_invalidations += o.bus_invalidations;
  bank_conflicts += o.bank_conflicts;
  bank_wait_cycles += o.bank_wait_cycles;
  dir_wait_cycles += o.dir_wait_cycles;
  nic_wait_cycles += o.nic_wait_cycles;
  for (unsigned i = 0; i < kNumLatencyClasses; ++i) by_class[i] += o.by_class[i];
  return *this;
}

TimeBuckets SimResult::aggregate() const {
  TimeBuckets agg{};
  for (const auto& b : per_proc) agg += b;
  return agg;
}

double SimResult::loads_per_cpu_cycle() const {
  const Cycles cpu = aggregate().cpu;
  return cpu ? static_cast<double>(totals.reads) / static_cast<double>(cpu) : 0.0;
}

}  // namespace csim
