// Atomic artifact writes: every file the simulator emits (CSV, JSON
// metrics, traces, manifests, journal records) goes through one helper so a
// killed process can never leave a torn half-written artifact at the final
// path. The contents are staged in a uniquely named temp file in the target
// directory, flushed and fsync'ed, then renamed over the destination —
// readers observe either the old file or the complete new one, never a mix.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace csim {

/// Writes `contents` to `path` atomically (temp + fsync + rename). Throws
/// std::runtime_error naming the path on any I/O failure; the temp file is
/// removed on failure.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Callback form: `fill(os)` produces the contents (serialized in memory,
/// then handed to the string overload).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& fill);

}  // namespace csim
