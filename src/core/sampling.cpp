#include "src/core/sampling.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/core/error.hpp"
#include "src/core/processor.hpp"
#include "src/mem/memory_system.hpp"
#include "src/mem/warm_state.hpp"

namespace csim {

namespace {
constexpr std::uint64_t kNoBoundary =
    std::numeric_limits<std::uint64_t>::max();
}  // namespace

SamplingController::SamplingController(
    const MachineSpec& cfg, MemorySystem* mem, bool fast_forward,
    std::chrono::steady_clock::time_point host_start)
    : cfg_(&cfg),
      mem_(mem),
      regime_(fast_forward ? Regime::FastForward : Regime::Warming),
      host_start_(host_start) {
  next_boundary_ = interval_start(0);
  if (next_boundary_ == 0) {
    // Zero warmup: the run opens in a detailed interval.
    enter_detail();
  } else if (mem_ != nullptr) {
    mem_->set_functional(true);
  }
}

SamplingController::SamplingController(
    const MachineSpec& cfg, Regime initial,
    std::chrono::steady_clock::time_point host_start)
    : cfg_(&cfg), mem_(nullptr), regime_(initial), host_start_(host_start) {
  // Shard mode: regime flips and functional-mode toggles belong to the epoch
  // coordinator; with no boundary of its own this controller only counts,
  // polls, and honors the per-epoch yield cap.
  next_boundary_ = kNoBoundary;
}

void SamplingController::bind_buckets(
    std::vector<const TimeBuckets*> buckets) {
  buckets_ = std::move(buckets);
  detail_buckets_.assign(buckets_.size(), TimeBuckets{});
  detail_snapshot_.assign(buckets_.size(), TimeBuckets{});
  if (detail()) {
    for (std::size_t p = 0; p < buckets_.size(); ++p) {
      detail_snapshot_[p] = *buckets_[p];
    }
  }
}

std::uint64_t sampling_interval_start(const MachineSpec& cfg,
                                      std::uint64_t k) {
  const SamplingSpec& s = cfg.sampling;
  if (!s.detail_at.empty()) {
    return k < s.detail_at.size() ? s.detail_at[k] : kNoBoundary;
  }
  if (k == 0) return s.warmup_refs;
  if (s.period_refs == 0) return kNoBoundary;
  return s.warmup_refs + k * s.period_refs;
}

std::uint64_t SamplingController::interval_start(std::uint64_t k) const {
  return sampling_interval_start(*cfg_, k);
}

void SamplingController::advance_regime() {
  if (detail()) {
    leave_detail();
    regime_ = Regime::Warming;
    if (mem_ != nullptr) mem_->set_functional(true);
    next_boundary_ = interval_start(interval_index_);
    // Back-to-back intervals (period_refs == detail_refs): no warming gap.
    if (next_boundary_ <= refs_) enter_detail();
  } else {
    enter_detail();
  }
}

void SamplingController::enter_detail() {
  // The warmup boundary: install (FastForward) or save (Warming) the
  // checkpoint while the memory state is still exactly the boundary state.
  if (!boundary_hook_fired_) {
    boundary_hook_fired_ = true;
    if (boundary_hook_) boundary_hook_();
  }
  regime_ = Regime::Detail;
  // Leaving functional mode also drops dead MSHR entries, so the boundary
  // state is identical whether it was warmed in-process or restored from a
  // checkpoint (which never stores MSHRs).
  if (mem_ != nullptr) mem_->set_functional(false);
  ++interval_index_;
  detail_enter_refs_ = refs_;
  for (std::size_t p = 0; p < buckets_.size(); ++p) {
    detail_snapshot_[p] = *buckets_[p];
  }
  const std::uint64_t len = cfg_->sampling.detail_refs;
  next_boundary_ = len == 0 ? kNoBoundary : refs_ + len;
}

void SamplingController::leave_detail() {
  detailed_refs_ += refs_ - detail_enter_refs_;
  for (std::size_t p = 0; p < buckets_.size(); ++p) {
    TimeBuckets d = *buckets_[p];
    const TimeBuckets& s = detail_snapshot_[p];
    d.cpu -= s.cpu;
    d.load -= s.load;
    d.merge -= s.merge;
    d.sync -= s.sync;
    d.contention -= s.contention;
    detail_buckets_[p] += d;
  }
}

void SamplingController::poll(Cycles now) {
  next_poll_ = refs_ + poll_stride_;
  if (poll_stride_ < kPollMaxRefs) poll_stride_ *= 2;
  if (cfg_->max_cycles != 0 && now > cfg_->max_cycles) {
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "cycle budget of %llu exceeded at cycle %llu during "
                  "functional warming (%llu refs retired)",
                  static_cast<unsigned long long>(cfg_->max_cycles),
                  static_cast<unsigned long long>(now),
                  static_cast<unsigned long long>(refs_));
    throw LivelockError(msg);
  }
  if (cfg_->max_host_seconds > 0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start_)
            .count();
    if (elapsed > cfg_->max_host_seconds) {
      char msg[160];
      std::snprintf(msg, sizeof msg,
                    "host deadline of %.3f s exceeded during functional "
                    "warming (%.3f s elapsed, %llu refs retired)",
                    cfg_->max_host_seconds, elapsed,
                    static_cast<unsigned long long>(refs_));
      throw TimeoutError(msg);
    }
  }
}

SamplingController::Accounting SamplingController::finish() {
  if (detail()) leave_detail();
  Accounting acc;
  acc.total_refs = refs_;
  acc.detailed_refs = detailed_refs_;
  acc.detail_buckets = detail_buckets_;
  return acc;
}

WarmCheckpointSetup setup_warm_checkpoint(
    const MachineSpec& cfg, std::uint64_t warm_digest,
    const std::string& app_name, std::uint8_t scale, MemorySystem& coh,
    const std::vector<std::unique_ptr<Proc>>& procs) {
  WarmCheckpointSetup out;
  if (cfg.sampling.checkpoint_dir.empty()) return out;
  const std::uint64_t boundary = cfg.sampling.detail_at.empty()
                                     ? cfg.sampling.warmup_refs
                                     : cfg.sampling.detail_at[0];
  WarmLoad wl = load_warm_state(cfg.sampling.checkpoint_dir, warm_digest);
  for (const std::string& w : wl.warnings) {
    std::fprintf(stderr, "%s\n", w.c_str());
  }
  // The digest already keys these; re-checking the header defends against a
  // digest collision handing back someone else's state.
  if (wl.state.has_value() && wl.state->app_name == app_name &&
      wl.state->scale == scale && wl.state->warmup_refs == boundary &&
      wl.state->proc_now.size() == cfg.num_procs) {
    out.fast_forward = true;
    out.hook = [&cfg, &coh, &procs, warm_digest,
                ws = *std::move(wl.state)] {
      // Trust the checkpoint only if the replay reproduced the exact
      // per-processor clocks it was captured with; a mismatch means the
      // checkpoint predates a behavioral change and must be regenerated.
      for (ProcId p = 0; p < cfg.num_procs; ++p) {
        if (procs[p]->now() != ws.proc_now[p]) {
          throw ProtocolError(
              "warm-state checkpoint " +
              warm_state_path(cfg.sampling.checkpoint_dir, warm_digest) +
              " is stale: fast-forward replay reached cycle " +
              std::to_string(procs[p]->now()) + " on proc " +
              std::to_string(p) + ", checkpoint recorded " +
              std::to_string(ws.proc_now[p]) +
              "; delete the file to re-warm");
        }
      }
      if (!coh.restore_warm_state(ws)) {
        throw ProtocolError(
            "warm-state checkpoint " +
            warm_state_path(cfg.sampling.checkpoint_dir, warm_digest) +
            " does not match this machine configuration; delete the file "
            "to re-warm");
      }
    };
    return out;
  }
  out.hook = [&cfg, &coh, &procs, warm_digest, app_name, scale, boundary] {
    WarmState ws;
    // A memory override without checkpoint support simply never saves.
    if (!coh.capture_warm_state(ws)) return;
    ws.warm_digest = warm_digest;
    ws.app_name = app_name;
    ws.scale = scale;
    ws.warmup_refs = boundary;
    ws.proc_now.reserve(cfg.num_procs);
    for (const auto& pp : procs) ws.proc_now.push_back(pp->now());
    save_warm_state(cfg.sampling.checkpoint_dir, ws);
  };
  return out;
}

void apply_sampling_extrapolation(SimResult& res,
                                  const SamplingController::Accounting& acc) {
  // Extrapolate timing from the detailed intervals. Miss counters are
  // already exact (warming counts real hits and misses); only TimeBuckets
  // and wall time are estimates, scaled by the inverse sampling fraction.
  res.sampled = true;
  res.detailed_refs = acc.detailed_refs;
  res.coverage = acc.total_refs == 0
                     ? 0.0
                     : static_cast<double>(acc.detailed_refs) /
                           static_cast<double>(acc.total_refs);
  if (acc.detailed_refs != 0) {
    // 128-bit intermediate: bucket totals scaled by total/detailed refs
    // can overflow 64 bits mid-multiply at paper scale.
    const auto scale_up = [&acc](std::uint64_t v) {
      return static_cast<std::uint64_t>(static_cast<unsigned __int128>(v) *
                                        acc.total_refs / acc.detailed_refs);
    };
    Cycles est_wall = 0;
    for (std::size_t p = 0; p < res.per_proc.size(); ++p) {
      const TimeBuckets& d = acc.detail_buckets[p];
      TimeBuckets b;
      b.cpu = scale_up(d.cpu);
      b.load = scale_up(d.load);
      b.merge = scale_up(d.merge);
      b.sync = scale_up(d.sync);
      b.contention = scale_up(d.contention);
      res.per_proc[p] = b;
      est_wall = std::max(est_wall, b.total());
    }
    // Pad sync up to the estimated wall (the implicit final barrier), so
    // aggregate().total() == num_procs * wall_time still holds.
    for (TimeBuckets& b : res.per_proc) b.sync += est_wall - b.total();
    res.wall_time = est_wall;
  }
  // detailed_refs == 0 (the run never reached an interval): keep the raw
  // flat-hit warming buckets — coverage 0 flags them as unmeasured.
}

}  // namespace csim
