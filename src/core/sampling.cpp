#include "src/core/sampling.hpp"

#include <cstdio>
#include <limits>
#include <utility>

#include "src/core/error.hpp"
#include "src/mem/memory_system.hpp"

namespace csim {

namespace {
constexpr std::uint64_t kNoBoundary =
    std::numeric_limits<std::uint64_t>::max();
}  // namespace

SamplingController::SamplingController(
    const MachineSpec& cfg, MemorySystem* mem, bool fast_forward,
    std::chrono::steady_clock::time_point host_start)
    : cfg_(&cfg),
      mem_(mem),
      regime_(fast_forward ? Regime::FastForward : Regime::Warming),
      host_start_(host_start) {
  next_boundary_ = interval_start(0);
  if (next_boundary_ == 0) {
    // Zero warmup: the run opens in a detailed interval.
    enter_detail();
  } else if (mem_ != nullptr) {
    mem_->set_functional(true);
  }
}

void SamplingController::bind_buckets(
    std::vector<const TimeBuckets*> buckets) {
  buckets_ = std::move(buckets);
  detail_buckets_.assign(buckets_.size(), TimeBuckets{});
  detail_snapshot_.assign(buckets_.size(), TimeBuckets{});
  if (detail()) {
    for (std::size_t p = 0; p < buckets_.size(); ++p) {
      detail_snapshot_[p] = *buckets_[p];
    }
  }
}

std::uint64_t SamplingController::interval_start(std::uint64_t k) const {
  const SamplingSpec& s = cfg_->sampling;
  if (!s.detail_at.empty()) {
    return k < s.detail_at.size() ? s.detail_at[k] : kNoBoundary;
  }
  if (k == 0) return s.warmup_refs;
  if (s.period_refs == 0) return kNoBoundary;
  return s.warmup_refs + k * s.period_refs;
}

void SamplingController::advance_regime() {
  if (detail()) {
    leave_detail();
    regime_ = Regime::Warming;
    if (mem_ != nullptr) mem_->set_functional(true);
    next_boundary_ = interval_start(interval_index_);
    // Back-to-back intervals (period_refs == detail_refs): no warming gap.
    if (next_boundary_ <= refs_) enter_detail();
  } else {
    enter_detail();
  }
}

void SamplingController::enter_detail() {
  // The warmup boundary: install (FastForward) or save (Warming) the
  // checkpoint while the memory state is still exactly the boundary state.
  if (!boundary_hook_fired_) {
    boundary_hook_fired_ = true;
    if (boundary_hook_) boundary_hook_();
  }
  regime_ = Regime::Detail;
  // Leaving functional mode also drops dead MSHR entries, so the boundary
  // state is identical whether it was warmed in-process or restored from a
  // checkpoint (which never stores MSHRs).
  if (mem_ != nullptr) mem_->set_functional(false);
  ++interval_index_;
  detail_enter_refs_ = refs_;
  for (std::size_t p = 0; p < buckets_.size(); ++p) {
    detail_snapshot_[p] = *buckets_[p];
  }
  const std::uint64_t len = cfg_->sampling.detail_refs;
  next_boundary_ = len == 0 ? kNoBoundary : refs_ + len;
}

void SamplingController::leave_detail() {
  detailed_refs_ += refs_ - detail_enter_refs_;
  for (std::size_t p = 0; p < buckets_.size(); ++p) {
    TimeBuckets d = *buckets_[p];
    const TimeBuckets& s = detail_snapshot_[p];
    d.cpu -= s.cpu;
    d.load -= s.load;
    d.merge -= s.merge;
    d.sync -= s.sync;
    d.contention -= s.contention;
    detail_buckets_[p] += d;
  }
}

void SamplingController::poll(Cycles now) {
  next_poll_ = refs_ + poll_stride_;
  if (poll_stride_ < kPollMaxRefs) poll_stride_ *= 2;
  if (cfg_->max_cycles != 0 && now > cfg_->max_cycles) {
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "cycle budget of %llu exceeded at cycle %llu during "
                  "functional warming (%llu refs retired)",
                  static_cast<unsigned long long>(cfg_->max_cycles),
                  static_cast<unsigned long long>(now),
                  static_cast<unsigned long long>(refs_));
    throw LivelockError(msg);
  }
  if (cfg_->max_host_seconds > 0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start_)
            .count();
    if (elapsed > cfg_->max_host_seconds) {
      char msg[160];
      std::snprintf(msg, sizeof msg,
                    "host deadline of %.3f s exceeded during functional "
                    "warming (%.3f s elapsed, %llu refs retired)",
                    cfg_->max_host_seconds, elapsed,
                    static_cast<unsigned long long>(refs_));
      throw TimeoutError(msg);
    }
  }
}

SamplingController::Accounting SamplingController::finish() {
  if (detail()) leave_detail();
  Accounting acc;
  acc.total_refs = refs_;
  acc.detailed_refs = detailed_refs_;
  acc.detail_buckets = detail_buckets_;
  return acc;
}

}  // namespace csim
