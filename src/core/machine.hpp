// MachineSpec: the full description of a simulated machine — topology
// (processors, clustering), cache geometry, Table 1 latencies, and the
// opt-in contention model. One immutable MachineSpec, shared by the run
// (std::shared_ptr<const MachineSpec>), drives the simulator, both memory
// system organizations, and the profilers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/types.hpp"
#include "src/mem/latency.hpp"

namespace csim {

/// Geometry of the (cluster-shared) cache.
struct CacheConfig {
  /// Capacity *per processor* in bytes; a cluster of C processors shares a
  /// cache of C * per_proc_bytes. 0 means infinite.
  std::size_t per_proc_bytes = 0;
  /// Cache line size in bytes (power of two).
  unsigned line_bytes = 64;
  /// Set associativity; 0 means fully associative (the paper's choice).
  unsigned associativity = 0;

  [[nodiscard]] bool infinite() const noexcept { return per_proc_bytes == 0; }

  bool operator==(const CacheConfig&) const noexcept = default;
};

/// Which level of the hierarchy the cluster shares (paper Section 2).
enum class ClusterStyle : std::uint8_t {
  SharedCache,   ///< processors share one cluster cache (the paper's focus)
  SharedMemory,  ///< private caches + snoopy bus + attraction memory
};

/// Opt-in event-driven contention model (DESIGN.md "Contention model").
///
/// When enabled, three classes of queued occupancy resources augment the
/// fixed Table 1 latency model with simulated queueing delay:
///  - the per-cluster shared-cache banks (SharedCache style) or cluster bus
///    (SharedMemory style): every access occupies its bank/bus for
///    `bank_busy` cycles; a FIFO backlog stalls later arrivals — the
///    in-engine counterpart of the Section 6 / Table 4 bank-conflict model;
///  - the directory controller at a line's home cluster: every miss
///    occupies it for `directory_busy` cycles;
///  - the network interface of the requesting cluster: every remote hop
///    occupies it for `nic_busy` cycles.
/// Only the *waiting* time is charged to the requester (the service time is
/// already part of the hit / Table 1 latency); waits land in the
/// TimeBuckets::contention bucket and the MissCounters contention fields.
/// With `enabled == false` (the default) results are bit-identical to the
/// model-free simulator (pinned by the golden digest suite).
struct ContentionSpec {
  bool enabled = false;
  /// Busy time, in cycles, a shared-cache bank (or the cluster bus) is held
  /// per access.
  Cycles bank_busy = 1;
  /// Busy time of the home directory controller per miss it services.
  Cycles directory_busy = 4;
  /// Busy time of the cluster network interface per remote hop.
  Cycles nic_busy = 6;

  bool operator==(const ContentionSpec&) const noexcept = default;
};

/// Opt-in interval sampling (docs/PERFORMANCE.md "Sampled simulation").
///
/// When enabled, a run alternates between two regimes keyed off the global
/// retired-reference count: **functional warming** (caches, directory/snoop
/// state, and sync semantics are updated, but every access is charged the
/// flat hit latency and never stalls — no latency model, no contention, no
/// MSHR timing) and **detailed intervals** (full event-driven simulation,
/// exactly the sampling-off path). Miss counters stay exact — warming counts
/// real hits and misses — while TimeBuckets are extrapolated from the
/// detailed intervals (SimResult::sampled / coverage / detailed_refs).
///
/// The schedule: warm for `warmup_refs`, then run detailed intervals of
/// `detail_refs` references starting every `period_refs` references (or at
/// the explicit `detail_at` points). `detail_refs == 0` means "detailed from
/// the first interval start to the end of the run" — the checkpoint-only
/// mode, where sampling buys warm-state reuse but full measurement.
///
/// With `checkpoint_dir` set, the memory state at the warmup boundary is
/// saved to `<dir>/<16-hex warm_config_digest>.csc` and later runs that
/// share the digest (same warmup-determining knobs; see
/// obs::warm_config_digest) fast-forward to the boundary by replaying the
/// application with no memory simulation at all and installing the
/// checkpointed state — bit-identical to warming in-process.
///
/// With `enabled == false` (the default) results are bit-identical to the
/// sampling-free simulator (pinned by the golden digest suite).
struct SamplingSpec {
  bool enabled = false;
  /// References functionally warmed before the first detailed interval.
  std::uint64_t warmup_refs = 0;
  /// Length of each detailed interval, in references. 0 = detailed from the
  /// first interval start to the end of the run.
  std::uint64_t detail_refs = 0;
  /// Distance between detailed-interval *starts*, in references. 0 = a
  /// single detailed interval (then warming to the end, unless
  /// detail_refs == 0 made it run detailed to the end).
  std::uint64_t period_refs = 0;
  /// Explicit detailed-interval start points (global retired-ref counts,
  /// strictly increasing, all >= warmup_refs). When non-empty, overrides
  /// period_refs. Chosen e.g. from IntervalSampler phase boundaries.
  std::vector<std::uint64_t> detail_at;
  /// Runahead quantum used while warming / fast-forwarding. Warming never
  /// stalls, so slices can be much longer than the detailed quantum without
  /// changing what the detailed intervals measure. Longer slices buy
  /// warming throughput (fewer event-queue round trips, less hit-filter
  /// generation churn: measured 1.7-2.5x at 64K on barrier-heavy apps at
  /// Default scale) but coarsen the warm interleaving, which distorts the
  /// warmed state on small problems; the default suits Test-scale runs,
  /// large-scale sweeps should raise it along with the problem. Part of
  /// the warm digest: changing it re-keys checkpoints.
  Cycles warm_quantum = 4096;
  /// Directory for warm-state checkpoints (.csc). Empty = no checkpointing.
  /// A cache location, not part of the configuration identity: excluded
  /// from config/result digests.
  std::string checkpoint_dir;

  bool operator==(const SamplingSpec&) const noexcept = default;
};

/// Opt-in conservative cluster-parallel execution (DESIGN.md "Parallel
/// windows").
///
/// When enabled (workers != 0), a single run executes its clusters on a
/// small worker pool: each cluster's event queue advances independently
/// inside a window [T, T + W) whose width W is the minimum inter-cluster
/// latency from Table 1 (>= 30 cycles for any transaction that leaves a
/// cluster — the guaranteed lookahead of conservative PDES). Operations
/// that stay inside a cluster complete inline; anything globally visible
/// (directory misses, upgrades, barriers, locks) is deferred to the window
/// boundary, where the coordinator drains all clusters' mailboxes in a
/// fixed deterministic order (timestamp, then source cluster, then
/// enqueue sequence). Results are therefore bit-identical at every worker
/// count — `workers` is a host-resource knob, excluded from config
/// digests — while `horizon_override` changes the timing model and is
/// part of the configuration identity.
///
/// With `workers == 0` (the default) the run takes the exact legacy
/// single-queue path, byte-identical to before this spec existed.
struct ParallelSpec {
  /// Worker threads for the window scheduler. 0 = parallel mode off
  /// (legacy single-queue path); 1 = windowed algorithm, inline, no
  /// threads (same digests as any other worker count).
  unsigned workers = 0;
  /// Override the safe horizon W in cycles. 0 = derive from the Table 1
  /// minimum inter-cluster latency. Part of the config digest.
  Cycles horizon_override = 0;

  [[nodiscard]] bool enabled() const noexcept { return workers != 0; }
  bool operator==(const ParallelSpec&) const noexcept = default;
};

/// Full description of the simulated machine.
struct MachineSpec {
  unsigned num_procs = 64;
  unsigned procs_per_cluster = 1;
  ClusterStyle cluster_style = ClusterStyle::SharedCache;
  /// SharedCache: per-processor share of the cluster cache.
  /// SharedMemory: each processor's private cache.
  CacheConfig cache{};
  LatencyModel latency{};
  /// Flat cache hit latency charged by the event simulator, in cycles.
  Cycles hit_latency = 1;
  /// Model shared-cache hit costs *inside* the simulation instead of the
  /// paper's post-hoc Section 6 estimation: every cache access is charged
  /// the Table 1 shared-cache hit latency for this cluster size, plus one
  /// cycle on a (pseudo-random) bank conflict with probability from the
  /// Table 4 model. Used by bench/validation_hit_cost.
  bool model_shared_hit_costs = false;
  unsigned banks_per_proc = 4;
  /// Queued-resource contention model (disabled by default).
  ContentionSpec contention{};
  /// Page granularity of home assignment (first-touch round robin).
  unsigned page_bytes = 4096;
  /// Max cycles a processor may run ahead on purely local operations before
  /// yielding to the global event queue. 1 = strict global ordering.
  Cycles runahead_quantum = 32;

  // --- Robustness knobs (see docs/ROBUSTNESS.md) ---------------------------
  /// Watchdog: abort with LivelockError once simulated time exceeds this
  /// many cycles. 0 = unlimited.
  std::uint64_t max_cycles = 0;
  /// Watchdog: abort with LivelockError after this many events. 0 = unlimited.
  std::uint64_t max_events = 0;
  /// Livelock detector: abort if this many consecutive events execute without
  /// simulated time advancing (the queue churning at a fixed cycle forever).
  /// 0 disables; the default is far above any legitimate same-cycle burst.
  std::uint64_t no_progress_events = 1u << 22;
  /// Run the coherence invariant audit (MemorySystem::audit) every N events
  /// during the simulation. 0 = audit at end of run only (always done).
  std::uint64_t audit_interval = 0;
  /// Watchdog: abort with TimeoutError once the run has consumed this much
  /// host (real) wall-clock time, in seconds. 0 = unlimited. Unlike the
  /// cycle/event budgets this depends on the host machine, so it never
  /// changes simulation results — only whether a run is allowed to finish.
  /// run_sweep uses it to enforce per-row deadlines (SweepPolicy).
  double max_host_seconds = 0;

  /// Opt-in interval sampling with warm-state checkpoints (disabled by
  /// default; bit-identical to the sampling-free simulator when off).
  SamplingSpec sampling{};

  /// Opt-in conservative cluster-parallel execution (disabled by default;
  /// the legacy single-queue path is untouched when off).
  ParallelSpec parallel{};

  [[nodiscard]] unsigned num_clusters() const noexcept {
    return num_procs / procs_per_cluster;
  }
  [[nodiscard]] ClusterId cluster_of(ProcId p) const noexcept {
    return p / procs_per_cluster;
  }
  [[nodiscard]] std::size_t cluster_cache_bytes() const noexcept {
    return cache.per_proc_bytes * procs_per_cluster;
  }
  [[nodiscard]] std::size_t cluster_cache_lines() const noexcept {
    return cluster_cache_bytes() / cache.line_bytes;
  }

  /// Table 1 hit latency of a shared cache for this cluster size (1/2/3/3).
  [[nodiscard]] Cycles shared_cache_hit_latency() const noexcept {
    if (procs_per_cluster <= 1) return 1;
    return procs_per_cluster == 2 ? 2 : 3;
  }

  /// Banks of the shared cluster cache under the contention model
  /// (Table 4's m = 4n; a 1-processor cluster still has banks_per_proc
  /// banks — with one requester it simply never conflicts).
  [[nodiscard]] unsigned cluster_banks() const noexcept {
    return banks_per_proc * procs_per_cluster;
  }

  /// Safe window width W for conservative cluster-parallel execution: the
  /// override when set, else the minimum Table 1 latency of any transaction
  /// that leaves a cluster (>= 30 cycles by default — the guaranteed
  /// lookahead). snoop_transfer is intra-cluster and does not bound W.
  [[nodiscard]] Cycles parallel_horizon() const noexcept {
    if (parallel.horizon_override != 0) return parallel.horizon_override;
    Cycles w = latency.local_clean;
    w = std::min(w, latency.local_dirty_remote);
    w = std::min(w, latency.remote_clean);
    w = std::min(w, latency.remote_dirty_third);
    w = std::min(w, latency.cluster_memory);
    return w;
  }

  /// Throws ConfigError (a std::invalid_argument) if the configuration is
  /// inconsistent.
  void validate() const;

  /// e.g. "64p/4ppc/16KB" — used in reports.
  [[nodiscard]] std::string label() const;

  bool operator==(const MachineSpec&) const = default;
};

/// Legacy name, kept for downstream source compatibility; new code should
/// spell it MachineSpec.
using MachineConfig = MachineSpec;

/// Builder-style construction path for MachineSpec: the single way drivers
/// (csim_cli, perf_micro, the examples) and tests assemble configurations.
/// Every setter returns *this for chaining; build() validates and returns a
/// value, build_shared() the immutable shared form the run owns.
///
///   auto spec = MachineSpecBuilder{}
///                   .procs(64).procs_per_cluster(4).cache_kb(16)
///                   .style(ClusterStyle::SharedCache)
///                   .contention_enabled()
///                   .build();
class MachineSpecBuilder {
 public:
  MachineSpecBuilder() = default;
  /// Start from an existing spec (e.g. paper_machine) and tweak.
  explicit MachineSpecBuilder(MachineSpec base) : s_(base) {}

  MachineSpecBuilder& procs(unsigned n) {
    s_.num_procs = n;
    return *this;
  }
  MachineSpecBuilder& procs_per_cluster(unsigned ppc) {
    s_.procs_per_cluster = ppc;
    return *this;
  }
  MachineSpecBuilder& style(ClusterStyle st) {
    s_.cluster_style = st;
    return *this;
  }
  MachineSpecBuilder& cache_bytes(std::size_t per_proc) {
    s_.cache.per_proc_bytes = per_proc;
    return *this;
  }
  MachineSpecBuilder& cache_kb(std::size_t kb) { return cache_bytes(kb * 1024); }
  MachineSpecBuilder& line_bytes(unsigned b) {
    s_.cache.line_bytes = b;
    return *this;
  }
  MachineSpecBuilder& associativity(unsigned a) {
    s_.cache.associativity = a;
    return *this;
  }
  MachineSpecBuilder& latency(const LatencyModel& m) {
    s_.latency = m;
    return *this;
  }
  MachineSpecBuilder& hit_latency(Cycles c) {
    s_.hit_latency = c;
    return *this;
  }
  MachineSpecBuilder& model_shared_hit_costs(bool on = true) {
    s_.model_shared_hit_costs = on;
    return *this;
  }
  MachineSpecBuilder& banks_per_proc(unsigned b) {
    s_.banks_per_proc = b;
    return *this;
  }
  MachineSpecBuilder& contention(const ContentionSpec& c) {
    s_.contention = c;
    return *this;
  }
  /// Convenience: enable the contention model with its default busy times.
  MachineSpecBuilder& contention_enabled(bool on = true) {
    s_.contention.enabled = on;
    return *this;
  }
  MachineSpecBuilder& page_bytes(unsigned b) {
    s_.page_bytes = b;
    return *this;
  }
  MachineSpecBuilder& runahead_quantum(Cycles q) {
    s_.runahead_quantum = q;
    return *this;
  }
  MachineSpecBuilder& max_cycles(std::uint64_t c) {
    s_.max_cycles = c;
    return *this;
  }
  MachineSpecBuilder& max_events(std::uint64_t e) {
    s_.max_events = e;
    return *this;
  }
  MachineSpecBuilder& audit_interval(std::uint64_t n) {
    s_.audit_interval = n;
    return *this;
  }
  MachineSpecBuilder& max_host_seconds(double s) {
    s_.max_host_seconds = s;
    return *this;
  }
  MachineSpecBuilder& sampling(const SamplingSpec& s) {
    s_.sampling = s;
    return *this;
  }
  /// Convenience: enable periodic sampling (warm `warmup` refs, then measure
  /// `detail` refs every `period` refs; period 0 = a single interval).
  MachineSpecBuilder& sample(std::uint64_t warmup, std::uint64_t detail,
                             std::uint64_t period = 0) {
    s_.sampling.enabled = true;
    s_.sampling.warmup_refs = warmup;
    s_.sampling.detail_refs = detail;
    s_.sampling.period_refs = period;
    return *this;
  }
  MachineSpecBuilder& checkpoint_dir(std::string dir) {
    s_.sampling.checkpoint_dir = std::move(dir);
    return *this;
  }
  MachineSpecBuilder& warm_quantum(Cycles q) {
    s_.sampling.warm_quantum = q;
    return *this;
  }
  MachineSpecBuilder& parallel(const ParallelSpec& p) {
    s_.parallel = p;
    return *this;
  }
  /// Convenience: enable cluster-parallel execution with `n` workers
  /// (0 = off, the legacy single-queue path).
  MachineSpecBuilder& parallel_workers(unsigned n) {
    s_.parallel.workers = n;
    return *this;
  }
  MachineSpecBuilder& parallel_horizon(Cycles w) {
    s_.parallel.horizon_override = w;
    return *this;
  }

  /// Validates and returns the spec by value (throws ConfigError).
  [[nodiscard]] MachineSpec build() const {
    s_.validate();
    return s_;
  }
  /// Returns the spec without validating. For sweep drivers that want an
  /// invalid configuration to degrade into an ok == false row inside
  /// run_sweep (Simulator validates again) rather than abort the sweep.
  [[nodiscard]] MachineSpec build_unchecked() const { return s_; }
  /// Validates and returns the immutable shared form the run owns.
  [[nodiscard]] std::shared_ptr<const MachineSpec> build_shared() const {
    s_.validate();
    return std::make_shared<const MachineSpec>(s_);
  }

 private:
  MachineSpec s_{};
};

}  // namespace csim
