// Machine configuration: processor count, clustering, cache geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/core/types.hpp"
#include "src/mem/latency.hpp"

namespace csim {

/// Geometry of the (cluster-shared) cache.
struct CacheConfig {
  /// Capacity *per processor* in bytes; a cluster of C processors shares a
  /// cache of C * per_proc_bytes. 0 means infinite.
  std::size_t per_proc_bytes = 0;
  /// Cache line size in bytes (power of two).
  unsigned line_bytes = 64;
  /// Set associativity; 0 means fully associative (the paper's choice).
  unsigned associativity = 0;

  [[nodiscard]] bool infinite() const noexcept { return per_proc_bytes == 0; }
};

/// Which level of the hierarchy the cluster shares (paper Section 2).
enum class ClusterStyle : std::uint8_t {
  SharedCache,   ///< processors share one cluster cache (the paper's focus)
  SharedMemory,  ///< private caches + snoopy bus + attraction memory
};

/// Full description of the simulated machine.
struct MachineConfig {
  unsigned num_procs = 64;
  unsigned procs_per_cluster = 1;
  ClusterStyle cluster_style = ClusterStyle::SharedCache;
  /// SharedCache: per-processor share of the cluster cache.
  /// SharedMemory: each processor's private cache.
  CacheConfig cache{};
  LatencyModel latency{};
  /// Flat cache hit latency charged by the event simulator, in cycles.
  Cycles hit_latency = 1;
  /// Model shared-cache hit costs *inside* the simulation instead of the
  /// paper's post-hoc Section 6 estimation: every cache access is charged
  /// the Table 1 shared-cache hit latency for this cluster size, plus one
  /// cycle on a (pseudo-random) bank conflict with probability from the
  /// Table 4 model. Used by bench/validation_hit_cost.
  bool model_shared_hit_costs = false;
  unsigned banks_per_proc = 4;
  /// Page granularity of home assignment (first-touch round robin).
  unsigned page_bytes = 4096;
  /// Max cycles a processor may run ahead on purely local operations before
  /// yielding to the global event queue. 1 = strict global ordering.
  Cycles runahead_quantum = 32;

  // --- Robustness knobs (see docs/ROBUSTNESS.md) ---------------------------
  /// Watchdog: abort with LivelockError once simulated time exceeds this
  /// many cycles. 0 = unlimited.
  std::uint64_t max_cycles = 0;
  /// Watchdog: abort with LivelockError after this many events. 0 = unlimited.
  std::uint64_t max_events = 0;
  /// Livelock detector: abort if this many consecutive events execute without
  /// simulated time advancing (the queue churning at a fixed cycle forever).
  /// 0 disables; the default is far above any legitimate same-cycle burst.
  std::uint64_t no_progress_events = 1u << 22;
  /// Run the coherence invariant audit (MemorySystem::audit) every N events
  /// during the simulation. 0 = audit at end of run only (always done).
  std::uint64_t audit_interval = 0;

  [[nodiscard]] unsigned num_clusters() const noexcept {
    return num_procs / procs_per_cluster;
  }
  [[nodiscard]] ClusterId cluster_of(ProcId p) const noexcept {
    return p / procs_per_cluster;
  }
  [[nodiscard]] std::size_t cluster_cache_bytes() const noexcept {
    return cache.per_proc_bytes * procs_per_cluster;
  }
  [[nodiscard]] std::size_t cluster_cache_lines() const noexcept {
    return cluster_cache_bytes() / cache.line_bytes;
  }

  /// Table 1 hit latency of a shared cache for this cluster size (1/2/3/3).
  [[nodiscard]] Cycles shared_cache_hit_latency() const noexcept {
    if (procs_per_cluster <= 1) return 1;
    return procs_per_cluster == 2 ? 2 : 3;
  }

  /// Throws ConfigError (a std::invalid_argument) if the configuration is
  /// inconsistent.
  void validate() const;

  /// e.g. "64p/4ppc/16KB" — used in reports.
  [[nodiscard]] std::string label() const;
};

}  // namespace csim
