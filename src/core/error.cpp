#include "src/core/error.hpp"

namespace csim {

std::string MachineSnapshot::format() const {
  std::string s;
  s += "  cycle " + std::to_string(cycle) + ", " +
       std::to_string(events_processed) + " events processed, " +
       std::to_string(event_queue_depth) + " pending\n";
  for (const ProcState& p : procs) {
    s += "  proc " + std::to_string(p.id) + ": " + p.detail +
         " (last progress cycle " + std::to_string(p.last_progress) + ")\n";
  }
  return s;
}

SimErrorKind sim_error_kind_from_string(std::string_view name) {
  for (SimErrorKind k :
       {SimErrorKind::Config, SimErrorKind::Deadlock, SimErrorKind::Livelock,
        SimErrorKind::Protocol, SimErrorKind::App, SimErrorKind::Timeout,
        SimErrorKind::Transient}) {
    if (name == to_string(k)) return k;
  }
  throw std::invalid_argument("unknown SimError kind: '" + std::string(name) +
                              "'");
}

void throw_sim_error(SimErrorKind kind, std::string summary,
                     MachineSnapshot snap) {
  switch (kind) {
    case SimErrorKind::Config:
      throw ConfigError(std::move(summary), std::move(snap));
    case SimErrorKind::Deadlock:
      throw DeadlockError(std::move(summary), std::move(snap));
    case SimErrorKind::Livelock:
      throw LivelockError(std::move(summary), std::move(snap));
    case SimErrorKind::Protocol:
      throw ProtocolError(std::move(summary), std::move(snap));
    case SimErrorKind::App:
      throw AppError(std::move(summary), std::move(snap));
    case SimErrorKind::Timeout:
      throw TimeoutError(std::move(summary), std::move(snap));
    case SimErrorKind::Transient:
      throw TransientError(std::move(summary), std::move(snap));
  }
  throw std::logic_error("throw_sim_error: bad kind");
}

namespace detail {

std::string render_error(SimErrorKind kind, const std::string& summary,
                         const MachineSnapshot& snap) {
  std::string s = std::string(to_string(kind)) + ": " + summary;
  if (!snap.empty()) {
    s += "\nmachine state at failure:\n";
    s += snap.format();
  }
  return s;
}

}  // namespace detail
}  // namespace csim
