#include "src/core/error.hpp"

namespace csim {

std::string MachineSnapshot::format() const {
  std::string s;
  s += "  cycle " + std::to_string(cycle) + ", " +
       std::to_string(events_processed) + " events processed, " +
       std::to_string(event_queue_depth) + " pending\n";
  for (const ProcState& p : procs) {
    s += "  proc " + std::to_string(p.id) + ": " + p.detail +
         " (last progress cycle " + std::to_string(p.last_progress) + ")\n";
  }
  return s;
}

namespace detail {

std::string render_error(SimErrorKind kind, const std::string& summary,
                         const MachineSnapshot& snap) {
  std::string s = std::string(to_string(kind)) + ": " + summary;
  if (!snap.empty()) {
    s += "\nmachine state at failure:\n";
    s += snap.format();
  }
  return s;
}

}  // namespace detail
}  // namespace csim
