// Proc: the per-processor execution context visible to application code.
//
// Application coroutines interact with the simulated machine exclusively
// through this interface:
//
//   co_await p.read(addr);     // load: may stall (miss/merge)
//   co_await p.write(addr);    // store: never stalls (store buffer)
//   co_await p.compute(n);     // n cycles of pure computation
//   co_await p.barrier(bar);   // global or phase barrier
//   co_await p.acquire(lock);  // FIFO lock
//   p.release(lock);
//
// Timing model: each operation advances this processor's local clock.
// Purely local operations (hits, computes, writes) may run ahead of global
// time by up to `runahead_quantum` cycles before the processor yields to the
// event queue; anything that stalls always yields. Read hits cost
// `hit_latency` busy cycles; read misses stall for the Table 1 latency
// (charged to the load bucket); reads joining an in-flight fill charge the
// merge bucket; barrier/lock waits charge the sync bucket.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "src/core/machine.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/sampling.hpp"
#include "src/core/sim_task.hpp"
#include "src/core/stats.hpp"
#include "src/core/types.hpp"
#include "src/mem/memory_system.hpp"

namespace csim {

class Barrier;
class Lock;
class Observer;
class Proc;

/// A globally-visible operation deferred to a parallel window boundary
/// (ParallelSpec; src/core/par_engine.hpp). Inside a window a processor may
/// only touch its own cluster's state; anything else — a directory
/// transition, a barrier arrival, a lock acquire/release — is recorded in
/// the partition's outbox at its issue time and executed by the coordinator
/// at the boundary, in a fixed deterministic order (time, then source
/// cluster, then enqueue sequence).
struct Deferred {
  enum class Kind : std::uint8_t {
    Read,          ///< read that left the cluster (full read() at boundary)
    Write,         ///< write needing directory work (full write() at boundary)
    BarrierArrive, ///< barrier arrival (coordinator owns barrier state)
    LockAcquire,   ///< lock acquire (coordinator owns lock state)
    LockRelease,   ///< lock release (no suspension; h is null)
    WarmRead,      ///< functional-warming read that left the cluster
    WarmWrite,     ///< functional-warming write that left the cluster
  };
  Kind kind = Kind::Read;
  Addr addr = 0;              ///< Read/Write target
  Barrier* barrier = nullptr; ///< BarrierArrive
  Lock* lock = nullptr;       ///< LockAcquire/LockRelease
  Cycles t = 0;               ///< issue time (processor-local clock)
  std::coroutine_handle<> h{};
  Proc* p = nullptr;
};

/// A partition's boundary mailbox. `blocking` counts the entries whose
/// commitment gates forward progress — everything except WarmRead/WarmWrite,
/// whose issuers keep running (warming has no latency, so the commit can
/// wait for a convenient boundary). The engine batches windows into one
/// barrier epoch for as long as every outbox is free of blocking entries;
/// see src/core/par_engine.cpp.
struct Outbox {
  std::vector<Deferred> ops;     ///< enqueue order
  std::uint32_t blocking = 0;    ///< ops that must commit at the next boundary
  void push(const Deferred& d) {
    if (d.kind != Deferred::Kind::WarmRead &&
        d.kind != Deferred::Kind::WarmWrite) {
      ++blocking;
    }
    ops.push_back(d);
  }
  void clear() noexcept {  // keeps capacity: boundary buffers are reused
    ops.clear();
    blocking = 0;
  }
};

class Proc : public EventQueue::Resumable {
 public:
  /// What a suspended processor is waiting for (diagnostics: the Simulator
  /// renders this into MachineSnapshot / DeadlockError messages).
  enum class WaitKind : std::uint8_t {
    None,     ///< runnable (between slices) or never suspended
    Barrier,  ///< parked in a Barrier's waiter list
    Lock,     ///< queued on a contended Lock
    Memory,   ///< stalled on an outstanding miss / merged fill
  };
  struct WaitInfo {
    WaitKind kind = WaitKind::None;
    const class Barrier* barrier = nullptr;  ///< set when kind == Barrier
    const class Lock* lock = nullptr;        ///< set when kind == Lock
    Addr addr = 0;                           ///< set when kind == Memory
    Cycles ready_at = 0;                     ///< fill time (kind == Memory)
    Cycles since = 0;                        ///< local clock at suspension
  };

  Proc(const MachineSpec& cfg, EventQueue& q, MemorySystem& coh,
       ProcId id)
      : cfg_(&cfg), queue_(&q), coh_(&coh), id_(id),
        cluster_(cfg.cluster_of(id)),
        line_mask_(~Addr{cfg.cache.line_bytes - 1}),
        hot_(coh.hot_counters(cfg.cluster_of(id))),
        rng_state_(0x9e3779b9u ^ (id * 2654435761u)) {
    if (hot_ != nullptr) {
      gen_ = coh.generation_addr(cluster_);
      touch_cache_ = coh.touch_cache(id_);
    }
    while ((Addr{1} << line_shift_) < cfg.cache.line_bytes) ++line_shift_;
    if (cfg.model_shared_hit_costs && cfg.procs_per_cluster > 1) {
      const unsigned n = cfg.procs_per_cluster;
      const double m = static_cast<double>(cfg.banks_per_proc) * n;
      double miss = 1.0;
      for (unsigned i = 1; i < n; ++i) miss *= (m - 1.0) / m;
      conflict_threshold_ =
          static_cast<std::uint64_t>((1.0 - miss) * 4294967296.0);
    }
  }

  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  [[nodiscard]] ProcId id() const noexcept { return id_; }
  [[nodiscard]] ClusterId cluster() const noexcept { return cluster_; }
  [[nodiscard]] unsigned nprocs() const noexcept { return cfg_->num_procs; }
  [[nodiscard]] Cycles now() const noexcept { return now_; }
  [[nodiscard]] const TimeBuckets& buckets() const noexcept { return buckets_; }
  [[nodiscard]] const MachineSpec& config() const noexcept { return *cfg_; }
  /// Current wait state; WaitKind::None while runnable. Stable after the
  /// event queue drains, which is what deadlock diagnostics read.
  [[nodiscard]] const WaitInfo& wait() const noexcept { return wait_; }

  /// Generic suspension awaiter: if `ready` is false the coroutine parks and
  /// is resumed (via the event queue) at `resume_at`.
  struct OpAwaiter {
    Proc* p;
    Cycles resume_at = 0;
    bool ready = true;
    bool await_ready() const noexcept { return ready; }
    void await_suspend(std::coroutine_handle<> h) const {
      p->schedule_resume(resume_at, h);
    }
    void await_resume() const noexcept {}
  };

  OpAwaiter read(Addr a) {
    OpAwaiter aw{this};
    aw.ready = do_read(a, aw.resume_at);
    return aw;
  }
  OpAwaiter write(Addr a) {
    OpAwaiter aw{this};
    aw.ready = do_write(a, aw.resume_at);
    return aw;
  }
  OpAwaiter compute(Cycles n) {
    OpAwaiter aw{this};
    aw.ready = do_compute(n, aw.resume_at);
    return aw;
  }

  // --- Run-length access streams (docs/PERFORMANCE.md) --------------------

  /// One step of a run element: a strided read/write stream or a fixed
  /// per-element compute burst.
  struct RunOp {
    enum class Kind : std::uint8_t { Read, Write, Compute };
    Addr base = 0;    ///< Compute: busy cycles per element
    Addr stride = 0;  ///< element i accesses base + i*stride (Compute: unused)
    Kind kind = Kind::Read;
    static constexpr RunOp read(Addr base, Addr stride = 0) noexcept {
      return {base, stride, Kind::Read};
    }
    static constexpr RunOp write(Addr base, Addr stride = 0) noexcept {
      return {base, stride, Kind::Write};
    }
    static constexpr RunOp compute(Cycles cycles) noexcept {
      return {cycles, 0, Kind::Compute};
    }
  };

  /// Awaitable for a whole run; see Proc::run.
  struct RunAwaiter {
    Proc* p;
    Cycles resume_at = 0;
    bool ready = true;
    bool await_ready() const noexcept { return ready; }
    void await_suspend(std::coroutine_handle<> h) const {
      p->schedule_resume(resume_at, h);
    }
    void await_resume() const noexcept {}
  };

  /// Issues a run: `count` elements, each executing `ops` in order (reads and
  /// writes at base + i*stride, computes of a fixed per-element cost).
  /// Awaiting the result retires the whole run exactly as the equivalent
  /// per-reference co_await loop would — same references, same order, same
  /// cycle accounting, same event schedule — but in a tight retirement loop
  /// that re-enters the scheduler only at a miss, merge, or quantum expiry
  /// instead of crossing a coroutine frame per reference. The awaitable must
  /// be co_awaited immediately: a Proc has one live run at a time.
  RunAwaiter run(std::initializer_list<RunOp> ops, std::uint32_t count);

  /// Capacity of a run's per-element op list (sized for the widest workload
  /// stencil — Ocean's restriction); longer lists must be chunked by the app.
  static constexpr unsigned kMaxRunOps = 20;

  /// As above, for op lists assembled at runtime (e.g. a stencil built in a
  /// loop). `num_ops` must be ≤ kMaxRunOps.
  RunAwaiter run(const RunOp* ops, unsigned num_ops, std::uint32_t count);

  /// Single-stream convenience: `count` strided references, each optionally
  /// followed by `compute_per_ref` busy cycles.
  RunAwaiter run(Addr base, Addr stride, std::uint32_t count, bool is_write,
                 Cycles compute_per_ref = 0);

  struct BarrierAwaiter {
    Proc* p;
    Barrier* b;
    bool await_ready() const;
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
  };
  BarrierAwaiter barrier(Barrier& b) { return BarrierAwaiter{this, &b}; }

  struct AcquireAwaiter {
    Proc* p;
    Lock* l;
    bool await_ready() const;
    void await_suspend(std::coroutine_handle<> h) const;
    void await_resume() const noexcept {}
  };
  AcquireAwaiter acquire(Lock& l) { return AcquireAwaiter{this, &l}; }
  void release(Lock& l);

  // --- engine-side interface (used by Simulator and sync primitives) ------

  /// Resets the local clock at the start of an event-queue slice.
  void begin_slice(Cycles t) noexcept {
    now_ = t;
    slice_end_ = t + (sampling_ == nullptr ? cfg_->runahead_quantum
                                           : sampling_->quantum());
    wait_ = WaitInfo{};  // resumed: whatever we waited for is over
  }

  /// Attaches the interval-sampling controller (src/core/sampling.hpp). Null
  /// (the default) keeps every access on the unsampled hot path — a single
  /// branch per operation. Sampled runs also get the enlarged warming-only
  /// hit table; unsampled runs never pay for its memory.
  void set_sampling(SamplingController* s) {
    sampling_ = s;
    if (s != nullptr && gen_ != nullptr && warm_filter_.empty()) {
      warm_filter_.assign(kWarmFilterSlots, FilterEntry{});
    }
  }

  /// Schedules `h` to resume at absolute time `t` (with a fresh slice).
  void schedule_resume(Cycles t, std::coroutine_handle<> h);

  /// EventQueue fast-path dispatch: fresh slice, resume, completion check.
  void resume_event(Cycles t, std::coroutine_handle<> h) override;

  /// Starts the root coroutine at t = 0 (first slice; used by Simulator).
  void launch();

  /// Attaches an observability sink (src/obs/observer.hpp). Null (the
  /// default) disables every hook — a single branch per site.
  void set_observer(Observer* obs) noexcept { obs_ = obs; }

  /// Records completion if the root coroutine has finished.
  void note_if_finished() noexcept;

  // --- Cluster-parallel execution (ParallelSpec; src/core/par_engine) -----

  /// Enters parallel-window mode: globally-visible operations defer into
  /// `outbox` instead of executing inline. Null (the default) keeps every
  /// operation on the legacy inline path.
  void set_parallel_outbox(Outbox* outbox) noexcept { outbox_ = outbox; }

  /// Window-boundary execution of a deferred operation, run by the
  /// coordinator with every partition quiescent. `floor` is the next
  /// window's start: the operation's outcome is only determined at the
  /// boundary, so the issuing processor never resumes before it.
  void finish_deferred(const Deferred& d, Cycles floor);

  TimeBuckets& mutable_buckets() noexcept { return buckets_; }

  bool finished = false;
  Cycles finish_time = 0;
  SimTask root;

 private:
  bool do_read(Addr a, Cycles& resume_at);
  bool do_write(Addr a, Cycles& resume_at);
  bool do_compute(Cycles n, Cycles& resume_at);

  /// The unsampled access paths (today's full-detail semantics), also used
  /// verbatim inside a sampled run's detailed intervals.
  bool detail_read(Addr a, Cycles& resume_at);
  bool detail_write(Addr a, Cycles& resume_at);

  /// Sampled-run dispatch: detail path + reference accounting, or the
  /// functional-warming / fast-forward path.
  bool sampled_read(Addr a, Cycles& resume_at);
  bool sampled_write(Addr a, Cycles& resume_at);

  /// Functional warming: memory state (and counters) updated through the
  /// usual protocol, but every reference retires at a flat hit_latency —
  /// never stalls, never rolls the shared-hit-cost rng. In FastForward the
  /// memory call is skipped entirely; the timing is identical by
  /// construction (warming timing never depends on memory state), which is
  /// what makes checkpoint restore exact.
  bool warm_read(Addr a, Cycles& resume_at);
  bool warm_write(Addr a, Cycles& resume_at);

  /// In-flight run (one per processor).
  struct RunState {
    std::array<RunOp, kMaxRunOps> ops{};
    unsigned num_ops = 0;
    unsigned pc = 0;        ///< next op of the current element
    std::uint32_t idx = 0;  ///< current element
    std::uint32_t count = 0;
    bool active = false;  ///< suspended mid-run; resume_event re-enters it
  };
  /// Retires run ops until the run completes (true) or an op yields to the
  /// event queue (false, resume_at set) — stall, merge, or quantum expiry.
  bool run_step(Cycles& resume_at);
  /// run_step for sampled runs: in a non-detail regime, whole groups of run
  /// iterations retire per memory probe (warm_run_batch).
  bool run_step_sampled(Cycles& resume_at);
  /// One warming/fast-forward batch of the active run: retires `k` whole
  /// iterations at the flat warming cost, with at most one real memory
  /// access per memory op (the rest are exactly the repeat hits the filter
  /// would short-circuit, bumped in bulk). Sets `progressed` false (and
  /// consumes nothing) when not even one whole iteration fits before the
  /// next slice / regime / poll point — the caller then retires that
  /// iteration per reference, so yield points and regime transitions land
  /// on exactly the same cycle as unbatched warming.
  bool warm_run_batch(Cycles& resume_at, bool& progressed);
  /// True if the slice budget is exhausted; sets resume_at for suspension.
  bool check_slice(Cycles& resume_at) noexcept {
    if (now_ >= slice_end_) {
      resume_at = now_;
      return false;
    }
    return true;
  }

  /// Cache access cost in cycles: hit_latency, or — when shared-cache hit
  /// costs are modelled in-simulation — the Table 1 shared hit latency plus
  /// one cycle on a pseudo-random bank conflict (Table 4 probability).
  Cycles access_cost() noexcept {
    if (!cfg_->model_shared_hit_costs) return cfg_->hit_latency;
    Cycles cost = cfg_->shared_cache_hit_latency();
    if (conflict_threshold_ != 0) {
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((rng_state_ >> 32) < conflict_threshold_) ++cost;
    }
    return cost;
  }

  const MachineSpec* cfg_;
  EventQueue* queue_;
  MemorySystem* coh_;
  Observer* obs_ = nullptr;
  ProcId id_;
  ClusterId cluster_;
  Addr line_mask_;
  Cycles now_ = 0;
  Cycles slice_end_ = 0;
  WaitInfo wait_{};
  TimeBuckets buckets_{};

  // Generation-tagged hit filter (docs/PERFORMANCE.md): a small direct-mapped
  // table of lines this processor recently hit, each entry valid while its
  // cluster's generation counter (MemorySystem::generation_addr) is
  // unchanged. The memory system bumps the counter only on events that could
  // invalidate a hint in *this* cluster, so — unlike a global epoch — entries
  // survive across event-queue slices while other clusters run. Repeat hits
  // bypass the virtual access call and its protocol branches, charging
  // access_cost() and bumping reads/hits via hot_; with bounded LRU caches
  // they also touch the line (touch_cache_) so eviction order — and with it
  // every digest — stays bit-identical to the slow path. Disabled
  // (gen_ == nullptr) when the memory system must observe every access.
  static constexpr std::size_t kFilterSlots = 8;  // covers Ocean's 6 streams
  struct FilterEntry {
    Addr line = ~Addr{0};  // never line-aligned: matches no real line
    std::uint64_t gen = 0;
    bool writable = false;
  };
  [[nodiscard]] std::size_t filter_slot(Addr line) const noexcept {
    return (line >> line_shift_) & (kFilterSlots - 1);
  }
  MissCounters* hot_ = nullptr;
  const std::uint64_t* gen_ = nullptr;  // null disables the filter
  CacheStorage* touch_cache_ = nullptr;  // LRU to touch per filtered hit
  std::array<FilterEntry, kFilterSlots> filter_{};
  // Functional warming consults an enlarged table instead: warming retires
  // the whole reference stream, so repeat-pass hits dominate and 8 slots
  // thrash (measured ~31% of warming references fell through to full
  // protocol calls). Same entry shape and generation-validity rule, so the
  // digest-neutrality argument is size-independent; kept separate from
  // filter_ so the detailed path's footprint and speed are untouched.
  // Allocated only when sampling is attached (set_sampling).
  static constexpr std::size_t kWarmFilterSlots = 8192;
  [[nodiscard]] std::size_t warm_slot(Addr line) const noexcept {
    return (line >> line_shift_) & (kWarmFilterSlots - 1);
  }
  std::vector<FilterEntry> warm_filter_;
  unsigned line_shift_ = 0;

  RunState run_{};

  SamplingController* sampling_ = nullptr;  // null: unsampled hot path

  // Parallel-window mode (null outbox_ = legacy inline path). A deferring
  // memory op stages its Deferred in pending_ and raises pending_defer_;
  // schedule_resume — the single point every suspension path (OpAwaiter,
  // RunAwaiter, resume_event re-entry) funnels through — then captures the
  // coroutine handle into the outbox instead of the event queue.
  Outbox* outbox_ = nullptr;
  bool pending_defer_ = false;
  Deferred pending_{};

  // Boundary helpers for finish_deferred.
  void finish_read(const Deferred& d, Cycles floor);
  void finish_write(const Deferred& d, Cycles floor);
  void finish_barrier_arrive(const Deferred& d, Cycles floor);
  void finish_lock_acquire(const Deferred& d, Cycles floor);
  void finish_lock_release(const Deferred& d, Cycles floor);
  /// WarmRead/WarmWrite: replay the warming access against globally-visible
  /// state. No coroutine to resume, no timing — warming retires at the flat
  /// hit cost when the reference issues; only the state/counter effects and
  /// the warm-filter hint happen here.
  void finish_warm(const Deferred& d);

  std::uint64_t rng_state_ = 0;
  std::uint64_t conflict_threshold_ = 0;  // scaled to 2^32
};

}  // namespace csim
