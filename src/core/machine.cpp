#include "src/core/machine.hpp"

#include <bit>

#include "src/core/error.hpp"

namespace csim {

void MachineSpec::validate() const {
  if (num_procs == 0) throw ConfigError("num_procs must be > 0");
  if (procs_per_cluster == 0 || num_procs % procs_per_cluster != 0) {
    throw ConfigError(
        "procs_per_cluster must divide num_procs evenly");
  }
  if (cache.line_bytes == 0 || !std::has_single_bit(cache.line_bytes)) {
    throw ConfigError("line_bytes must be a power of two");
  }
  if (page_bytes == 0 || !std::has_single_bit(page_bytes) ||
      page_bytes < cache.line_bytes) {
    throw ConfigError("page_bytes must be a power of two >= line size");
  }
  if (!cache.infinite()) {
    if (cache.per_proc_bytes % cache.line_bytes != 0) {
      throw ConfigError("cache size must be a multiple of line size");
    }
    const std::size_t lines = cluster_cache_lines();
    if (lines == 0) throw ConfigError("cache has zero lines");
    if (cache.associativity != 0 && lines % cache.associativity != 0) {
      throw ConfigError("lines must be a multiple of associativity");
    }
  }
  if (hit_latency == 0) throw ConfigError("hit_latency must be >= 1");
  if (runahead_quantum == 0) {
    throw ConfigError("runahead_quantum must be >= 1");
  }
  if (num_clusters() > 64) {
    throw ConfigError("at most 64 clusters (directory bit vector)");
  }
  if (max_host_seconds < 0) {
    throw ConfigError("max_host_seconds must be >= 0 (0 = unlimited)");
  }
  if (sampling.enabled) {
    if (sampling.warm_quantum == 0) {
      throw ConfigError("sampling.warm_quantum must be >= 1");
    }
    if (sampling.detail_refs == 0 && !sampling.detail_at.empty() &&
        sampling.detail_at.size() > 1) {
      throw ConfigError(
          "sampling.detail_refs == 0 (detailed to end) allows at most one "
          "detail_at point");
    }
    if (sampling.period_refs != 0 &&
        sampling.period_refs < sampling.detail_refs) {
      throw ConfigError(
          "sampling.period_refs must be >= detail_refs (intervals overlap)");
    }
    std::uint64_t prev = 0;
    bool first = true;
    for (const std::uint64_t at : sampling.detail_at) {
      if (at < sampling.warmup_refs) {
        throw ConfigError(
            "sampling.detail_at points must be >= warmup_refs");
      }
      if (!first && at < prev + sampling.detail_refs) {
        throw ConfigError(
            "sampling.detail_at points must be increasing with gaps >= "
            "detail_refs");
      }
      prev = at;
      first = false;
    }
    if (!sampling.checkpoint_dir.empty() && sampling.warmup_refs == 0) {
      throw ConfigError(
          "sampling.checkpoint_dir needs warmup_refs > 0 (the checkpoint is "
          "the warmup-boundary state)");
    }
  }
  if (parallel.enabled()) {
    if (contention.enabled) {
      throw ConfigError(
          "parallel execution is incompatible with the contention model "
          "(queued resources are globally ordered)");
    }
    if (parallel_horizon() == 0) {
      throw ConfigError(
          "parallel horizon must be >= 1 cycle (check horizon_override / "
          "latency model)");
    }
  }
  if (contention.enabled) {
    if (banks_per_proc == 0) {
      throw ConfigError("contention model needs banks_per_proc >= 1");
    }
    if (contention.bank_busy == 0 || contention.directory_busy == 0 ||
        contention.nic_busy == 0) {
      throw ConfigError("contention busy times must be >= 1 cycle");
    }
  }
}

std::string MachineSpec::label() const {
  std::string s = std::to_string(num_procs) + "p/" +
                  std::to_string(procs_per_cluster) + "ppc/";
  if (cache.infinite()) {
    s += "inf";
  } else {
    s += std::to_string(cache.per_proc_bytes / 1024) + "KB";
  }
  return s;
}

}  // namespace csim
