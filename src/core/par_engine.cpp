#include "src/core/par_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <functional>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/error.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/processor.hpp"
#include "src/core/run_debug.hpp"
#include "src/core/sampling.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"
#include "src/obs/manifest.hpp"

namespace csim::par {
namespace {

constexpr std::uint64_t kNoBoundary = std::numeric_limits<std::uint64_t>::max();

/// One cluster's share of the machine: its event queue, its processors, and
/// the outbox of operations deferred to a window boundary. Inside a window
/// exactly one thread touches a partition; ownership is handed back through
/// the epoch barrier / the pool's done counter (release/acquire).
struct Partition {
  EventQueue queue;
  std::vector<Proc*> procs;       // this cluster's processors, id order
  Outbox outbox;                  // deferred ops, enqueue order
  SamplingController* shard = nullptr;  // sampled runs: this cluster's shard
  std::exception_ptr err;         // failure escaping run_one()
  bool budget_hit = false;        // watchdog tripped inside the window
};

/// Runs one partition up to (not including) `t_end`. Never throws: errors
/// are parked in the partition for the coordinator, which alone may build a
/// machine-wide snapshot (reading other partitions mid-window would race).
void run_window(Partition& part, Cycles t_end) noexcept {
  try {
    EventQueue& q = part.queue;
    while (!q.empty() && q.next_time() < t_end) {
      q.run_one();
      if (q.over_budget()) [[unlikely]] {
        part.budget_hit = true;
        return;
      }
    }
  } catch (...) {
    part.err = std::current_exception();
  }
}

template <class Pred>
void spin_until(Pred pred) {
  for (unsigned spins = 0; !pred(); ++spins) {
    if (spins >= 4096) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

/// Sense-reversing spin-then-yield barrier for the window boundaries inside
/// an epoch. The last arriver runs `on_last` (the continuation decision)
/// with every participant parked, then releases them by flipping the shared
/// sense; its plain writes are published by that release store. Each
/// participant keeps its own sense bool, flipped per episode.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}

  template <class OnLast>
  void arrive_and_wait(bool& sense, OnLast&& on_last) {
    sense = !sense;
    // acq_rel: the last arriver must observe every other participant's
    // partition writes; everyone else publishes them with the release half.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      arrived_.store(0, std::memory_order_relaxed);
      on_last();
      sense_.store(sense, std::memory_order_release);
    } else {
      spin_until(
          [&] { return sense_.load(std::memory_order_acquire) == sense; });
    }
  }

 private:
  const unsigned n_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<bool> sense_{false};
};

/// Fixed pool of workers − 1 threads (the coordinator is the extra
/// participant). One handoff (epoch_/done_, release/acquire) publishes a
/// whole *epoch*: participants run consecutive windows — each partition
/// statically owned by one participant (round-robin by cluster index, so
/// ownership is stable across the epoch's internal barriers) — and meet at
/// a SpinBarrier per window boundary, where the last arriver decides
/// whether the epoch continues. It continues, skipping straight past empty
/// windows to the window holding the earliest pending event (grid-aligned),
/// for as long as no outbox holds a blocking entry, no error or watchdog
/// fired, no sampling shard wants a regime boundary, and the window budget
/// lasts; so a quiet boundary costs one barrier episode — a handful of
/// atomics — instead of a coordinator round trip with a serial drain.
///
/// The schedule is deterministic and identical at every worker count: the
/// continuation decision is a pure function of quiescent partition state
/// (queue heads, outbox occupancy, retired-reference counts), never of
/// wall-clock or thread timing, and a blocking deferral still commits at
/// the first W-grid boundary after its issue — exactly where the one-window
/// engine committed it, which is what keeps golden_digests_par.txt
/// bit-identical with batching and skipping on.
class EpochPool {
 public:
  /// Hard cap on windows batched into one epoch: bounds the gap between the
  /// coordinator's machine-wide checks (event budget, host deadline, audit)
  /// without ever affecting results — an epoch ending on the cap simply
  /// continues in the next one.
  static constexpr unsigned kMaxWindowsPerEpoch = 1024;

  EpochPool(std::vector<Partition>& parts, unsigned workers, Cycles horizon)
      : parts_(parts), W_(horizon), nworkers_(workers), barrier_(workers) {
    threads_.reserve(workers - 1);
    for (unsigned i = 1; i < workers; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  }

  ~EpochPool() {
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
  }

  EpochPool(const EpochPool&) = delete;
  EpochPool& operator=(const EpochPool&) = delete;

  /// Runs one epoch whose first window is [t_start, t_start + W) and returns
  /// the boundary it stopped at, with every partition quiescent there and
  /// every outbox sorted by issue time (each participant sorts its own
  /// partitions' outboxes on the way out, so the coordinator's k-way merge
  /// starts from (time, enqueue seq)-ordered runs). workers == 1: the same
  /// algorithm inline, no synchronization.
  Cycles run_epoch(Cycles t_start) {
    cur_end_ = t_start + W_;
    windows_left_ = kMaxWindowsPerEpoch;
    epoch_done_ = false;
    if (threads_.empty()) {
      for (;;) {
        for (Partition& part : parts_) run_window(part, cur_end_);
        decide();
        if (epoch_done_) break;
      }
      sort_outboxes(0);
      return cur_end_;
    }
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_loop(0, coord_sense_);
    const std::uint64_t want = threads_.size();
    spin_until([&] { return done_.load(std::memory_order_acquire) == want; });
    return cur_end_;
  }

 private:
  /// Participant `w`'s half of an epoch: run owned partitions to the window
  /// bound, meet at the barrier, repeat until the last arriver ends the
  /// epoch, then sort owned outboxes (published by the done_ release).
  void epoch_loop(unsigned w, bool& sense) {
    for (;;) {
      for (std::size_t i = w; i < parts_.size(); i += nworkers_) {
        run_window(parts_[i], cur_end_);
      }
      barrier_.arrive_and_wait(sense, [this] { decide(); });
      if (epoch_done_) break;
    }
    sort_outboxes(w);
  }

  /// The boundary continuation decision, run with every partition quiescent
  /// at cur_end_ (by the barrier's last arriver — which thread that is never
  /// matters, the inputs are quiescent). Ends the epoch on any error,
  /// watchdog, blocking outbox entry, due sampling boundary, exhausted
  /// window budget, or an idle machine; otherwise advances cur_end_ to the
  /// end of the window containing the earliest pending event. The W-grid
  /// stays anchored at cycle 0, so boundary floors remain a pure function
  /// of event times.
  void decide() {
    --windows_left_;
    bool stop = windows_left_ == 0;
    if (!stop) {
      for (const Partition& part : parts_) {
        if (part.err || part.budget_hit || part.outbox.blocking != 0 ||
            (part.shard != nullptr && part.shard->yield_due())) {
          stop = true;
          break;
        }
      }
    }
    if (!stop) {
      bool any = false;
      Cycles mn = 0;
      for (const Partition& part : parts_) {
        if (part.queue.empty()) continue;
        const Cycles t = part.queue.next_time();
        if (!any || t < mn) mn = t;
        any = true;
      }
      if (any) {
        cur_end_ += W_ + W_ * ((mn - cur_end_) / W_);
      } else {
        stop = true;
      }
    }
    epoch_done_ = stop;
  }

  /// Sorts each owned outbox by issue time; the sort is stable, so entries
  /// stay in enqueue order within a time. (A partition's outbox is appended
  /// in event-execution order, which run-ahead slices can locally reorder
  /// against issue time.)
  void sort_outboxes(unsigned w) {
    for (std::size_t i = w; i < parts_.size(); i += nworkers_) {
      std::vector<Deferred>& ops = parts_[i].outbox.ops;
      if (ops.size() > 1) {
        std::stable_sort(
            ops.begin(), ops.end(),
            [](const Deferred& a, const Deferred& b) { return a.t < b.t; });
      }
    }
  }

  void worker_main(unsigned w) {
    std::uint64_t seen = 0;
    bool sense = false;
    for (;;) {
      spin_until(
          [&] { return epoch_.load(std::memory_order_acquire) != seen; });
      if (stop_.load(std::memory_order_relaxed)) return;
      seen = epoch_.load(std::memory_order_acquire);
      epoch_loop(w, sense);
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  std::vector<Partition>& parts_;
  const Cycles W_;
  const unsigned nworkers_;
  SpinBarrier barrier_;
  // Epoch-shared state: written by run_epoch and by decide() (single-threaded
  // inside the barrier), published by the epoch_ / sense releases.
  Cycles cur_end_ = 0;
  unsigned windows_left_ = 0;
  bool epoch_done_ = false;
  bool coord_sense_ = false;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

/// The machine-global sampling schedule for parallel runs. Reference counts
/// are sharded per cluster (each shard is a SamplingController that only
/// counts and polls); regime flips — which toggle the memory system's
/// functional mode, and so demand global quiescence — happen at epoch
/// boundaries, after the drain. Promptness comes from per-epoch yield caps:
/// each shard may retire at most its fair share of the references remaining
/// to the next boundary (never more than kMaxEpochRefs), after which its
/// processors end their slices and the epoch closes. The whole schedule is
/// a pure function of retired-reference counts, so it is identical at every
/// worker count and identical between Warming and FastForward replay — the
/// invariant that makes parallel checkpoint restore exact.
class ParSampling {
 public:
  /// Per-shard per-epoch reference cap. Bounds warm-outbox growth (one
  /// deferred entry per cross-cluster warming reference, worst case) and
  /// the machine-wide overshoot past a regime boundary, while keeping the
  /// epoch overhead amortized over tens of thousands of references.
  static constexpr std::uint64_t kMaxEpochRefs = 65536;

  ParSampling(const MachineSpec& cfg, MemorySystem& coh,
              std::vector<Partition>& parts,
              const std::vector<std::unique_ptr<Proc>>& procs,
              bool fast_forward, std::function<void()> hook,
              std::chrono::steady_clock::time_point host_start)
      : cfg_(&cfg), coh_(&coh), hook_(std::move(hook)) {
    regime_ = fast_forward ? SamplingController::Regime::FastForward
                           : SamplingController::Regime::Warming;
    shards_.reserve(parts.size());
    for (Partition& part : parts) {
      shards_.push_back(
          std::make_unique<SamplingController>(cfg, regime_, host_start));
      part.shard = shards_.back().get();
    }
    buckets_.reserve(procs.size());
    for (const auto& pp : procs) {
      pp->set_sampling(shards_[pp->cluster()].get());
      buckets_.push_back(&pp->buckets());
    }
    detail_snapshot_.assign(buckets_.size(), TimeBuckets{});
    detail_buckets_.assign(buckets_.size(), TimeBuckets{});
    next_boundary_ = sampling_interval_start(cfg, 0);
    if (next_boundary_ == 0) {
      enter_detail(0);  // zero warmup: the run opens in a detailed interval
    } else {
      coh.set_functional(true);
    }
    refresh_shards();
  }

  /// Epoch-boundary hook, called by the coordinator after the drain (warm
  /// commits must run under the regime that issued them) with the machine
  /// quiescent: flips regimes whose global boundary was crossed, then hands
  /// every shard its regime and yield cap for the next epoch.
  void at_boundary() {
    const std::uint64_t total = total_refs();
    if (regime_ == SamplingController::Regime::Detail) {
      if (total >= detail_end_) {
        leave_detail(total);
        regime_ = SamplingController::Regime::Warming;
        coh_->set_functional(true);
        next_boundary_ = sampling_interval_start(*cfg_, interval_index_);
        // Back-to-back intervals (period == detail): no warming gap.
        if (next_boundary_ <= total) enter_detail(total);
      }
    } else if (total >= next_boundary_) {
      enter_detail(total);
    }
    refresh_shards();
  }

  /// Run-end accounting; closes an open detailed interval.
  [[nodiscard]] SamplingController::Accounting finish() {
    const std::uint64_t total = total_refs();
    if (regime_ == SamplingController::Regime::Detail) leave_detail(total);
    SamplingController::Accounting acc;
    acc.total_refs = total;
    acc.detailed_refs = detailed_refs_;
    acc.detail_buckets = detail_buckets_;
    return acc;
  }

 private:
  [[nodiscard]] std::uint64_t total_refs() const {
    std::uint64_t t = 0;
    for (const auto& s : shards_) t += s->refs();
    return t;
  }

  void enter_detail(std::uint64_t total) {
    // The warmup boundary: install (FastForward) or save (Warming) the
    // checkpoint while the memory state is still exactly the boundary state.
    if (!hook_fired_) {
      hook_fired_ = true;
      if (hook_) hook_();
    }
    regime_ = SamplingController::Regime::Detail;
    // Leaving functional mode also drops dead MSHR entries, so the boundary
    // state is identical whether it was warmed in-process or restored from
    // a checkpoint (which never stores MSHRs).
    coh_->set_functional(false);
    ++interval_index_;
    detail_enter_total_ = total;
    for (std::size_t p = 0; p < buckets_.size(); ++p) {
      detail_snapshot_[p] = *buckets_[p];
    }
    const std::uint64_t len = cfg_->sampling.detail_refs;
    detail_end_ = len == 0 ? kNoBoundary : total + len;
  }

  void leave_detail(std::uint64_t total) {
    detailed_refs_ += total - detail_enter_total_;
    for (std::size_t p = 0; p < buckets_.size(); ++p) {
      TimeBuckets d = *buckets_[p];
      const TimeBuckets& s = detail_snapshot_[p];
      d.cpu -= s.cpu;
      d.load -= s.load;
      d.merge -= s.merge;
      d.sync -= s.sync;
      d.contention -= s.contention;
      detail_buckets_[p] += d;
    }
  }

  void refresh_shards() {
    const std::uint64_t total = total_refs();
    const std::uint64_t target =
        regime_ == SamplingController::Regime::Detail ? detail_end_
                                                      : next_boundary_;
    std::uint64_t share = kMaxEpochRefs;
    if (target != kNoBoundary) {
      const std::uint64_t remain = target > total ? target - total : 0;
      const std::uint64_t fair = std::max<std::uint64_t>(
          1, remain / static_cast<std::uint64_t>(shards_.size()));
      if (fair < share) share = fair;
    }
    for (auto& s : shards_) {
      s->set_regime(regime_);
      s->set_yield_cap(share);
    }
  }

  const MachineSpec* cfg_;
  MemorySystem* coh_;
  std::function<void()> hook_;
  std::vector<std::unique_ptr<SamplingController>> shards_;
  std::vector<const TimeBuckets*> buckets_;
  std::vector<TimeBuckets> detail_snapshot_;
  std::vector<TimeBuckets> detail_buckets_;
  SamplingController::Regime regime_;
  std::uint64_t next_boundary_ = 0;
  std::uint64_t detail_end_ = kNoBoundary;
  std::uint64_t interval_index_ = 0;
  std::uint64_t detail_enter_total_ = 0;
  std::uint64_t detailed_refs_ = 0;
  bool hook_fired_ = false;
};

MachineSnapshot snapshot(Cycles cycle, const std::vector<Partition>& parts,
                         const std::vector<std::unique_ptr<Proc>>& procs) {
  std::size_t depth = 0;
  std::uint64_t events = 0;
  for (const Partition& part : parts) {
    depth += part.queue.size();
    events += part.queue.events_run();
  }
  return detail::capture_proc_snapshot(cycle, depth, events, procs);
}

}  // namespace

SimResult run_parallel(const std::shared_ptr<const MachineSpec>& spec,
                       Program& prog, MemorySystem* memory_override) {
  const MachineSpec& cfg_ = *spec;
  const auto host_start = std::chrono::steady_clock::now();
  AddressSpace as;
  try {
    prog.setup(as, cfg_);
  } catch (const SimError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw ConfigError("setup of '" + prog.name() + "' rejected: " + e.what());
  } catch (const std::exception& e) {
    throw AppError("setup of '" + prog.name() + "' failed: " + e.what());
  }

  std::unique_ptr<MemorySystem> mem;
  if (memory_override == nullptr) {
    if (cfg_.cluster_style == ClusterStyle::SharedMemory) {
      mem = std::make_unique<ClusteredMemorySystem>(spec, as);
    } else {
      mem = std::make_unique<CoherenceController>(spec, as);
    }
  }
  MemorySystem& coh = memory_override ? *memory_override : *mem;

  const unsigned nclusters = cfg_.num_clusters();
  std::vector<Partition> parts(nclusters);
  // Per-queue watchdogs bound runtime, never results: max_cycles and
  // no-progress are naturally per-queue; max_events gets an additional
  // machine-wide check at each epoch boundary.
  const EventQueue::Budget budget{cfg_.max_cycles, cfg_.max_events,
                                  cfg_.no_progress_events};
  for (Partition& part : parts) {
    part.queue.set_budget(budget);
    part.outbox.ops.reserve(256);  // pre-sized, reused across boundaries
  }

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    Partition& part = parts[cfg_.cluster_of(p)];
    procs.push_back(std::make_unique<Proc>(cfg_, part.queue, coh, p));
    Proc* proc = procs.back().get();
    proc->set_parallel_outbox(&part.outbox);
    part.procs.push_back(proc);
  }

  // Interval sampling composes with the window engine: reference counting
  // is sharded per cluster and regime flips ride the epoch boundaries.
  std::unique_ptr<ParSampling> sampling;
  if (cfg_.sampling.enabled) {
    const std::uint64_t warm_digest =
        obs::warm_config_digest(cfg_, prog.name(), prog.scale());
    WarmCheckpointSetup wcs = setup_warm_checkpoint(
        cfg_, warm_digest, prog.name(),
        static_cast<std::uint8_t>(prog.scale()), coh, procs);
    sampling = std::make_unique<ParSampling>(cfg_, coh, parts, procs,
                                             wcs.fast_forward,
                                             std::move(wcs.hook), host_start);
  }

  for (auto& pp : procs) {
    Proc* proc = pp.get();
    proc->root = prog.body(*proc);
    parts[proc->cluster()].queue.schedule(0, [proc] { proc->launch(); });
  }

  const Cycles W = cfg_.parallel_horizon();
  // The worker count never affects results (pinned by the determinism
  // matrix), so clamping is pure scheduling: more workers than clusters
  // would have nothing to claim, and more workers than host cores would
  // only time-slice the epoch barrier's spin. TSan builds skip the core
  // clamp — the race detector must see the requested thread structure even
  // on a small host, and interleaved time slices are enough to find races.
#if !defined(CSIM_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CSIM_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(CSIM_TSAN)
  const unsigned hw = nclusters;
#else
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
#endif
  const unsigned workers =
      std::max(1u, std::min({cfg_.parallel.workers, nclusters, hw}));
  EpochPool pool(parts, workers, W);

  const std::uint64_t audit_every = cfg_.audit_interval;
  std::uint64_t next_audit = audit_every;
  const bool deadline_armed = cfg_.max_host_seconds > 0;

  Cycles T = 0;  // current window start; always a multiple of W
  for (;;) {
    // Earliest pending event across the machine; none => idle (any procs
    // still parked on a barrier/lock are caught by the deadlock check).
    bool any = false;
    Cycles mn = 0;
    for (Partition& part : parts) {
      if (part.queue.empty()) continue;
      const Cycles t = part.queue.next_time();
      if (!any || t < mn) mn = t;
      any = true;
    }
    if (!any) break;

    // Grid-aligned advance: skip whole empty windows but keep every window
    // start a multiple of W from cycle 0, so boundary floors are a pure
    // function of event times — identical at every worker count.
    T += W * ((mn - T) / W);

    const Cycles t_end = pool.run_epoch(T);

    for (const Partition& part : parts) {
      if (part.err) std::rethrow_exception(part.err);
    }
    std::uint64_t total_events = 0;
    for (const Partition& part : parts) total_events += part.queue.events_run();
    for (const Partition& part : parts) {
      if (!part.budget_hit) continue;
      auto v = part.queue.budget_violation();
      throw LivelockError(v.has_value() ? *std::move(v)
                                        : std::string("watchdog budget exceeded"),
                          snapshot(t_end, parts, procs));
    }
    if (cfg_.max_events != 0 && total_events > cfg_.max_events) {
      throw LivelockError("event budget of " + std::to_string(cfg_.max_events) +
                              " exceeded machine-wide (ran " +
                              std::to_string(total_events) + ")",
                          snapshot(t_end, parts, procs));
    }
    if (deadline_armed) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        host_start)
              .count();
      if (elapsed > cfg_.max_host_seconds) {
        char msg[96];
        std::snprintf(msg, sizeof msg,
                      "host deadline of %.3f s exceeded (ran %.3f s)",
                      cfg_.max_host_seconds, elapsed);
        throw TimeoutError(msg, snapshot(t_end, parts, procs));
      }
    }
    if (audit_every != 0 && total_events >= next_audit) {
      coh.audit();
      next_audit = total_events - total_events % audit_every + audit_every;
    }

    // Boundary drain: a k-way merge over the per-partition outboxes, each
    // already (time, enqueue seq)-sorted by its epoch participant. Smallest
    // issue time wins, ties by source cluster index — exactly the (time,
    // source cluster, enqueue sequence) order of the engine's one global
    // serialization point. The floor is the boundary the epoch stopped at:
    // a blocking deferral ends its epoch at the first W-grid boundary after
    // issue, so outcomes land where the one-window engine put them.
    bool have_ops = false;
    for (Partition& part : parts) have_ops |= !part.outbox.ops.empty();
    if (have_ops) {
      std::vector<std::size_t> head(nclusters, 0);
      for (;;) {
        std::size_t best = nclusters;
        Cycles best_t = 0;
        for (std::size_t c = 0; c < nclusters; ++c) {
          const std::vector<Deferred>& ops = parts[c].outbox.ops;
          if (head[c] >= ops.size()) continue;
          const Cycles t = ops[head[c]].t;
          if (best == nclusters || t < best_t) {
            best = c;
            best_t = t;
          }
        }
        if (best == nclusters) break;
        const Deferred& d = parts[best].outbox.ops[head[best]++];
        d.p->finish_deferred(d, t_end);
      }
      for (Partition& part : parts) part.outbox.clear();
    }

    if (sampling != nullptr) sampling->at_boundary();

    T = t_end;
  }

  for (auto& pp : procs) {
    pp->root.rethrow_if_failed();
  }

  // Protocol state must be internally consistent once the machine is idle.
  coh.audit();

  unsigned unfinished = 0;
  for (auto& pp : procs) {
    if (!pp->finished) ++unfinished;
  }
  if (unfinished != 0) {
    std::string summary = std::to_string(unfinished) + " of " +
                          std::to_string(cfg_.num_procs) +
                          " processors never finished:";
    for (auto& pp : procs) {
      if (pp->finished) continue;
      summary += " proc " + std::to_string(pp->id()) + " " +
                 detail::describe_wait(*pp) + ";";
    }
    summary.pop_back();
    throw DeadlockError(std::move(summary), snapshot(T, parts, procs));
  }

  SimResult res;
  res.config = cfg_;
  res.app_name = prog.name();
  res.scale = prog.scale();

  Cycles wall = 0;
  for (auto& pp : procs) wall = std::max(wall, pp->finish_time);
  res.wall_time = wall;
  std::uint64_t total_events = 0;
  for (const Partition& part : parts) total_events += part.queue.events_run();
  res.events = total_events;

  res.per_proc.reserve(cfg_.num_procs);
  for (auto& pp : procs) {
    TimeBuckets b = pp->buckets();
    // Early finishers wait at the implicit final barrier.
    b.sync += wall - pp->finish_time;
    res.per_proc.push_back(b);
  }

  res.per_cluster.reserve(nclusters);
  for (ClusterId c = 0; c < nclusters; ++c) {
    res.per_cluster.push_back(coh.cluster_counters(c));
  }
  res.totals = coh.totals();

  if (sampling != nullptr) {
    apply_sampling_extrapolation(res, sampling->finish());
  }

  try {
    prog.verify();
  } catch (const SimError&) {
    throw;
  } catch (const std::exception& e) {
    throw AppError("verification of '" + prog.name() + "' failed: " + e.what(),
                   snapshot(T, parts, procs));
  }
  res.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return res;
}

}  // namespace csim::par
