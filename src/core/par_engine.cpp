#include "src/core/par_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/error.hpp"
#include "src/core/event_queue.hpp"
#include "src/core/processor.hpp"
#include "src/core/run_debug.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"

namespace csim::par {
namespace {

/// One cluster's share of the machine: its event queue, its processors, and
/// the outbox of operations deferred to the next window boundary. Inside a
/// window exactly one thread touches a partition; ownership is handed back
/// to the coordinator through the pool's done counter (release/acquire).
struct Partition {
  EventQueue queue;
  std::vector<Proc*> procs;      // this cluster's processors, id order
  std::vector<Deferred> outbox;  // deferred ops, enqueue order
  std::exception_ptr err;        // failure escaping run_one()
  bool budget_hit = false;       // watchdog tripped inside the window
};

/// Runs one partition up to (not including) `t_end`. Never throws: errors
/// are parked in the partition for the coordinator, which alone may build a
/// machine-wide snapshot (reading other partitions mid-window would race).
void run_window(Partition& part, Cycles t_end) noexcept {
  try {
    EventQueue& q = part.queue;
    while (!q.empty() && q.next_time() < t_end) {
      q.run_one();
      if (q.over_budget()) [[unlikely]] {
        part.budget_hit = true;
        return;
      }
    }
  } catch (...) {
    part.err = std::current_exception();
  }
}

/// Fixed pool of workers − 1 threads (the coordinator is the extra worker).
/// A window is published by writing t_end_ and release-incrementing epoch_;
/// workers acquire-spin on the epoch, claim partitions with a fetch_add
/// ticket, and release-increment done_ when the ticket counter runs out.
/// Which thread runs which partition never affects results — partition
/// execution is queue-order-deterministic and windows are conflict-free —
/// so the pool needs no ordering beyond the epoch/done handoff.
class WindowPool {
 public:
  WindowPool(std::vector<Partition>& parts, unsigned workers) : parts_(parts) {
    threads_.reserve(workers - 1);
    for (unsigned i = 1; i < workers; ++i) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ~WindowPool() {
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
  }

  WindowPool(const WindowPool&) = delete;
  WindowPool& operator=(const WindowPool&) = delete;

  /// Runs every partition's window [*, t_end) and returns with all of them
  /// quiescent. workers == 1: inline in index order, no synchronization.
  void run_window_all(Cycles t_end) {
    if (threads_.empty()) {
      for (Partition& part : parts_) run_window(part, t_end);
      return;
    }
    t_end_ = t_end;  // published by the epoch release-increment below
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    claim();  // the coordinator works too
    const std::uint64_t want = threads_.size();
    spin_until([&] { return done_.load(std::memory_order_acquire) == want; });
  }

 private:
  void claim() {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= parts_.size()) return;
      run_window(parts_[i], t_end_);
    }
  }

  template <class Pred>
  static void spin_until(Pred pred) {
    for (unsigned spins = 0; !pred(); ++spins) {
      if (spins >= 4096) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    for (;;) {
      spin_until(
          [&] { return epoch_.load(std::memory_order_acquire) != seen; });
      if (stop_.load(std::memory_order_relaxed)) return;
      seen = epoch_.load(std::memory_order_acquire);
      claim();
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  std::vector<Partition>& parts_;
  Cycles t_end_ = 0;  // window bound; published via epoch_
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

MachineSnapshot snapshot(Cycles cycle, const std::vector<Partition>& parts,
                         const std::vector<std::unique_ptr<Proc>>& procs) {
  std::size_t depth = 0;
  std::uint64_t events = 0;
  for (const Partition& part : parts) {
    depth += part.queue.size();
    events += part.queue.events_run();
  }
  return detail::capture_proc_snapshot(cycle, depth, events, procs);
}

}  // namespace

SimResult run_parallel(const std::shared_ptr<const MachineSpec>& spec,
                       Program& prog, MemorySystem* memory_override) {
  const MachineSpec& cfg_ = *spec;
  const auto host_start = std::chrono::steady_clock::now();
  AddressSpace as;
  try {
    prog.setup(as, cfg_);
  } catch (const SimError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw ConfigError("setup of '" + prog.name() + "' rejected: " + e.what());
  } catch (const std::exception& e) {
    throw AppError("setup of '" + prog.name() + "' failed: " + e.what());
  }

  std::unique_ptr<MemorySystem> mem;
  if (memory_override == nullptr) {
    if (cfg_.cluster_style == ClusterStyle::SharedMemory) {
      mem = std::make_unique<ClusteredMemorySystem>(spec, as);
    } else {
      mem = std::make_unique<CoherenceController>(spec, as);
    }
  }
  MemorySystem& coh = memory_override ? *memory_override : *mem;

  const unsigned nclusters = cfg_.num_clusters();
  std::vector<Partition> parts(nclusters);
  // Per-queue watchdogs bound runtime, never results: max_cycles and
  // no-progress are naturally per-queue; max_events gets an additional
  // machine-wide check at each boundary.
  const EventQueue::Budget budget{cfg_.max_cycles, cfg_.max_events,
                                  cfg_.no_progress_events};
  for (Partition& part : parts) part.queue.set_budget(budget);

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(cfg_.num_procs);
  for (ProcId p = 0; p < cfg_.num_procs; ++p) {
    Partition& part = parts[cfg_.cluster_of(p)];
    procs.push_back(std::make_unique<Proc>(cfg_, part.queue, coh, p));
    Proc* proc = procs.back().get();
    proc->set_parallel_outbox(&part.outbox);
    part.procs.push_back(proc);
  }

  for (auto& pp : procs) {
    Proc* proc = pp.get();
    proc->root = prog.body(*proc);
    parts[proc->cluster()].queue.schedule(0, [proc] { proc->launch(); });
  }

  const Cycles W = cfg_.parallel_horizon();
  // The worker count never affects results (pinned by the determinism
  // matrix), so clamping is pure scheduling: more workers than clusters
  // would have nothing to claim, and more workers than host cores would
  // only time-slice the window barrier's spin. TSan builds skip the core
  // clamp — the race detector must see the requested thread structure even
  // on a small host, and interleaved time slices are enough to find races.
#if !defined(CSIM_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CSIM_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(CSIM_TSAN)
  const unsigned hw = nclusters;
#else
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
#endif
  const unsigned workers =
      std::max(1u, std::min({cfg_.parallel.workers, nclusters, hw}));
  WindowPool pool(parts, workers);

  std::vector<Deferred> drain;  // boundary merge buffer, reused

  const std::uint64_t audit_every = cfg_.audit_interval;
  std::uint64_t next_audit = audit_every;
  const bool deadline_armed = cfg_.max_host_seconds > 0;

  Cycles T = 0;  // current window start; always a multiple of W
  for (;;) {
    // Earliest pending event across the machine; none => idle (any procs
    // still parked on a barrier/lock are caught by the deadlock check).
    bool any = false;
    Cycles mn = 0;
    for (Partition& part : parts) {
      if (part.queue.empty()) continue;
      const Cycles t = part.queue.next_time();
      if (!any || t < mn) mn = t;
      any = true;
    }
    if (!any) break;

    // Grid-aligned advance: skip whole empty windows but keep every window
    // start a multiple of W from cycle 0, so boundary floors are a pure
    // function of event times — identical at every worker count.
    T += W * ((mn - T) / W);

    pool.run_window_all(T + W);

    for (const Partition& part : parts) {
      if (part.err) std::rethrow_exception(part.err);
    }
    std::uint64_t total_events = 0;
    for (const Partition& part : parts) total_events += part.queue.events_run();
    for (const Partition& part : parts) {
      if (!part.budget_hit) continue;
      auto v = part.queue.budget_violation();
      throw LivelockError(v.has_value() ? *std::move(v)
                                        : std::string("watchdog budget exceeded"),
                          snapshot(T, parts, procs));
    }
    if (cfg_.max_events != 0 && total_events > cfg_.max_events) {
      throw LivelockError("event budget of " + std::to_string(cfg_.max_events) +
                              " exceeded machine-wide (ran " +
                              std::to_string(total_events) + ")",
                          snapshot(T, parts, procs));
    }
    if (deadline_armed) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        host_start)
              .count();
      if (elapsed > cfg_.max_host_seconds) {
        char msg[96];
        std::snprintf(msg, sizeof msg,
                      "host deadline of %.3f s exceeded (ran %.3f s)",
                      cfg_.max_host_seconds, elapsed);
        throw TimeoutError(msg, snapshot(T, parts, procs));
      }
    }
    if (audit_every != 0 && total_events >= next_audit) {
      coh.audit();
      next_audit = total_events - total_events % audit_every + audit_every;
    }

    // Boundary drain. Outboxes are appended in cluster index order, each
    // already in enqueue order, and the sort on issue time is stable — the
    // result is exactly (time, source cluster, enqueue sequence) order, the
    // engine's one global serialization point.
    drain.clear();
    for (Partition& part : parts) {
      drain.insert(drain.end(), part.outbox.begin(), part.outbox.end());
      part.outbox.clear();
    }
    if (!drain.empty()) {
      std::stable_sort(
          drain.begin(), drain.end(),
          [](const Deferred& a, const Deferred& b) { return a.t < b.t; });
      const Cycles floor = T + W;  // outcomes known only at the boundary
      for (const Deferred& d : drain) d.p->finish_deferred(d, floor);
    }

    T += W;
  }

  for (auto& pp : procs) {
    pp->root.rethrow_if_failed();
  }

  // Protocol state must be internally consistent once the machine is idle.
  coh.audit();

  unsigned unfinished = 0;
  for (auto& pp : procs) {
    if (!pp->finished) ++unfinished;
  }
  if (unfinished != 0) {
    std::string summary = std::to_string(unfinished) + " of " +
                          std::to_string(cfg_.num_procs) +
                          " processors never finished:";
    for (auto& pp : procs) {
      if (pp->finished) continue;
      summary += " proc " + std::to_string(pp->id()) + " " +
                 detail::describe_wait(*pp) + ";";
    }
    summary.pop_back();
    throw DeadlockError(std::move(summary), snapshot(T, parts, procs));
  }

  SimResult res;
  res.config = cfg_;
  res.app_name = prog.name();
  res.scale = prog.scale();

  Cycles wall = 0;
  for (auto& pp : procs) wall = std::max(wall, pp->finish_time);
  res.wall_time = wall;
  std::uint64_t total_events = 0;
  for (const Partition& part : parts) total_events += part.queue.events_run();
  res.events = total_events;

  res.per_proc.reserve(cfg_.num_procs);
  for (auto& pp : procs) {
    TimeBuckets b = pp->buckets();
    // Early finishers wait at the implicit final barrier.
    b.sync += wall - pp->finish_time;
    res.per_proc.push_back(b);
  }

  res.per_cluster.reserve(nclusters);
  for (ClusterId c = 0; c < nclusters; ++c) {
    res.per_cluster.push_back(coh.cluster_counters(c));
  }
  res.totals = coh.totals();

  try {
    prog.verify();
  } catch (const SimError&) {
    throw;
  } catch (const std::exception& e) {
    throw AppError("verification of '" + prog.name() + "' failed: " + e.what(),
                   snapshot(T, parts, procs));
  }
  res.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  return res;
}

}  // namespace csim::par
