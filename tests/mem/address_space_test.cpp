#include "src/mem/address_space.hpp"

#include <gtest/gtest.h>

namespace csim {
namespace {

MachineSpec cfg16(unsigned ppc = 4) {
  MachineSpec c;
  c.num_procs = 16;
  c.procs_per_cluster = ppc;
  return c;
}

TEST(AddressSpace, AllocationsArePageAlignedAndDisjoint) {
  AddressSpace as;
  const Addr a = as.alloc(100, "a");
  const Addr b = as.alloc(5000, "b");
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GE(b, a + 4096);
  EXPECT_NE(a, 0u) << "null page must not be allocated";
}

TEST(AddressSpace, ZeroAllocThrows) {
  AddressSpace as;
  EXPECT_THROW(as.alloc(0), std::invalid_argument);
}

TEST(AddressSpace, RegionsAreRecorded) {
  AddressSpace as;
  const Addr a = as.alloc(100, "matrix");
  const auto r = as.find_region("matrix");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->base, a);
  EXPECT_EQ(r->bytes, 100u);
  EXPECT_TRUE(r->contains(a + 50));
  EXPECT_FALSE(r->contains(a + 200));
  EXPECT_FALSE(as.find_region("nope").has_value());
}

TEST(AddressSpace, FirstTouchAssignsRoundRobin) {
  AddressSpace as;
  const Addr a = as.alloc(1 << 20, "big");
  const MachineSpec cfg = cfg16();  // 4 clusters
  AddressSpace::HomeMap homes(as, cfg);
  // Pages touched in order must cycle 0,1,2,3,0,...
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(homes.home_of(a + i * 4096), i % 4);
  }
  EXPECT_EQ(homes.pages_touched(), 8u);
}

TEST(AddressSpace, HomeIsStableAfterFirstTouch) {
  AddressSpace as;
  const Addr a = as.alloc(1 << 16);
  const MachineSpec cfg = cfg16();
  AddressSpace::HomeMap homes(as, cfg);
  const ClusterId h = homes.home_of(a + 12345);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(homes.home_of(a + 12300 + i), h) << "same page, same home";
  }
}

TEST(AddressSpace, ExplicitPlacementOverridesFirstTouch) {
  AddressSpace as;
  const Addr a = as.alloc(1 << 16, "placed");
  as.place(a, 8192, /*proc=*/7);  // proc 7 -> cluster 1 with ppc=4
  const MachineSpec cfg = cfg16();
  AddressSpace::HomeMap homes(as, cfg);
  EXPECT_EQ(homes.home_of(a), 1u);
  EXPECT_EQ(homes.home_of(a + 4096), 1u);
  // Page beyond the placement reverts to round robin.
  const ClusterId h2 = homes.home_of(a + 8192);
  EXPECT_LT(h2, 4u);
}

TEST(AddressSpace, PlacementResolvesPerConfiguration) {
  AddressSpace as;
  const Addr a = as.alloc(4096);
  as.place(a, 4096, /*proc=*/6);
  {
    AddressSpace::HomeMap homes(as, cfg16(1));  // 16 clusters
    EXPECT_EQ(homes.home_of(a), 6u);
  }
  {
    AddressSpace::HomeMap homes(as, cfg16(8));  // 2 clusters
    EXPECT_EQ(homes.home_of(a), 0u);
  }
}

TEST(AddressSpace, LaterPlacementWins) {
  AddressSpace as;
  const Addr a = as.alloc(4096);
  as.place(a, 4096, 1);
  as.place(a, 4096, 9);
  AddressSpace::HomeMap homes(as, cfg16(1));
  EXPECT_EQ(homes.home_of(a), 9u);
}

TEST(AddressSpace, PartialOverlapStillPlacesPage) {
  AddressSpace as;
  const Addr a = as.alloc(8192);
  as.place(a + 1000, 100, 5);  // overlaps only the first page
  AddressSpace::HomeMap homes(as, cfg16(1));
  EXPECT_EQ(homes.home_of(a + 4000), 5u);
}

TEST(AddressSpace, ClearPlacements) {
  AddressSpace as;
  const Addr a = as.alloc(4096);
  as.place(a, 4096, 9);
  as.clear_placements();
  AddressSpace::HomeMap homes(as, cfg16(1));
  EXPECT_EQ(homes.home_of(a), 0u) << "round robin starts at cluster 0";
}

}  // namespace
}  // namespace csim
