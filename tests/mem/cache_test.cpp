#include "src/mem/cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace csim {
namespace {

constexpr Addr L(unsigned i) { return static_cast<Addr>(i) * 64; }

TEST(CacheStorage, InfiniteNeverEvicts) {
  CacheStorage c(0, 0);
  for (unsigned i = 0; i < 10000; ++i) {
    EXPECT_FALSE(c.insert(L(i), LineState::Shared).has_value());
  }
  EXPECT_EQ(c.size(), 10000u);
  EXPECT_TRUE(c.infinite());
  EXPECT_TRUE(c.lookup(L(1234)).has_value());
}

TEST(CacheStorage, FullyAssociativeLruEvictsOldest) {
  CacheStorage c(4, 0);
  for (unsigned i = 0; i < 4; ++i) c.insert(L(i), LineState::Shared);
  const auto victim = c.insert(L(4), LineState::Shared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, L(0)) << "LRU victim must be the oldest line";
  EXPECT_FALSE(c.lookup(L(0)).has_value());
  EXPECT_TRUE(c.lookup(L(4)).has_value());
}

TEST(CacheStorage, TouchPromotesToMru) {
  CacheStorage c(4, 0);
  for (unsigned i = 0; i < 4; ++i) c.insert(L(i), LineState::Shared);
  c.touch(L(0));  // L(1) becomes LRU
  const auto victim = c.insert(L(4), LineState::Shared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, L(1));
  EXPECT_TRUE(c.lookup(L(0)).has_value());
}

TEST(CacheStorage, LookupDoesNotPromote) {
  CacheStorage c(2, 0);
  c.insert(L(0), LineState::Shared);
  c.insert(L(1), LineState::Shared);
  (void)c.lookup(L(0));  // must NOT touch
  const auto victim = c.insert(L(2), LineState::Shared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, L(0));
}

TEST(CacheStorage, EraseReturnsState) {
  CacheStorage c(4, 0);
  c.insert(L(1), LineState::Exclusive);
  const auto st = c.erase(L(1));
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(*st, LineState::Exclusive);
  EXPECT_FALSE(c.erase(L(1)).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(CacheStorage, SetState) {
  CacheStorage c(4, 0);
  c.insert(L(2), LineState::Shared);
  EXPECT_TRUE(c.set_state(L(2), LineState::Exclusive));
  EXPECT_EQ(c.lookup(L(2)), LineState::Exclusive);
  EXPECT_FALSE(c.set_state(L(99), LineState::Shared));
  // Eviction reports the updated state.
  c.insert(L(3), LineState::Shared);
  c.insert(L(4), LineState::Shared);
  c.insert(L(5), LineState::Shared);
  const auto victim = c.insert(L(6), LineState::Shared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, L(2));
  EXPECT_EQ(victim->state, LineState::Exclusive);
}

TEST(CacheStorage, DoubleInsertThrows) {
  CacheStorage c(4, 0);
  c.insert(L(1), LineState::Shared);
  EXPECT_THROW(c.insert(L(1), LineState::Shared), std::logic_error);
}

TEST(CacheStorage, SetAssociativeConflictsWithinSet) {
  // 8 lines, 2-way: 4 sets. Lines i and i+4k share set (i mod 4).
  CacheStorage c(8, 2);
  c.insert(L(0), LineState::Shared);
  c.insert(L(4), LineState::Shared);
  // Third line in set 0 evicts LRU of that set only.
  const auto victim = c.insert(L(8), LineState::Shared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, L(0));
  EXPECT_TRUE(c.lookup(L(4)).has_value());
  // Other sets are unaffected and have room.
  EXPECT_FALSE(c.insert(L(1), LineState::Shared).has_value());
  EXPECT_FALSE(c.insert(L(2), LineState::Shared).has_value());
}

TEST(CacheStorage, DirectMappedThrashesFullAssocDoesNot) {
  // Two lines mapping to the same direct-mapped set alternate forever.
  CacheStorage dm(4, 1);
  dm.insert(L(0), LineState::Shared);
  auto v = dm.insert(L(4), LineState::Shared);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->line, L(0));

  CacheStorage fa(4, 0);
  fa.insert(L(0), LineState::Shared);
  EXPECT_FALSE(fa.insert(L(4), LineState::Shared).has_value())
      << "fully associative cache with spare capacity must not evict";
}

TEST(CacheStorage, CapacityNotMultipleOfWaysThrows) {
  EXPECT_THROW(CacheStorage(10, 4), std::invalid_argument);
}

TEST(CacheStorage, ResidentLines) {
  CacheStorage c(4, 0);
  c.insert(L(3), LineState::Shared);
  c.insert(L(7), LineState::Exclusive);
  auto lines = c.resident_lines();
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<Addr>{L(3), L(7)}));
}

TEST(CacheStorage, LineSizeAffectsSetIndexing) {
  // 128-byte lines: addresses 0 and 128 are consecutive lines.
  CacheStorage c(4, 2, 128);  // 2 sets
  c.insert(0, LineState::Shared);
  c.insert(256, LineState::Shared);   // same set 0 (line #2)
  const auto victim = c.insert(512, LineState::Shared);  // line #4, set 0
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0u);
}

}  // namespace
}  // namespace csim
