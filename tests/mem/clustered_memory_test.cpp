// Protocol tests for the shared-main-memory cluster organization
// (ClusteredMemorySystem): snoop transfers, attraction memory, bus
// invalidations, ownership kept within the cluster, and the absence of
// destructive interference.
#include "src/mem/clustered_memory.hpp"

#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

using Kind = AccessResult::Kind;

class ClusteredMemoryFixture : public ::testing::Test {
 protected:
  ClusteredMemoryFixture() {
    cfg_.num_procs = 8;
    cfg_.procs_per_cluster = 4;  // clusters {0..3}, {4..7}
    cfg_.cluster_style = ClusterStyle::SharedMemory;
    cfg_.cache.per_proc_bytes = 0;  // infinite private caches by default
    base_ = as_.alloc(2 * 4096, "mem");
    as_.place(base_, 4096, 0);         // page 0 home: cluster 0
    as_.place(base_ + 4096, 4096, 4);  // page 1 home: cluster 1
  }
  Addr page(unsigned c) const { return base_ + c * 4096; }
  void make(std::size_t private_bytes = 0) {
    cfg_.cache.per_proc_bytes = private_bytes;
    mem_ = std::make_unique<ClusteredMemorySystem>(cfg_, as_);
  }

  MachineSpec cfg_;
  AddressSpace as_;
  Addr base_ = 0;
  std::unique_ptr<ClusteredMemorySystem> mem_;
};

TEST_F(ClusteredMemoryFixture, ColdReadIsGlobalMiss) {
  make();
  const auto r = mem_->read(0, page(0), 0);
  EXPECT_EQ(r.kind, Kind::ReadMiss);
  EXPECT_EQ(r.latency, 30u);  // local home
  EXPECT_TRUE(mem_->in_attraction(0, page(0)));
}

TEST_F(ClusteredMemoryFixture, PeerSuppliesViaSnoop) {
  make();
  const auto m = mem_->read(0, page(0), 0);
  const auto s = mem_->read(1, page(0), m.ready_at + 1);
  EXPECT_EQ(s.kind, Kind::NearHit);
  EXPECT_EQ(s.latency, LatencyModel{}.snoop_transfer);
  EXPECT_EQ(mem_->cluster_counters(0).snoop_transfers, 1u);
  EXPECT_EQ(mem_->cluster_counters(0).read_misses, 1u)
      << "the snoop transfer is not a global miss";
}

TEST_F(ClusteredMemoryFixture, ClusterMemorySuppliesWhenNoPeerCopy) {
  make(64);  // one-line private caches force fallback to attraction memory
  const auto m = mem_->read(0, page(0), 0);
  // Proc 0 evicts the line from its private cache by reading another line.
  (void)mem_->read(0, page(0) + 64, m.ready_at + 1);
  // Proc 1 now finds no peer copy but the line is in the cluster memory.
  const auto g = mem_->read(1, page(0), m.ready_at + 300);
  EXPECT_EQ(g.kind, Kind::NearHit);
  EXPECT_EQ(g.latency, LatencyModel{}.cluster_memory);
  EXPECT_EQ(mem_->cluster_counters(0).cluster_memory_hits, 1u);
}

TEST_F(ClusteredMemoryFixture, OtherClusterStillMissesRemotely) {
  make();
  (void)mem_->read(0, page(0), 0);
  const auto r = mem_->read(4, page(0), 500);
  EXPECT_EQ(r.kind, Kind::ReadMiss);
  EXPECT_EQ(r.lclass, LatencyClass::RemoteClean);
}

TEST_F(ClusteredMemoryFixture, MergeOnClusterFill) {
  make();
  (void)mem_->read(0, page(0), 0);
  const auto g = mem_->read(1, page(0), 5);  // before the fill arrives
  EXPECT_EQ(g.kind, Kind::Merge);
  EXPECT_EQ(mem_->cluster_counters(0).merges, 1u);
}

TEST_F(ClusteredMemoryFixture, WriteUpgradeInvalidatesPeersOnBus) {
  make();
  auto m = mem_->read(0, page(0), 0);
  (void)mem_->read(1, page(0), m.ready_at + 1);
  (void)mem_->write(0, page(0), m.ready_at + 100);
  EXPECT_EQ(mem_->cluster_counters(0).upgrade_misses, 1u);
  EXPECT_GE(mem_->cluster_counters(0).bus_invalidations, 1u);
  // Peer re-misses in its private cache but is served inside the cluster:
  // ownership stayed within the cluster (cache-to-cache transfer).
  const auto s = mem_->read(1, page(0), m.ready_at + 200);
  EXPECT_EQ(s.kind, Kind::NearHit);
  EXPECT_EQ(s.latency, LatencyModel{}.snoop_transfer);
}

TEST_F(ClusteredMemoryFixture, OwnershipKeptWithinClusterOnPeerWrite) {
  make();
  auto m = mem_->write(0, page(0), 0);  // cluster 0 exclusive
  // A different proc of the same cluster writes: no directory action, just a
  // bus transfer; the directory still shows cluster 0 exclusive.
  (void)mem_->write(1, page(0), m.ready_at + 1);
  EXPECT_EQ(mem_->directory().peek(page(0)).state, DirState::Exclusive);
  EXPECT_EQ(mem_->directory().peek(page(0)).owner(), 0u);
  EXPECT_EQ(mem_->cluster_counters(0).upgrade_misses, 0u)
      << "intra-cluster ownership transfer must not upgrade at the directory";
}

TEST_F(ClusteredMemoryFixture, RemoteInvalidationPurgesWholeCluster) {
  make();
  auto m = mem_->read(0, page(0), 0);
  (void)mem_->read(1, page(0), m.ready_at + 1);
  (void)mem_->write(4, page(0), m.ready_at + 100);  // other cluster writes
  EXPECT_EQ(mem_->cluster_counters(0).invalidations, 1u);
  EXPECT_FALSE(mem_->in_attraction(0, page(0)));
  const auto r = mem_->read(0, page(0), m.ready_at + 500);
  EXPECT_EQ(r.kind, Kind::ReadMiss) << "attraction copy must be gone";
}

TEST_F(ClusteredMemoryFixture, ReadDowngradesRemoteOwnerCluster) {
  make();
  auto w = mem_->write(4, page(0), 0);
  (void)mem_->read(0, page(0), w.ready_at + 1);
  EXPECT_EQ(mem_->directory().peek(page(0)).state, DirState::Shared);
  // The former owner still hits locally.
  const auto h = mem_->read(4, page(0), w.ready_at + 300);
  EXPECT_EQ(h.kind, Kind::Hit);
}

TEST_F(ClusteredMemoryFixture, PrivateEvictionFallsBackToAttraction) {
  make(64);  // one line per private cache
  auto m = mem_->read(0, page(0), 0);
  (void)mem_->read(0, page(0) + 64, m.ready_at + 1);  // evicts line 0
  EXPECT_TRUE(mem_->in_attraction(0, page(0)))
      << "attraction memory is effectively infinite";
  EXPECT_GE(mem_->cluster_counters(0).evictions, 1u);
  // Re-read: cluster memory, not a global miss.
  const auto g = mem_->read(0, page(0), m.ready_at + 300);
  EXPECT_EQ(g.kind, Kind::NearHit);
}

TEST_F(ClusteredMemoryFixture, NoDestructiveInterferenceBetweenPeers) {
  // "In clustered memory systems destructive interference does not exist,
  // since the caches are separate." Proc 1 streaming many lines must not
  // evict proc 0's working line.
  make(2 * 64);
  auto m = mem_->read(0, page(0), 0);
  Cycles t = m.ready_at + 1;
  for (unsigned i = 1; i < 32; ++i) {
    t = mem_->read(1, page(0) + i * 64, t).ready_at + 1;
  }
  const auto h = mem_->read(0, page(0), t);
  EXPECT_EQ(h.kind, Kind::Hit)
      << "peer streaming must not displace another processor's private line";
}

TEST_F(ClusteredMemoryFixture, WriteAllocateFromClusterMemoryIsHidden) {
  make(64);
  auto m = mem_->read(0, page(0), 0);
  (void)mem_->read(0, page(0) + 64, m.ready_at + 1);  // evict to attraction
  const auto w = mem_->write(0, page(0), m.ready_at + 300);
  EXPECT_TRUE(w.kind == Kind::UpgradeMiss || w.kind == Kind::Hit);
}

class SharedMemoryApps : public ::testing::TestWithParam<std::string> {};

TEST_P(SharedMemoryApps, RunsAndVerifies) {
  auto app = make_app(GetParam(), ProblemScale::Test);
  MachineSpec cfg;
  cfg.num_procs = 16;
  cfg.procs_per_cluster = 4;
  cfg.cluster_style = ClusterStyle::SharedMemory;
  cfg.cache.per_proc_bytes = 4 * 1024;
  const SimResult r = simulate(*app, cfg);
  EXPECT_GT(r.wall_time, 0u);
  for (const auto& b : r.per_proc) EXPECT_EQ(b.total(), r.wall_time);
}

TEST_P(SharedMemoryApps, SameReferenceStreamAsSharedCache) {
  auto a = make_app(GetParam(), ProblemScale::Test);
  auto b = make_app(GetParam(), ProblemScale::Test);
  MachineSpec sc;
  sc.num_procs = 16;
  sc.procs_per_cluster = 4;
  sc.cache.per_proc_bytes = 8 * 1024;
  MachineSpec sm = sc;
  sm.cluster_style = ClusterStyle::SharedMemory;
  const SimResult rc = simulate(*a, sc);
  const SimResult rm = simulate(*b, sm);
  EXPECT_EQ(rc.totals.reads, rm.totals.reads);
  EXPECT_EQ(rc.totals.writes, rm.totals.writes);
}

INSTANTIATE_TEST_SUITE_P(AllApps, SharedMemoryApps,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace csim
