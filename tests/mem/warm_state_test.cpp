// Warm-state checkpoints (src/mem/warm_state.hpp): codec round trip, the
// hardened loader's behaviour under every corruption shape the frame can
// take, and the end-to-end acceptance invariant -- a run that restores from
// a checkpoint is digest-identical to one that warms in process, for both
// cluster organizations, and a damaged checkpoint degrades into a fresh
// warmup with the same answer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/core/machine.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/warm_state.hpp"
#include "src/obs/manifest.hpp"

namespace csim {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("csim_warm_state_" + tag + "_" +
             std::to_string(static_cast<unsigned long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

/// A small but fully populated state exercising every payload section.
WarmState sample_state() {
  WarmState ws;
  ws.warm_digest = 0x1122334455667788ull;
  ws.app_name = "fft";
  ws.scale = 2;
  ws.num_procs = 8;
  ws.procs_per_cluster = 4;
  ws.cluster_style = 1;
  ws.warmup_refs = 4096;
  ws.proc_now = {10, 20, 30, 40, 50, 60, 70, 80};
  ws.counters.resize(2);
  ws.counters[0].reads = 123;
  ws.counters[1].write_misses = 7;
  ws.touched_lines = {0x40, 0x80, 0x1000};
  ws.home_rr_next = 3;
  ws.homes = {{0x0, 1}, {0x1000, 0}};
  ws.directory = {{0x40, 2, 0x3}};
  ws.caches = {{{0x40, 1}, {0x80, 2}}, {{0x1000, 1}}};
  ws.attraction = {{{0x40, 0x1, 1}}, {}};
  return ws;
}

TEST(WarmStateCodec, RoundTripsEveryField) {
  const WarmState ws = sample_state();
  const WarmLoad loaded = decode_warm_state(encode_warm_state(ws), "test");
  ASSERT_TRUE(loaded.warnings.empty())
      << loaded.warnings.front();
  ASSERT_TRUE(loaded.state.has_value());
  const WarmState& got = *loaded.state;
  EXPECT_EQ(got.warm_digest, ws.warm_digest);
  EXPECT_EQ(got.app_name, ws.app_name);
  EXPECT_EQ(got.scale, ws.scale);
  EXPECT_EQ(got.num_procs, ws.num_procs);
  EXPECT_EQ(got.procs_per_cluster, ws.procs_per_cluster);
  EXPECT_EQ(got.cluster_style, ws.cluster_style);
  EXPECT_EQ(got.warmup_refs, ws.warmup_refs);
  EXPECT_EQ(got.proc_now, ws.proc_now);
  EXPECT_EQ(got.counters, ws.counters);
  EXPECT_EQ(got.touched_lines, ws.touched_lines);
  EXPECT_EQ(got.home_rr_next, ws.home_rr_next);
  EXPECT_EQ(got.homes, ws.homes);
  EXPECT_EQ(got.directory, ws.directory);
  EXPECT_EQ(got.caches, ws.caches);
  EXPECT_EQ(got.attraction, ws.attraction);
}

/// Each corruption shape must yield no state and exactly one warning naming
/// the shape -- never a throw, never a silently wrong state.
void expect_rejected(const std::string& bytes, const std::string& needle) {
  const WarmLoad loaded = decode_warm_state(bytes, "test");
  EXPECT_FALSE(loaded.state.has_value());
  ASSERT_EQ(loaded.warnings.size(), 1u);
  EXPECT_NE(loaded.warnings[0].find(needle), std::string::npos)
      << loaded.warnings[0];
}

TEST(WarmStateCodec, RejectsTruncatedFrameHeader) {
  expect_rejected(encode_warm_state(sample_state()).substr(0, 10),
                  "truncated frame header (checkpoint ignored)");
}

TEST(WarmStateCodec, RejectsBadMagic) {
  std::string bytes = encode_warm_state(sample_state());
  bytes[0] = 'X';
  expect_rejected(bytes, "bad magic (checkpoint ignored)");
}

TEST(WarmStateCodec, RejectsVersionSkew) {
  std::string bytes = encode_warm_state(sample_state());
  bytes[4] = 9;
  expect_rejected(bytes, "unsupported version 9 (checkpoint ignored)");
}

TEST(WarmStateCodec, RejectsTruncatedRecord) {
  const std::string bytes = encode_warm_state(sample_state());
  expect_rejected(bytes.substr(0, bytes.size() - 4), "truncated record");
}

TEST(WarmStateCodec, RejectsChecksumMismatch) {
  std::string bytes = encode_warm_state(sample_state());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
  expect_rejected(bytes, "checksum mismatch (checkpoint ignored)");
}

TEST(WarmStateFiles, MissingFileIsSilentlyEmpty) {
  const TempDir tmp("missing");
  const WarmLoad loaded = load_warm_state(tmp.path(), 0xdeadbeef);
  EXPECT_FALSE(loaded.state.has_value());
  EXPECT_TRUE(loaded.warnings.empty());
}

TEST(WarmStateFiles, SaveLoadRoundTripsAndDigestKeyIsEnforced) {
  const TempDir tmp("files");
  const WarmState ws = sample_state();
  save_warm_state(tmp.path(), ws);
  ASSERT_TRUE(fs::exists(warm_state_path(tmp.path(), ws.warm_digest)));

  const WarmLoad hit = load_warm_state(tmp.path(), ws.warm_digest);
  ASSERT_TRUE(hit.state.has_value());
  EXPECT_TRUE(hit.warnings.empty());
  EXPECT_EQ(hit.state->proc_now, ws.proc_now);

  // A checkpoint filed under the wrong digest (a renamed or stale file) is
  // caught by the digest stored inside the payload.
  const std::uint64_t other = ws.warm_digest + 1;
  fs::copy_file(warm_state_path(tmp.path(), ws.warm_digest),
                warm_state_path(tmp.path(), other));
  const WarmLoad miss = load_warm_state(tmp.path(), other);
  EXPECT_FALSE(miss.state.has_value());
  ASSERT_EQ(miss.warnings.size(), 1u);
  EXPECT_NE(miss.warnings[0].find("digest mismatch (checkpoint ignored)"),
            std::string::npos);
}

MachineSpec sampled_spec(ClusterStyle style, const std::string& ckpt_dir) {
  MachineSpecBuilder b;
  b.procs(16).procs_per_cluster(4).style(style).cache_kb(4).sample(4096, 4096,
                                                                   16384);
  if (!ckpt_dir.empty()) b.checkpoint_dir(ckpt_dir);
  return b.build();
}

SimResult run(const std::string& app, const MachineSpec& cfg) {
  const std::unique_ptr<Program> prog = make_app(app, ProblemScale::Test);
  return simulate(*prog, cfg);
}

TEST(WarmStateRestore, FastForwardIsDigestIdenticalToInProcessWarmup) {
  for (const ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    SCOPED_TRACE(style == ClusterStyle::SharedCache ? "sc" : "sm");
    const TempDir tmp(style == ClusterStyle::SharedCache ? "rt_sc" : "rt_sm");

    // Reference: sampled, no checkpointing at all.
    const SimResult plain = run("fft", sampled_spec(style, ""));
    ASSERT_TRUE(plain.ok);

    // First checkpointed run warms in process and writes the file...
    const MachineSpec cfg = sampled_spec(style, tmp.path());
    const SimResult writer = run("fft", cfg);
    ASSERT_TRUE(writer.ok);
    const std::uint64_t digest =
        obs::warm_config_digest(cfg, "fft", ProblemScale::Test);
    ASSERT_TRUE(fs::exists(warm_state_path(tmp.path(), digest)));

    // ...the second fast-forwards from it. All three must agree bit for bit.
    const SimResult reader = run("fft", cfg);
    ASSERT_TRUE(reader.ok);
    EXPECT_EQ(obs::result_digest(writer), obs::result_digest(plain));
    EXPECT_EQ(obs::result_digest(reader), obs::result_digest(writer));
    EXPECT_EQ(reader.wall_time, writer.wall_time);
    EXPECT_EQ(reader.totals, writer.totals);
  }
}

TEST(WarmStateRestore, CorruptCheckpointFallsBackToFreshWarmupAndRewrites) {
  const TempDir tmp("fallback");
  const MachineSpec cfg = sampled_spec(ClusterStyle::SharedCache, tmp.path());
  const SimResult first = run("fft", cfg);
  ASSERT_TRUE(first.ok);

  const std::uint64_t digest =
      obs::warm_config_digest(cfg, "fft", ProblemScale::Test);
  const std::string path = warm_state_path(tmp.path(), digest);
  ASSERT_TRUE(fs::exists(path));

  // Truncate the checkpoint mid-record (the damage a crash during a
  // non-atomic copy would leave).
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  // The run must not trust the damaged file: fresh warmup, same answer,
  // and the checkpoint is re-written intact for the next run.
  const SimResult second = run("fft", cfg);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(obs::result_digest(second), obs::result_digest(first));
  const WarmLoad reloaded = load_warm_state(tmp.path(), digest);
  EXPECT_TRUE(reloaded.state.has_value());
  EXPECT_TRUE(reloaded.warnings.empty());
}

TEST(WarmStateRestore, CheckpointIsSharedAcrossLatencyVariants) {
  // The point of the warm digest: latency knobs do not shape warm state, so
  // one checkpoint serves a whole latency sweep. A run with a different
  // latency model must reuse (not rewrite) the file and still agree with
  // its own uncheckpointed result.
  const TempDir tmp("latency");
  const MachineSpec base = sampled_spec(ClusterStyle::SharedCache, tmp.path());
  ASSERT_TRUE(run("fft", base).ok);
  const std::uint64_t digest =
      obs::warm_config_digest(base, "fft", ProblemScale::Test);
  const fs::file_time_type written =
      fs::last_write_time(warm_state_path(tmp.path(), digest));

  MachineSpec slow = base;
  slow.latency.remote_clean = base.latency.remote_clean + 100;
  slow.validate();
  EXPECT_EQ(obs::warm_config_digest(slow, "fft", ProblemScale::Test), digest);

  const SimResult ckpt = run("fft", slow);
  ASSERT_TRUE(ckpt.ok);
  EXPECT_EQ(fs::last_write_time(warm_state_path(tmp.path(), digest)), written);

  MachineSpec plain = slow;
  plain.sampling.checkpoint_dir.clear();
  const SimResult fresh = run("fft", plain);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(obs::result_digest(ckpt), obs::result_digest(fresh));
}

}  // namespace
}  // namespace csim
