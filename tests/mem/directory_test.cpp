#include "src/mem/directory.hpp"

#include <gtest/gtest.h>

#include "src/mem/mshr.hpp"

namespace csim {
namespace {

TEST(Directory, DefaultsToNotCached) {
  Directory d;
  EXPECT_EQ(d.peek(0x1000).state, DirState::NotCached);
  EXPECT_EQ(d.tracked_lines(), 0u);
}

TEST(DirEntry, SharerBitOps) {
  DirEntry e;
  e.add(3);
  e.add(17);
  EXPECT_TRUE(e.has(3));
  EXPECT_TRUE(e.has(17));
  EXPECT_FALSE(e.has(4));
  EXPECT_EQ(e.count(), 2u);
  e.remove(3);
  EXPECT_FALSE(e.has(3));
  EXPECT_EQ(e.count(), 1u);
  EXPECT_EQ(e.owner(), 17u);
}

TEST(Directory, ReplacementHintRemovesSharer) {
  Directory d;
  DirEntry& e = d.entry(0x40);
  e.state = DirState::Shared;
  e.add(1);
  e.add(2);
  d.replacement_hint(0x40, 1);
  EXPECT_EQ(d.peek(0x40).state, DirState::Shared);
  EXPECT_FALSE(d.peek(0x40).has(1));
  EXPECT_TRUE(d.peek(0x40).has(2));
}

TEST(Directory, LastSharerHintGoesNotCached) {
  Directory d;
  DirEntry& e = d.entry(0x40);
  e.state = DirState::Shared;
  e.add(2);
  d.replacement_hint(0x40, 2);
  EXPECT_EQ(d.peek(0x40).state, DirState::NotCached);
  EXPECT_EQ(d.peek(0x40).count(), 0u);
}

TEST(Directory, ExclusiveEvictionWritesBackHome) {
  Directory d;
  DirEntry& e = d.entry(0x80);
  e.state = DirState::Exclusive;
  e.add(5);
  d.replacement_hint(0x80, 5);
  EXPECT_EQ(d.peek(0x80).state, DirState::NotCached);
  EXPECT_EQ(d.peek(0x80).count(), 0u);
}

TEST(Directory, HintForUntrackedLineIsNoop) {
  Directory d;
  d.replacement_hint(0xdead00, 1);
  EXPECT_EQ(d.tracked_lines(), 0u);
}

TEST(Directory, LinesInState) {
  Directory d;
  d.entry(0x40).state = DirState::Shared;
  d.entry(0x80).state = DirState::Exclusive;
  d.entry(0xc0).state = DirState::Shared;
  EXPECT_EQ(d.lines_in_state(DirState::Shared).size(), 2u);
  EXPECT_EQ(d.lines_in_state(DirState::Exclusive).size(), 1u);
}

TEST(Mshr, AllocateFindRelease) {
  MshrTable t;
  EXPECT_EQ(t.find(0x40), nullptr);
  t.allocate(0x40, MshrEntry{100});
  ASSERT_NE(t.find(0x40), nullptr);
  EXPECT_EQ(t.find(0x40)->fill_time, 100u);
  const auto e = t.release(0x40);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(t.find(0x40), nullptr);
  EXPECT_FALSE(t.release(0x40).has_value());
}

TEST(Mshr, AllocateReplacesStaleEntry) {
  MshrTable t;
  t.allocate(0x40, MshrEntry{100});
  t.allocate(0x40, MshrEntry{200});
  ASSERT_NE(t.find(0x40), nullptr);
  EXPECT_EQ(t.find(0x40)->fill_time, 200u);
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace csim
