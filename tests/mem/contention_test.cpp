// Unit tests for the queued-occupancy contention primitives: FIFO wait math,
// bank interleaving, and the per-cluster resource layout of ContentionModel.
#include <gtest/gtest.h>

#include "src/core/machine.hpp"
#include "src/mem/contention.hpp"

namespace csim {
namespace {

TEST(QueuedResource, IdleServerChargesNoWait) {
  QueuedResource r;
  EXPECT_EQ(r.acquire(10, 4), 0u);
  EXPECT_EQ(r.busy_until, 14u);
}

TEST(QueuedResource, BacklogAccumulatesInFifoOrder) {
  QueuedResource r;
  EXPECT_EQ(r.acquire(0, 4), 0u);   // serves 0..4
  EXPECT_EQ(r.acquire(1, 4), 3u);   // arrives at 1, serves 4..8
  EXPECT_EQ(r.acquire(2, 4), 6u);   // arrives at 2, serves 8..12
  EXPECT_EQ(r.busy_until, 12u);
  // After the backlog drains the server is idle again.
  EXPECT_EQ(r.acquire(20, 4), 0u);
  EXPECT_EQ(r.busy_until, 24u);
}

TEST(QueuedResource, ZeroBusyNeverBlocks) {
  QueuedResource r;
  EXPECT_EQ(r.acquire(5, 0), 0u);
  EXPECT_EQ(r.acquire(5, 0), 0u);
  EXPECT_EQ(r.busy_until, 5u);
}

TEST(BankedResource, RoutesByKeyModuloBanks) {
  BankedResource b(4, 2);
  EXPECT_EQ(b.acquire(0, 0), 0u);   // bank 0 busy 0..2
  EXPECT_EQ(b.acquire(4, 0), 2u);   // 4 % 4 == 0: same bank, queued
  EXPECT_EQ(b.acquire(1, 0), 0u);   // bank 1: independent, free
  EXPECT_EQ(b.busy_until(0), 4u);
  EXPECT_EQ(b.busy_until(1), 2u);
  EXPECT_EQ(b.busy_until(2), 0u);
  EXPECT_EQ(b.banks(), 4u);
}

MachineSpec spec(ClusterStyle style, unsigned procs, unsigned ppc) {
  return MachineSpecBuilder{}
      .procs(procs)
      .procs_per_cluster(ppc)
      .style(style)
      .cache_kb(16)
      .contention_enabled()
      .build();
}

TEST(ContentionModel, SharedCacheInterleavesTable4Banks) {
  const MachineSpec cfg = spec(ClusterStyle::SharedCache, 8, 4);
  ContentionModel m(cfg);
  EXPECT_TRUE(m.banked());
  EXPECT_EQ(m.banks_per_cluster(), cfg.cluster_banks());  // m = 4n = 16
  const Addr lb = cfg.cache.line_bytes;
  EXPECT_EQ(m.cluster_port(0, 0, 0), 0u);
  // Line 16 maps back to bank 0 (16 % 16): queued behind the first access.
  EXPECT_EQ(m.cluster_port(0, 16 * lb, 0), cfg.contention.bank_busy);
  // Adjacent line: different bank, no wait.
  EXPECT_EQ(m.cluster_port(0, 1 * lb, 0), 0u);
  // Other cluster's banks are independent.
  EXPECT_EQ(m.cluster_port(1, 0, 0), 0u);
}

TEST(ContentionModel, SharedMemorySerializesOnePerClusterBus) {
  const MachineSpec cfg = spec(ClusterStyle::SharedMemory, 8, 4);
  ContentionModel m(cfg);
  EXPECT_FALSE(m.banked());
  EXPECT_EQ(m.banks_per_cluster(), 1u);
  // Different lines still collide: there is only the bus.
  EXPECT_EQ(m.cluster_port(0, 0, 0), 0u);
  EXPECT_EQ(m.cluster_port(0, 4096, 0), cfg.contention.bank_busy);
  EXPECT_EQ(m.cluster_port(1, 0, 0), 0u);
}

TEST(ContentionModel, DirectoryAndNicAreIndependentResources) {
  const MachineSpec cfg = spec(ClusterStyle::SharedCache, 8, 4);
  ContentionModel m(cfg);
  EXPECT_EQ(m.directory(0, 0), 0u);
  EXPECT_EQ(m.directory(0, 0), cfg.contention.directory_busy);
  EXPECT_EQ(m.directory(1, 0), 0u);  // other home: free
  // A busy directory does not block the NIC (separate occupancy).
  EXPECT_EQ(m.nic(0, 0), 0u);
  EXPECT_EQ(m.nic(0, 0), cfg.contention.nic_busy);
}

TEST(ContentionSpec, BuilderAndDefaults) {
  const MachineSpec off = MachineSpecBuilder{}.procs(4).build();
  EXPECT_FALSE(off.contention.enabled);
  const MachineSpec on = MachineSpecBuilder{}
                             .procs(4)
                             .contention(ContentionSpec{true, 2, 5, 7})
                             .build();
  EXPECT_TRUE(on.contention.enabled);
  EXPECT_EQ(on.contention.bank_busy, 2u);
  EXPECT_EQ(on.contention.directory_busy, 5u);
  EXPECT_EQ(on.contention.nic_busy, 7u);
}

}  // namespace
}  // namespace csim
