// Protocol tests for CoherenceController: the Table 1 latency matrix, miss
// taxonomy, instantaneous invalidations, merge semantics, pending-line
// invalidation, downgrades, and replacement hints.
#include "src/mem/coherence.hpp"

#include <gtest/gtest.h>

namespace csim {
namespace {

using Kind = AccessResult::Kind;

// 4 clusters of 1 proc, one page per cluster home via explicit placement.
class CoherenceFixture : public ::testing::Test {
 protected:
  CoherenceFixture() {
    cfg_.num_procs = 4;
    cfg_.procs_per_cluster = 1;
    cfg_.cache.per_proc_bytes = 0;  // infinite unless a test overrides
    base_ = as_.alloc(4 * 4096, "mem");
    for (ProcId p = 0; p < 4; ++p) as_.place(page(p), 4096, p);
  }
  Addr page(unsigned c) const { return base_ + c * 4096; }

  void make(std::size_t per_proc_bytes = 0) {
    cfg_.cache.per_proc_bytes = per_proc_bytes;
    coh_ = std::make_unique<CoherenceController>(cfg_, as_);
  }

  MachineSpec cfg_;
  AddressSpace as_;
  Addr base_ = 0;
  std::unique_ptr<CoherenceController> coh_;
};

TEST_F(CoherenceFixture, ColdReadAtHomeIsLocalClean30) {
  make();
  const auto r = coh_->read(0, page(0), 0);
  EXPECT_EQ(r.kind, Kind::ReadMiss);
  EXPECT_EQ(r.lclass, LatencyClass::LocalClean);
  EXPECT_EQ(r.latency, 30u);
  EXPECT_EQ(coh_->cluster_counters(0).cold_misses, 1u);
}

TEST_F(CoherenceFixture, ColdReadRemoteHomeIs100) {
  make();
  const auto r = coh_->read(0, page(1), 0);
  EXPECT_EQ(r.lclass, LatencyClass::RemoteClean);
  EXPECT_EQ(r.latency, 100u);
}

TEST_F(CoherenceFixture, LocalHomeDirtyRemoteIs100) {
  make();
  (void)coh_->write(1, page(0), 0);     // cluster 1 owns cluster 0's line
  const auto r = coh_->read(0, page(0), 500);
  EXPECT_EQ(r.kind, Kind::ReadMiss);
  EXPECT_EQ(r.lclass, LatencyClass::LocalDirtyRemote);
  EXPECT_EQ(r.latency, 100u);
}

TEST_F(CoherenceFixture, RemoteHomeDirtyThirdPartyIs150) {
  make();
  (void)coh_->write(2, page(1), 0);     // third party owns
  const auto r = coh_->read(0, page(1), 500);
  EXPECT_EQ(r.lclass, LatencyClass::RemoteDirtyThird);
  EXPECT_EQ(r.latency, 150u);
}

TEST_F(CoherenceFixture, RemoteHomeDirtyAtHomeIsTwoHops100) {
  make();
  (void)coh_->write(1, page(1), 0);     // home itself owns
  const auto r = coh_->read(0, page(1), 500);
  EXPECT_EQ(r.lclass, LatencyClass::RemoteClean);
  EXPECT_EQ(r.latency, 100u);
}

TEST_F(CoherenceFixture, ReadAfterFillHits) {
  make();
  const auto m = coh_->read(0, page(0), 0);
  const auto h = coh_->read(0, page(0), m.ready_at + 1);
  EXPECT_EQ(h.kind, Kind::Hit);
  EXPECT_EQ(coh_->cluster_counters(0).read_hits, 1u);
}

TEST_F(CoherenceFixture, ReadBeforeFillMerges) {
  make();
  const auto m = coh_->read(0, page(0), 0);
  const auto g = coh_->read(0, page(0), 10);
  EXPECT_EQ(g.kind, Kind::Merge);
  EXPECT_EQ(g.ready_at, m.ready_at);
  EXPECT_EQ(coh_->cluster_counters(0).merges, 1u);
}

TEST_F(CoherenceFixture, SameLineDifferentWordsShareTheLine) {
  make();
  (void)coh_->read(0, page(0), 0);
  const auto h = coh_->read(0, page(0) + 32, 100);
  EXPECT_EQ(h.kind, Kind::Hit) << "spatial prefetching within the line";
}

TEST_F(CoherenceFixture, WriteMissFetchesExclusiveAndIsHidden) {
  make();
  const auto w = coh_->write(0, page(1), 0);
  EXPECT_EQ(w.kind, Kind::WriteMiss);
  EXPECT_EQ(w.lclass, LatencyClass::RemoteClean);
  // A read after the fill hits on the exclusive copy.
  const auto h = coh_->read(0, page(1), w.ready_at + 1);
  EXPECT_EQ(h.kind, Kind::Hit);
  // Directory says cluster 0 is exclusive owner.
  EXPECT_EQ(coh_->directory().peek(page(1)).state, DirState::Exclusive);
  EXPECT_EQ(coh_->directory().peek(page(1)).owner(), 0u);
}

TEST_F(CoherenceFixture, WriteToSharedLineIsUpgrade) {
  make();
  auto r = coh_->read(0, page(0), 0);
  const auto u = coh_->write(0, page(0), r.ready_at + 1);
  EXPECT_EQ(u.kind, Kind::UpgradeMiss);
  EXPECT_EQ(coh_->cluster_counters(0).upgrade_misses, 1u);
  EXPECT_EQ(coh_->directory().peek(page(0)).state, DirState::Exclusive);
}

TEST_F(CoherenceFixture, UpgradeInvalidatesOtherSharersInstantly) {
  make();
  auto r0 = coh_->read(0, page(0), 0);
  auto r1 = coh_->read(1, page(0), 0);
  (void)coh_->write(0, page(0), std::max(r0.ready_at, r1.ready_at) + 1);
  EXPECT_EQ(coh_->cluster_counters(1).invalidations, 1u);
  // Cluster 1 re-misses; the data is dirty at the home cluster itself, so
  // the home satisfies the request in two hops (100 cycles).
  const auto r = coh_->read(1, page(0), 1000);
  EXPECT_EQ(r.kind, Kind::ReadMiss);
  EXPECT_EQ(r.lclass, LatencyClass::RemoteClean);
}

TEST_F(CoherenceFixture, ReadDowngradesRemoteExclusiveToShared) {
  make();
  auto w = coh_->write(1, page(0), 0);
  (void)coh_->read(0, page(0), w.ready_at + 1);
  const DirEntry e = coh_->directory().peek(page(0));
  EXPECT_EQ(e.state, DirState::Shared);
  EXPECT_TRUE(e.has(0));
  EXPECT_TRUE(e.has(1));
  // The former owner still hits (kept a SHARED copy).
  const auto h = coh_->read(1, page(0), w.ready_at + 500);
  EXPECT_EQ(h.kind, Kind::Hit);
}

TEST_F(CoherenceFixture, InvalidationKillsPendingFill) {
  make();
  (void)coh_->read(0, page(0), 0);        // fill in flight until t=30
  (void)coh_->write(1, page(0), 5);       // instantly invalidates the fill
  // After the fill time, cluster 0 must *miss* again (install suppressed).
  const auto r = coh_->read(0, page(0), 200);
  EXPECT_EQ(r.kind, Kind::ReadMiss);
  EXPECT_EQ(coh_->cluster_counters(0).invalidations, 1u);
}

TEST_F(CoherenceFixture, PendingExclusiveFillAbsorbsStores) {
  make();
  (void)coh_->write(0, page(1), 0);
  const auto w2 = coh_->write(0, page(1), 10);  // before the fill arrives
  EXPECT_EQ(w2.kind, Kind::Hit);
  EXPECT_EQ(coh_->cluster_counters(0).write_hits, 1u);
}

TEST_F(CoherenceFixture, WriteUpgradesOwnPendingSharedFill) {
  make();
  (void)coh_->read(0, page(0), 0);             // SHARED fill in flight
  const auto u = coh_->write(0, page(0), 10);  // upgrade the pending fill
  EXPECT_EQ(u.kind, Kind::UpgradeMiss);
  // After fill the line is EXCLUSIVE: another write hits.
  const auto w = coh_->write(0, page(0), 100);
  EXPECT_EQ(w.kind, Kind::Hit);
}

TEST_F(CoherenceFixture, PendingSharedDowngradeOnConcurrentWriteMiss) {
  make();
  // Cluster 0's write-miss fill is in flight; cluster 1 reads: the pending
  // EXCLUSIVE install must be downgraded to SHARED.
  (void)coh_->write(0, page(0), 0);
  (void)coh_->read(1, page(0), 10);
  const auto u = coh_->write(0, page(0), 200);  // line installed SHARED now
  EXPECT_EQ(u.kind, Kind::UpgradeMiss)
      << "owner's fill was downgraded, so the later store upgrades";
}

TEST_F(CoherenceFixture, EvictionSendsReplacementHint) {
  make(2 * 64);  // two lines per cluster cache
  auto r = coh_->read(0, page(0), 0);
  Cycles t = r.ready_at + 1;
  (void)coh_->read(0, page(0) + 64, t);
  t += 200;
  (void)coh_->read(0, page(0) + 128, t);  // evicts page(0) line 0
  t += 200;
  // Lazy install happens on the next access; settle everything:
  (void)coh_->read(0, page(0) + 128, t);
  EXPECT_GE(coh_->cluster_counters(0).evictions, 1u);
  EXPECT_EQ(coh_->directory().peek(page(0)).count(), 0u)
      << "replacement hint must remove the cluster from the sharer vector";
}

TEST_F(CoherenceFixture, ColdMissesCountedOncePerLine) {
  make();
  (void)coh_->read(0, page(0), 0);
  (void)coh_->read(1, page(0), 0);  // cold for the machine? No: second access
  EXPECT_EQ(coh_->cluster_counters(0).cold_misses +
                coh_->cluster_counters(1).cold_misses,
            1u);
}

TEST_F(CoherenceFixture, HomeAssignmentUsesPlacement) {
  make();
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(coh_->home_of(page(c)), c);
  }
}

TEST_F(CoherenceFixture, CountersAggregate) {
  make();
  (void)coh_->read(0, page(0), 0);
  (void)coh_->write(1, page(1), 0);
  const MissCounters t = coh_->totals();
  EXPECT_EQ(t.reads, 1u);
  EXPECT_EQ(t.writes, 1u);
  EXPECT_EQ(t.read_misses, 1u);
  EXPECT_EQ(t.write_misses, 1u);
  EXPECT_EQ(t.total_misses(), 2u);
}

TEST_F(CoherenceFixture, SharedClusterCacheServesClusterMates) {
  cfg_.num_procs = 4;
  cfg_.procs_per_cluster = 2;  // procs {0,1} share, {2,3} share
  make();
  const auto m = coh_->read(0, page(0), 0);
  const auto h = coh_->read(1, page(0), m.ready_at + 1);
  EXPECT_EQ(h.kind, Kind::Hit) << "cluster-mate must hit on the shared copy";
  const auto m2 = coh_->read(2, page(0), m.ready_at + 1);
  EXPECT_EQ(m2.kind, Kind::ReadMiss) << "other cluster still misses";
}

}  // namespace
}  // namespace csim
