#include "src/core/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/error.hpp"

namespace csim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> log;
  q.schedule(30, [&] { log.push_back(3); });
  q.schedule(10, [&] { log.push_back(1); });
  q.schedule(20, [&] { log.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> log;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&log, i] { log.push_back(i); });
  }
  q.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  Cycles seen = 0;
  q.schedule(42, [&] { seen = q.now(); });
  q.run_one();
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, SchedulingIntoThePastClampsToNow) {
  EventQueue q;
  q.schedule(100, [] {});
  q.run_one();
  Cycles seen = 0;
  q.schedule(10, [&] { seen = q.now(); });  // in the past
  q.run_one();
  EXPECT_EQ(seen, 100u) << "past events must be clamped to now()";
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule(q.now() + 1, chain);
  };
  q.schedule(0, chain);
  const Cycles end = q.run_to_completion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(end, 4u);
}

TEST(EventQueue, RunOneOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_one(), std::logic_error);
}

TEST(EventQueue, SizeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_time(), 1u);
  q.run_to_completion();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CountsEventsRun) {
  EventQueue q;
  for (Cycles t = 0; t < 7; ++t) q.schedule(t, [] {});
  q.run_to_completion();
  EXPECT_EQ(q.events_run(), 7u);
}

TEST(EventQueueBudget, SelfReschedulingEventTripsMaxEvents) {
  EventQueue q;
  q.set_budget({0, 100, 0});
  std::function<void()> forever = [&] { q.schedule(q.now() + 1, forever); };
  q.schedule(0, forever);
  EXPECT_THROW(q.run_to_completion(), LivelockError);
  EXPECT_EQ(q.events_run(), 101u);  // first event past the budget
}

TEST(EventQueueBudget, MaxCyclesTripsOnceTimePassesBudget) {
  EventQueue q;
  q.set_budget({500, 0, 0});
  std::function<void()> forever = [&] { q.schedule(q.now() + 10, forever); };
  q.schedule(0, forever);
  try {
    q.run_to_completion();
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_GT(q.now(), 500u);
    EXPECT_NE(std::string(e.what()).find("max_cycles"), std::string::npos);
    EXPECT_EQ(e.snapshot().cycle, q.now());
  }
}

TEST(EventQueueBudget, NoProgressDetectorTripsOnSameCycleChurn) {
  EventQueue q;
  q.set_budget({0, 0, 50});
  std::function<void()> spin = [&] { q.schedule(q.now(), spin); };  // never advances
  q.schedule(7, spin);
  EXPECT_THROW(q.run_to_completion(), LivelockError);
  EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueueBudget, NoProgressDetectorResetsWhenTimeAdvances) {
  EventQueue q;
  q.set_budget({0, 0, 50});
  // 40 same-cycle events, then advance, repeatedly: never trips.
  int rounds = 0;
  std::function<void()> burst = [&] {
    for (int i = 0; i < 40; ++i) q.schedule(q.now(), [] {});
    if (++rounds < 5) q.schedule(q.now() + 1, burst);
  };
  q.schedule(0, burst);
  EXPECT_NO_THROW(q.run_to_completion());
  EXPECT_EQ(rounds, 5);
}

TEST(EventQueueBudget, UnsetBudgetNeverTrips) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) q.schedule(0, [] {});
  EXPECT_NO_THROW(q.run_to_completion());
  EXPECT_FALSE(q.budget_violation().has_value());
}

}  // namespace
}  // namespace csim
