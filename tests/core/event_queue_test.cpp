#include "src/core/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace csim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> log;
  q.schedule(30, [&] { log.push_back(3); });
  q.schedule(10, [&] { log.push_back(1); });
  q.schedule(20, [&] { log.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> log;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&log, i] { log.push_back(i); });
  }
  q.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  Cycles seen = 0;
  q.schedule(42, [&] { seen = q.now(); });
  q.run_one();
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, SchedulingIntoThePastClampsToNow) {
  EventQueue q;
  q.schedule(100, [] {});
  q.run_one();
  Cycles seen = 0;
  q.schedule(10, [&] { seen = q.now(); });  // in the past
  q.run_one();
  EXPECT_EQ(seen, 100u) << "past events must be clamped to now()";
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule(q.now() + 1, chain);
  };
  q.schedule(0, chain);
  const Cycles end = q.run_to_completion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(end, 4u);
}

TEST(EventQueue, RunOneOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.run_one(), std::logic_error);
}

TEST(EventQueue, SizeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_time(), 1u);
  q.run_to_completion();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace csim
