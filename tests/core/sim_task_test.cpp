// Tests for the SimTask coroutine type: laziness, nesting, exceptions.
#include "src/core/sim_task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace csim {
namespace {

SimTask trivial(int& x) {
  x = 42;
  co_return;
}

TEST(SimTask, LazyStart) {
  int x = 0;
  SimTask t = trivial(x);
  EXPECT_EQ(x, 0) << "coroutine must not run before start()";
  EXPECT_FALSE(t.done());
  t.start();
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(t.done());
}

SimTask child(std::vector<int>& log, int id) {
  log.push_back(id);
  co_return;
}

SimTask parent(std::vector<int>& log) {
  log.push_back(0);
  co_await child(log, 1);
  log.push_back(2);
  co_await child(log, 3);
  log.push_back(4);
}

TEST(SimTask, NestedTasksRunInOrder) {
  std::vector<int> log;
  SimTask t = parent(log);
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
}

SimTask deep(std::vector<int>& log, int depth) {
  log.push_back(depth);
  if (depth > 0) co_await deep(log, depth - 1);
}

TEST(SimTask, DeepRecursion) {
  std::vector<int> log;
  SimTask t = deep(log, 100);
  t.start();
  EXPECT_TRUE(t.done());
  ASSERT_EQ(log.size(), 101u);
  EXPECT_EQ(log.front(), 100);
  EXPECT_EQ(log.back(), 0);
}

SimTask thrower() {
  throw std::runtime_error("boom");
  co_return;  // unreachable; makes this a coroutine
}

TEST(SimTask, ExceptionPropagatesFromRoot) {
  SimTask t = thrower();
  EXPECT_THROW(t.start(), std::runtime_error);
}

SimTask catcher(bool& caught) {
  try {
    co_await thrower();
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(SimTask, ExceptionPropagatesThroughNesting) {
  bool caught = false;
  SimTask t = catcher(caught);
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_TRUE(caught);
}

// A manual awaitable that suspends once, modelling the scheduler handshake.
struct ManualSuspend {
  std::coroutine_handle<>* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const noexcept { *slot = h; }
  void await_resume() const noexcept {}
};

SimTask suspender(std::coroutine_handle<>& slot, int& phase) {
  phase = 1;
  co_await ManualSuspend{&slot};
  phase = 2;
}

TEST(SimTask, SuspensionAndExternalResume) {
  std::coroutine_handle<> slot{};
  int phase = 0;
  SimTask t = suspender(slot, phase);
  t.start();
  EXPECT_EQ(phase, 1);
  EXPECT_FALSE(t.done());
  ASSERT_TRUE(slot);
  slot.resume();
  EXPECT_EQ(phase, 2);
  EXPECT_TRUE(t.done());
}

SimTask nested_suspender(std::coroutine_handle<>& slot, std::vector<int>& log) {
  log.push_back(1);
  co_await ManualSuspend{&slot};
  log.push_back(2);
}

SimTask outer_of_suspender(std::coroutine_handle<>& slot, std::vector<int>& log) {
  log.push_back(0);
  co_await nested_suspender(slot, log);
  log.push_back(3);
}

TEST(SimTask, ResumeOfNestedLeafCompletesChain) {
  std::coroutine_handle<> slot{};
  std::vector<int> log;
  SimTask t = outer_of_suspender(slot, log);
  t.start();
  EXPECT_EQ(log, (std::vector<int>{0, 1}));
  ASSERT_TRUE(slot);
  slot.resume();  // resumes the leaf; completion must unwind to the root
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(t.done());
}

TEST(SimTask, MoveTransfersOwnership) {
  int x = 0;
  SimTask a = trivial(x);
  SimTask b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(b.valid());
  b.start();
  EXPECT_EQ(x, 42);
}

TEST(SimTask, DestroyWithoutStartDoesNotLeakOrCrash) {
  int x = 0;
  { SimTask t = trivial(x); }
  EXPECT_EQ(x, 0);
}

}  // namespace
}  // namespace csim
