// Interval-sampled simulation (src/core/sampling.hpp): spec validation, the
// exactness guarantees (reference counts and cold misses are identical to
// full simulation by construction), the accuracy envelope of the
// extrapolated statistics across all nine applications and both cluster
// organizations, scheduling via explicit detail_at points, and the host
// watchdogs firing inside the functional-warming retirement loop.
//
// Tolerances are pinned from a measured sweep at this exact configuration
// (16 procs, ppc 4, 4 KB caches, Test scale, sample(4096, 4096, 16384),
// coverage ~0.25). Test-scale runs are far below the sampling design point
// (the issue targets 4-8x Default scale), so the envelope is generous where
// small denominators make relative error noisy; the exact-equality checks
// are the real regression tripwire.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/error.hpp"
#include "src/core/machine.hpp"
#include "src/core/simulator.hpp"
#include "src/obs/manifest.hpp"

namespace csim {
namespace {

MachineSpec base_spec(ClusterStyle style) {
  return MachineSpecBuilder{}
      .procs(16)
      .procs_per_cluster(4)
      .style(style)
      .cache_kb(4)
      .build();
}

SimResult run(const std::string& app, const MachineSpec& cfg) {
  const std::unique_ptr<Program> prog = make_app(app, ProblemScale::Test);
  return simulate(*prog, cfg);
}

/// |a - b| / max(b, 1): relative error with a unit floor so zero-valued
/// baselines compare by absolute difference.
double rel(double a, double b) {
  return std::fabs(a - b) / std::max(b, 1.0);
}

TEST(SamplingSpec, ValidationRejectsInconsistentSchedules) {
  const auto with = [](const SamplingSpec& s) {
    MachineSpecBuilder b;
    b.procs(16).procs_per_cluster(4).sampling(s);
    return b.build();
  };
  SamplingSpec s;
  s.enabled = true;

  SamplingSpec quantum = s;
  quantum.warm_quantum = 0;
  EXPECT_THROW(with(quantum), ConfigError);

  SamplingSpec overlap = s;
  overlap.detail_refs = 1000;
  overlap.period_refs = 500;  // intervals would overlap
  EXPECT_THROW(with(overlap), ConfigError);

  SamplingSpec to_end = s;
  to_end.detail_refs = 0;  // "detailed to end" admits one start point only
  to_end.detail_at = {100, 200};
  EXPECT_THROW(with(to_end), ConfigError);

  SamplingSpec early = s;
  early.warmup_refs = 1000;
  early.detail_at = {500};  // before the warmup boundary
  EXPECT_THROW(with(early), ConfigError);

  SamplingSpec cramped = s;
  cramped.detail_refs = 1000;
  cramped.detail_at = {2000, 2500};  // gap smaller than an interval
  EXPECT_THROW(with(cramped), ConfigError);

  SamplingSpec cold_ckpt = s;
  cold_ckpt.checkpoint_dir = "/tmp/nowhere";  // nothing to checkpoint
  EXPECT_THROW(with(cold_ckpt), ConfigError);

  // The canonical periodic schedule passes.
  SamplingSpec good = s;
  good.warmup_refs = 4096;
  good.detail_refs = 4096;
  good.period_refs = 16384;
  EXPECT_NO_THROW(with(good));
}

TEST(Sampling, OffByDefaultAndResultFlagsFollowTheSpec) {
  const MachineSpec plain = base_spec(ClusterStyle::SharedCache);
  EXPECT_FALSE(plain.sampling.enabled);
  const SimResult full = run("fft", plain);
  EXPECT_FALSE(full.sampled);
  EXPECT_EQ(full.detailed_refs, 0u);
  EXPECT_EQ(full.coverage, 0.0);

  const MachineSpec cfg = MachineSpecBuilder{base_spec(ClusterStyle::SharedCache)}
                              .sample(4096, 4096, 16384)
                              .build();
  const SimResult sampled = run("fft", cfg);
  EXPECT_TRUE(sampled.sampled);
  EXPECT_GT(sampled.detailed_refs, 0u);
  EXPECT_GT(sampled.coverage, 0.0);
  EXPECT_LE(sampled.coverage, 1.0);
}

TEST(Sampling, ReferenceCountsAndColdMissesAreExact) {
  for (const ClusterStyle style :
       {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
    const MachineSpec plain = base_spec(style);
    const MachineSpec cfg =
        MachineSpecBuilder{plain}.sample(4096, 4096, 16384).build();
    const SimResult full = run("fft", plain);
    const SimResult sampled = run("fft", cfg);
    ASSERT_TRUE(full.ok);
    ASSERT_TRUE(sampled.ok);
    // fft's miss behaviour is timing-independent at this configuration, so
    // the whole taxonomy lands exactly (measured, both organizations).
    EXPECT_EQ(sampled.totals.reads, full.totals.reads);
    EXPECT_EQ(sampled.totals.writes, full.totals.writes);
    EXPECT_EQ(sampled.totals.cold_misses, full.totals.cold_misses);
    EXPECT_EQ(sampled.totals.read_misses, full.totals.read_misses);
    EXPECT_EQ(sampled.totals.write_misses, full.totals.write_misses);
    EXPECT_EQ(sampled.totals.upgrade_misses, full.totals.upgrade_misses);
  }
}

TEST(Sampling, AccuracyEnvelopeAllAppsBothOrganizations) {
  for (const std::string& app : app_names()) {
    for (const ClusterStyle style :
         {ClusterStyle::SharedCache, ClusterStyle::SharedMemory}) {
      SCOPED_TRACE(app + (style == ClusterStyle::SharedCache ? "/sc" : "/sm"));
      const MachineSpec plain = base_spec(style);
      const MachineSpec cfg =
          MachineSpecBuilder{plain}.sample(4096, 4096, 16384).build();
      const SimResult full = run(app, plain);
      const SimResult sampled = run(app, cfg);
      ASSERT_TRUE(full.ok);
      ASSERT_TRUE(sampled.ok);
      ASSERT_TRUE(sampled.sampled);

      // Near-exact by construction: warming retires the same reference
      // stream against the same cache state. The only slack is apps that
      // poll shared flags (mp3d), whose spin counts depend on interleaving
      // -- measured at most one reference of drift.
      EXPECT_LE(std::llabs(static_cast<long long>(sampled.totals.reads) -
                           static_cast<long long>(full.totals.reads)),
                4);
      EXPECT_LE(std::llabs(static_cast<long long>(sampled.totals.writes) -
                           static_cast<long long>(full.totals.writes)),
                4);
      EXPECT_EQ(sampled.totals.cold_misses, full.totals.cold_misses);

      // Miss taxonomy: warming has no outstanding fills, so it can never
      // merge or split requests the detailed run would, which perturbs the
      // miss mix slightly. Measured worst cases at this configuration:
      // read_misses 9.6% (ocean), combined misses 6.7% -- except radix,
      // whose permutation phase is merge-heavy at Test scale (48%).
      const auto combined = [](const MissCounters& c) {
        return static_cast<double>(c.read_misses + c.write_misses +
                                   c.upgrade_misses);
      };
      EXPECT_LE(rel(static_cast<double>(sampled.totals.read_misses),
                    static_cast<double>(full.totals.read_misses)),
                0.20);
      EXPECT_LE(rel(combined(sampled.totals), combined(full.totals)),
                app == "radix" ? 0.55 : 0.15);

      // Extrapolated time: cpu cycles scale almost linearly with references
      // (measured worst 19%); wall time absorbs all the load-imbalance and
      // synchronization noise an interval sample cannot see (worst 49%).
      EXPECT_LE(rel(static_cast<double>(sampled.aggregate().cpu),
                    static_cast<double>(full.aggregate().cpu)),
                0.30);
      EXPECT_LE(rel(static_cast<double>(sampled.wall_time),
                    static_cast<double>(full.wall_time)),
                0.65);

      // Final-barrier accounting survives extrapolation: the sync padding
      // keeps every processor's bucket total equal to the wall time.
      EXPECT_EQ(sampled.aggregate().total(),
                static_cast<std::uint64_t>(sampled.config.num_procs) *
                    sampled.wall_time);
    }
  }
}

TEST(Sampling, PaperRowAccuracyEnvelope) {
  // The accuracy half of the perf-baseline speedup claim (bench/perf_micro
  // --json, the `_paper/sampled` rows): paper problem sizes, 64 procs,
  // ppc 8, 16 KB caches, warmup to all-but-1/64 of the run, one
  // 16K-reference detailed tail, 256K-cycle warming quantum. Every run here
  // is deterministic, so the bounds are measured values plus headroom, not
  // statistical tolerances. mp3d is excluded by design: its write-sharing
  // ping-pong collapses under coarse warming (write-miss error ~1.0 at this
  // quantum), which is why it is not a perf row.
  struct Row {
    const char* app;
    ClusterStyle style;
  };
  constexpr Row rows[] = {
      {"fmm", ClusterStyle::SharedCache},
      {"fmm", ClusterStyle::SharedMemory},
      {"ocean", ClusterStyle::SharedCache},
  };
  for (const Row& row : rows) {
    SCOPED_TRACE(std::string(row.app) +
                 (row.style == ClusterStyle::SharedCache ? "/sc" : "/sm"));
    const MachineSpec plain = MachineSpecBuilder{}
                                  .procs(64)
                                  .procs_per_cluster(8)
                                  .style(row.style)
                                  .cache_kb(16)
                                  .build();
    const std::unique_ptr<Program> full_prog =
        make_app(row.app, ProblemScale::Paper);
    const SimResult full = simulate(*full_prog, plain);
    ASSERT_TRUE(full.ok);
    const std::uint64_t total = full.totals.reads + full.totals.writes;

    const MachineSpec cfg = MachineSpecBuilder{plain}
                                .sample(total - total / 128, 16384, 0)
                                .warm_quantum(Cycles{1} << 18)
                                .build();
    const std::unique_ptr<Program> prog =
        make_app(row.app, ProblemScale::Paper);
    const SimResult sampled = simulate(*prog, cfg);
    ASSERT_TRUE(sampled.ok);
    ASSERT_TRUE(sampled.sampled);
    EXPECT_LT(sampled.coverage, 0.02);

    // Reference counts are exact up to extrapolation rounding (measured
    // rel error < 1e-4) and cold misses exactly equal: warming touches the
    // same lines the detailed run would.
    EXPECT_LE(
        rel(static_cast<double>(sampled.totals.reads + sampled.totals.writes),
            static_cast<double>(total)),
        1e-3);
    EXPECT_EQ(sampled.totals.cold_misses, full.totals.cold_misses);

    // Miss taxonomy at this configuration, measured worst cases: read
    // misses 13.6% (fmm/sm), combined misses 10.0%.
    const auto combined = [](const MissCounters& c) {
      return static_cast<double>(c.read_misses + c.write_misses +
                                 c.upgrade_misses);
    };
    EXPECT_LE(rel(static_cast<double>(sampled.totals.read_misses),
                  static_cast<double>(full.totals.read_misses)),
              0.20);
    EXPECT_LE(rel(combined(sampled.totals), combined(full.totals)), 0.15);
  }
}

TEST(Sampling, DetailAtPointsMatchTheEquivalentPeriodicSchedule) {
  // detail_at = {N} with detail_refs == 0 is "warm to N, then detailed to
  // the end" -- exactly what warmup_refs = N with no period expresses. The
  // two spellings must land the same simulation bit for bit.
  const MachineSpec base = base_spec(ClusterStyle::SharedCache);
  const MachineSpec periodic = MachineSpecBuilder{base}.sample(1024, 0).build();
  SamplingSpec at;
  at.enabled = true;
  at.detail_at = {1024};
  const MachineSpec pointed = MachineSpecBuilder{base}.sampling(at).build();
  const SimResult a = run("fft", periodic);
  const SimResult b = run("fft", pointed);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(obs::result_digest(a), obs::result_digest(b));
  EXPECT_EQ(a.wall_time, b.wall_time);
  EXPECT_EQ(a.detailed_refs, b.detailed_refs);
}

TEST(Sampling, RunEndingInsideWarmupReportsZeroCoverage) {
  // Warmup longer than the whole program: no detailed interval ever opens.
  // The run still completes with exact counters, flags itself sampled, and
  // keeps the raw (unscaled) warming buckets.
  const MachineSpec cfg =
      MachineSpecBuilder{base_spec(ClusterStyle::SharedCache)}
          .sample(std::uint64_t{1} << 40, 4096, 0)
          .build();
  const SimResult r = run("fft", cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.sampled);
  EXPECT_EQ(r.detailed_refs, 0u);
  EXPECT_EQ(r.coverage, 0.0);
  EXPECT_GT(r.totals.reads, 0u);
}

TEST(Sampling, StalledWarmupTripsTheHostDeadline) {
  // A wedged or interminable warmup must fail fast: the deadline is polled
  // inside the warming retirement loop, not only in the event queue drive
  // loop (which warming never enters).
  const MachineSpec cfg =
      MachineSpecBuilder{base_spec(ClusterStyle::SharedCache)}
          .sample(std::uint64_t{1} << 40, 0)
          .max_host_seconds(1e-9)
          .build();
  try {
    run("fft", cfg);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("during functional warming"),
              std::string::npos)
        << e.what();
  }
}

TEST(Sampling, StalledWarmupTripsTheCycleBudget) {
  // Warming still pumps the event queue (quantum slices), so the generic
  // cycle watchdog covers it too: a warmup that never reaches its boundary
  // cannot spin forever.
  const MachineSpec cfg =
      MachineSpecBuilder{base_spec(ClusterStyle::SharedCache)}
          .sample(std::uint64_t{1} << 40, 0)
          .max_cycles(64)
          .build();
  try {
    run("fft", cfg);
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    EXPECT_NE(std::string(e.what()).find("max_cycles"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace csim
