// Processor timing semantics and synchronization primitives, exercised
// through small purpose-built Programs.
#include <gtest/gtest.h>

#include <functional>

#include "src/core/simulator.hpp"
#include "src/core/sync.hpp"

namespace csim {
namespace {

/// A Program built from a lambda body (test scaffolding).
class LambdaProgram : public Program {
 public:
  using Body = std::function<SimTask(Proc&, LambdaProgram&)>;
  LambdaProgram(std::size_t mem_bytes, Body body) : bytes_(mem_bytes), body_(std::move(body)) {}

  [[nodiscard]] std::string name() const override { return "lambda"; }
  void setup(AddressSpace& as, const MachineSpec& cfg) override {
    base = as.alloc(bytes_, "mem");
    bar = std::make_unique<Barrier>(cfg.num_procs);
  }
  SimTask body(Proc& p) override { return body_(p, *this); }

  Addr base = 0;
  std::unique_ptr<Barrier> bar;
  Lock lock;

 private:
  std::size_t bytes_;
  Body body_;
};

MachineSpec tiny(unsigned procs, unsigned ppc) {
  MachineSpec c;
  c.num_procs = procs;
  c.procs_per_cluster = ppc;
  c.cache.per_proc_bytes = 0;
  return c;
}

TEST(ProcessorTiming, ComputeChargesCpu) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram&) -> SimTask {
    co_await p.compute(100);
  });
  const SimResult r = simulate(prog, tiny(1, 1));
  EXPECT_EQ(r.wall_time, 100u);
  EXPECT_EQ(r.per_proc[0].cpu, 100u);
  EXPECT_EQ(r.per_proc[0].load, 0u);
}

TEST(ProcessorTiming, ReadMissChargesLoadStall) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    co_await p.read(g.base);  // cold miss, home local (single cluster): 30
  });
  const SimResult r = simulate(prog, tiny(1, 1));
  EXPECT_EQ(r.per_proc[0].load, 30u);
  EXPECT_EQ(r.per_proc[0].cpu, 1u);  // the issue cycle
  EXPECT_EQ(r.wall_time, 31u);
}

TEST(ProcessorTiming, ReadHitChargesOneCpuCycle) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    co_await p.read(g.base);
    co_await p.read(g.base);  // hit
  });
  const SimResult r = simulate(prog, tiny(1, 1));
  EXPECT_EQ(r.per_proc[0].cpu, 2u);
  EXPECT_EQ(r.per_proc[0].load, 30u);
}

TEST(ProcessorTiming, WritesNeverStall) {
  LambdaProgram prog(4096, [](Proc& p, LambdaProgram& g) -> SimTask {
    for (unsigned i = 0; i < 10; ++i) {
      co_await p.write(g.base + i * 64);  // all write misses
    }
  });
  const SimResult r = simulate(prog, tiny(1, 1));
  EXPECT_EQ(r.per_proc[0].load, 0u);
  EXPECT_EQ(r.per_proc[0].cpu, 10u);
  EXPECT_EQ(r.totals.write_misses, 10u);
}

TEST(ProcessorTiming, MergeStallWaitsForClusterMateFill) {
  // Two procs in one cluster read the same cold line at t=0: the second
  // merges and waits out the remaining fill time.
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    if (p.id() == 1) co_await p.compute(5);  // issue 5 cycles later
    co_await p.read(g.base);
  });
  const SimResult r = simulate(prog, tiny(2, 2));
  EXPECT_EQ(r.totals.merges, 1u);
  EXPECT_EQ(r.per_proc[0].load, 30u);
  EXPECT_GT(r.per_proc[1].merge, 0u);
  EXPECT_EQ(r.per_proc[1].merge, 24u);  // fill at 30 - (5 + 1 issue cycle)
}

TEST(Barriers, ChargeWaitersNotLastArriver) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    co_await p.compute(p.id() == 0 ? 10 : 100);
    co_await p.barrier(*g.bar);
    co_await p.compute(1);
  });
  const SimResult r = simulate(prog, tiny(2, 1));
  EXPECT_EQ(r.wall_time, 101u);
  EXPECT_EQ(r.per_proc[0].sync, 90u);
  EXPECT_EQ(r.per_proc[1].sync, 0u);
}

TEST(Barriers, Reusable) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    for (int i = 0; i < 10; ++i) {
      co_await p.compute(1 + p.id());
      co_await p.barrier(*g.bar);
    }
  });
  MachineSpec cfg = tiny(4, 1);
  LambdaProgram* pp = &prog;
  const SimResult r = simulate(*pp, cfg);
  EXPECT_EQ(prog.bar->generations(), 10u);
  // Slowest proc (id 3) computes 4 cycles per round: wall = 40.
  EXPECT_EQ(r.wall_time, 40u);
}

TEST(Barriers, MismatchedParticipationDeadlocks) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    if (p.id() == 0) co_await p.barrier(*g.bar);  // others never arrive
  });
  EXPECT_THROW(simulate(prog, tiny(2, 1)), std::runtime_error);
}

TEST(Locks, MutualExclusionSerializes) {
  // Each proc holds the lock for 10 cycles; total serial time ~ P * 10.
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    co_await p.acquire(g.lock);
    co_await p.compute(10);
    p.release(g.lock);
  });
  const SimResult r = simulate(prog, tiny(4, 1));
  EXPECT_EQ(r.wall_time, 40u);
  EXPECT_EQ(prog.lock.acquisitions(), 4u);
  EXPECT_EQ(prog.lock.contended_acquisitions(), 3u);
}

TEST(Locks, FifoOrder) {
  std::vector<ProcId> order;
  LambdaProgram prog(64, [&order](Proc& p, LambdaProgram& g) -> SimTask {
    co_await p.compute(1 + p.id());  // stagger arrivals: 0 first
    co_await p.acquire(g.lock);
    order.push_back(p.id());
    co_await p.compute(50);
    p.release(g.lock);
  });
  (void)simulate(prog, tiny(4, 1));
  EXPECT_EQ(order, (std::vector<ProcId>{0, 1, 2, 3}));
}

TEST(Locks, WaitChargedToSync) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram& g) -> SimTask {
    co_await p.acquire(g.lock);
    co_await p.compute(20);
    p.release(g.lock);
  });
  const SimResult r = simulate(prog, tiny(2, 1));
  EXPECT_EQ(r.per_proc[1].sync, 20u);
  EXPECT_EQ(r.per_proc[0].sync, 20u) << "final-barrier wait for proc 0";
}

TEST(Quantum, StrictAndRelaxedAgreeWithinSkew) {
  auto make = [] {
    return LambdaProgram(1 << 16, [](Proc& p, LambdaProgram& g) -> SimTask {
      for (unsigned i = 0; i < 200; ++i) {
        co_await p.read(g.base + (i % 32) * 64);
        co_await p.compute(3);
      }
      co_await p.barrier(*g.bar);
    });
  };
  MachineSpec strict = tiny(8, 2);
  strict.runahead_quantum = 1;
  MachineSpec relaxed = tiny(8, 2);
  relaxed.runahead_quantum = 64;
  auto p1 = make();
  auto p2 = make();
  const SimResult a = simulate(p1, strict);
  const SimResult b = simulate(p2, relaxed);
  const double drift =
      std::abs(static_cast<double>(a.wall_time) - static_cast<double>(b.wall_time)) /
      static_cast<double>(a.wall_time);
  EXPECT_LT(drift, 0.05) << "relaxed quantum must stay within bounded skew";
  EXPECT_EQ(a.totals.reads, b.totals.reads);
}

TEST(Simulator, EarlyFinishersAccrueFinalSync) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram&) -> SimTask {
    co_await p.compute(p.id() == 0 ? 5 : 50);
  });
  const SimResult r = simulate(prog, tiny(2, 1));
  EXPECT_EQ(r.wall_time, 50u);
  EXPECT_EQ(r.per_proc[0].sync, 45u);
  EXPECT_EQ(r.per_proc[0].total(), r.per_proc[1].total());
}

TEST(Simulator, AppExceptionPropagates) {
  LambdaProgram prog(64, [](Proc& p, LambdaProgram&) -> SimTask {
    co_await p.compute(1);
    if (p.id() == 1) throw std::logic_error("app bug");
  });
  EXPECT_THROW(simulate(prog, tiny(2, 1)), std::logic_error);
}

}  // namespace
}  // namespace csim
