#include "src/core/machine.hpp"

#include <gtest/gtest.h>

namespace csim {
namespace {

MachineSpec base() {
  MachineSpec c;
  c.num_procs = 64;
  c.procs_per_cluster = 4;
  c.cache.per_proc_bytes = 16 * 1024;
  return c;
}

TEST(MachineSpec, ClusterMath) {
  const MachineSpec c = base();
  EXPECT_EQ(c.num_clusters(), 16u);
  EXPECT_EQ(c.cluster_of(0), 0u);
  EXPECT_EQ(c.cluster_of(3), 0u);
  EXPECT_EQ(c.cluster_of(4), 1u);
  EXPECT_EQ(c.cluster_of(63), 15u);
  EXPECT_EQ(c.cluster_cache_bytes(), 64u * 1024);
  EXPECT_EQ(c.cluster_cache_lines(), 1024u);
}

TEST(MachineSpec, ValidAcceptsPaperConfigs) {
  for (unsigned ppc : {1u, 2u, 4u, 8u}) {
    for (std::size_t kb : {0ul, 4ul, 16ul, 32ul}) {
      MachineSpec c = base();
      c.procs_per_cluster = ppc;
      c.cache.per_proc_bytes = kb * 1024;
      EXPECT_NO_THROW(c.validate()) << ppc << " " << kb;
    }
  }
}

TEST(MachineSpec, RejectsNonDividingClusterSize) {
  MachineSpec c = base();
  c.procs_per_cluster = 5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsZeroProcs) {
  MachineSpec c = base();
  c.num_procs = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsNonPowerOfTwoLine) {
  MachineSpec c = base();
  c.cache.line_bytes = 48;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsPageSmallerThanLine) {
  MachineSpec c = base();
  c.page_bytes = 32;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsCacheNotMultipleOfLine) {
  MachineSpec c = base();
  c.cache.per_proc_bytes = 1000;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsBadAssociativity) {
  MachineSpec c = base();
  c.cache.associativity = 7;  // 1024 lines not divisible by 7
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsZeroQuantumAndHitLatency) {
  MachineSpec c = base();
  c.runahead_quantum = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base();
  c.hit_latency = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, RejectsMoreThan64Clusters) {
  MachineSpec c = base();
  c.num_procs = 128;
  c.procs_per_cluster = 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MachineSpec, Label) {
  MachineSpec c = base();
  EXPECT_EQ(c.label(), "64p/4ppc/16KB");
  c.cache.per_proc_bytes = 0;
  EXPECT_EQ(c.label(), "64p/4ppc/inf");
}

TEST(LatencyModel, Table1Values) {
  const LatencyModel m;
  EXPECT_EQ(m.of(LatencyClass::LocalClean), 30u);
  EXPECT_EQ(m.of(LatencyClass::LocalDirtyRemote), 100u);
  EXPECT_EQ(m.of(LatencyClass::RemoteClean), 100u);
  EXPECT_EQ(m.of(LatencyClass::RemoteDirtyThird), 150u);
}

TEST(LatencyModel, ClassNames) {
  EXPECT_EQ(to_string(LatencyClass::LocalClean), "local-clean");
  EXPECT_EQ(to_string(LatencyClass::RemoteDirtyThird), "remote-dirty-third");
}

}  // namespace
}  // namespace csim
