// In-simulation shared-cache hit-cost modeling (MachineSpec::
// model_shared_hit_costs): Table 1 hit latencies and Table 4 conflicts
// applied per access.
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

MachineSpec mc(unsigned ppc, bool model) {
  MachineSpec c;
  c.num_procs = 16;
  c.procs_per_cluster = ppc;
  c.cache.per_proc_bytes = 0;
  c.model_shared_hit_costs = model;
  return c;
}

TEST(HitCostModel, SharedHitLatencyTable) {
  MachineSpec c;
  c.procs_per_cluster = 1;
  EXPECT_EQ(c.shared_cache_hit_latency(), 1u);
  c.procs_per_cluster = 2;
  EXPECT_EQ(c.shared_cache_hit_latency(), 2u);
  c.procs_per_cluster = 4;
  EXPECT_EQ(c.shared_cache_hit_latency(), 3u);
  c.procs_per_cluster = 8;
  EXPECT_EQ(c.shared_cache_hit_latency(), 3u);
}

TEST(HitCostModel, UnclusteredIsUnaffected) {
  auto a = make_app("fft", ProblemScale::Test);
  auto b = make_app("fft", ProblemScale::Test);
  const SimResult off = simulate(*a, mc(1, false));
  const SimResult on = simulate(*b, mc(1, true));
  EXPECT_EQ(off.wall_time, on.wall_time)
      << "1-way clusters have 1-cycle hits and zero conflict probability";
}

TEST(HitCostModel, ClusteredRunsSlowDown) {
  auto a = make_app("fft", ProblemScale::Test);
  auto b = make_app("fft", ProblemScale::Test);
  const SimResult off = simulate(*a, mc(4, false));
  const SimResult on = simulate(*b, mc(4, true));
  EXPECT_GT(on.aggregate().cpu, off.aggregate().cpu)
      << "3-cycle hits must inflate busy time";
  EXPECT_GT(on.wall_time, off.wall_time);
  // Sanity bound: cpu inflation is at most ~4x (3 cycles + conflicts).
  EXPECT_LT(on.aggregate().cpu, off.aggregate().cpu * 5);
}

TEST(HitCostModel, DeterministicConflicts) {
  auto a = make_app("radix", ProblemScale::Test);
  auto b = make_app("radix", ProblemScale::Test);
  const SimResult r1 = simulate(*a, mc(8, true));
  const SimResult r2 = simulate(*b, mc(8, true));
  EXPECT_EQ(r1.wall_time, r2.wall_time)
      << "bank-conflict jitter must be deterministic per configuration";
}

}  // namespace
}  // namespace csim
