// Working-set profiler tests: stack-distance math and app-level properties.
#include "src/analysis/working_set.hpp"

#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

TEST(StackDistance, FirstTouchIsCold) {
  StackDistance sd;
  EXPECT_EQ(sd.touch(0x40), SIZE_MAX);
  EXPECT_EQ(sd.cold(), 1u);
  EXPECT_EQ(sd.distinct_lines(), 1u);
}

TEST(StackDistance, ImmediateReuseIsDistanceZero) {
  StackDistance sd;
  sd.touch(0x40);
  EXPECT_EQ(sd.touch(0x40), 0u);
}

TEST(StackDistance, DistanceCountsDistinctInterveningLines) {
  StackDistance sd;
  sd.touch(0x40);
  sd.touch(0x80);
  sd.touch(0xc0);
  sd.touch(0x80);              // distance 1 (only 0xc0 since)
  EXPECT_EQ(sd.touch(0x40), 2u);  // 0x80 and 0xc0 since
}

TEST(StackDistance, MissRatioMatchesLruSemantics) {
  // Cyclic access to 3 lines: a 2-line LRU cache always misses, a 3-line
  // cache always hits after warmup.
  StackDistance sd;
  for (int i = 0; i < 30; ++i) {
    sd.touch(0x40);
    sd.touch(0x80);
    sd.touch(0xc0);
  }
  EXPECT_DOUBLE_EQ(sd.rereference_miss_ratio(3), 0.0);
  EXPECT_DOUBLE_EQ(sd.rereference_miss_ratio(2), 1.0);
  EXPECT_GT(sd.miss_ratio(3), 0.0) << "cold misses remain";
}

TEST(StackDistance, WorkingSetDetectsLoopSize) {
  StackDistance sd;
  for (int i = 0; i < 50; ++i) {
    for (Addr l = 0; l < 8; ++l) sd.touch(l * 64);
  }
  EXPECT_EQ(sd.working_set_lines(0.99), 8u);
  EXPECT_EQ(sd.working_set_lines(0.5), 8u) << "all-or-nothing loop";
}

TEST(StackDistance, MissRatioMonotoneInCacheSize) {
  StackDistance sd;
  std::uint64_t x = 123;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    sd.touch(((x >> 33) % 256) * 64);
  }
  double prev = 1.1;
  for (std::size_t lines : {1ul, 4ul, 16ul, 64ul, 256ul}) {
    const double m = sd.miss_ratio(lines);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(WorkingSetProfiler, NeverStallsAndCountsRefs) {
  auto app = make_app("fft", ProblemScale::Test);
  MachineSpec cfg = paper_machine(1, 0);
  auto prof = profile_working_sets(*app, cfg);
  EXPECT_GT(prof->totals().reads, 0u);
  // Reference counts match a real simulation of the same app.
  auto app2 = make_app("fft", ProblemScale::Test);
  const SimResult r = simulate(*app2, cfg);
  EXPECT_EQ(prof->totals().reads, r.totals.reads);
  EXPECT_EQ(prof->totals().writes, r.totals.writes);
}

TEST(WorkingSetProfiler, ClusterWorkingSetNoLargerThanSumOfMembers) {
  for (const char* name : {"barnes", "volrend"}) {
    auto a1 = make_app(name, ProblemScale::Test);
    auto prof1 = profile_working_sets(*a1, paper_machine(1, 0));
    auto a4 = make_app(name, ProblemScale::Test);
    auto prof4 = profile_working_sets(*a4, paper_machine(4, 0));
    const double per_proc = prof1->mean_working_set_bytes(0.95);
    const double per_cluster = prof4->mean_working_set_bytes(0.95);
    EXPECT_LE(per_cluster, 4.0 * per_proc * 1.15)
        << name << ": overlap can only shrink the union (15% slack for "
        << "interleaving effects)";
    EXPECT_GT(per_cluster, 0.0);
  }
}

TEST(WorkingSetProfiler, OrderingMatchesPaperTable3) {
  // Volrend's working set ("quite small" in Table 3) must be far smaller
  // than Raytrace's ("large") at tail coverage — the reflecting rays are
  // exactly what blows Raytrace's working set up relative to Volrend's.
  auto vol = make_app("volrend", ProblemScale::Default);
  auto ray = make_app("raytrace", ProblemScale::Default);
  auto vol_p = profile_working_sets(*vol, paper_machine(1, 0));
  auto ray_p = profile_working_sets(*ray, paper_machine(1, 0));
  EXPECT_LT(vol_p->mean_working_set_bytes(0.98),
            ray_p->mean_working_set_bytes(0.98));
}

}  // namespace
}  // namespace csim
