// Analysis-layer tests: bank conflicts (Table 4 exact), latency expansion
// (Table 5 substitute), shared-cache cost estimator (Tables 6/7 machinery).
#include <gtest/gtest.h>

#include "src/analysis/bank_conflict.hpp"
#include "src/analysis/latency_expansion.hpp"
#include "src/analysis/shared_cache_cost.hpp"

namespace csim {
namespace {

TEST(BankConflict, Table4Exact) {
  const auto rows = bank_conflict_table();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows[0].collision_probability, 0.0);
  EXPECT_NEAR(rows[1].collision_probability, 0.125, 5e-4);
  EXPECT_NEAR(rows[2].collision_probability, 0.176, 5e-4);
  EXPECT_NEAR(rows[3].collision_probability, 0.199, 5e-4);
  EXPECT_EQ(rows[1].banks, 8u);
  EXPECT_EQ(rows[2].banks, 16u);
  EXPECT_EQ(rows[3].banks, 32u);
}

TEST(BankConflict, EdgeCases) {
  EXPECT_DOUBLE_EQ(bank_conflict_probability(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(bank_conflict_probability(16, 1), 0.0);
  EXPECT_DOUBLE_EQ(bank_conflict_probability(1, 8), 1.0)
      << "one bank, several processors: certain collision";
}

TEST(BankConflict, MonotonicInProcsAndBanks) {
  for (unsigned n = 2; n <= 16; ++n) {
    EXPECT_GT(bank_conflict_probability(32, n + 1),
              bank_conflict_probability(32, n));
  }
  for (unsigned m = 2; m <= 64; m *= 2) {
    EXPECT_LT(bank_conflict_probability(m * 2, 8),
              bank_conflict_probability(m, 8));
  }
}

TEST(LatencyExpansion, UnitAtOneCycle) {
  LatencyExpansionModel m;
  EXPECT_DOUBLE_EQ(m.factor(1), 1.0);
  EXPECT_DOUBLE_EQ(m.factor(0), 1.0);
}

TEST(LatencyExpansion, MonotonicInLatency) {
  LatencyExpansionModel m;
  m.loads_per_cycle = 0.25;
  EXPECT_GT(m.factor(2), m.factor(1));
  EXPECT_GT(m.factor(3), m.factor(2));
  EXPECT_GT(m.factor(4), m.factor(3));
}

TEST(LatencyExpansion, ScalesWithLoadDensity) {
  LatencyExpansionModel lo, hi;
  lo.loads_per_cycle = 0.1;
  hi.loads_per_cycle = 0.3;
  EXPECT_GT(hi.factor(3), lo.factor(3));
}

TEST(LatencyExpansion, PaperTableContents) {
  ASSERT_EQ(paper_table5().size(), 6u);
  const auto lu = paper_expansion("lu");
  ASSERT_TRUE(lu.has_value());
  EXPECT_DOUBLE_EQ(lu->f2, 1.055);
  EXPECT_DOUBLE_EQ(lu->factor(4), 1.173);
  EXPECT_DOUBLE_EQ(lu->factor(1), 1.0);
  EXPECT_FALSE(paper_expansion("fft").has_value());
}

TEST(LatencyExpansion, FitReproducesPaperRowsClosely) {
  for (const auto& row : paper_table5()) {
    const LatencyExpansionModel fit = fit_model_to(row);
    EXPECT_NEAR(fit.factor(2), row.f2, 0.01) << row.app;
    EXPECT_NEAR(fit.factor(3), row.f3, 0.01) << row.app;
    EXPECT_NEAR(fit.factor(4), row.f4, 0.01) << row.app;
  }
}

TEST(SharedCacheCost, HitLatencyMatchesTable1) {
  EXPECT_EQ(SharedCacheCostModel::shared_hit_latency(1), 1u);
  EXPECT_EQ(SharedCacheCostModel::shared_hit_latency(2), 2u);
  EXPECT_EQ(SharedCacheCostModel::shared_hit_latency(4), 3u);
  EXPECT_EQ(SharedCacheCostModel::shared_hit_latency(8), 3u);
}

TEST(SharedCacheCost, NoCostAtOneWay) {
  SharedCacheCostModel m;
  EXPECT_DOUBLE_EQ(m.multiplier("lu", 0.25, 1), 1.0);
}

TEST(SharedCacheCost, CostsGrowWithClusterSize) {
  SharedCacheCostModel m;
  const double m2 = m.multiplier("lu", 0.25, 2);
  const double m4 = m.multiplier("lu", 0.25, 4);
  const double m8 = m.multiplier("lu", 0.25, 8);
  EXPECT_GT(m2, 1.0);
  EXPECT_GT(m4, m2);
  EXPECT_GT(m8, m4) << "8-way has same hit latency but more bank conflicts";
}

TEST(SharedCacheCost, PaperFactorPreferenceFallsBackToModel) {
  SharedCacheCostModel with_paper;
  SharedCacheCostModel model_only;
  model_only.prefer_paper_factors = false;
  // lu is in Table 5: values differ unless rho happens to match.
  EXPECT_NE(with_paper.multiplier("lu", 0.05, 4),
            model_only.multiplier("lu", 0.05, 4));
  // fft is not in Table 5: both paths use the analytic model.
  EXPECT_DOUBLE_EQ(with_paper.multiplier("fft", 0.2, 4),
                   model_only.multiplier("fft", 0.2, 4));
}

TEST(SharedCacheCost, PaperLuMultipliersMatchHandComputation) {
  // 4-way: L=3, C=0.176; F(3)=1.114, F(4)=1.173 for lu.
  SharedCacheCostModel m;
  const double expect = (1 - 0.176) * 1.114 + 0.176 * 1.173;
  EXPECT_NEAR(m.multiplier("lu", 0.0, 4), expect, 2e-3);
}

TEST(SharedCacheCost, MakeCostRowNormalizes) {
  SimResult a, b;
  a.app_name = b.app_name = "fft";
  a.config.procs_per_cluster = 1;
  b.config.procs_per_cluster = 4;
  a.per_proc.push_back(TimeBuckets{1000, 0, 0, 0});
  b.per_proc.push_back(TimeBuckets{900, 0, 0, 0});
  a.totals.reads = b.totals.reads = 100;
  const auto row = make_cost_row({a, b}, SharedCacheCostModel{});
  EXPECT_DOUBLE_EQ(row.sim_ratio[0], 1.0);
  EXPECT_DOUBLE_EQ(row.sim_ratio[1], 0.9);
  EXPECT_DOUBLE_EQ(row.relative_time[0], 1.0);
  EXPECT_GT(row.relative_time[1], row.sim_ratio[1])
      << "4-way multiplier must add cost";
}

TEST(SharedCacheCost, MakeCostRowRejectsMixedApps) {
  SimResult a, b;
  a.app_name = "fft";
  b.app_name = "lu";
  a.per_proc.push_back(TimeBuckets{1, 0, 0, 0});
  b.per_proc.push_back(TimeBuckets{1, 0, 0, 0});
  EXPECT_THROW(make_cost_row({a, b}, SharedCacheCostModel{}),
               std::invalid_argument);
  EXPECT_THROW(make_cost_row({}, SharedCacheCostModel{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace csim
