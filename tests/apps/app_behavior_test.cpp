// Communication-pattern behavior tests: each application must exhibit the
// pattern Table 3 of the paper attributes to it, measured from simulator
// counters rather than assumed.
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/apps/fft.hpp"
#include "src/apps/volrend.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

MachineSpec mc(unsigned procs, unsigned ppc, std::size_t cache = 0) {
  MachineSpec c;
  c.num_procs = procs;
  c.procs_per_cluster = ppc;
  c.cache.per_proc_bytes = cache;
  return c;
}

/// Communication misses at infinite cache = total misses - cold misses.
std::uint64_t comm_misses(const SimResult& r) {
  return r.totals.total_misses() - r.totals.cold_misses;
}

TEST(AppBehavior, FftCommunicationBoundedByAllToAllFormula) {
  // All-to-all topology caps the *address-level* reduction at (P-C)/(P-1);
  // line-level spatial sharing (cluster-mates read adjacent columns of the
  // same source lines) adds a prefetching bonus on top, so the measured
  // ratio lies below the formula but must stay well above the near-
  // neighbour regime.
  auto a1 = make_app("fft", ProblemScale::Test);
  auto a4 = make_app("fft", ProblemScale::Test);
  const SimResult r1 = simulate(*a1, mc(16, 1));
  const SimResult r4 = simulate(*a4, mc(16, 4));
  const double formula = (16.0 - 4.0) / (16.0 - 1.0);  // 0.8
  const double actual = static_cast<double>(comm_misses(r4)) /
                        static_cast<double>(comm_misses(r1));
  EXPECT_LE(actual, formula + 0.05);
  EXPECT_GE(actual, 0.25) << "even with spatial sharing, all-to-all traffic "
                             "cannot collapse the way near-neighbour does";
}

TEST(AppBehavior, OceanCommunicationHalvesPerClusterDoubling) {
  // Near-neighbour with row-adjacent subgrids: column-boundary traffic
  // dominates and is captured per doubling.
  std::uint64_t prev = 0;
  for (unsigned ppc : {1u, 2u, 4u}) {
    auto a = make_app("ocean", ProblemScale::Test);
    const SimResult r = simulate(*a, mc(16, ppc));
    const std::uint64_t m = comm_misses(r);
    if (prev) {
      EXPECT_LT(static_cast<double>(m), 0.75 * static_cast<double>(prev))
          << "ppc=" << ppc;
    }
    prev = m;
  }
}

TEST(AppBehavior, Mp3dIsTheCommunicationStressTest) {
  // MP3D's re-reference miss rate at infinite caches (pure communication)
  // must dwarf every structured application's.
  auto mp3d = make_app("mp3d", ProblemScale::Test);
  const SimResult rm = simulate(*mp3d, mc(16, 1));
  const double mp3d_rate = static_cast<double>(comm_misses(rm)) /
                           static_cast<double>(rm.totals.reads);
  // (lu is excluded: it emits line-granularity references, which skews a
  // per-read rate comparison.)
  for (const char* other : {"ocean", "barnes", "volrend"}) {
    auto o = make_app(other, ProblemScale::Test);
    const SimResult ro = simulate(*o, mc(16, 1));
    const double rate = static_cast<double>(comm_misses(ro)) /
                        static_cast<double>(ro.totals.reads);
    EXPECT_GT(mp3d_rate, 3.0 * rate) << other;
  }
}

TEST(AppBehavior, GraphicsAppsAreReadOnlyOnSceneData) {
  // Raytrace/Volrend share read-only data: upgrade misses should only come
  // from the (tiny) pixel plane, i.e. be a minute fraction of reads.
  for (const char* name : {"raytrace", "volrend"}) {
    auto a = make_app(name, ProblemScale::Test);
    const SimResult r = simulate(*a, mc(16, 1));
    EXPECT_LT(r.totals.upgrade_misses * 50, r.totals.reads) << name;
  }
}

TEST(AppBehavior, VolrendFramesReuseTheVolume) {
  // Later frames re-read the same volume region: total misses must grow far
  // slower than linearly in the frame count (infinite caches).
  VolrendConfig one = VolrendConfig::preset(ProblemScale::Test);
  one.frames = 1;
  VolrendConfig three = one;
  three.frames = 3;
  VolrendApp a1(one), a3(three);
  const SimResult r1 = simulate(a1, mc(16, 1));
  const SimResult r3 = simulate(a3, mc(16, 1));
  EXPECT_LT(r3.totals.total_misses(), 2 * r1.totals.total_misses())
      << "3 frames must cost far less than 3x the misses of one frame";
  EXPECT_GT(r3.totals.reads, 2 * r1.totals.reads);
}

TEST(AppBehavior, FftStaggeredTransposeLimitsMergePileup) {
  // The SPLASH-2-style staggered transpose means cluster-mates start from
  // different source partitions; merges should stay well below read misses.
  auto a = make_app("fft", ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 4));
  EXPECT_GT(r.totals.merges, 0u);
  EXPECT_LT(r.totals.merges, r.totals.reads / 4);
}

TEST(AppBehavior, LuCommunicationIsProducerConsumer) {
  // LU communicates produced blocks to consumers: perimeter blocks are
  // written once (EXCLUSIVE at the owner) and then read by a row/column of
  // processors, so a large share of communication misses are dirty-line
  // transfers — and, since blocks are never rewritten after being shared,
  // invalidations stay rare.
  auto a = make_app("lu", ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 1));
  const std::uint64_t dirty =
      r.totals.by_class[static_cast<unsigned>(LatencyClass::LocalDirtyRemote)] +
      r.totals.by_class[static_cast<unsigned>(LatencyClass::RemoteDirtyThird)];
  EXPECT_GT(dirty * 5, comm_misses(r))
      << "at least a fifth of LU's communication must be dirty transfers";
  EXPECT_LT(r.totals.invalidations, r.totals.upgrade_misses)
      << "blocks are not rewritten after being shared";
}

TEST(AppBehavior, BarnesTreeOrderGivesClusterLocality) {
  // Spatially contiguous body partitions must make the per-cluster share of
  // communication misses drop when neighbours are clustered.
  auto a1 = make_app("barnes", ProblemScale::Test);
  auto a8 = make_app("barnes", ProblemScale::Test);
  const SimResult r1 = simulate(*a1, mc(16, 1));
  const SimResult r8 = simulate(*a8, mc(16, 8));
  EXPECT_LT(r8.totals.total_misses(), r1.totals.total_misses());
}

TEST(AppBehavior, RadixPermutationScattersWrites) {
  // The permutation phase writes keys to essentially random destinations:
  // write misses must be a substantial share of all writes (unclustered,
  // infinite caches — so these are communication, not capacity).
  auto a = make_app("radix", ProblemScale::Test);
  const SimResult r = simulate(*a, mc(16, 1));
  EXPECT_GT(r.totals.write_misses + r.totals.upgrade_misses,
            r.totals.writes / 20);
}

}  // namespace
}  // namespace csim
