// Deep per-application correctness: the workloads really compute what they
// claim (this is what makes their reference streams credible).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/barnes.hpp"
#include "src/apps/fft.hpp"
#include "src/apps/fmm.hpp"
#include "src/apps/lu.hpp"
#include "src/apps/mp3d.hpp"
#include "src/apps/ocean.hpp"
#include "src/apps/octree.hpp"
#include "src/apps/partition.hpp"
#include "src/apps/prng.hpp"
#include "src/apps/radix.hpp"
#include "src/apps/raytrace.hpp"
#include "src/apps/volrend.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

MachineSpec mc(unsigned procs = 16, unsigned ppc = 2,
                 std::size_t cache = 0) {
  MachineSpec c;
  c.num_procs = procs;
  c.procs_per_cluster = ppc;
  c.cache.per_proc_bytes = cache;
  return c;
}

// --- Partition helpers -----------------------------------------------------

TEST(Partition, BlockPartitionCoversExactly) {
  for (std::size_t n : {1ul, 7ul, 64ul, 1000ul}) {
    for (unsigned P : {1u, 3u, 16u, 64u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (ProcId p = 0; p < P; ++p) {
        const BlockRange r = block_partition(n, P, p);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(Partition, ProcGridFactorsSquarely) {
  EXPECT_EQ(make_proc_grid(64).rows, 8u);
  EXPECT_EQ(make_proc_grid(64).cols, 8u);
  EXPECT_EQ(make_proc_grid(16).rows, 4u);
  EXPECT_EQ(make_proc_grid(32).rows * make_proc_grid(32).cols, 32u);
  EXPECT_EQ(make_proc_grid(1).rows, 1u);
}

TEST(Partition, TilesCoverDomain) {
  const ProcGrid g = make_proc_grid(16);
  std::vector<int> hit(100 * 100, 0);
  for (ProcId p = 0; p < 16; ++p) {
    const Tile t = tile_of(100, 100, g, p);
    for (std::size_t r = t.row_begin; r < t.row_end; ++r) {
      for (std::size_t c = t.col_begin; c < t.col_end; ++c) {
        ++hit[r * 100 + c];
      }
    }
  }
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(Partition, CyclicTilesCoverDomainOnce) {
  const ProcGrid g = make_proc_grid(16);
  std::vector<int> hit(64 * 64, 0);
  for (ProcId p = 0; p < 16; ++p) {
    for (const Tile& t : cyclic_tiles(64, 64, 8, g, p)) {
      for (std::size_t r = t.row_begin; r < t.row_end; ++r) {
        for (std::size_t c = t.col_begin; c < t.col_end; ++c) {
          ++hit[r * 64 + c];
        }
      }
    }
  }
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(Prng, DeterministicAndDistinctStreams) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 10; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Prng, UniformInRange) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(17), 17u);
  }
}

// --- Octree ----------------------------------------------------------------

TEST(Octree, PartitionsPointsExactly) {
  Rng rng(7);
  std::vector<Vec3> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back(Vec3{rng.uniform(), rng.uniform(), rng.uniform()});
  }
  PointOctree t;
  t.build(pts, {}, 8);
  EXPECT_EQ(t.point_order().size(), pts.size());
  std::vector<int> seen(pts.size(), 0);
  for (int i : t.point_order()) ++seen[static_cast<std::size_t>(i)];
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_NEAR(t.root().mass, 500.0, 1e-9);
}

TEST(Octree, LeavesRespectCapacity) {
  Rng rng(9);
  std::vector<Vec3> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(Vec3{rng.uniform(), rng.uniform(), rng.uniform()});
  }
  PointOctree t;
  t.build(pts, {}, 4);
  for (const auto& n : t.nodes()) {
    if (n.leaf()) {
      EXPECT_LE(n.num_points, 4);
    }
  }
}

TEST(Octree, CenterOfMassIsWeightedAverage) {
  std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}};
  std::vector<double> m = {1.0, 3.0};
  PointOctree t;
  t.build(pts, m, 1);
  EXPECT_NEAR(t.root().com.x, 0.75, 1e-12);
  EXPECT_NEAR(t.root().mass, 4.0, 1e-12);
}

// --- Applications ----------------------------------------------------------

TEST(AppLu, FactorizationVerifiesAgainstReconstruction) {
  LuApp app(LuConfig::preset(ProblemScale::Test));
  EXPECT_NO_THROW(simulate(app, mc()));  // verify() runs inside
}

TEST(AppLu, RejectsBadBlockSize) {
  LuConfig c;
  c.n = 100;
  c.block = 16;
  LuApp app(c);
  EXPECT_THROW(simulate(app, mc()), std::invalid_argument);
}

TEST(AppFft, MatchesDirectDftAtTestScale) {
  FftApp app(FftConfig::preset(ProblemScale::Test));
  EXPECT_NO_THROW(simulate(app, mc()));
}

TEST(AppFft, RejectsNonSquareSize) {
  FftConfig c;
  c.n = 1000;
  FftApp app(c);
  EXPECT_THROW(simulate(app, mc()), std::invalid_argument);
}

TEST(AppOcean, ResidualFalls) {
  OceanApp app(OceanConfig::preset(ProblemScale::Test));
  (void)simulate(app, mc());
  EXPECT_GT(app.initial_residual(), 0.0);
  EXPECT_LT(app.final_residual(), 0.9 * app.initial_residual());
}

TEST(AppOcean, RejectsBadMultigridDepth) {
  OceanConfig c;
  c.n = 34;  // interior 32
  c.mg_levels = 6;
  OceanApp app(c);
  EXPECT_THROW(simulate(app, mc()), std::invalid_argument);
}

TEST(AppRadix, SortsAndPreservesMultiset) {
  RadixApp app(RadixConfig::preset(ProblemScale::Test));
  EXPECT_NO_THROW(simulate(app, mc()));  // verify(): sorted + permutation
}

TEST(AppRadix, RejectsNonPowerOfTwoRadix) {
  RadixConfig c;
  c.radix = 100;
  RadixApp app(c);
  EXPECT_THROW(simulate(app, mc()), std::invalid_argument);
}

TEST(AppBarnes, ForcesMatchDirectSummation) {
  BarnesConfig c = BarnesConfig::preset(ProblemScale::Test);
  BarnesApp app(c);
  (void)simulate(app, mc());
  // Spot-check beyond the built-in verify threshold: median error small.
  double total_err = 0;
  int n = 0;
  for (std::size_t i = 0; i < c.bodies; i += 10, ++n) {
    const Vec3 bh = app.bh_accel(i);
    const Vec3 ref = app.direct_accel(i);
    total_err += std::sqrt((bh - ref).norm2()) /
                 (std::sqrt(ref.norm2()) + 1e-12);
  }
  EXPECT_LT(total_err / n, 0.1) << "mean BH force error vs direct sum";
}

TEST(AppFmm, CoverageInvariantHolds) {
  FmmApp app(FmmConfig::preset(ProblemScale::Test));
  EXPECT_NO_THROW(simulate(app, mc()));
}

TEST(AppMp3d, ConservesParticles) {
  Mp3dApp app(Mp3dConfig::preset(ProblemScale::Test));
  EXPECT_NO_THROW(simulate(app, mc()));
}

TEST(AppRaytrace, ImageIdenticalAcrossMachineConfigs) {
  // The rendered image is a function of the scene only — machine
  // organization must not change the computation's result.
  RaytraceApp a(RaytraceConfig::preset(ProblemScale::Test));
  (void)simulate(a, mc(16, 1, 0));
  const auto h1 = a.image_checksum();
  RaytraceApp b(RaytraceConfig::preset(ProblemScale::Test));
  (void)simulate(b, mc(16, 8, 4 * 1024));
  EXPECT_EQ(h1, b.image_checksum());
  EXPECT_GT(a.hit_count(), 0u);
}

TEST(AppVolrend, ImageIdenticalAcrossMachineConfigs) {
  VolrendApp a(VolrendConfig::preset(ProblemScale::Test));
  (void)simulate(a, mc(16, 1, 0));
  const auto h1 = a.image_checksum();
  VolrendApp b(VolrendConfig::preset(ProblemScale::Test));
  (void)simulate(b, mc(16, 8, 4 * 1024));
  EXPECT_EQ(h1, b.image_checksum());
}

TEST(AppVolrend, EarlyTerminationAndSkippingActive) {
  VolrendApp app(VolrendConfig::preset(ProblemScale::Default));
  (void)simulate(app, mc(16, 2, 0));
  EXPECT_GT(app.early_terminations(), 0u);
  EXPECT_GT(app.blocks_skipped(), 0u);
  EXPECT_GT(app.samples_taken(), 0u);
}

TEST(AppRegistry, AllNinePresentAndConstructible) {
  const auto names = app_names();
  ASSERT_EQ(names.size(), 9u);
  for (const auto& n : names) {
    EXPECT_NE(make_app(n, ProblemScale::Test), nullptr);
  }
  EXPECT_THROW(make_app("nonexistent"), std::invalid_argument);
}

TEST(AppScales, PaperPresetsMatchTable2) {
  // Table 2 of the paper.
  EXPECT_EQ(BarnesConfig::preset(ProblemScale::Paper).bodies, 8192u);
  EXPECT_EQ(FftConfig::preset(ProblemScale::Paper).n, 65536u);
  EXPECT_EQ(FmmConfig::preset(ProblemScale::Paper).bodies, 8192u);
  EXPECT_EQ(LuConfig::preset(ProblemScale::Paper).n, 512u);
  EXPECT_EQ(LuConfig::preset(ProblemScale::Paper).block, 16u);
  EXPECT_EQ(Mp3dConfig::preset(ProblemScale::Paper).particles, 50000u);
  EXPECT_EQ(OceanConfig::preset(ProblemScale::Paper).n, 130u);
  EXPECT_EQ(RadixConfig::preset(ProblemScale::Paper).n, 262144u);
  EXPECT_EQ(RadixConfig::preset(ProblemScale::Paper).radix, 256u);
  EXPECT_EQ(OceanConfig::small_problem().n, 66u);
}

}  // namespace
}  // namespace csim
