// End-to-end smoke tests: every application runs to completion at Test scale
// on several machine configurations, and its self-verification passes.
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"

namespace csim {
namespace {

MachineSpec small_machine(unsigned ppc, std::size_t kb_per_proc) {
  MachineSpec cfg;
  cfg.num_procs = 16;
  cfg.procs_per_cluster = ppc;
  cfg.cache.per_proc_bytes = kb_per_proc * 1024;
  return cfg;
}

class AppSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(AppSmoke, RunsAndVerifiesInfiniteCache) {
  auto app = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*app, small_machine(1, 0));
  EXPECT_GT(r.wall_time, 0u);
  EXPECT_GT(r.totals.reads, 0u);
  EXPECT_EQ(r.per_proc.size(), 16u);
}

TEST_P(AppSmoke, RunsAndVerifiesClusteredFinite) {
  auto app = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*app, small_machine(4, 4));
  EXPECT_GT(r.wall_time, 0u);
  EXPECT_GT(r.totals.read_misses, 0u);
}

TEST_P(AppSmoke, BucketsSumToWallTime) {
  auto app = make_app(GetParam(), ProblemScale::Test);
  const SimResult r = simulate(*app, small_machine(2, 16));
  for (const auto& b : r.per_proc) {
    EXPECT_EQ(b.total(), r.wall_time)
        << "cpu+load+merge+sync must equal wall time for every processor";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppSmoke,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace csim
