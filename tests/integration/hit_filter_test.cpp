// The processor's generation-tagged hit filter (docs/PERFORMANCE.md) is a
// pure fast path: short-circuiting a repeat hit must produce bit-identical
// results to routing every access through the memory system. These tests
// prove that by running the same program twice — once normally (filter
// eligible) and once through a forwarding decorator whose default
// generation_addr()/hot_counters() return nullptr, which disables the filter
// — and comparing obs::result_digest over every counter and bucket.
//
// Both organizations are covered in both contention modes. Under contention
// the shared-cache organization disables the fast path itself (port queues
// must observe every access), while the shared-memory organization keeps it;
// either way the digests must match.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/mem/clustered_memory.hpp"
#include "src/mem/coherence.hpp"
#include "src/obs/manifest.hpp"

namespace csim {
namespace {

/// Forwards every access to the real memory system for the configuration but
/// inherits the MemorySystem defaults for generation_addr()/hot_counters(),
/// so processors never engage the hit filter.
class FilterOffMemory final : public MemorySystem {
 public:
  FilterOffMemory(const MachineSpec& cfg, const AddressSpace& as) {
    if (cfg.cluster_style == ClusterStyle::SharedMemory) {
      inner_ = std::make_unique<ClusteredMemorySystem>(cfg, as);
    } else {
      inner_ = std::make_unique<CoherenceController>(cfg, as);
    }
  }
  AccessResult read(ProcId p, Addr a, Cycles now) override {
    return inner_->read(p, a, now);
  }
  AccessResult write(ProcId p, Addr a, Cycles now) override {
    return inner_->write(p, a, now);
  }
  const MissCounters& cluster_counters(ClusterId c) const override {
    return inner_->cluster_counters(c);
  }
  MissCounters totals() const override { return inner_->totals(); }
  void audit() const override { inner_->audit(); }

 private:
  std::unique_ptr<MemorySystem> inner_;
};

MachineSpec config(ClusterStyle style, bool contention) {
  ContentionSpec spec;
  spec.enabled = contention;
  return MachineSpecBuilder{}
      .procs(64)
      .procs_per_cluster(8)
      .style(style)
      .cache_kb(16)
      .contention(spec)
      .build();
}

std::uint64_t digest_with_filter(const char* app, const MachineSpec& cfg) {
  auto prog = make_app(app, ProblemScale::Test);
  return obs::result_digest(simulate(*prog, cfg));
}

std::uint64_t digest_without_filter(const char* app, const MachineSpec& cfg) {
  auto prog = make_app(app, ProblemScale::Test);
  // The decorator's inner system needs the program's address-space layout,
  // which Simulator::run builds internally. Allocation is deterministic, so
  // a pre-run setup() into our own AddressSpace reproduces the placements
  // the in-run setup() will make (the same seam src/trace/trace.cpp uses).
  AddressSpace as;
  prog->setup(as, cfg);
  FilterOffMemory mem(cfg, as);
  Simulator sim(cfg);
  return obs::result_digest(sim.run(*prog, &mem));
}

class HitFilterEquivalence
    : public ::testing::TestWithParam<std::tuple<ClusterStyle, bool>> {};

TEST_P(HitFilterEquivalence, FilteredRunMatchesUnfilteredRun) {
  const auto [style, contention] = GetParam();
  const MachineSpec cfg = config(style, contention);
  for (const char* app : {"fft", "radix"}) {
    EXPECT_EQ(digest_with_filter(app, cfg), digest_without_filter(app, cfg))
        << app;
  }
}

TEST_P(HitFilterEquivalence, FilteredRunIsDeterministic) {
  const auto [style, contention] = GetParam();
  const MachineSpec cfg = config(style, contention);
  EXPECT_EQ(digest_with_filter("fft", cfg), digest_with_filter("fft", cfg));
}

INSTANTIATE_TEST_SUITE_P(
    BothOrgsBothContentionModes, HitFilterEquivalence,
    ::testing::Combine(::testing::Values(ClusterStyle::SharedCache,
                                         ClusterStyle::SharedMemory),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<ClusterStyle, bool>>& info) {
      std::string name = std::get<0>(info.param) == ClusterStyle::SharedCache
                             ? "shared_cache"
                             : "shared_memory";
      name += std::get<1>(info.param) ? "_contention" : "_no_contention";
      return name;
    });

}  // namespace
}  // namespace csim
