// Paper-scale (Table 2) problem sizes: every application must run and
// self-verify at the exact sizes the paper simulated. These are the largest
// tests in the suite (a few seconds each).
#include <gtest/gtest.h>

#include "src/apps/app.hpp"
#include "src/report/experiment.hpp"

namespace csim {
namespace {

class PaperScale : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperScale, RunsAndVerifiesOn64Processors) {
  auto app = make_app(GetParam(), ProblemScale::Paper);
  const SimResult r = simulate(*app, paper_machine(4, 0));
  EXPECT_GT(r.wall_time, 0u);
  EXPECT_GT(r.totals.reads, 100000u)
      << "paper-size inputs must produce substantial reference streams";
}

INSTANTIATE_TEST_SUITE_P(AllApps, PaperScale,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace csim
