// Boundary-drain ordering under window skipping and epoch batching
// (src/core/par_engine.cpp): mp3d is the adversarial workload for the
// conservative window engine — its particle/cell ping-pong floods the
// directory with cross-cluster transfers, so nearly every epoch ends dirty
// and the k-way-merge drain runs constantly. The engine's contract is that
// results are a pure function of the configuration: digests must be
// bit-identical at --par 1 / 2 / 8 for any horizon, including adversarial
// ones — W = 1 (every window one cycle wide, maximal skipping pressure), a
// prime width that never divides the app's natural periods, and a width far
// beyond the longest latency (everything batches into few epochs). The
// same binary runs under TSan in CI (suite name in the -R filter) to check
// the epoch barrier's publication ordering.
//
// The par-1 row is the reference: workers == 1 runs the identical windowed
// algorithm inline with no threads, so equality against it pins both the
// drain order and the skip/batch schedule. (Sequential non-windowed digests
// legitimately differ — see golden_digests_par.txt's header note.)
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/apps/app.hpp"
#include "src/core/machine.hpp"
#include "src/core/simulator.hpp"
#include "src/obs/manifest.hpp"

namespace csim {
namespace {

std::uint64_t digest_at(unsigned ppc, unsigned workers, Cycles horizon) {
  const MachineSpec cfg = MachineSpecBuilder{}
                              .procs(16)
                              .procs_per_cluster(ppc)
                              .cache_kb(4)
                              .parallel({workers, horizon})
                              .build();
  const std::unique_ptr<Program> prog = make_app("mp3d", ProblemScale::Test);
  return obs::result_digest(simulate(*prog, cfg));
}

TEST(ParStress, PingPongFloodIsWorkerCountInvariantAtAdversarialHorizons) {
  // ppc 2: eight clusters, nearly all mp3d traffic crosses a boundary.
  for (const Cycles horizon : {Cycles{1}, Cycles{13}, Cycles{4096}}) {
    const std::uint64_t base = digest_at(2, 1, horizon);
    for (const unsigned workers : {2u, 8u}) {
      EXPECT_EQ(digest_at(2, workers, horizon), base)
          << "digest diverged at W=" << horizon << " with " << workers
          << " workers";
    }
  }
}

TEST(ParStress, SingleProcClustersMaximizeCrossTrafficAndStayInvariant) {
  // ppc 1: every processor is its own cluster — every coherence action is
  // a deferred cross-cluster op, the densest drain the engine can see.
  for (const Cycles horizon : {Cycles{1}, Cycles{4096}}) {
    const std::uint64_t base = digest_at(1, 1, horizon);
    EXPECT_EQ(digest_at(1, 8, horizon), base)
        << "digest diverged at W=" << horizon << " with 8 workers";
  }
}

}  // namespace
}  // namespace csim
