// Failure injection: the simulator must fail loudly and cleanly — no hangs,
// no crashes, no corrupted state — when programs or configurations are
// broken.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/app.hpp"
#include "src/core/simulator.hpp"
#include "src/core/sync.hpp"

namespace csim {
namespace {

MachineConfig mc(unsigned procs = 4) {
  MachineConfig c;
  c.num_procs = procs;
  c.procs_per_cluster = 2;
  return c;
}

class FaultyProgram : public Program {
 public:
  enum class Fault {
    ThrowInSetup,
    ThrowMidRun,
    ThrowInVerify,
    BarrierTooFew,
    LockNeverReleased,
    EmptyBody,
  };
  explicit FaultyProgram(Fault f) : fault_(f) {}

  [[nodiscard]] std::string name() const override { return "faulty"; }

  void setup(AddressSpace& as, const MachineConfig& cfg) override {
    if (fault_ == Fault::ThrowInSetup) throw std::runtime_error("setup bug");
    base_ = as.alloc(4096, "mem");
    bar_ = std::make_unique<Barrier>(cfg.num_procs);
  }

  SimTask body(Proc& p) override {
    switch (fault_) {
      case Fault::ThrowMidRun:
        co_await p.read(base_);
        if (p.id() == 1) throw std::logic_error("mid-run bug");
        co_await p.compute(10);
        break;
      case Fault::BarrierTooFew:
        if (p.id() != 0) co_await p.barrier(*bar_);  // proc 0 skips
        break;
      case Fault::LockNeverReleased:
        co_await p.acquire(lock_);  // nobody releases: all but one deadlock
        break;
      case Fault::EmptyBody:
        break;  // completing without any operation must be legal
      default:
        co_await p.compute(1);
    }
  }

  void verify() const override {
    if (fault_ == Fault::ThrowInVerify) {
      throw std::runtime_error("verification failed");
    }
  }

 private:
  Fault fault_;
  Addr base_ = 0;
  std::unique_ptr<Barrier> bar_;
  Lock lock_;
};

TEST(FailureInjection, SetupExceptionPropagates) {
  FaultyProgram p(FaultyProgram::Fault::ThrowInSetup);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, MidRunExceptionPropagates) {
  FaultyProgram p(FaultyProgram::Fault::ThrowMidRun);
  EXPECT_THROW(simulate(p, mc()), std::logic_error);
}

TEST(FailureInjection, VerifyExceptionPropagates) {
  FaultyProgram p(FaultyProgram::Fault::ThrowInVerify);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, MismatchedBarrierIsDeadlockNotHang) {
  FaultyProgram p(FaultyProgram::Fault::BarrierTooFew);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, AbandonedLockIsDeadlockNotHang) {
  FaultyProgram p(FaultyProgram::Fault::LockNeverReleased);
  EXPECT_THROW(simulate(p, mc()), std::runtime_error);
}

TEST(FailureInjection, EmptyBodiesFinishAtTimeZero) {
  FaultyProgram p(FaultyProgram::Fault::EmptyBody);
  const SimResult r = simulate(p, mc());
  EXPECT_EQ(r.wall_time, 0u);
}

TEST(FailureInjection, SimulatorReusableAfterFailure) {
  // A failed run must not poison subsequent runs of the same Simulator.
  Simulator sim(mc());
  FaultyProgram bad(FaultyProgram::Fault::ThrowMidRun);
  EXPECT_THROW(sim.run(bad), std::logic_error);
  auto good = make_app("fft", ProblemScale::Test);
  MachineConfig cfg = mc(16);
  Simulator sim2(cfg);
  EXPECT_NO_THROW(sim2.run(*good));
}

TEST(FailureInjection, InvalidConfigRejectedBeforeRunning) {
  MachineConfig bad = mc();
  bad.procs_per_cluster = 3;  // does not divide 4
  EXPECT_THROW(Simulator{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace csim
